"""Multi-site federation — Table 1 row 6's "Hubcast@LLNL/RIKEN/AWS/…".

The paper's CI column lists *multiple* Hubcast deployments: every
participating site runs its own GitLab + Jacamar behind its own security
policy, all mirroring the one canonical GitHub repository.  A PR therefore
fans out to every site whose criteria pass, each site's pipeline runs on
its own systems, and per-site status checks stream back
(``hubcast/gitlab-ci@LLNL`` etc.) — the federated-CI design §3.3 argues
GitLab enables "in private HPC environments for smaller communities".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .github import GitHubRepo, PullRequest
from .gitlab import GitLab
from .hubcast import Hubcast, SecurityCriteria
from .pipeline import Pipeline

__all__ = ["Site", "Federation"]


@dataclass
class Site:
    """One participating HPC site."""

    name: str
    gitlab: GitLab
    hubcast: Hubcast
    #: which simulated systems this site hosts (runner tags)
    systems: List[str] = field(default_factory=list)


class Federation:
    """All sites mirroring one canonical repository."""

    def __init__(self, canonical: GitHubRepo):
        self.canonical = canonical
        self.sites: Dict[str, Site] = {}

    def add_site(self, name: str, systems: List[str],
                 criteria: Optional[SecurityCriteria] = None) -> Site:
        if name in self.sites:
            raise ValueError(f"site {name!r} already federated")
        gitlab = GitLab(f"{name.lower()}-gitlab")
        hubcast = Hubcast(self.canonical, gitlab,
                          criteria or SecurityCriteria())
        # Per-site status context so checks are distinguishable on the PR.
        hubcast_context = f"hubcast/gitlab-ci@{name}"
        site = Site(name=name, gitlab=gitlab, hubcast=hubcast,
                    systems=list(systems))
        site.hubcast_context = hubcast_context  # type: ignore[attr-defined]
        self.sites[name] = site
        return site

    def process_pr(self, pr: PullRequest) -> Dict[str, Optional[Pipeline]]:
        """Fan the PR out to every site; returns site → pipeline (None when
        the site's security criteria blocked it)."""
        results: Dict[str, Optional[Pipeline]] = {}
        for name, site in self.sites.items():
            pipeline = site.hubcast.process_pr(pr)
            # Re-home the generic status under the per-site context.
            generic = pr.statuses.pop("hubcast/gitlab-ci", None)
            if generic is not None:
                pr.set_status(f"hubcast/gitlab-ci@{name}", generic.state,
                              generic.description)
            results[name] = pipeline
        return results

    def all_sites_green(self, pr: PullRequest) -> bool:
        """True iff every federated site has streamed back success."""
        if not self.sites:
            return False
        for name in self.sites:
            status = pr.statuses.get(f"hubcast/gitlab-ci@{name}")
            if status is None or status.state != "success":
                return False
        return True

    def site_for_system(self, system: str) -> Optional[Site]:
        for site in self.sites.values():
            if system in site.systems:
                return site
        return None
