"""GitLab CI pipeline model: ``.gitlab-ci.yml`` parsing and execution.

Benchpark's CI tests "each component …, including source code, inputs,
builds, run scripts, and evaluation on systems both in the cloud and hosted
locally" (§3.3).  A pipeline is parsed from the repository's
``.gitlab-ci.yml`` at the mirrored commit; jobs are grouped into stages and
dispatched to runners whose tags match.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import yaml

from repro.perf import ContentStore, fingerprint

__all__ = ["CiJob", "Pipeline", "parse_ci_config", "CiConfigError", "job_fingerprint"]


class CiConfigError(ValueError):
    pass


_RESERVED_KEYS = {"stages", "variables", "default", "workflow", "include"}


#: GitLab `retry: when:` values we honour (plus the catch-all).
RETRY_WHEN_VALUES = {
    "always",
    "unknown_failure",
    "script_failure",
    "api_failure",
    "stuck_or_timeout_failure",
    "runner_system_failure",
    "runner_unsupported",
    "scheduler_failure",
}


@dataclass
class CiJob:
    name: str
    stage: str
    script: List[str]
    tags: List[str] = field(default_factory=list)
    variables: Dict[str, str] = field(default_factory=dict)
    allow_failure: bool = False
    #: DAG dependencies within the pipeline (GitLab `needs:`)
    needs: List[str] = field(default_factory=list)
    status: str = "created"  # created|pending|running|success|failed|skipped|cached
    log: str = ""
    runner: Optional[str] = None
    run_as_user: Optional[str] = None
    #: GitLab `retry: {max: N, when: [...]}` — how many times a failed run
    #: is re-executed, and for which failure classes
    retry_max: int = 0
    retry_when: List[str] = field(default_factory=lambda: ["always"])
    #: execution bookkeeping filled in by run_pipeline
    attempts: int = 0
    failure_reason: Optional[str] = None

    def retry_applies(self, reason: Optional[str]) -> bool:
        if "always" in self.retry_when:
            return True
        return reason is not None and reason in self.retry_when


def job_fingerprint(job: CiJob) -> str:
    """Content fingerprint of everything that determines a job's outcome:
    its script, variables, tags, stage, and dependency names.  The commit
    sha is deliberately *not* part of the key — content addressing means an
    unchanged job re-runs for free across pipelines."""
    return fingerprint({
        "name": job.name,
        "stage": job.stage,
        "script": list(job.script),
        "variables": dict(job.variables),
        "tags": sorted(job.tags),
        "needs": sorted(job.needs),
        "allow_failure": job.allow_failure,
    })


@dataclass
class Pipeline:
    pipeline_id: int
    ref: str
    sha: str
    stages: List[str]
    jobs: List[CiJob]
    status: str = "created"

    def jobs_in_stage(self, stage: str) -> List[CiJob]:
        return [j for j in self.jobs if j.stage == stage]

    @property
    def succeeded(self) -> bool:
        return self.status == "success"


def _parse_retry(job_name: str, retry: Any) -> tuple:
    """GitLab `retry:` — either a bare int or `{max: N, when: [...]}`;
    max is capped at 2, exactly as GitLab enforces."""
    if retry is None:
        return 0, ["always"]
    if isinstance(retry, bool):
        raise CiConfigError(f"job {job_name!r}: retry must be int or mapping")
    if isinstance(retry, int):
        retry = {"max": retry}
    if not isinstance(retry, dict):
        raise CiConfigError(f"job {job_name!r}: retry must be int or mapping")
    try:
        retry_max = int(retry.get("max", 0))
    except (TypeError, ValueError):
        raise CiConfigError(f"job {job_name!r}: retry.max must be an integer")
    if not (0 <= retry_max <= 2):
        raise CiConfigError(
            f"job {job_name!r}: retry.max must be in 0..2, got {retry_max}"
        )
    when = retry.get("when", ["always"])
    if isinstance(when, str):
        when = [when]
    when = [str(w) for w in when]
    unknown = [w for w in when if w not in RETRY_WHEN_VALUES]
    if unknown:
        raise CiConfigError(
            f"job {job_name!r}: unknown retry.when value(s) {unknown}; "
            f"known: {sorted(RETRY_WHEN_VALUES)}"
        )
    return retry_max, when


def parse_ci_config(text: str) -> Dict[str, Any]:
    """Parse .gitlab-ci.yml into {stages, variables, jobs}."""
    try:
        data = yaml.safe_load(text) or {}
    except yaml.YAMLError as e:
        raise CiConfigError(f"invalid .gitlab-ci.yml: {e}") from e
    if not isinstance(data, dict):
        raise CiConfigError(".gitlab-ci.yml must be a mapping")
    stages = data.get("stages") or ["test"]
    global_vars = data.get("variables") or {}
    jobs: List[CiJob] = []
    for name, body in data.items():
        if name in _RESERVED_KEYS or name.startswith("."):
            continue
        if not isinstance(body, dict):
            raise CiConfigError(f"job {name!r} must be a mapping")
        if "script" not in body:
            raise CiConfigError(f"job {name!r} has no script")
        stage = body.get("stage", stages[0])
        if stage not in stages:
            raise CiConfigError(
                f"job {name!r} references unknown stage {stage!r}; "
                f"declared: {stages}"
            )
        script = body["script"]
        if isinstance(script, str):
            script = [script]
        variables = dict(global_vars)
        variables.update(body.get("variables") or {})
        retry_max, retry_when = _parse_retry(name, body.get("retry"))
        jobs.append(
            CiJob(
                name=name,
                stage=stage,
                script=[str(s) for s in script],
                tags=[str(t) for t in body.get("tags", [])],
                variables=variables,
                allow_failure=bool(body.get("allow_failure", False)),
                needs=[str(n) for n in body.get("needs", [])],
                retry_max=retry_max,
                retry_when=retry_when,
            )
        )
    if not jobs:
        raise CiConfigError(".gitlab-ci.yml defines no jobs")
    names = {j.name for j in jobs}
    for job in jobs:
        unknown = [n for n in job.needs if n not in names]
        if unknown:
            raise CiConfigError(
                f"job {job.name!r} needs unknown job(s) {unknown}"
            )
    return {"stages": list(stages), "variables": global_vars, "jobs": jobs}


_pipeline_ids = itertools.count(1)


def build_pipeline(ref: str, sha: str, ci_text: str) -> Pipeline:
    parsed = parse_ci_config(ci_text)
    return Pipeline(
        pipeline_id=next(_pipeline_ids),
        ref=ref,
        sha=sha,
        stages=parsed["stages"],
        jobs=parsed["jobs"],
    )


def _execute_with_retry(job: CiJob, execute_job: Callable[[CiJob], tuple]) -> bool:
    """Run one job honouring its `retry:` policy; fills in ``job.log``,
    ``job.attempts``, and ``job.failure_reason``.

    ``execute_job(job)`` returns ``(ok, log)`` or ``(ok, log, reason)``;
    a missing reason on failure defaults to ``"script_failure"``.
    """
    job.attempts = 0
    log_parts: List[str] = []
    while True:
        job.attempts += 1
        outcome = execute_job(job)
        ok, log = bool(outcome[0]), outcome[1]
        reason = outcome[2] if len(outcome) > 2 else None
        if not ok and not reason:
            reason = job.failure_reason or "script_failure"
        log_parts.append(log)
        job.failure_reason = None if ok else reason
        if ok or job.attempts > job.retry_max or not job.retry_applies(reason):
            break
        log_parts.append(
            f"# retrying job {job.name!r} "
            f"(attempt {job.attempts}/{1 + job.retry_max} failed: {reason})"
        )
    job.log = "\n".join(p for p in log_parts if p) if len(log_parts) > 1 \
        else log_parts[0]
    return ok


def run_pipeline(
    pipeline: Pipeline,
    execute_job: Callable[[CiJob], tuple],
    job_cache: Optional[ContentStore] = None,
) -> Pipeline:
    """Run stages in order; a failed (non-allow_failure) job fails the
    pipeline and skips later stages.  Within a stage, `needs:` edges are
    honoured (a job whose needed job failed or was skipped is skipped).
    Jobs with a GitLab ``retry:`` policy are re-executed on matching
    failures.  ``execute_job(job) -> (ok, log)`` or ``(ok, log, reason)``
    where ``reason`` is a GitLab failure class like
    ``"runner_system_failure"``.

    With a ``job_cache``, jobs whose :func:`job_fingerprint` matches a prior
    *clean* success (one attempt, no retries) are not re-executed: they get
    status ``"cached"``, a provenance line naming the pipeline that produced
    the result, and count as satisfied for dependents' ``needs:``.  Flaky
    successes — jobs that only passed after a retry — are never cached, so
    a cached status always stands for a deterministic pass.
    """
    pipeline.status = "running"
    failed = False
    status_of: Dict[str, str] = {}
    for stage in pipeline.stages:
        pending = list(pipeline.jobs_in_stage(stage))
        # needs-respecting order: run jobs whose needs are all decided.
        progress = True
        while pending and progress:
            progress = False
            for job in list(pending):
                if any(n not in status_of for n in job.needs):
                    continue
                pending.remove(job)
                progress = True
                bad_needs = [n for n in job.needs
                             if status_of.get(n) not in ("success", "cached")]
                if failed or bad_needs:
                    job.status = "skipped"
                    job.log = (
                        f"skipped: needed job(s) did not succeed: {bad_needs}"
                        if bad_needs else "skipped: earlier job failed"
                    )
                    status_of[job.name] = "skipped"
                    continue
                key = job_fingerprint(job) if job_cache is not None else None
                if key is not None:
                    entry = job_cache.get(key)
                    if entry is not None:
                        job.status = "cached"
                        job.attempts = 0
                        job.failure_reason = None
                        job.log = (
                            f"# cached: identical job succeeded in pipeline "
                            f"{entry['pipeline_id']} @ {entry['sha']} "
                            f"(fingerprint {key})\n" + entry["log"]
                        )
                        status_of[job.name] = "cached"
                        continue
                job.status = "running"
                ok = _execute_with_retry(job, execute_job)
                job.status = "success" if ok else "failed"
                status_of[job.name] = job.status
                if ok and key is not None and job.attempts == 1:
                    job_cache.put(key, {
                        "log": job.log,
                        "pipeline_id": pipeline.pipeline_id,
                        "sha": pipeline.sha,
                    })
                if not ok and not job.allow_failure:
                    failed = True
        if pending:
            # circular or cross-stage-forward needs can never be satisfied:
            # mark the survivors skipped, each with the reason attached.
            for job in pending:
                unresolved = [n for n in job.needs if n not in status_of]
                job.status = "skipped"
                job.log = (
                    f"skipped: unresolved needs {unresolved} "
                    f"(circular or forward reference within stage {stage!r})"
                )
                status_of[job.name] = "skipped"
            failed = True
    pipeline.status = "failed" if failed else "success"
    return pipeline
