"""GitLab CI pipeline model: ``.gitlab-ci.yml`` parsing and execution.

Benchpark's CI tests "each component …, including source code, inputs,
builds, run scripts, and evaluation on systems both in the cloud and hosted
locally" (§3.3).  A pipeline is parsed from the repository's
``.gitlab-ci.yml`` at the mirrored commit; jobs are grouped into stages and
dispatched to runners whose tags match.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import yaml

__all__ = ["CiJob", "Pipeline", "parse_ci_config", "CiConfigError"]


class CiConfigError(ValueError):
    pass


_RESERVED_KEYS = {"stages", "variables", "default", "workflow", "include"}


@dataclass
class CiJob:
    name: str
    stage: str
    script: List[str]
    tags: List[str] = field(default_factory=list)
    variables: Dict[str, str] = field(default_factory=dict)
    allow_failure: bool = False
    #: DAG dependencies within the pipeline (GitLab `needs:`)
    needs: List[str] = field(default_factory=list)
    status: str = "created"  # created|pending|running|success|failed|skipped
    log: str = ""
    runner: Optional[str] = None
    run_as_user: Optional[str] = None


@dataclass
class Pipeline:
    pipeline_id: int
    ref: str
    sha: str
    stages: List[str]
    jobs: List[CiJob]
    status: str = "created"

    def jobs_in_stage(self, stage: str) -> List[CiJob]:
        return [j for j in self.jobs if j.stage == stage]

    @property
    def succeeded(self) -> bool:
        return self.status == "success"


def parse_ci_config(text: str) -> Dict[str, Any]:
    """Parse .gitlab-ci.yml into {stages, variables, jobs}."""
    try:
        data = yaml.safe_load(text) or {}
    except yaml.YAMLError as e:
        raise CiConfigError(f"invalid .gitlab-ci.yml: {e}") from e
    if not isinstance(data, dict):
        raise CiConfigError(".gitlab-ci.yml must be a mapping")
    stages = data.get("stages") or ["test"]
    global_vars = data.get("variables") or {}
    jobs: List[CiJob] = []
    for name, body in data.items():
        if name in _RESERVED_KEYS or name.startswith("."):
            continue
        if not isinstance(body, dict):
            raise CiConfigError(f"job {name!r} must be a mapping")
        if "script" not in body:
            raise CiConfigError(f"job {name!r} has no script")
        stage = body.get("stage", stages[0])
        if stage not in stages:
            raise CiConfigError(
                f"job {name!r} references unknown stage {stage!r}; "
                f"declared: {stages}"
            )
        script = body["script"]
        if isinstance(script, str):
            script = [script]
        variables = dict(global_vars)
        variables.update(body.get("variables") or {})
        jobs.append(
            CiJob(
                name=name,
                stage=stage,
                script=[str(s) for s in script],
                tags=[str(t) for t in body.get("tags", [])],
                variables=variables,
                allow_failure=bool(body.get("allow_failure", False)),
                needs=[str(n) for n in body.get("needs", [])],
            )
        )
    if not jobs:
        raise CiConfigError(".gitlab-ci.yml defines no jobs")
    names = {j.name for j in jobs}
    for job in jobs:
        unknown = [n for n in job.needs if n not in names]
        if unknown:
            raise CiConfigError(
                f"job {job.name!r} needs unknown job(s) {unknown}"
            )
    return {"stages": list(stages), "variables": global_vars, "jobs": jobs}


_pipeline_ids = itertools.count(1)


def build_pipeline(ref: str, sha: str, ci_text: str) -> Pipeline:
    parsed = parse_ci_config(ci_text)
    return Pipeline(
        pipeline_id=next(_pipeline_ids),
        ref=ref,
        sha=sha,
        stages=parsed["stages"],
        jobs=parsed["jobs"],
    )


def run_pipeline(
    pipeline: Pipeline,
    execute_job: Callable[[CiJob], tuple],
) -> Pipeline:
    """Run stages in order; a failed (non-allow_failure) job fails the
    pipeline and skips later stages.  Within a stage, `needs:` edges are
    honoured (a job whose needed job failed or was skipped is skipped).
    ``execute_job(job) -> (ok, log)``."""
    pipeline.status = "running"
    failed = False
    status_of: Dict[str, str] = {}
    for stage in pipeline.stages:
        pending = list(pipeline.jobs_in_stage(stage))
        # needs-respecting order: run jobs whose needs are all decided.
        progress = True
        while pending and progress:
            progress = False
            for job in list(pending):
                if any(n not in status_of for n in job.needs):
                    continue
                pending.remove(job)
                progress = True
                needs_ok = all(status_of.get(n) == "success" for n in job.needs)
                if failed or not needs_ok:
                    job.status = "skipped"
                    status_of[job.name] = "skipped"
                    continue
                job.status = "running"
                ok, log = execute_job(job)
                job.log = log
                job.status = "success" if ok else "failed"
                status_of[job.name] = job.status
                if not ok and not job.allow_failure:
                    failed = True
        if pending:
            # circular or cross-stage-forward needs: mark them skipped
            for job in pending:
                job.status = "skipped"
                status_of[job.name] = "skipped"
            failed = True
    pipeline.status = "failed" if failed else "success"
    return pipeline
