"""Jacamar — a custom HPC executor for GitLab CI runners (§3.3.2, [8]).

"Instead of running multiple CI jobs all under a single service user,
Jacamar uses setuid to execute jobs as the user who triggered them. …  If a
job is submitted by a user without an account at a participating site, the
job will be run as the user who approved the pull request."

The executor therefore needs: the site's account database, the identity of
the triggering user, and the identity of the approving administrator.  Every
execution is written to an audit log attributable to a real user — the
security property the paper emphasizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.resilience import TransientError

from .pipeline import CiJob

__all__ = ["JacamarExecutor", "JacamarError", "SiteAccounts"]


class JacamarError(RuntimeError):
    pass


@dataclass
class SiteAccounts:
    """The participating site's user database."""

    site: str
    users: Set[str] = field(default_factory=set)
    service_accounts_allowed: bool = False

    def has_account(self, user: str) -> bool:
        return user in self.users


class JacamarExecutor:
    """Executes CI jobs under a concrete user identity (setuid simulation).

    ``script_runner(job, user) -> (ok, log)`` performs the actual work —
    for Benchpark that shells the job's script into the benchmark dispatch.
    """

    def __init__(
        self,
        accounts: SiteAccounts,
        script_runner: Callable[[CiJob, str], tuple],
    ):
        self.accounts = accounts
        self.script_runner = script_runner
        self.audit_log: List[Dict[str, str]] = []

    def resolve_user(self, triggered_by: str, approved_by: Optional[str]) -> str:
        """Which identity the job runs as (the paper's setuid policy)."""
        if self.accounts.has_account(triggered_by):
            return triggered_by
        if approved_by is not None and self.accounts.has_account(approved_by):
            return approved_by
        raise JacamarError(
            f"neither the triggering user {triggered_by!r} nor the approver "
            f"{approved_by!r} has an account at {self.accounts.site}; "
            f"refusing to run under a service account"
        )

    def execute(self, job: CiJob, triggered_by: str,
                approved_by: Optional[str] = None) -> tuple:
        user = self.resolve_user(triggered_by, approved_by)
        job.run_as_user = user
        try:
            ok, log = self.script_runner(job, user)
            reason = None if ok else "script_failure"
        except TransientError as e:
            # A node flap / scheduler timeout under the runner is not the
            # script's fault: classify it so `retry: when:
            # [runner_system_failure]` policies can re-run the job.
            ok, log = False, f"jacamar: transient runner failure: {e}"
            reason = "runner_system_failure"
        job.failure_reason = reason
        self.audit_log.append(
            {
                "site": self.accounts.site,
                "job": job.name,
                "triggered_by": triggered_by,
                "ran_as": user,
                "outcome": "success" if ok else "failed",
                "failure_reason": reason or "",
            }
        )
        return ok, log

    def bound_runner(self, triggered_by: str,
                     approved_by: Optional[str] = None) -> Callable[[CiJob], tuple]:
        """Adapter with the (job) -> (ok, log, reason) signature
        ``run_pipeline`` consumes, with the user context pre-bound for one
        pipeline.  ``reason`` is the GitLab failure class used to match
        ``retry: when:`` policies."""

        def run(job: CiJob) -> tuple:
            try:
                ok, log = self.execute(job, triggered_by, approved_by)
                return ok, log, job.failure_reason
            except JacamarError as e:
                # No usable account is not retryable by a rerun of the
                # same pipeline: a permanent, runner-side refusal.
                return False, f"jacamar: {e}", "runner_unsupported"

        return run
