"""GitHub service model: forks, pull requests, reviews, status checks.

The canonical Benchpark repository lives on GitHub (§3.3.1); untrusted
contributors fork it and open pull requests.  Status checks are streamed
back from GitLab CI via Hubcast and shown natively on the PR.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .git import Commit, GitError, GitRepository

__all__ = ["GitHub", "GitHubRepo", "PullRequest", "Review", "StatusCheck"]


@dataclass
class Review:
    reviewer: str
    approved: bool
    comment: str = ""
    #: site/system administrator reviews carry mirroring authority (§3.3.1)
    is_admin: bool = False


@dataclass
class StatusCheck:
    context: str  # e.g. "hubcast/gitlab-ci"
    state: str  # pending | success | failure
    description: str = ""


@dataclass
class PullRequest:
    number: int
    title: str
    author: str
    source_repo: "GitHubRepo"
    source_branch: str
    target_branch: str
    head: Commit
    target_repo: Optional["GitHubRepo"] = None
    reviews: List[Review] = field(default_factory=list)
    statuses: Dict[str, StatusCheck] = field(default_factory=dict)
    state: str = "open"  # open | merged | closed

    def approve(self, reviewer: str, is_admin: bool = False, comment: str = "") -> None:
        self.reviews.append(Review(reviewer, True, comment, is_admin))

    def request_changes(self, reviewer: str, comment: str = "") -> None:
        self.reviews.append(Review(reviewer, False, comment))

    @property
    def approved_by_admin(self) -> bool:
        """§3.3.1: 'a pull request must be reviewed and approved by a site
        and system administrator' before Hubcast mirrors it."""
        approvals = {r.reviewer for r in self.reviews if r.approved and r.is_admin}
        rejections = {r.reviewer for r in self.reviews if not r.approved}
        return bool(approvals - rejections)

    @property
    def admin_approver(self) -> Optional[str]:
        for r in reversed(self.reviews):
            if r.approved and r.is_admin:
                return r.reviewer
        return None

    def set_status(self, context: str, state: str, description: str = "") -> None:
        self.statuses[context] = StatusCheck(context, state, description)

    @property
    def checks_passed(self) -> bool:
        return bool(self.statuses) and all(
            s.state == "success" for s in self.statuses.values()
        )


class GitHubRepo:
    """One repository on the GitHub service."""

    def __init__(self, hub: "GitHub", owner: str, name: str):
        self.hub = hub
        self.owner = owner
        self.name = name
        self.git = GitRepository(f"{owner}/{name}")
        self.pull_requests: Dict[int, PullRequest] = {}
        self._pr_ids = itertools.count(1)

    @property
    def full_name(self) -> str:
        return f"{self.owner}/{self.name}"

    def fork(self, new_owner: str) -> "GitHubRepo":
        fork = GitHubRepo(self.hub, new_owner, self.name)
        fork.git = self.git.fork(f"{new_owner}/{self.name}")
        self.hub.repos[fork.full_name] = fork
        return fork

    def open_pull_request(self, source_repo: "GitHubRepo", source_branch: str,
                          title: str, author: str,
                          target_branch: Optional[str] = None) -> PullRequest:
        target_branch = target_branch or self.git.default_branch
        head = source_repo.git.head(source_branch)
        base = self.git.head(target_branch)
        if head is base:
            raise GitError("pull request has no changes against the target")
        pr = PullRequest(
            number=next(self._pr_ids),
            title=title,
            author=author,
            source_repo=source_repo,
            source_branch=source_branch,
            target_branch=target_branch,
            head=head,
            target_repo=self,
        )
        self.pull_requests[pr.number] = pr
        self.hub.notify_pr_opened(self, pr)
        return pr

    def merge(self, pr_number: int) -> Commit:
        pr = self.pull_requests[pr_number]
        if pr.state != "open":
            raise GitError(f"PR #{pr_number} is {pr.state}")
        if not pr.checks_passed:
            raise GitError(f"PR #{pr_number}: required status checks not passing")
        self.git.fetch(pr.source_repo.git, pr.source_branch,
                       as_branch=pr.target_branch)
        pr.state = "merged"
        return self.git.head(pr.target_branch)


class GitHub:
    """The GitHub service: a namespace of repos and PR webhooks."""

    def __init__(self):
        self.repos: Dict[str, GitHubRepo] = {}
        self._webhooks: List = []

    def create_repo(self, owner: str, name: str) -> GitHubRepo:
        repo = GitHubRepo(self, owner, name)
        self.repos[repo.full_name] = repo
        return repo

    def register_webhook(self, callback) -> None:
        """callback(repo, pr) fires when a PR opens (Hubcast subscribes)."""
        self._webhooks.append(callback)

    def notify_pr_opened(self, repo: GitHubRepo, pr: PullRequest) -> None:
        for cb in self._webhooks:
            cb(repo, pr)
