"""Metrics database (Figure 6): where continuous-benchmarking results land.

§5: "Storing the Benchpark manifest with the performance results will enable
introspection into benchmark performance across systems and time."  Records
therefore carry the full experiment manifest (application/system/experiment
variables) alongside each FOM, a monotonically increasing sequence number
standing in for time, and query/aggregation APIs the dashboard and Thicket
consume.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["MetricRecord", "MetricsDatabase"]


@dataclass(frozen=True)
class MetricRecord:
    seq: int
    benchmark: str
    system: str
    experiment: str
    fom_name: str
    value: Any
    units: str = ""
    manifest: Dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "benchmark": self.benchmark,
            "system": self.system,
            "experiment": self.experiment,
            "fom_name": self.fom_name,
            "value": self.value,
            "units": self.units,
            "manifest": dict(self.manifest),
        }


class MetricsDatabase:
    """Append-only store of benchmark results."""

    def __init__(self):
        self._records: List[MetricRecord] = []
        self._seq = itertools.count(1)
        # Secondary indexes so the regression detector's (benchmark, system)
        # scans and dashboard (system, experiment) lookups stop walking every
        # sample ever recorded.  Lists keep insertion (seq) order, matching
        # full-scan results exactly.
        self._by_system_benchmark: Dict[Tuple[str, str], List[MetricRecord]] = {}
        self._by_system_experiment: Dict[Tuple[str, str], List[MetricRecord]] = {}
        #: bumped once per appended record; the columnar MetricsFrame uses it
        #: to detect (and incrementally absorb) appends without re-scanning.
        self.generation = 0

    # -- ingestion -------------------------------------------------------
    def _insert(self, rec: MetricRecord) -> MetricRecord:
        self._records.append(rec)
        self._by_system_benchmark.setdefault((rec.system, rec.benchmark), []).append(rec)
        self._by_system_experiment.setdefault((rec.system, rec.experiment), []).append(rec)
        self.generation += 1
        return rec

    def record(self, benchmark: str, system: str, experiment: str,
               fom_name: str, value: Any, units: str = "",
               manifest: Optional[Dict[str, Any]] = None) -> MetricRecord:
        return self._insert(MetricRecord(
            seq=next(self._seq),
            benchmark=benchmark,
            system=system,
            experiment=experiment,
            fom_name=fom_name,
            value=value,
            units=units,
            manifest=dict(manifest or {}),
        ))

    def ingest_analysis(self, system: str, analysis: Dict[str, Any]) -> int:
        """Load a Ramble ``results.latest.json`` payload; returns the number
        of FOM records stored."""
        count = 0
        for exp in analysis.get("experiments", []):
            for fom in exp.get("figures_of_merit", []):
                self.record(
                    benchmark=exp["application"],
                    system=system,
                    experiment=exp["name"],
                    fom_name=fom["name"],
                    value=fom["value"],
                    units=fom.get("units", ""),
                    manifest=exp.get("variables", {}),
                )
                count += 1
        return count

    # -- queries -----------------------------------------------------------
    @staticmethod
    def is_flaky(rec: MetricRecord) -> bool:
        """True when the record came from a retried (non-converged) run —
        the resilience layer tags those with ``flaky``/``attempts`` in the
        manifest."""
        flag = rec.manifest.get("flaky")
        if isinstance(flag, str):
            if flag.lower() in ("true", "1", "yes"):
                return True
        elif flag:
            return True
        try:
            return int(float(rec.manifest.get("attempts", 1))) > 1
        except (TypeError, ValueError):
            return False

    def query(self, benchmark: Optional[str] = None, system: Optional[str] = None,
              fom_name: Optional[str] = None,
              experiment: Optional[str] = None,
              predicate: Optional[Callable[[MetricRecord], bool]] = None,
              exclude_flaky: bool = False) -> List[MetricRecord]:
        # Narrow the candidate set through an index before filtering: the
        # regression detector queries (benchmark, system, fom) per tracked
        # FOM, which was a full scan per call.
        candidates: List[MetricRecord]
        if system is not None and experiment is not None:
            candidates = self._by_system_experiment.get((system, experiment), [])
        elif system is not None and benchmark is not None:
            candidates = self._by_system_benchmark.get((system, benchmark), [])
        else:
            candidates = self._records
        out = []
        for rec in candidates:
            if benchmark is not None and rec.benchmark != benchmark:
                continue
            if system is not None and rec.system != system:
                continue
            if experiment is not None and rec.experiment != experiment:
                continue
            if fom_name is not None and rec.fom_name != fom_name:
                continue
            if predicate is not None and not predicate(rec):
                continue
            if exclude_flaky and self.is_flaky(rec):
                continue
            out.append(rec)
        return out

    def flaky_count(self) -> int:
        return sum(1 for rec in self._records if self.is_flaky(rec))

    def series(self, benchmark: str, system: str, fom_name: str,
               x_key: str, exclude_flaky: bool = False) -> List[tuple]:
        """(manifest[x_key], value) pairs — e.g. nprocs vs total_time for
        the Figure 14 fit — sorted by x."""
        pairs = []
        for rec in self.query(benchmark=benchmark, system=system,
                              fom_name=fom_name, exclude_flaky=exclude_flaky):
            if x_key not in rec.manifest:
                continue
            try:
                x = float(rec.manifest[x_key])
                y = float(rec.value)
            except (TypeError, ValueError):
                continue
            pairs.append((x, y))
        return sorted(pairs)

    def aggregate(self, fom_name: str, group_by: str = "system",
                  exclude_flaky: bool = True) -> Dict[str, Dict[str, float]]:
        """Per-group summary statistics of one FOM.

        Flaky (retried) samples are excluded by default, matching
        :meth:`series` consumers and the regression detector — aggregate
        statistics must not mix converged samples with ones measured while
        the system was flapping.
        """
        groups: Dict[str, List[float]] = {}
        for rec in self.query(fom_name=fom_name, exclude_flaky=exclude_flaky):
            try:
                value = float(rec.value)
            except (TypeError, ValueError):
                continue
            key = getattr(rec, group_by, None) or rec.manifest.get(group_by)
            groups.setdefault(str(key), []).append(value)
        return {
            k: {
                "mean": float(np.mean(v)),
                "min": float(np.min(v)),
                "max": float(np.max(v)),
                "count": len(v),
            }
            for k, v in sorted(groups.items())
        }

    # -- usage metrics (§5: "which codes are accessed most heavily") --------
    def benchmark_usage(self) -> Dict[str, int]:
        usage: Dict[str, int] = {}
        for rec in self._records:
            usage[rec.benchmark] = usage.get(rec.benchmark, 0) + 1
        return dict(sorted(usage.items(), key=lambda kv: -kv[1]))

    # -- persistence -----------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """JSON-serializable record list (checkpoint embedding)."""
        return [r.to_dict() for r in self._records]

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "MetricsDatabase":
        """Rebuild a database from :meth:`to_records` output.

        Original sequence numbers are preserved (a dump/load round trip is
        the identity, not a re-numbering) and both secondary indexes are
        rebuilt so indexed queries on the loaded database match a full scan.
        """
        db = cls()
        max_seq = 0
        for d in records:
            seq = int(d["seq"]) if d.get("seq") is not None else next(db._seq)
            max_seq = max(max_seq, seq)
            db._insert(MetricRecord(
                seq=seq,
                benchmark=d["benchmark"],
                system=d["system"],
                experiment=d["experiment"],
                fom_name=d["fom_name"],
                value=d["value"],
                units=d.get("units", ""),
                manifest=dict(d.get("manifest") or {}),
            ))
        db._seq = itertools.count(max_seq + 1)
        return db

    def dump(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.to_records(), indent=2))

    @classmethod
    def load(cls, path: Path | str) -> "MetricsDatabase":
        return cls.from_records(json.loads(Path(path).read_text()))

    def __len__(self):
        return len(self._records)
