"""GitLab service model: mirrored projects, runners, and CI pipelines.

GitLab was chosen over GitHub-native runners "due to GitLab's popularity at
HPC centers (because of compatibility with Jacamar) and because it can be
used in private HPC environments" (§3.3).  Each HPC site runs its own
GitLab instance with runners tagged by system; Hubcast mirrors approved
GitHub commits here, and pipelines execute through Jacamar.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .git import GitRepository
from .pipeline import CiJob, Pipeline, build_pipeline, run_pipeline

__all__ = ["GitLab", "GitLabProject", "Runner", "GitLabError"]


class GitLabError(RuntimeError):
    pass


class Runner:
    """A GitLab CI runner registered at an HPC site.

    ``executor`` runs one job and returns (ok, log) — in Benchpark this is a
    :class:`~repro.ci.jacamar.JacamarExecutor` bound to a system.
    """

    def __init__(self, name: str, tags: List[str],
                 executor: Callable[[CiJob], tuple]):
        self.name = name
        self.tags = list(tags)
        self.executor = executor
        self.jobs_run = 0

    def can_run(self, job: CiJob) -> bool:
        return all(tag in self.tags for tag in job.tags)

    def run(self, job: CiJob) -> tuple:
        self.jobs_run += 1
        job.runner = self.name
        return self.executor(job)


class GitLabProject:
    """A project on a GitLab instance (usually a Hubcast mirror)."""

    def __init__(self, gitlab: "GitLab", path: str):
        self.gitlab = gitlab
        self.path = path
        self.git = GitRepository(path)
        self.pipelines: List[Pipeline] = []

    def trigger_pipeline(self, ref: str) -> Pipeline:
        """Read .gitlab-ci.yml at the ref and run it on matching runners."""
        files = self.git.files_at(ref)
        ci_text = files.get(".gitlab-ci.yml")
        if ci_text is None:
            raise GitLabError(
                f"{self.path}@{ref}: no .gitlab-ci.yml — nothing to run"
            )
        sha = self.git.head(ref).sha
        pipeline = build_pipeline(ref, sha, ci_text)

        def execute(job: CiJob) -> tuple:
            runner = self.gitlab.find_runner(job)
            if runner is None:
                return False, f"no runner with tags {job.tags}"
            return runner.run(job)

        run_pipeline(pipeline, execute)
        self.pipelines.append(pipeline)
        return pipeline


class GitLab:
    """One GitLab instance (an HPC center's private deployment)."""

    def __init__(self, name: str = "gitlab"):
        self.name = name
        self.projects: Dict[str, GitLabProject] = {}
        self.runners: List[Runner] = []

    def create_project(self, path: str) -> GitLabProject:
        if path in self.projects:
            raise GitLabError(f"project {path!r} already exists")
        project = GitLabProject(self, path)
        self.projects[path] = project
        return project

    def get_or_create_project(self, path: str) -> GitLabProject:
        return self.projects.get(path) or self.create_project(path)

    def register_runner(self, runner: Runner) -> None:
        self.runners.append(runner)

    def find_runner(self, job: CiJob) -> Optional[Runner]:
        for runner in self.runners:
            if runner.can_run(job):
                return runner
        return None
