"""Hubcast — secure GitHub↔GitLab mirroring (§3.3.1, [23]).

"Unlike GitLab's built-in mirroring functionality, Hubcast allows untrusted
pull requests from forks to be mirrored to a GitLab once they pass a
configured set of security criteria.  Once mirrored, these pull request
branches may then be used for GitLab CI and the status of any workflows will
be reported back to GitHub."

Security model implemented here, mirroring the paper:

* a PR from an untrusted fork is mirrored **only after** review + approval
  by a site and system administrator;
* PRs by trusted users (allowlist) mirror immediately;
* after the GitLab pipeline finishes, Hubcast streams the result back as a
  native status check on the GitHub PR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .github import GitHubRepo, PullRequest
from .gitlab import GitLab, GitLabProject
from .pipeline import Pipeline

__all__ = ["Hubcast", "SecurityCriteria", "MirrorRecord"]

STATUS_CONTEXT = "hubcast/gitlab-ci"


@dataclass
class SecurityCriteria:
    """The configured set of checks a PR must pass before mirroring."""

    trusted_users: Set[str] = field(default_factory=set)
    require_admin_approval: bool = True
    #: paths an untrusted PR may not touch even with approval
    protected_paths: Set[str] = field(default_factory=lambda: {".gitlab-ci.yml"})

    def evaluate(self, pr: PullRequest) -> tuple:
        """(allowed, reason)."""
        if pr.author in self.trusted_users:
            return True, f"author {pr.author!r} is trusted"
        if self.require_admin_approval and not pr.approved_by_admin:
            return False, "awaiting review and approval by a site administrator"
        changed = _changed_paths(pr)
        touched_protected = changed & self.protected_paths
        if touched_protected:
            return False, (
                f"untrusted PR modifies protected path(s) {sorted(touched_protected)}"
            )
        return True, "approved by site administrator"


def _changed_paths(pr: PullRequest) -> Set[str]:
    """Paths that differ between the PR head and the target branch."""
    head_files = pr.head.files
    if pr.target_repo is not None:
        base = pr.target_repo.git.files_at(pr.target_branch)
    else:
        base = pr.head.parent.files if pr.head.parent else {}
    changed = {p for p, content in head_files.items() if base.get(p) != content}
    changed |= set(base) - set(head_files)
    return changed


@dataclass
class MirrorRecord:
    pr_number: int
    branch: str
    sha: str
    pipeline: Optional[Pipeline] = None


class Hubcast:
    """The mirroring bot wiring one GitHub repo to one GitLab instance."""

    def __init__(self, github_repo: GitHubRepo, gitlab: GitLab,
                 criteria: Optional[SecurityCriteria] = None):
        self.github_repo = github_repo
        self.gitlab = gitlab
        self.criteria = criteria or SecurityCriteria()
        self.mirror: GitLabProject = gitlab.get_or_create_project(
            f"mirror/{github_repo.full_name}"
        )
        # Seed the mirror with the canonical default branch.
        self.mirror.git.fetch(github_repo.git, github_repo.git.default_branch)
        self.mirrored: Dict[int, MirrorRecord] = {}
        self.audit_log: List[str] = []
        github_repo.hub.register_webhook(self._on_pr_event)

    # ------------------------------------------------------------------
    def _on_pr_event(self, repo: GitHubRepo, pr: PullRequest) -> None:
        if repo is not self.github_repo:
            return
        pr.set_status(STATUS_CONTEXT, "pending", "awaiting security checks")
        self.audit_log.append(f"PR #{pr.number} opened by {pr.author}")

    # ------------------------------------------------------------------
    def process_pr(self, pr: PullRequest) -> Optional[Pipeline]:
        """Evaluate criteria; if they pass, mirror the PR branch to GitLab,
        run CI, and stream the status back to GitHub."""
        allowed, reason = self.criteria.evaluate(pr)
        self.audit_log.append(
            f"PR #{pr.number}: security criteria "
            f"{'passed' if allowed else 'blocked'} — {reason}"
        )
        if not allowed:
            pr.set_status(STATUS_CONTEXT, "pending", reason)
            return None

        branch = f"pr-{pr.number}"
        self.mirror.git.fetch(pr.source_repo.git, pr.source_branch,
                              as_branch=branch)
        record = MirrorRecord(pr.number, branch, pr.head.sha)
        self.mirrored[pr.number] = record
        self.audit_log.append(
            f"PR #{pr.number}: mirrored {pr.head.sha} to {self.mirror.path}@{branch}"
        )

        pipeline = self.mirror.trigger_pipeline(branch)
        record.pipeline = pipeline
        state = "success" if pipeline.succeeded else "failure"
        detail = f"pipeline #{pipeline.pipeline_id} {pipeline.status}"
        pr.set_status(STATUS_CONTEXT, state, detail)
        self.audit_log.append(f"PR #{pr.number}: streamed back {state} ({detail})")
        return pipeline
