"""S3-like object store (Figure 6's cache, §7.2's rolling binary cache).

Buckets of key → bytes with content hashing and simple usage metrics.
The mini-Spack :class:`~repro.spack.binary_cache.BinaryCache` can use a
bucket as its backend, which is how CI builders and benchmark runners share
binaries in the automation loop.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

__all__ = ["ObjectStore", "Bucket", "ObjectStoreError"]


class ObjectStoreError(KeyError):
    pass


class Bucket:
    """One bucket: a flat key → object namespace."""

    def __init__(self, name: str):
        self.name = name
        self._objects: Dict[str, bytes] = {}
        self.puts = 0
        self.gets = 0

    def put(self, key: str, data: bytes) -> str:
        if not isinstance(data, bytes):
            raise TypeError(f"object data must be bytes, got {type(data).__name__}")
        self._objects[key] = data
        self.puts += 1
        return hashlib.sha256(data).hexdigest()

    def get(self, key: str) -> Optional[bytes]:
        self.gets += 1
        return self._objects.get(key)

    def get_or_raise(self, key: str) -> bytes:
        data = self.get(key)
        if data is None:
            raise ObjectStoreError(f"s3://{self.name}/{key} not found")
        return data

    def has(self, key: str) -> bool:
        return key in self._objects

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise ObjectStoreError(f"s3://{self.name}/{key} not found")
        del self._objects[key]

    def list(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._objects.values())

    def __len__(self):
        return len(self._objects)


class ObjectStore:
    """The service: a namespace of buckets."""

    def __init__(self):
        self.buckets: Dict[str, Bucket] = {}

    def create_bucket(self, name: str) -> Bucket:
        if name in self.buckets:
            raise ObjectStoreError(f"bucket {name!r} already exists")
        bucket = Bucket(name)
        self.buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        try:
            return self.buckets[name]
        except KeyError:
            raise ObjectStoreError(f"no bucket {name!r}") from None
