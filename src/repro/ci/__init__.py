"""CI automation substrate (paper §3.3, Figure 6): in-memory GitHub/GitLab
services, Hubcast secure mirroring, the Jacamar setuid executor, pipeline
parsing/execution, the S3-like object store, and the metrics database."""

from .federation import Federation, Site
from .git import Commit, GitError, GitRepository
from .github import GitHub, GitHubRepo, PullRequest, Review, StatusCheck
from .gitlab import GitLab, GitLabError, GitLabProject, Runner
from .hubcast import Hubcast, MirrorRecord, SecurityCriteria
from .jacamar import JacamarError, JacamarExecutor, SiteAccounts
from .metricsdb import MetricRecord, MetricsDatabase
from .objectstore import Bucket, ObjectStore, ObjectStoreError
from .pipeline import CiConfigError, CiJob, Pipeline, parse_ci_config, run_pipeline

__all__ = [
    "Bucket",
    "CiConfigError",
    "CiJob",
    "Commit",
    "Federation",
    "GitError",
    "GitHub",
    "GitHubRepo",
    "GitLab",
    "GitLabError",
    "GitLabProject",
    "GitRepository",
    "Hubcast",
    "JacamarError",
    "JacamarExecutor",
    "MetricRecord",
    "MetricsDatabase",
    "MirrorRecord",
    "ObjectStore",
    "ObjectStoreError",
    "Pipeline",
    "PullRequest",
    "Review",
    "Runner",
    "SecurityCriteria",
    "Site",
    "SiteAccounts",
    "StatusCheck",
    "parse_ci_config",
    "run_pipeline",
]
