"""In-memory git model — the substrate under the GitHub/GitLab services.

Commits form a DAG; branches are named refs; repositories can be forked
(shared history, divergent branches) and fetched from one another — enough
git semantics for the paper's Figure 6 automation loop (PRs from forks,
mirroring commits between hosts) without shelling out to real git.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, List, Optional

__all__ = ["Commit", "GitRepository", "GitError"]


class GitError(RuntimeError):
    pass


_counter = itertools.count()


class Commit:
    """An immutable commit: snapshot of files plus parent link."""

    def __init__(self, message: str, author: str, files: Dict[str, str],
                 parent: Optional["Commit"] = None):
        self.message = message
        self.author = author
        self.files = dict(files)
        self.parent = parent
        payload = (
            f"{message}|{author}|{parent.sha if parent else ''}|"
            + "|".join(f"{k}={hashlib.sha256(v.encode()).hexdigest()[:8]}"
                       for k, v in sorted(files.items()))
            + f"|{next(_counter)}"
        )
        self.sha = hashlib.sha256(payload.encode()).hexdigest()[:12]

    def ancestors(self) -> List["Commit"]:
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def __repr__(self):
        return f"Commit({self.sha}, {self.message!r})"


class GitRepository:
    """A repository: branches → head commits."""

    def __init__(self, name: str, default_branch: str = "main"):
        self.name = name
        self.default_branch = default_branch
        root = Commit("initial commit", "system", {}, parent=None)
        self.branches: Dict[str, Commit] = {default_branch: root}
        self.commits: Dict[str, Commit] = {root.sha: root}

    # ------------------------------------------------------------------
    def head(self, branch: Optional[str] = None) -> Commit:
        branch = branch or self.default_branch
        try:
            return self.branches[branch]
        except KeyError:
            raise GitError(
                f"{self.name}: no branch {branch!r}; have {sorted(self.branches)}"
            ) from None

    def create_branch(self, name: str, from_branch: Optional[str] = None) -> None:
        if name in self.branches:
            raise GitError(f"{self.name}: branch {name!r} already exists")
        self.branches[name] = self.head(from_branch)

    def commit(self, branch: str, message: str, author: str,
               files: Dict[str, str]) -> Commit:
        """Apply file changes on top of the branch head."""
        parent = self.head(branch)
        merged_files = dict(parent.files)
        merged_files.update(files)
        commit = Commit(message, author, merged_files, parent=parent)
        self.commits[commit.sha] = commit
        self.branches[branch] = commit
        return commit

    def files_at(self, branch: str) -> Dict[str, str]:
        return dict(self.head(branch).files)

    def log(self, branch: Optional[str] = None) -> List[Commit]:
        head = self.head(branch)
        return [head] + head.ancestors()

    # ------------------------------------------------------------------
    def fork(self, new_name: str) -> "GitRepository":
        """A fork shares commit objects but owns its branch table."""
        fork = GitRepository.__new__(GitRepository)
        fork.name = new_name
        fork.default_branch = self.default_branch
        fork.branches = dict(self.branches)
        fork.commits = dict(self.commits)
        return fork

    def fetch(self, other: "GitRepository", branch: str,
              as_branch: Optional[str] = None) -> Commit:
        """Copy another repository's branch head (and history) here."""
        head = other.head(branch)
        for c in [head] + head.ancestors():
            self.commits.setdefault(c.sha, c)
        self.branches[as_branch or branch] = head
        return head

    def is_ancestor(self, maybe_ancestor: Commit, of: Commit) -> bool:
        return maybe_ancestor is of or maybe_ancestor in of.ancestors()

    def __repr__(self):
        return f"GitRepository({self.name!r}, branches={sorted(self.branches)})"
