"""The microarchitecture database — a curated slice of archspec's
``microarchitectures.json`` covering every CPU the paper's systems use:

* **cts1**: Intel Xeon (broadwell/cascadelake lineage);
* **ats2**: IBM Power9;
* **ats4 EAS**: AMD Trento (zen3);
* cloud instances: zen2/zen3, icelake, graviton (neoverse), a64fx.

The DAG edges encode binary compatibility; compiler entries encode the
minimum compiler version and the flags that optimize for each target.
"""

from __future__ import annotations

from typing import Dict, List

from .microarch import Microarchitecture, UnsupportedMicroarchitecture

__all__ = ["TARGETS", "get_target", "compatible_targets", "UnsupportedMicroarchitecture"]


def _gcc(versions: str, flags: str, name: str = "") -> Dict[str, str]:
    d = {"versions": versions, "flags": flags}
    if name:
        d["name"] = name
    return d


def _build_database() -> Dict[str, Microarchitecture]:
    db: Dict[str, Microarchitecture] = {}

    def add(name, parents=(), vendor="generic", features=(), generation=0, compilers=None):
        db[name] = Microarchitecture(
            name,
            parents=tuple(db[p] for p in parents),
            vendor=vendor,
            features=features,
            generation=generation,
            compilers=compilers or {},
        )

    # ----- x86_64 family ---------------------------------------------------
    add(
        "x86_64",
        vendor="generic",
        features=["mmx", "sse", "sse2"],
        compilers={"gcc": [_gcc(":", "-march={name} -mtune=generic")],
                   "clang": [_gcc(":", "-march={name} -mtune=generic")],
                   "intel": [_gcc(":", "-xSSE2")]},
    )
    add(
        "x86_64_v2", ["x86_64"],
        features=["ssse3", "sse4_1", "sse4_2", "popcnt"],
        compilers={"gcc": [_gcc("11:", "-march=x86-64-v2 -mtune=generic")]},
    )
    add(
        "x86_64_v3", ["x86_64_v2"],
        features=["avx", "avx2", "bmi1", "bmi2", "fma"],
        compilers={"gcc": [_gcc("11:", "-march=x86-64-v3 -mtune=generic")]},
    )
    add(
        "x86_64_v4", ["x86_64_v3"],
        features=["avx512f", "avx512bw", "avx512cd", "avx512dq", "avx512vl"],
        compilers={"gcc": [_gcc("11:", "-march=x86-64-v4 -mtune=generic")]},
    )
    add(
        "haswell", ["x86_64_v3"], vendor="GenuineIntel",
        features=["movbe", "rdrand"],
        compilers={"gcc": [_gcc("4.8:", "-march={name} -mtune={name}")]},
    )
    add(
        "broadwell", ["haswell"], vendor="GenuineIntel",
        features=["adx", "rdseed"],
        compilers={"gcc": [_gcc("4.9:", "-march={name} -mtune={name}")]},
    )
    add(
        "skylake_avx512", ["broadwell", "x86_64_v4"], vendor="GenuineIntel",
        features=["clwb"],
        compilers={"gcc": [_gcc("6:", "-march=skylake-avx512 -mtune=skylake-avx512")]},
    )
    add(
        "cascadelake", ["skylake_avx512"], vendor="GenuineIntel",
        features=["avx512_vnni"],
        compilers={"gcc": [_gcc("9:", "-march={name} -mtune={name}")]},
    )
    add(
        "icelake", ["cascadelake"], vendor="GenuineIntel",
        features=["avx512_vbmi2", "gfni", "vaes"],
        compilers={"gcc": [_gcc("8:", "-march=icelake-server -mtune=icelake-server")]},
    )
    add(
        "zen2", ["x86_64_v3"], vendor="AuthenticAMD", generation=2,
        features=["clzero", "rdpid", "wbnoinvd"],
        compilers={"gcc": [_gcc("9:", "-march=znver2 -mtune=znver2")]},
    )
    add(
        "zen3", ["zen2"], vendor="AuthenticAMD", generation=3,
        features=["vaes", "vpclmulqdq", "pku"],
        compilers={
            "gcc": [
                _gcc("10.3:", "-march=znver3 -mtune=znver3"),
                _gcc("9:10.2", "-march=znver2 -mtune=znver2"),
            ],
            "clang": [_gcc("12:", "-march=znver3 -mtune=znver3")],
        },
    )
    # AMD Trento (ats4 EAS host CPU) is a zen3 derivative for HPC sockets.
    add(
        "zen3_trento", ["zen3"], vendor="AuthenticAMD", generation=3,
        features=["xgmi"],
        compilers={"gcc": [_gcc("10.3:", "-march=znver3 -mtune=znver3")]},
    )

    # ----- ppc64le family -----------------------------------------------------
    add(
        "ppc64le", vendor="generic", generation=8,
        compilers={"gcc": [_gcc(":", "-mcpu=power8 -mtune=power8")]},
    )
    add(
        "power8le", ["ppc64le"], vendor="IBM", generation=8,
        features=["altivec", "vsx"],
        compilers={"gcc": [_gcc("4.9:", "-mcpu=power8 -mtune=power8")]},
    )
    add(
        "power9le", ["power8le"], vendor="IBM", generation=9,
        features=["darn", "ieee128"],
        compilers={"gcc": [_gcc("6:", "-mcpu=power9 -mtune=power9")]},
    )

    # ----- aarch64 family -------------------------------------------------------
    add(
        "aarch64", vendor="generic",
        features=["fp", "asimd"],
        compilers={"gcc": [_gcc(":", "-march=armv8-a -mtune=generic")]},
    )
    add(
        "neoverse_n1", ["aarch64"], vendor="ARM",
        features=["atomics", "fphp", "asimdhp", "dotprod"],
        compilers={"gcc": [_gcc("9:", "-mcpu=neoverse-n1")]},
    )
    add(
        "neoverse_v1", ["neoverse_n1"], vendor="ARM",
        features=["sve", "bf16", "i8mm"],
        compilers={"gcc": [_gcc("10.2:", "-mcpu=neoverse-v1")]},
    )
    add(
        "a64fx", ["aarch64"], vendor="Fujitsu",
        features=["sve", "fcma", "fphp"],
        compilers={"gcc": [_gcc("11:", "-mcpu=a64fx"), _gcc("8:10", "-march=armv8.2-a+sve")]},
    )

    return db


TARGETS: Dict[str, Microarchitecture] = _build_database()


def get_target(name: str) -> Microarchitecture:
    try:
        return TARGETS[name]
    except KeyError:
        raise UnsupportedMicroarchitecture(
            f"unknown microarchitecture {name!r}; known: {sorted(TARGETS)}"
        ) from None


def compatible_targets(name: str) -> List[Microarchitecture]:
    """All targets whose binaries run on ``name`` (self + ancestors),
    ordered most-specific first — archspec's compatibility query."""
    uarch = get_target(name)
    return [uarch] + uarch.ancestors
