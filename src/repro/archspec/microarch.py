"""Microarchitecture model — mini-archspec (paper §3.1.3, reference [7]).

Archspec "detects, labels, and reasons about" CPU microarchitectures.  The
core abstraction is a :class:`Microarchitecture`: a named vertex in a
compatibility DAG whose ancestors are the architectures it can execute code
for.  ``zen3 >= x86_64_v3`` means a zen3 core runs x86_64_v3 binaries.

Spack uses this in two ways the paper calls out:

1. tailoring build recipes to the target (optimization flags), and
2. deciding which binaries (or alternate sources) are compatible with a host.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Microarchitecture", "UnsupportedMicroarchitecture"]


class UnsupportedMicroarchitecture(ValueError):
    pass


class Microarchitecture:
    """A named microarchitecture in the compatibility DAG.

    Comparison operators express the *can execute* partial order:
    ``a >= b`` means binaries targeted at ``b`` run on ``a``.
    """

    def __init__(
        self,
        name: str,
        parents: Sequence["Microarchitecture"] = (),
        vendor: str = "generic",
        features: Iterable[str] = (),
        generation: int = 0,
        compilers: Optional[Dict[str, List[Dict[str, str]]]] = None,
    ):
        self.name = name
        self.parents = tuple(parents)
        self.vendor = vendor
        #: CPU features this uarch adds *in addition to* all ancestors'.
        self.own_features = frozenset(features)
        self.generation = generation
        #: compiler → [{versions, flags, [name]}] optimization flag entries
        self.compilers = compilers or {}

    # -- DAG queries -------------------------------------------------------
    @property
    def ancestors(self) -> List["Microarchitecture"]:
        """All transitive ancestors, deduplicated, closest first."""
        seen: Dict[str, Microarchitecture] = {}
        frontier = list(self.parents)
        while frontier:
            node = frontier.pop(0)
            if node.name in seen:
                continue
            seen[node.name] = node
            frontier.extend(node.parents)
        return list(seen.values())

    @property
    def family(self) -> "Microarchitecture":
        """The root ISA family (x86_64, ppc64le, aarch64)."""
        roots = [a for a in [self] + self.ancestors if not a.parents]
        if len(roots) != 1:
            raise UnsupportedMicroarchitecture(
                f"{self.name} has ambiguous family: {[r.name for r in roots]}"
            )
        return roots[0]

    @property
    def features(self) -> frozenset:
        """All features, including every ancestor's."""
        out = set(self.own_features)
        for a in self.ancestors:
            out |= a.own_features
        return frozenset(out)

    # -- partial order ------------------------------------------------------
    def __eq__(self, other):
        if isinstance(other, str):
            return self.name == other
        return isinstance(other, Microarchitecture) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __ge__(self, other: "Microarchitecture") -> bool:
        """self can execute code compiled for other."""
        return other == self or other in self.ancestors

    def __le__(self, other: "Microarchitecture") -> bool:
        return other >= self

    def __gt__(self, other: "Microarchitecture") -> bool:
        return self >= other and self != other

    def __lt__(self, other: "Microarchitecture") -> bool:
        return self <= other and self != other

    def __contains__(self, feature: str) -> bool:
        return feature in self.features

    # -- compiler flags -------------------------------------------------------
    def optimization_flags(self, compiler: str, version: str) -> str:
        """Flags that optimize for this uarch with the given compiler.

        Raises :class:`UnsupportedMicroarchitecture` if the compiler is too
        old to know this target (mirrors archspec's behaviour).
        """
        from repro.spack.version import Version, ver

        entries = self.compilers.get(compiler)
        if entries is None:
            # Fall back to the nearest ancestor with flags for the compiler.
            for ancestor in self.ancestors:
                if compiler in ancestor.compilers:
                    return ancestor.optimization_flags(compiler, version)
            raise UnsupportedMicroarchitecture(
                f"no {compiler} flag entry for {self.name} or its ancestors"
            )
        v = Version(version)
        for entry in entries:
            constraint = ver(entry.get("versions", ":"))
            if constraint.includes(v):
                name = entry.get("name", self.name)
                return entry["flags"].format(name=name)
        raise UnsupportedMicroarchitecture(
            f"{compiler}@{version} cannot target {self.name}"
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "vendor": self.vendor,
            "parents": [p.name for p in self.parents],
            "features": sorted(self.own_features),
            "generation": self.generation,
        }

    def __str__(self):
        return self.name

    def __repr__(self):
        return f"Microarchitecture({self.name!r})"
