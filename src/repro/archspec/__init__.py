"""Mini-archspec: microarchitecture detection, labeling and reasoning
(paper §3.1.3, reference [7])."""

from .database import TARGETS, compatible_targets, get_target
from .detect import detect_from_cpuinfo, detect_from_features, detect_host
from .microarch import Microarchitecture, UnsupportedMicroarchitecture

__all__ = [
    "Microarchitecture",
    "TARGETS",
    "UnsupportedMicroarchitecture",
    "compatible_targets",
    "detect_from_cpuinfo",
    "detect_from_features",
    "detect_host",
    "get_target",
]
