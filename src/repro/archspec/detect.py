"""Host microarchitecture detection.

Archspec's second role in the paper (§3.1.3): "determine the system
architecture".  Real archspec reads ``/proc/cpuinfo``; we support that *and*
detection from a simulated :class:`~repro.systems.descriptor.SystemDescriptor`
(whose CPUs are cts1/ats2/ats4-class machines we cannot run on).

Detection strategy mirrors archspec: gather the host's vendor and feature
flags, then pick the most specific database entry whose features are all
present.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional

from .database import TARGETS, get_target
from .microarch import Microarchitecture

__all__ = ["detect_host", "detect_from_features", "detect_from_cpuinfo"]


def detect_from_features(
    vendor: str, features: Iterable[str], family: str = "x86_64"
) -> Microarchitecture:
    """Best (most specific) target whose required features are all present."""
    feature_set = set(features)
    family_root = get_target(family)
    candidates = []
    for uarch in TARGETS.values():
        if uarch.family != family_root:
            continue
        if uarch.vendor not in ("generic", vendor):
            continue
        if uarch.features <= feature_set:
            candidates.append(uarch)
    if not candidates:
        return family_root
    # Most specific = most ancestors, tie-broken by newest generation and
    # non-generic vendor.
    return max(
        candidates,
        key=lambda u: (len(u.ancestors), u.generation, u.vendor != "generic"),
    )


def detect_from_cpuinfo(text: Optional[str] = None) -> Microarchitecture:
    """Detect from /proc/cpuinfo content (reads the real file when None)."""
    if text is None:
        path = Path("/proc/cpuinfo")
        if not path.exists():
            return get_target("x86_64")
        text = path.read_text()

    vendor = "generic"
    features: set = set()
    m = re.search(r"^vendor_id\s*:\s*(\S+)", text, re.MULTILINE)
    if m:
        vendor = m.group(1)
    m = re.search(r"^flags\s*:\s*(.+)$", text, re.MULTILINE)
    if m:
        features = set(m.group(1).split())
        return detect_from_features(vendor, features, family="x86_64")
    # ppc64le cpuinfo has a "cpu:" line instead of flags
    m = re.search(r"^cpu\s*:\s*POWER(\d+)", text, re.MULTILINE)
    if m:
        return get_target(f"power{m.group(1)}le")
    # aarch64 has "Features"
    m = re.search(r"^Features\s*:\s*(.+)$", text, re.MULTILINE)
    if m:
        return detect_from_features("ARM", set(m.group(1).split()), family="aarch64")
    return get_target("x86_64")


def detect_host() -> Microarchitecture:
    """Detect the actual host this library is running on."""
    return detect_from_cpuinfo(None)
