"""Results dashboard (§5): "a quick glance of the multi-dimensional
performance data for our benchmarks".

A text dashboard over the metrics database / analysis results: per
(benchmark, system) cells of a chosen FOM, scaling series, and an ASCII
scatter-plus-model plot used by the Figure 14 bench to show measurements
(dots) against the Extra-P model (line), like the paper's figure.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["render_grid", "render_series", "ascii_plot", "render_report"]


def render_grid(
    rows: Sequence[str],
    cols: Sequence[str],
    cells: Mapping[Tuple[str, str], Any],
    title: str = "",
    missing: str = "—",
) -> str:
    """A rows × cols table, e.g. benchmark × system FOM values."""
    col_width = max([len(str(c)) for c in cols] + [10]) + 2
    row_width = max([len(str(r)) for r in rows] + [10]) + 2
    lines = []
    if title:
        lines.append(title)
    header = " " * row_width + "".join(f"{str(c):>{col_width}}" for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        cells_txt = []
        for c in cols:
            v = cells.get((r, c), missing)
            if isinstance(v, float):
                v = f"{v:.4g}"
            cells_txt.append(f"{str(v):>{col_width}}")
        lines.append(f"{str(r):<{row_width}}" + "".join(cells_txt))
    return "\n".join(lines)


def render_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    model: Optional[Sequence[float]] = None,
) -> str:
    """A two(/three)-column numeric series table."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    header = f"{x_label:>12} {y_label:>16}"
    if model is not None:
        if len(model) != len(xs):
            raise ValueError("model series must match xs length")
        header += f" {'model':>16}"
    lines = [header]
    for idx, (x, y) in enumerate(zip(xs, ys)):
        line = f"{x:>12g} {y:>16.6g}"
        if model is not None:
            line += f" {model[idx]:>16.6g}"
        lines.append(line)
    return "\n".join(lines)


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    model_ys: Optional[Sequence[float]] = None,
    width: int = 64,
    height: int = 18,
    point_char: str = "o",
    line_char: str = "*",
) -> str:
    """Scatter ('o' = measurements) + optional model curve ('*') — the
    textual analogue of Figure 14's red dots and blue line."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0:
        raise ValueError("nothing to plot")
    all_y = ys if model_ys is None else np.concatenate([ys, np.asarray(model_ys)])
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(all_y.min()), float(all_y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str) -> None:
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = ch

    if model_ys is not None:
        # dense-ish model line across the x range
        for x, y in zip(xs, np.asarray(model_ys, dtype=float)):
            put(x, y, line_char)
    for x, y in zip(xs, ys):
        put(x, y, point_char)

    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"x: [{x_min:g}, {x_max:g}]   y: [{y_min:g}, {y_max:g}]   "
                 f"{point_char}=measured" + ("" if model_ys is None else f" {line_char}=model"))
    return "\n".join(lines)


def render_report(db, title: str = "Benchpark results dashboard") -> str:
    """A full markdown dashboard over a metrics database (§5's interactive
    dashboard, in its textual form): per-FOM benchmark × system grids,
    usage metrics, and record counts.
    """
    systems = sorted({r.system for r in db.query()})
    benchmarks = sorted({r.benchmark for r in db.query()})
    fom_names = sorted({r.fom_name for r in db.query()})
    lines = [f"# {title}", "",
             f"{len(db)} records | benchmarks: {', '.join(benchmarks)} | "
             f"systems: {', '.join(systems)}", ""]
    for fom in fom_names:
        cells: Dict[Tuple[str, str], Any] = {}
        units = ""
        for b in benchmarks:
            for s in systems:
                recs = db.query(benchmark=b, system=s, fom_name=fom)
                numeric = []
                for r in recs:
                    try:
                        numeric.append(float(r.value))
                    except (TypeError, ValueError):
                        continue
                if numeric:
                    cells[(b, s)] = float(np.mean(numeric))
                    units = recs[0].units
        if not cells:
            continue
        rows = sorted({b for b, _ in cells})
        unit_suffix = f" [{units}]" if units else ""
        lines.append(f"## {fom}{unit_suffix} (mean)")
        lines.append("")
        lines.append(render_grid(rows, systems, cells))
        lines.append("")
    usage = db.benchmark_usage()
    lines.append("## benchmark usage (records per benchmark)")
    lines.append("")
    for name, count in usage.items():
        lines.append(f"- {name}: {count}")
    return "\n".join(lines)
