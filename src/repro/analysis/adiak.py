"""Mini-Adiak: run metadata collection (§5, [20]).

"We will use Adiak to collect metadata related to the build settings and
execution contexts, enabling filtering and sorting of collected profiles."
Adiak's model is a process-global name → value store populated by the
application and harvested by Caliper at flush time; Thicket later filters
and groups profiles by these keys.
"""

from __future__ import annotations

import getpass
import platform
from typing import Any, Dict

__all__ = ["value", "collected", "clear", "collect_default"]

_store: Dict[str, Any] = {}


def value(name: str, val: Any) -> None:
    """Register one metadata value (``adiak::value``)."""
    if not name:
        raise ValueError("metadata name must be non-empty")
    _store[name] = val


def collected() -> Dict[str, Any]:
    """Snapshot of all registered metadata."""
    return dict(_store)


def clear() -> None:
    _store.clear()


def collect_default() -> Dict[str, Any]:
    """Adiak's 'collect all' convenience: host/user/platform facts plus
    whatever the application registered."""
    value("hostname", platform.node())
    value("python", platform.python_version())
    try:
        value("user", getpass.getuser())
    except (KeyError, OSError):  # no passwd entry in some containers
        value("user", "unknown")
    return collected()
