"""Mini-Extra-P: automated empirical performance modeling (§5, [6]).

Extra-P fits functions from the **Performance Model Normal Form** (PMNF)

    f(p) = c₀ + Σₖ cₖ · p^{iₖ} · log₂(p)^{jₖ}

to measurements of a metric at several process counts, and reports the best
model — e.g. the paper's Figure 14, where MPI_Bcast total time on CTS is
modeled as ``-0.6355857931 + 0.0466021770 * p^(1)``.

We implement the standard single-term search: for every exponent pair
(i, j) from Extra-P's default search space, least-squares fit
``c0 + c1·p^i·log2(p)^j`` and keep the hypothesis with the smallest
cross-validated SMAPE (falling back to adjusted R² for ties), exactly the
model-selection strategy of Calotoiu et al.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.perf import ContentStore, fingerprint

__all__ = ["Measurement", "MultiTermModel", "PerformanceModel",
           "DEFAULT_EXPONENTS", "fit_model", "fit_multi_term_model",
           "model_cache", "clear_model_cache"]

#: Extra-P's default search space.
DEFAULT_EXPONENTS: Tuple[Tuple[float, int], ...] = tuple(
    (i, j)
    for i in (0.0, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.75, 1.0, 1.25, 4.0 / 3.0,
              1.5, 2.0, 3.0)
    for j in (0, 1, 2)
    if not (i == 0.0 and j == 0)
)


@dataclass(frozen=True)
class Measurement:
    """One (process count, metric value) observation; repeats get averaged
    upstream (Extra-P uses the mean by default — Fig 14's 'Total time_mean')."""

    p: float
    value: float


@dataclass
class PerformanceModel:
    """A fitted single-term PMNF model  c0 + c1 · p^i · log2(p)^j."""

    c0: float
    c1: float
    i: float
    j: int
    smape: float = 0.0
    r_squared: float = 0.0
    measurements: List[Measurement] = field(default_factory=list)

    def predict(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=float)
        return self.c0 + self.c1 * self._term(p)

    def _term(self, p: np.ndarray) -> np.ndarray:
        term = np.power(p, self.i)
        if self.j:
            term = term * np.power(np.log2(np.maximum(p, 1.0)), self.j)
        return term

    @property
    def is_constant(self) -> bool:
        return self.c1 == 0.0

    def term_str(self) -> str:
        if self.is_constant:
            return ""
        parts = [f"p^({self._fmt_exp(self.i)})"]
        if self.j:
            parts.append(f"log2(p)^({self.j})")
        return " * ".join(parts)

    @staticmethod
    def _fmt_exp(x: float) -> str:
        return str(int(x)) if float(x).is_integer() else f"{x:g}"

    def __str__(self) -> str:
        """Figure 14 format: ``-0.6355… + 0.0466… * p^(1)``."""
        if self.is_constant:
            return f"{self.c0}"
        return f"{self.c0} + {self.c1} * {self.term_str()}"


def _smape(actual: np.ndarray, predicted: np.ndarray) -> float:
    denom = np.abs(actual) + np.abs(predicted)
    mask = denom > 0
    if not mask.any():
        return 0.0
    return float(
        np.mean(2.0 * np.abs(predicted[mask] - actual[mask]) / denom[mask]) * 100.0
    )


def _term_matrix(ps: np.ndarray,
                 exponents: Sequence[Tuple[float, int]]) -> np.ndarray:
    """All candidate term columns ``p^i · log2(p)^j`` in one vectorized
    pass — one (n_points, n_hypotheses) matrix that every hypothesis slices
    a column out of, instead of rebuilding its column per fit.  Elementwise
    the operations match the old per-candidate construction exactly
    (``log^0 == 1.0`` multiplies out bit-identically), so fitted models are
    unchanged."""
    i_arr = np.array([i for i, _ in exponents], dtype=float)
    j_arr = np.array([j for _, j in exponents], dtype=float)
    cols = np.power(ps[:, None], i_arr[None, :])
    logs = np.log2(np.maximum(ps, 1.0))
    return cols * np.power(logs[:, None], j_arr[None, :])


def _fit_column(ps: np.ndarray, ys: np.ndarray, term: np.ndarray
                ) -> Optional[Tuple[float, float]]:
    design = np.column_stack([np.ones_like(ps), term])
    try:
        coeffs, *_ = np.linalg.lstsq(design, ys, rcond=None)
    except np.linalg.LinAlgError:
        return None
    c0, c1 = float(coeffs[0]), float(coeffs[1])
    if not (math.isfinite(c0) and math.isfinite(c1)):
        return None
    return c0, c1


#: memo of fitted models keyed by measurement fingerprint — continuous
#: analysis refits the same series many times (dashboard render, diagnosis
#: pass, CI summary) and between epochs that didn't extend the series
_MODEL_CACHE = ContentStore("extrap-models")


def model_cache() -> ContentStore:
    """The process-global fit memo (hit/miss accounting for benches)."""
    return _MODEL_CACHE


def clear_model_cache() -> None:
    _MODEL_CACHE.clear()


def _cache_key(kind: str, measurements, exponents, extra=0) -> str:
    return fingerprint([
        kind,
        [[m.p, m.value] for m in measurements],
        [[i, j] for i, j in exponents],
        extra,
    ])


def _as_measurements(
    measurements: Sequence[Measurement] | Sequence[Tuple[float, float]],
) -> List[Measurement]:
    return [
        m if isinstance(m, Measurement) else Measurement(float(m[0]), float(m[1]))
        for m in measurements
    ]


def _copy_single(model: PerformanceModel) -> PerformanceModel:
    """Defensive copy so callers mutating a returned model (tests do) never
    poison the cache entry."""
    return replace(model, measurements=list(model.measurements))


def _copy_multi(model: "MultiTermModel") -> "MultiTermModel":
    return replace(model, terms=list(model.terms),
                   measurements=list(model.measurements))


def fit_model(
    measurements: Sequence[Measurement] | Sequence[Tuple[float, float]],
    exponents: Sequence[Tuple[float, int]] = DEFAULT_EXPONENTS,
) -> PerformanceModel:
    """Fit the best single-term PMNF model to the measurements.

    Wants at least 3 distinct process counts (Extra-P itself wants 5 for
    trustworthy models); degenerate inputs — a single point, or repeated
    measurements of one process count — yield the constant model rather
    than an error, so continuous pipelines fitting whatever history exists
    never fall over on a short series.

    Fits are memoized by measurement fingerprint (pure function of the
    inputs), so re-fitting an unchanged series is a cache lookup.
    """
    ms = _as_measurements(measurements)
    key = _cache_key("single", ms, exponents)
    cached = _MODEL_CACHE.get(key)
    if cached is not None:
        return _copy_single(cached)
    model = _fit(ms, exponents)
    _MODEL_CACHE.put(key, model)
    return _copy_single(model)


def fit_multi_term_model(
    measurements: Sequence[Measurement] | Sequence[Tuple[float, float]],
    max_terms: int = 2,
    exponents: Sequence[Tuple[float, int]] = DEFAULT_EXPONENTS,
) -> "MultiTermModel":
    """Full PMNF search with up to ``max_terms`` ∈ {1, 2} terms (Extra-P's
    n > 1 case): exhaustive joint least squares over exponent pairs, with an
    occam rule — the two-term hypothesis wins only when it improves SMAPE by
    a clear margin, which is how Extra-P avoids overfitting small
    measurement sets.  Memoized like :func:`fit_model`."""
    if max_terms < 1:
        raise ValueError(f"max_terms must be >= 1, got {max_terms}")
    ms = _as_measurements(measurements)
    key = _cache_key("multi", ms, exponents, max_terms)
    cached = _MODEL_CACHE.get(key)
    if cached is not None:
        return _copy_multi(cached)
    model = _fit_multi(ms, max_terms, exponents)
    _MODEL_CACHE.put(key, model)
    return _copy_multi(model)


def _fit_multi(
    measurements: List[Measurement],
    max_terms: int,
    exponents: Sequence[Tuple[float, int]],
) -> "MultiTermModel":
    base = _fit(measurements, exponents)
    terms = [(base.c1, base.i, base.j)] if not base.is_constant else []
    best = MultiTermModel(c0=base.c0, terms=terms,
                          smape=base.smape, r_squared=base.r_squared,
                          measurements=base.measurements)
    if max_terms == 1 or base.smape < 1e-9:
        return best

    ps = np.array([m.p for m in base.measurements])
    ys = np.array([m.value for m in base.measurements])
    if len(ps) < 4:  # need at least one dof beyond the 3 coefficients
        return best
    ss_tot = float(np.sum((ys - np.mean(ys)) ** 2))

    exps = list(exponents)
    T = _term_matrix(ps, exps)
    ones = np.ones_like(ps)
    for a in range(len(exps)):
        for b in range(a + 1, len(exps)):
            ia, ja = exps[a]
            ib, jb = exps[b]
            design = np.column_stack([ones, T[:, a], T[:, b]])
            try:
                coeffs, *_ = np.linalg.lstsq(design, ys, rcond=None)
            except np.linalg.LinAlgError:
                continue
            if not np.all(np.isfinite(coeffs)):
                continue
            candidate = MultiTermModel(
                c0=float(coeffs[0]),
                terms=[(float(coeffs[1]), ia, ja),
                       (float(coeffs[2]), ib, jb)],
                measurements=base.measurements,
            )
            pred = candidate.predict(ps)
            candidate.smape = _smape(ys, pred)
            candidate.r_squared = (
                1.0 - float(np.sum((ys - pred) ** 2)) / ss_tot
                if ss_tot > 0 else 1.0
            )
            # occam: require a clear improvement over fewer terms
            if candidate.smape < best.smape * 0.7 - 1e-12:
                best = candidate
    return best


@dataclass
class MultiTermModel:
    """c0 + Σk ck · p^ik · log2(p)^jk."""

    c0: float
    terms: List[Tuple[float, float, int]] = field(default_factory=list)
    smape: float = 0.0
    r_squared: float = 0.0
    measurements: List[Measurement] = field(default_factory=list)

    def predict(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=float)
        out = np.full_like(p, self.c0, dtype=float)
        for c, i, j in self.terms:
            term = np.power(p, i)
            if j:
                term = term * np.power(np.log2(np.maximum(p, 1.0)), j)
            out = out + c * term
        return out

    def __str__(self):
        parts = [f"{self.c0}"]
        for c, i, j in self.terms:
            t = f"p^({i:g})"
            if j:
                t += f" * log2(p)^({j})"
            parts.append(f"{c} * {t}")
        return " + ".join(parts)


def _fit(
    measurements: Sequence[Measurement] | Sequence[Tuple[float, float]],
    exponents: Sequence[Tuple[float, int]] = DEFAULT_EXPONENTS,
) -> PerformanceModel:
    ms = _as_measurements(measurements)
    if not ms:
        raise ValueError("need at least one measurement")
    if any(m.p <= 0 for m in ms):
        raise ValueError("process counts must be positive")
    # Average repeated measurements per p (Extra-P's mean aggregation).
    by_p: dict = {}
    for m in ms:
        by_p.setdefault(m.p, []).append(m.value)
    ps = np.array(sorted(by_p), dtype=float)
    ys = np.array([np.mean(by_p[p]) for p in ps])

    mean_y = float(np.mean(ys))
    ss_tot = float(np.sum((ys - mean_y) ** 2))

    # Constant-model baseline.  Degenerate series — a single measurement
    # point, or repeats of one process count collapsing to one (the design
    # matrix would be rank-deficient) — resolve to it directly rather than
    # raising: the constant is the only defensible model of such data.
    best = PerformanceModel(
        c0=mean_y, c1=0.0, i=0.0, j=0,
        smape=_smape(ys, np.full_like(ys, mean_y)),
        r_squared=0.0,
        measurements=[Measurement(float(p), float(v)) for p, v in zip(ps, ys)],
    )
    if len(ps) < 3:
        return best

    exps = list(exponents)
    T = _term_matrix(ps, exps)
    for k, (i, j) in enumerate(exps):
        fitted = _fit_column(ps, ys, T[:, k])
        if fitted is None:
            continue
        c0, c1 = fitted
        model = PerformanceModel(c0=c0, c1=c1, i=i, j=j)
        pred = model.predict(ps)
        smape = _smape(ys, pred)
        ss_res = float(np.sum((ys - pred) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        model.smape = smape
        model.r_squared = r2
        model.measurements = best.measurements
        if smape < best.smape - 1e-12 or (
            abs(smape - best.smape) <= 1e-12 and r2 > best.r_squared
        ):
            best = model
    return best
