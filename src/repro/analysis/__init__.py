"""Analysis stack (paper §5): Caliper profiles, Adiak metadata, Thicket
ensembles, Extra-P scaling models, and the results dashboard."""

from . import adiak
from .caliper import CaliperSession, Profile, RegionNode, annotate, global_session, region
from .diagnosis import FOM_SUBSYSTEMS, FailureHypothesis, diagnose
from .dashboard import ascii_plot, render_grid, render_report, render_series
from .engine import (
    AnalysisEngine,
    FrameView,
    MetricsFrame,
    OnlineStats,
    SeriesState,
)
from .extrap import (
    DEFAULT_EXPONENTS,
    Measurement,
    MultiTermModel,
    PerformanceModel,
    clear_model_cache,
    fit_model,
    fit_multi_term_model,
    model_cache,
)
from .regression import RegressionDetector, RegressionEvent
from .scaling import ScalingPoint, classify_scaling, strong_scaling, weak_scaling
from .thicket import Ensemble, ThicketError

__all__ = [
    "AnalysisEngine",
    "CaliperSession",
    "FrameView",
    "MetricsFrame",
    "OnlineStats",
    "SeriesState",
    "clear_model_cache",
    "model_cache",
    "DEFAULT_EXPONENTS",
    "Ensemble",
    "FOM_SUBSYSTEMS",
    "FailureHypothesis",
    "Measurement",
    "MultiTermModel",
    "PerformanceModel",
    "Profile",
    "RegressionDetector",
    "RegressionEvent",
    "RegionNode",
    "ThicketError",
    "adiak",
    "annotate",
    "ascii_plot",
    "diagnose",
    "fit_model",
    "fit_multi_term_model",
    "global_session",
    "region",
    "render_grid",
    "render_report",
    "render_series",
    "ScalingPoint",
    "classify_scaling",
    "strong_scaling",
    "weak_scaling",
]
