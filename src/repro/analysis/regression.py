"""Performance-regression detection over continuous-benchmarking history.

The payoff of the paper's §1 motivation: once "benchmark results stay
up-to-date", the stored series can flag when "hardware failures" or stack
changes degrade performance.  :class:`RegressionDetector` compares a sliding
recent window of a metric series against the preceding baseline window and
raises :class:`RegressionEvent` records when the relative change crosses a
threshold in the bad direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RegressionEvent", "RegressionDetector"]


@dataclass(frozen=True)
class RegressionEvent:
    """One detected regression."""

    metric: str
    epoch: float  # first epoch of the degraded window
    baseline: float
    observed: float
    #: observed/baseline; < 1 is a drop in the metric's raw value
    ratio: float

    @property
    def percent_change(self) -> float:
        return (self.ratio - 1.0) * 100.0

    def __str__(self):
        direction = "dropped" if self.ratio < 1 else "rose"
        return (f"{self.metric}: {direction} {abs(self.percent_change):.1f}% "
                f"at epoch {self.epoch:g} "
                f"(baseline {self.baseline:.4g} -> {self.observed:.4g})")


class RegressionDetector:
    """Sliding-window mean-shift detector.

    Parameters
    ----------
    threshold:
        minimum relative change (e.g. 0.10 = 10%) to report.
    window:
        number of samples in the recent window; the baseline is the mean of
        all earlier samples (at least ``window`` of them required).
    higher_is_better:
        True for throughput-style metrics (bandwidth, FOMs): a *drop* is a
        regression.  False for time/latency metrics: a *rise* is one.
    """

    def __init__(self, threshold: float = 0.10, window: int = 3,
                 higher_is_better: bool = True):
        if not (0.0 < threshold < 1.0):
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.threshold = threshold
        self.window = window
        self.higher_is_better = higher_is_better

    def detect(self, series: Sequence[Tuple[float, float]],
               metric: str = "metric") -> List[RegressionEvent]:
        """Scan an (epoch, value) series; returns one event per contiguous
        run of window positions whose mean shifted past the threshold in
        the bad direction, located at the run's most-deviant window."""
        pts = sorted(series)
        n = len(pts)
        if n < 2 * self.window:
            return []
        epochs = np.array([p[0] for p in pts], dtype=float)
        values = np.array([p[1] for p in pts], dtype=float)

        # Score every window position, then collapse each contiguous run of
        # bad positions to its most-deviant window — the first position of a
        # cliff mixes pre- and post-change samples, so reporting it directly
        # would misstate both the epoch and the magnitude.
        scored = []
        for i in range(self.window, n - self.window + 1):
            baseline = float(np.mean(values[:i]))
            if baseline == 0:
                continue
            observed = float(np.mean(values[i:i + self.window]))
            ratio = observed / baseline
            bad = (ratio < 1 - self.threshold) if self.higher_is_better \
                else (ratio > 1 + self.threshold)
            scored.append((i, baseline, observed, ratio, bad))

        events: List[RegressionEvent] = []
        run: List[tuple] = []

        def flush_run():
            if not run:
                return
            extreme = min(run, key=lambda s: s[3]) if self.higher_is_better \
                else max(run, key=lambda s: s[3])
            i, baseline, observed, ratio, _ = extreme
            events.append(RegressionEvent(
                metric=metric,
                epoch=float(epochs[i]),
                baseline=baseline,
                observed=observed,
                ratio=ratio,
            ))
            run.clear()

        for entry in scored:
            if entry[4]:
                run.append(entry)
            else:
                flush_run()
        flush_run()
        return events

    # -- incremental consumption ----------------------------------------
    def make_state(self, higher_is_better: Optional[bool] = None):
        """A :class:`~repro.analysis.engine.SeriesState` preconfigured with
        this detector's parameters — feed it raw (epoch, value) samples as
        they arrive and read events in O(new) per epoch, bit-identical to
        a batch :meth:`detect` over the same history."""
        from .engine.incremental import SeriesState

        return SeriesState(
            threshold=self.threshold,
            window=self.window,
            higher_is_better=(self.higher_is_better if higher_is_better is None
                              else higher_is_better),
        )

    def detect_incremental(self, state, new_samples, metric: str = "metric"
                           ) -> List[RegressionEvent]:
        """Absorb ``new_samples`` ((epoch, value) pairs) into ``state`` and
        return the current event list for the whole series seen so far."""
        state.extend(new_samples)
        return state.events(metric=metric)

    def detect_in_db(self, db, benchmark: str, system: str, fom_name: str,
                     epoch_key: str = "epoch",
                     exclude_flaky: bool = True) -> List[RegressionEvent]:
        """Run detection over a metrics-database series (manifest[epoch_key]
        is the time axis).  Multiple experiments per epoch are averaged.

        Samples from retried (flaky) runs are excluded by default: a FOM
        measured while the system was flapping is not evidence of a
        regression, only of the transient fault the resilience layer
        already retried.
        """
        raw = db.series(benchmark, system, fom_name, epoch_key,
                        exclude_flaky=exclude_flaky)
        by_epoch: dict = {}
        for epoch, value in raw:
            by_epoch.setdefault(epoch, []).append(value)
        series = [(e, float(np.mean(v))) for e, v in sorted(by_epoch.items())]
        return self.detect(series, metric=f"{benchmark}/{system}/{fom_name}")
