"""Mini-Thicket: exploratory data analysis over many profiles (§5, [5, 24]).

"Thicket composes performance data from multiple performance profiles
potentially generated at different scales, on different architectures, using
different versions of dependencies" — here, an :class:`Ensemble` of Caliper
:class:`~repro.analysis.caliper.Profile` objects with

* a metadata table (one row per profile, from Adiak),
* per-region metric access across the ensemble,
* filter / groupby over metadata (by system, by nprocs, …),
* statistics per region (mean/std/min/max) across grouped profiles, and
* a bridge to Extra-P: :meth:`Ensemble.model_scaling` fits a PMNF model of a
  region metric versus a metadata column — which is precisely how Figure 14
  was produced from MPI_Bcast measurements on CTS.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from .caliper import Profile
from .extrap import Measurement, PerformanceModel, fit_model

__all__ = ["Ensemble", "ThicketError"]


class ThicketError(ValueError):
    pass


class Ensemble:
    """A set of profiles composed for cross-run analysis."""

    def __init__(self, profiles: Sequence[Profile]):
        self.profiles: List[Profile] = list(profiles)
        if not self.profiles:
            raise ThicketError("ensemble needs at least one profile")

    @classmethod
    def from_profiles(cls, profiles: Sequence[Profile]) -> "Ensemble":
        return cls(profiles)

    # -- metadata table --------------------------------------------------
    def metadata_columns(self) -> List[str]:
        cols: set = set()
        for p in self.profiles:
            cols.update(p.metadata)
        return sorted(cols)

    def metadata_table(self) -> List[Dict[str, Any]]:
        return [dict(p.metadata) for p in self.profiles]

    # -- region metrics -----------------------------------------------------
    def region_names(self) -> List[str]:
        names: set = set()
        for p in self.profiles:
            names.update(p.regions())
        return sorted(names)

    def metric(self, region: str, metric: str = "inclusive") -> np.ndarray:
        """One value per profile for a region metric; NaN where the region
        is absent from that profile.  A region absent from *every* profile
        is an error naming the regions that do exist — a silent all-NaN
        vector just defers the confusion to whatever consumes it."""
        out = []
        found = False
        for p in self.profiles:
            node = p.regions().get(region)
            if node is None:
                out.append(np.nan)
            else:
                found = True
                out.append(getattr(node, metric))
        if not found:
            raise ThicketError(
                f"region {region!r} absent from all profiles; "
                f"available regions: {', '.join(self.region_names())}"
            )
        return np.array(out, dtype=float)

    # -- filter / groupby -------------------------------------------------------
    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Ensemble":
        kept = [p for p in self.profiles if predicate(p.metadata)]
        if not kept:
            raise ThicketError("filter removed every profile")
        return Ensemble(kept)

    def groupby(self, key: str) -> Dict[Any, "Ensemble"]:
        groups: Dict[Any, List[Profile]] = {}
        for p in self.profiles:
            if key not in p.metadata:
                raise ThicketError(f"profile missing metadata key {key!r}")
            groups.setdefault(p.metadata[key], []).append(p)
        return {k: Ensemble(v) for k, v in sorted(groups.items(), key=lambda kv: str(kv[0]))}

    # -- statistics -------------------------------------------------------------
    def stats(self, region: str, metric: str = "inclusive") -> Dict[str, float]:
        values = self.metric(region, metric)
        values = values[~np.isnan(values)]
        if values.size == 0:
            raise ThicketError(f"region {region!r} absent from all profiles")
        return {
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "min": float(np.min(values)),
            "max": float(np.max(values)),
            "count": int(values.size),
        }

    def _metric_matrix(self, metric: str = "inclusive"
                       ) -> tuple:
        """(regions, regions × profiles float matrix) built in a single
        pass over the profiles; NaN marks region-absent-from-profile."""
        regions = self.region_names()
        row_of = {r: k for k, r in enumerate(regions)}
        matrix = np.full((len(regions), len(self.profiles)), np.nan)
        for col, p in enumerate(self.profiles):
            for path, node in p.regions().items():
                matrix[row_of[path], col] = getattr(node, metric)
        return regions, matrix

    def stats_frame(self, metric: str = "inclusive") -> Dict[str, Dict[str, float]]:
        """Per-region statistics across the ensemble, computed as single
        numpy passes over the region × profile matrix instead of one
        metric() scan per region."""
        regions, matrix = self._metric_matrix(metric)
        if not regions:
            return {}
        counts = np.sum(~np.isnan(matrix), axis=1)
        means = np.nanmean(matrix, axis=1)
        stds = np.nanstd(matrix, axis=1)
        mins = np.nanmin(matrix, axis=1)
        maxs = np.nanmax(matrix, axis=1)
        return {
            r: {
                "mean": float(means[k]),
                "std": float(stds[k]),
                "min": float(mins[k]),
                "max": float(maxs[k]),
                "count": int(counts[k]),
            }
            for k, r in enumerate(regions)
        }

    # -- Extra-P bridge ------------------------------------------------------------
    def model_scaling(
        self,
        region: str,
        scale_key: str = "nprocs",
        metric: str = "inclusive",
    ) -> PerformanceModel:
        """Fit an Extra-P model of ``region``'s metric versus a numeric
        metadata column (e.g. nprocs) — the Figure 14 pipeline.  The fit is
        memoized by measurement fingerprint (see :mod:`repro.analysis.extrap`),
        so re-modeling an unchanged ensemble is a cache lookup."""
        xs: List[float] = []
        ys: List[float] = []
        for p in self.profiles:
            if scale_key not in p.metadata:
                raise ThicketError(f"profile missing metadata key {scale_key!r}")
            node = p.regions().get(region)
            if node is None:
                continue
            xs.append(float(p.metadata[scale_key]))
            ys.append(float(getattr(node, metric)))
        if not xs:
            raise ThicketError(
                f"region {region!r} absent from all profiles; "
                f"available regions: {', '.join(self.region_names())}"
            )
        return fit_model([Measurement(x, y) for x, y in zip(xs, ys)])

    # -- display ------------------------------------------------------------
    def tree(self, metric: str = "inclusive") -> str:
        """Thicket-style tree display: the union call tree with per-region
        mean/std of ``metric`` across the ensemble."""
        lines = [f"{'region':<40} {'mean':>12} {'std':>12} {'count':>6}"]

        def visit(node, depth: int) -> None:
            stats = self.stats(node.path, metric)
            label = "  " * depth + node.name
            lines.append(
                f"{label:<40} {stats['mean']:>12.6f} {stats['std']:>12.6f} "
                f"{stats['count']:>6}"
            )
            for child in node.children.values():
                visit(child, depth + 1)

        # Union structure: walk the first profile containing each root.
        seen_roots = set()
        for profile in self.profiles:
            for child in profile.root.children.values():
                if child.name not in seen_roots:
                    seen_roots.add(child.name)
                    visit(child, 0)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.profiles)
