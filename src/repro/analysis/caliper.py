"""Mini-Caliper: annotation-based performance introspection (§5, [2,3,19]).

The paper plans to "annotate the benchmarks with Caliper … configured to use
always-on profiling, enabling collection of performance profiles for each
run".  This module provides the same programming model:

* region annotations via context manager / decorator
  (``with region("solve"): ...``),
* a **context tree** of nested regions with inclusive/exclusive times and
  visit counts,
* a process-global session (Caliper's default channel) so library code can
  annotate without plumbing a profiler object through every call,
* structured :class:`Profile` output consumable by Thicket
  (:mod:`repro.analysis.thicket`).

Timings are wall-clock by default but can be driven from a simulated clock
(for profiles of SimMPI runs).
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional

__all__ = ["CaliperSession", "Profile", "RegionNode", "region", "annotate",
           "global_session"]


class RegionNode:
    """One node of the Caliper context tree."""

    def __init__(self, name: str, parent: Optional["RegionNode"] = None):
        self.name = name
        self.parent = parent
        self.children: Dict[str, "RegionNode"] = {}
        self.visits = 0
        self.inclusive = 0.0

    @property
    def path(self) -> str:
        parts = []
        node: Optional[RegionNode] = self
        while node is not None and node.name:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    @property
    def exclusive(self) -> float:
        return self.inclusive - sum(c.inclusive for c in self.children.values())

    def child(self, name: str) -> "RegionNode":
        if name not in self.children:
            self.children[name] = RegionNode(name, parent=self)
        return self.children[name]

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "visits": self.visits,
            "inclusive": self.inclusive,
            "exclusive": self.exclusive,
            "children": [c.to_dict() for c in self.children.values()],
        }


class Profile:
    """A finished profile: the context tree plus run metadata (Adiak)."""

    def __init__(self, root: RegionNode, metadata: Optional[Dict[str, Any]] = None):
        self.root = root
        self.metadata = dict(metadata or {})

    def regions(self) -> Dict[str, RegionNode]:
        """Flat path → node view (skips the artificial root)."""
        return {n.path: n for n in self.root.walk() if n.name}

    def total_time(self) -> float:
        return sum(c.inclusive for c in self.root.children.values())

    def runtime_report(self) -> str:
        """Caliper's classic runtime-report: indented tree with times."""
        lines = [f"{'Path':<40} {'Time (incl)':>12} {'Time (excl)':>12} {'Calls':>7}"]

        def emit(node: RegionNode, depth: int):
            label = "  " * depth + node.name
            lines.append(
                f"{label:<40} {node.inclusive:>12.6f} {node.exclusive:>12.6f} "
                f"{node.visits:>7}"
            )
            for child in node.children.values():
                emit(child, depth + 1)

        for child in self.root.children.values():
            emit(child, 0)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"metadata": dict(self.metadata), "tree": self.root.to_dict()}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Profile":
        def build(nd: Dict[str, Any], parent: Optional[RegionNode]) -> RegionNode:
            node = RegionNode(nd["name"], parent)
            node.visits = nd["visits"]
            node.inclusive = nd["inclusive"]
            for c in nd.get("children", []):
                node.children[c["name"]] = build(c, node)
            return node

        return cls(build(d["tree"], None), d.get("metadata"))


class CaliperSession:
    """An active measurement channel."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock or time.perf_counter
        self._root = RegionNode("")
        self._stack: List[RegionNode] = [self._root]
        self._starts: List[float] = []
        self._profiles: List[Profile] = []

    # -- annotation API --------------------------------------------------
    def begin(self, name: str) -> None:
        node = self._stack[-1].child(name)
        node.visits += 1
        self._stack.append(node)
        self._starts.append(self.clock())

    def end(self, name: str) -> None:
        if len(self._stack) <= 1:
            raise RuntimeError(f"cali end({name!r}) without matching begin")
        node = self._stack[-1]
        if node.name != name:
            raise RuntimeError(
                f"mismatched region end: expected {node.name!r}, got {name!r}"
            )
        node.inclusive += self.clock() - self._starts.pop()
        self._stack.pop()

    @contextmanager
    def region(self, name: str):
        self.begin(name)
        try:
            yield
        finally:
            self.end(name)

    def annotate(self, name: Optional[str] = None) -> Callable:
        """Decorator form: @session.annotate() or @session.annotate("x")."""

        def wrap(fn: Callable) -> Callable:
            label = name or fn.__name__

            @functools.wraps(fn)
            def inner(*args, **kwargs):
                with self.region(label):
                    return fn(*args, **kwargs)

            return inner

        return wrap

    # -- flush / always-on ---------------------------------------------------
    def flush(self, metadata: Optional[Dict[str, Any]] = None) -> Profile:
        """Finish the current tree into a Profile and reset (always-on mode
        flushes once per run)."""
        if len(self._stack) != 1:
            open_regions = [n.name for n in self._stack[1:]]
            raise RuntimeError(f"flush with open regions: {open_regions}")
        from .adiak import collected

        merged = dict(collected())
        merged.update(metadata or {})
        profile = Profile(self._root, merged)
        self._profiles.append(profile)
        self._root = RegionNode("")
        self._stack = [self._root]
        return profile

    def last_profile(self) -> Optional[Profile]:
        return self._profiles[-1] if self._profiles else None


_global: Optional[CaliperSession] = None


def global_session() -> CaliperSession:
    """Caliper's default channel."""
    global _global
    if _global is None:
        _global = CaliperSession()
    return _global


@contextmanager
def region(name: str):
    """Annotate a region on the global session (``cali.mark`` style)."""
    with global_session().region(name):
        yield


def annotate(name: Optional[str] = None) -> Callable:
    """Decorator on the global session."""
    return global_session().annotate(name)
