"""Scaling-study analysis: speedup, efficiency, and regime classification.

§6 contrasts "strong-scaling vs. weak-scaling applications"; a continuous-
benchmarking repository accumulates exactly the series these studies need.
Given (resource count, time) or (resource count, throughput) measurements:

* :func:`strong_scaling` — fixed total problem: speedup S(p) = t(p₀)/t(p),
  efficiency E(p) = S(p)·p₀/p;
* :func:`weak_scaling` — fixed per-resource problem: efficiency
  E(p) = t(p₀)/t(p) (ideal = flat);
* :func:`classify_scaling` — labels a strong-scaling series by where its
  efficiency falls off (the "scaling limit"), using a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling", "classify_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    p: float
    time: float
    speedup: float
    efficiency: float


def _validated(series: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    pts = sorted(series)
    if len(pts) < 2:
        raise ValueError("scaling analysis needs at least 2 points")
    if any(p <= 0 or t <= 0 for p, t in pts):
        raise ValueError("resource counts and times must be positive")
    if len({p for p, _ in pts}) != len(pts):
        raise ValueError("duplicate resource counts; aggregate repeats first")
    return pts


def strong_scaling(series: Sequence[Tuple[float, float]]) -> List[ScalingPoint]:
    """(p, time) series with fixed total work → speedup/efficiency table,
    relative to the smallest measured p."""
    pts = _validated(series)
    p0, t0 = pts[0]
    out = []
    for p, t in pts:
        speedup = t0 / t
        out.append(ScalingPoint(
            p=p, time=t, speedup=speedup, efficiency=speedup * p0 / p))
    return out


def weak_scaling(series: Sequence[Tuple[float, float]]) -> List[ScalingPoint]:
    """(p, time) series with fixed per-p work → efficiency table (ideal:
    time stays flat, efficiency 1.0)."""
    pts = _validated(series)
    _, t0 = pts[0]
    out = []
    for p, t in pts:
        eff = t0 / t
        out.append(ScalingPoint(p=p, time=t, speedup=eff * p / pts[0][0],
                                efficiency=eff))
    return out


def classify_scaling(
    series: Sequence[Tuple[float, float]],
    efficiency_floor: float = 0.5,
) -> dict:
    """Find a strong-scaling series' useful limit: the largest p whose
    efficiency is still ≥ the floor, plus a coarse label."""
    if not (0.0 < efficiency_floor <= 1.0):
        raise ValueError("efficiency_floor must be in (0, 1]")
    table = strong_scaling(series)
    good = [pt for pt in table if pt.efficiency >= efficiency_floor]
    limit = max(good, key=lambda pt: pt.p) if good else table[0]
    last = table[-1]
    if last.efficiency >= 0.8:
        label = "scales well"
    elif last.efficiency >= efficiency_floor:
        label = "scales with losses"
    elif last.speedup <= 1.0:
        label = "does not scale (slows down)"
    else:
        label = "scaling limited"
    return {
        "label": label,
        "scaling_limit_p": limit.p,
        "efficiency_at_max_p": last.efficiency,
        "table": table,
    }
