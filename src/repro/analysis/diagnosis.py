"""Failure diagnosis — from *detecting* a regression to *naming* the
failing subsystem (§1: "diagnosing hardware failures").

Different hardware faults leave different fingerprints across a benchmark
suite's FOMs:

==================  ==========================================================
subsystem           fingerprint
==================  ==========================================================
memory              memory-bound FOMs drop (STREAM rates, saxpy bandwidth);
                    network FOMs steady
network             communication FOMs degrade (collective total_time rises);
                    single-node memory/compute FOMs steady
compute             compute-bound FOMs drop (AMG FOM_Setup/FOM_Solve) while
                    pure-bandwidth FOMs hold
==================  ==========================================================

:func:`diagnose` matches the set of regression events from a suite-wide
scan against these signatures and returns ranked hypotheses.  This is the
payoff of running a *suite* continuously rather than one benchmark: the
cross-benchmark pattern is what localizes the fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from .regression import RegressionEvent

__all__ = ["FailureHypothesis", "diagnose", "FOM_SUBSYSTEMS"]

#: FOM name → the hardware subsystem whose health it reflects.
FOM_SUBSYSTEMS: Dict[str, str] = {
    # memory-bound
    "triad_bw": "memory",
    "copy_bw": "memory",
    "bandwidth": "memory",
    "kernel_time": "memory",
    # network-bound
    "total_time": "network",
    "latency_8b": "network",
    # compute-bound (AMG is memory/compute mixed; setup leans compute)
    "fom_setup": "compute",
    "fom_solve": "compute",
    "fom_segments": "compute",
}


@dataclass
class FailureHypothesis:
    """One candidate explanation for a set of regressions."""

    subsystem: str
    confidence: float  # fraction of that subsystem's FOMs that regressed
    evidence: List[RegressionEvent] = field(default_factory=list)
    first_epoch: float = 0.0

    def __str__(self):
        return (f"{self.subsystem} fault suspected "
                f"(confidence {self.confidence:.0%}, "
                f"first seen at epoch {self.first_epoch:g}; "
                f"evidence: {[e.metric for e in self.evidence]})")


def _fom_of(event: RegressionEvent) -> str:
    """Regression metrics look like 'benchmark/system/fom'; keep the fom."""
    return event.metric.rsplit("/", 1)[-1]


def diagnose(
    events: Sequence[RegressionEvent],
    observed_foms: Sequence[str],
) -> List[FailureHypothesis]:
    """Rank subsystem-fault hypotheses for a set of regression events.

    ``observed_foms`` is the full set of FOMs the suite monitors — needed to
    distinguish "memory FOMs regressed" from "memory FOMs were the only
    thing we measured".  Confidence = regressed-FOMs / monitored-FOMs of
    that subsystem; subsystems with no regressed FOM are omitted.
    """
    monitored: Dict[str, Set[str]] = {}
    for fom in observed_foms:
        subsystem = FOM_SUBSYSTEMS.get(fom)
        if subsystem:
            monitored.setdefault(subsystem, set()).add(fom)

    regressed: Dict[str, Dict[str, List[RegressionEvent]]] = {}
    for event in events:
        fom = _fom_of(event)
        subsystem = FOM_SUBSYSTEMS.get(fom)
        if subsystem is None:
            continue
        regressed.setdefault(subsystem, {}).setdefault(fom, []).append(event)

    hypotheses: List[FailureHypothesis] = []
    for subsystem, fom_events in regressed.items():
        monitored_count = len(monitored.get(subsystem, set())) or len(fom_events)
        evidence = [e for lst in fom_events.values() for e in lst]
        hypotheses.append(
            FailureHypothesis(
                subsystem=subsystem,
                confidence=len(fom_events) / monitored_count,
                evidence=evidence,
                first_epoch=min(e.epoch for e in evidence),
            )
        )
    return sorted(hypotheses, key=lambda h: -h.confidence)
