"""The analysis engine: columnar frame + incremental detectors + cached
model fits + thread-pool fan-out, behind one object.

One :class:`AnalysisEngine` wraps a :class:`~repro.ci.metricsdb.MetricsDatabase`
and keeps every derived analysis artifact warm between epochs:

* :meth:`refresh` syncs the columnar :class:`MetricsFrame` (O(new records));
* :meth:`detect` feeds only a series' *new* samples into its persistent
  :class:`SeriesState` — per-epoch regression scans stop rescanning history;
* :meth:`scan` / :meth:`diagnose` fan independent (benchmark, system, fom)
  series out over a thread pool;
* :meth:`model` fits Extra-P over a frame series through the memoized
  :func:`fit_model`/:func:`fit_multi_term_model` — unchanged series hit;
* :meth:`dashboard` renders the §5 results dashboard from vectorized frame
  aggregations, character-identical to the row-oriented
  :func:`repro.analysis.dashboard.render_report`.

Every stage records wall time into a shared
:class:`~repro.perf.profiler.Profiler` under ``analysis:*`` stage names, so
the speedup claims in ``benchmarks/bench_analysis.py`` decompose per stage.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf import Profiler

from ..diagnosis import diagnose as _diagnose
from ..extrap import _copy_multi, _copy_single, fit_model, fit_multi_term_model
from ..extrap import MultiTermModel


def _copy_model(model):
    """Defensive copy on memo hits so callers can't poison the entry."""
    if isinstance(model, MultiTermModel):
        return _copy_multi(model)
    return _copy_single(model)
from ..regression import RegressionEvent
from .frame import MetricsFrame
from .incremental import OnlineStats, SeriesState

__all__ = ["AnalysisEngine"]

#: (benchmark, system, fom_name, higher_is_better)
Target = Tuple[str, str, str, bool]


class AnalysisEngine:
    """Incremental, columnar, parallel analysis over a metrics database."""

    def __init__(self, db, threshold: float = 0.10, window: int = 3,
                 epoch_key: str = "epoch", exclude_flaky: bool = True,
                 max_workers: Optional[int] = None,
                 profiler: Optional[Profiler] = None):
        self.db = db
        self.threshold = threshold
        self.window = window
        self.epoch_key = epoch_key
        self.exclude_flaky = exclude_flaky
        self.max_workers = max_workers or min(8, (os.cpu_count() or 2))
        self.profiler = profiler or Profiler()
        self.frame = MetricsFrame(db)
        #: Target -> (SeriesState, partition rows already consumed)
        self._states: Dict[Target, SeriesState] = {}
        self._consumed: Dict[Target, int] = {}
        #: model args -> (partition rows consumed, fitted model)
        self._model_memo: Dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None

    @property
    def pool(self) -> ThreadPoolExecutor:
        """One persistent worker pool for every fan-out — spawning a pool
        per scan would cost more than a small scan itself."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="analysis",
            )
        return self._pool

    # -- sync ------------------------------------------------------------
    def refresh(self) -> None:
        """Absorb database appends into the frame (O(new))."""
        with self.profiler.timer("analysis:refresh"):
            self.frame.refresh()

    # -- regression detection -------------------------------------------
    def _state(self, target: Target) -> SeriesState:
        with self._lock:
            state = self._states.get(target)
            if state is None:
                state = self._states[target] = SeriesState(
                    threshold=self.threshold,
                    window=self.window,
                    higher_is_better=target[3],
                )
                self._consumed[target] = 0
            return state

    def detect(self, benchmark: str, system: str, fom_name: str,
               higher_is_better: bool = True) -> List[RegressionEvent]:
        """Current regression events for one series, absorbing only the
        samples recorded since this target was last examined.

        Call :meth:`refresh` first (or use :meth:`scan`, which does).
        """
        target: Target = (benchmark, system, fom_name, bool(higher_is_better))
        state = self._state(target)
        with self.profiler.timer("analysis:detect"):
            consumed = self._consumed[target]
            partition = self.frame.partition_rows(system, benchmark)
            if partition.size > consumed:
                rows = self.frame.series_rows(
                    benchmark, system, fom_name, self.epoch_key,
                    exclude_flaky=self.exclude_flaky, start=consumed,
                )
                if rows.size:
                    xvals, _ = self.frame.manifest_column(self.epoch_key)
                    values = self.frame.column("value")
                    state.extend(zip(xvals[rows].tolist(),
                                     values[rows].tolist()))
                self._consumed[target] = int(partition.size)
            return state.events(metric=f"{benchmark}/{system}/{fom_name}")

    def scan(self, targets: Sequence[Target]) -> List[RegressionEvent]:
        """Detect over many independent series concurrently; events come
        back sorted by epoch (stable in target order, matching the serial
        row-oriented loop)."""
        self.refresh()
        targets = list(targets)
        with self.profiler.timer("analysis:scan"):
            if len(targets) <= 1:
                results = [self.detect(*t) for t in targets]
            else:
                # one batched task per worker, not one per target: dispatch
                # overhead is per-task, and a single series detect is tiny
                n = min(self.max_workers, len(targets))
                indexed = list(enumerate(targets))
                buckets = [indexed[i::n] for i in range(n)]

                def run(bucket):
                    return [(i, self.detect(*t)) for i, t in bucket]

                results = [None] * len(targets)
                for future in [self.pool.submit(run, b) for b in buckets]:
                    for i, found in future.result():
                        results[i] = found
        events = [e for found in results for e in found]
        return sorted(events, key=lambda e: e.epoch)

    def series_summary(self, benchmark: str, system: str, fom_name: str,
                       higher_is_better: bool = True) -> Dict[str, float]:
        """Welford summary (count/mean/std) of the raw samples this series'
        state has absorbed — O(1), no history walk."""
        target: Target = (benchmark, system, fom_name, bool(higher_is_better))
        return self._state(target).welford.as_dict()

    # -- diagnosis -------------------------------------------------------
    def diagnose(self, targets: Sequence[Target]) -> List:
        """Scan every target and rank subsystem-fault hypotheses from the
        cross-series regression fingerprint."""
        events = self.scan(targets)
        with self.profiler.timer("analysis:diagnose"):
            monitored = [t[2] for t in targets]
            return _diagnose(events, monitored)

    # -- model fitting ---------------------------------------------------
    def model(self, benchmark: str, system: str, fom_name: str,
              x_key: str = "nprocs", multi: bool = False,
              exclude_flaky: bool = True):
        """Extra-P model of a frame series, memoized twice over: per-series
        consumption tracking (like :meth:`detect`'s) answers "did any new
        partition row extend *this* series?" in O(new rows) and returns the
        last model untouched when none did; actual refits go through the
        process-global fingerprint-keyed cache shared with
        :func:`fit_model`.

        Returns ``None`` when the series has no measurements yet."""
        key = (benchmark, system, fom_name, x_key, bool(multi),
               bool(exclude_flaky))
        with self.profiler.timer("analysis:model"):
            partition = self.frame.partition_rows(system, benchmark)
            with self._lock:
                entry = self._model_memo.get(key)
            if entry is not None:
                consumed, cached = entry
                if consumed == partition.size or not self.frame.series_rows(
                    benchmark, system, fom_name, x_key,
                    exclude_flaky=exclude_flaky, start=consumed,
                ).size:
                    with self._lock:
                        self._model_memo[key] = (int(partition.size), cached)
                    return _copy_model(cached)
            x, y = self.frame.series(benchmark, system, fom_name, x_key,
                                     exclude_flaky=exclude_flaky)
            if not x.size:
                return None
            pairs = list(zip(x.tolist(), y.tolist()))
            fitted = (fit_multi_term_model(pairs) if multi
                      else fit_model(pairs))
            with self._lock:
                self._model_memo[key] = (int(partition.size),
                                         _copy_model(fitted))
            return fitted

    # -- dashboard -------------------------------------------------------
    def dashboard(self, title: str = "Benchpark results dashboard") -> str:
        """§5 dashboard, character-identical to ``render_report(db)`` but
        computed from vectorized frame passes, with the per-FOM grid
        sections built concurrently."""
        self.refresh()
        with self.profiler.timer("analysis:dashboard"):
            from ..dashboard import render_grid

            frame = self.frame
            systems = sorted(set(frame.pools["system"].names))
            benchmarks = sorted(set(frame.pools["benchmark"].names))
            fom_names = sorted(set(frame.pools["fom_name"].names))
            lines = [f"# {title}", "",
                     f"{len(frame)} records | benchmarks: "
                     f"{', '.join(benchmarks)} | "
                     f"systems: {', '.join(systems)}", ""]

            fom_col = frame.column("fom_name")
            ok = frame.column("value_ok")
            values = frame.column("value")

            def fom_section(fom: str) -> List[str]:
                f = frame.pools["fom_name"].lookup(fom)
                cells: Dict[Tuple[str, str], Any] = {}
                units = ""
                for b in benchmarks:
                    for s in systems:
                        rows = frame.partition_rows(s, b)
                        if rows.size == 0:
                            continue
                        rows = rows[fom_col[rows] == f]
                        if rows.size == 0:
                            continue
                        numeric = rows[ok[rows]]
                        if numeric.size:
                            cells[(b, s)] = float(np.mean(values[numeric]))
                            units = frame.units[rows[0]]
                if not cells:
                    return []
                rows_ = sorted({b for b, _ in cells})
                unit_suffix = f" [{units}]" if units else ""
                return [f"## {fom}{unit_suffix} (mean)", "",
                        render_grid(rows_, systems, cells), ""]

            if len(fom_names) > 1:
                sections = list(self.pool.map(fom_section, fom_names))
            else:
                sections = [fom_section(f) for f in fom_names]
            for section in sections:
                lines.extend(section)
            lines.append("## benchmark usage (records per benchmark)")
            lines.append("")
            for name, count in frame.benchmark_usage().items():
                lines.append(f"- {name}: {count}")
            return "\n".join(lines)

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a closed engine lazily
        re-opens it if used again)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return (f"AnalysisEngine({len(self.frame)} rows, "
                f"{len(self._states)} tracked series)")
