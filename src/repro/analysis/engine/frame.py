"""Columnar (struct-of-arrays) storage for metrics history.

The analysis layer must keep up with an ever-growing FOM history (exaCB's
argument: incrementality has to extend through *result analysis*;  SCOPE's:
aggregation layout dominates at scale).  :class:`MetricsFrame` re-hosts a
row-oriented :class:`~repro.ci.metricsdb.MetricsDatabase` as numpy columns:

* string dimensions (benchmark / system / experiment / fom) are interned to
  ``int32`` codes through a :class:`StringPool`;
* values and any numeric manifest key (epoch, nprocs, …) become ``float64``
  columns with a parallel validity mask, so filters and aggregations are
  single vectorized passes instead of per-record ``float()`` attempts;
* filter / groupby return :class:`FrameView` objects — index arrays over the
  parent's columns, no column data is copied;
* the frame tracks the database's ``generation`` counter: :meth:`refresh`
  absorbs appended records in O(new) and reports exactly which
  ``(system, benchmark)`` partitions were touched, so downstream per-series
  caches (incremental detectors, memoized model fits) invalidate only what
  actually changed.

Semantics are pinned to the row-oriented paths bit-for-bit: ``series`` /
``aggregate`` / ``epoch_series`` reproduce ``MetricsDatabase.series`` /
``.aggregate`` and the detector's per-epoch grouping exactly (same value
ordering, same ``np.mean`` reductions), which is what lets the incremental
analysis stack assert equality with batch recomputation.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["StringPool", "MetricsFrame", "FrameView"]

#: attribute dimensions interned to integer codes
_DIMENSIONS = ("benchmark", "system", "experiment", "fom_name")


class StringPool:
    """Bidirectional string ↔ int32 code interning."""

    __slots__ = ("_codes", "names")

    def __init__(self):
        self._codes: Dict[str, int] = {}
        self.names: List[str] = []

    def code(self, name: str) -> int:
        """Intern ``name``, assigning the next code on first sight."""
        code = self._codes.get(name)
        if code is None:
            code = len(self.names)
            self._codes[name] = code
            self.names.append(name)
        return code

    def lookup(self, name: str) -> Optional[int]:
        """Code for ``name`` or None if never interned (no side effects)."""
        return self._codes.get(name)

    def name(self, code: int) -> str:
        return self.names[code]

    def __len__(self) -> int:
        return len(self.names)


class _Column:
    """A growable numpy column: amortized O(1) append, zero-copy read view."""

    __slots__ = ("_buf", "_n")

    def __init__(self, dtype, capacity: int = 64):
        self._buf = np.empty(capacity, dtype=dtype)
        self._n = 0

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=self._buf.dtype)
        need = self._n + values.size
        if need > self._buf.size:
            grown = np.empty(max(need, 2 * self._buf.size), dtype=self._buf.dtype)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n:need] = values
        self._n = need

    @property
    def view(self) -> np.ndarray:
        """Zero-copy view of the live prefix."""
        return self._buf[: self._n]

    def __len__(self) -> int:
        return self._n


def _to_float(value: Any) -> Tuple[float, bool]:
    """(float(value), ok) — ok False where the row-oriented paths would have
    skipped the record (TypeError/ValueError on conversion)."""
    try:
        return float(value), True
    except (TypeError, ValueError):
        return 0.0, False


class MetricsFrame:
    """Struct-of-arrays mirror of a :class:`MetricsDatabase`.

    Built once, then kept consistent with the (append-only) database via
    :meth:`refresh`; every query below is a vectorized pass over column
    views, never a per-record python loop over history.
    """

    def __init__(self, db):
        self.db = db
        self.pools: Dict[str, StringPool] = {d: StringPool() for d in _DIMENSIONS}
        self._cols: Dict[str, _Column] = {
            "seq": _Column(np.int64),
            "benchmark": _Column(np.int32),
            "system": _Column(np.int32),
            "experiment": _Column(np.int32),
            "fom_name": _Column(np.int32),
            "value": _Column(np.float64),
            "value_ok": _Column(np.bool_),
            "flaky": _Column(np.bool_),
        }
        #: non-columnar payloads kept by reference (dashboard needs units;
        #: manifest dicts back lazily-materialized numeric columns)
        self.units: List[str] = []
        self.manifests: List[Dict[str, Any]] = []
        #: manifest key -> (values column, validity column)
        self._manifest_cols: Dict[str, Tuple[_Column, _Column]] = {}
        #: (system_code, benchmark_code) -> row-id column (insertion order)
        self._partitions: Dict[Tuple[int, int], _Column] = {}
        #: per-partition append counter — consumers cache per-partition
        #: derivations keyed on this and re-derive only touched partitions
        self.partition_generation: Dict[Tuple[int, int], int] = {}
        self._synced_rows = 0
        self._synced_generation = -1
        self._lock = threading.RLock()
        self.refresh()

    # -- ingestion ---------------------------------------------------------
    def refresh(self) -> Tuple[Tuple[int, int], ...]:
        """Absorb records appended to the database since the last sync.

        Returns the ``(system_code, benchmark_code)`` partitions that gained
        rows — everything else is guaranteed untouched, which is the
        invalidation contract incremental consumers build on.
        """
        with self._lock:
            if self.db.generation == self._synced_generation:
                return ()
            records = self.db._records
            start = self._synced_rows
            if len(records) < start:
                raise ValueError(
                    "MetricsDatabase shrank underneath its MetricsFrame; "
                    "the database contract is append-only"
                )
            new = records[start:]
            touched: Dict[Tuple[int, int], List[int]] = {}
            cols = {name: [] for name in self._cols}
            for offset, rec in enumerate(new):
                row = start + offset
                b = self.pools["benchmark"].code(rec.benchmark)
                s = self.pools["system"].code(rec.system)
                value, ok = _to_float(rec.value)
                cols["seq"].append(rec.seq)
                cols["benchmark"].append(b)
                cols["system"].append(s)
                cols["experiment"].append(
                    self.pools["experiment"].code(rec.experiment))
                cols["fom_name"].append(self.pools["fom_name"].code(rec.fom_name))
                cols["value"].append(value)
                cols["value_ok"].append(ok)
                cols["flaky"].append(self.db.is_flaky(rec))
                self.units.append(rec.units)
                self.manifests.append(rec.manifest)
                touched.setdefault((s, b), []).append(row)
            for name, data in cols.items():
                self._cols[name].extend(data)
            for key, key_rows in touched.items():
                part = self._partitions.get(key)
                if part is None:
                    part = self._partitions[key] = _Column(np.int64)
                part.extend(key_rows)
                self.partition_generation[key] = (
                    self.partition_generation.get(key, 0) + 1)
            # backfill every already-materialized manifest column
            for key, (vals, oks) in self._manifest_cols.items():
                self._extend_manifest(key, vals, oks, new)
            self._synced_rows = len(records)
            self._synced_generation = self.db.generation
            return tuple(touched)

    def _extend_manifest(self, key: str, vals: _Column, oks: _Column,
                         records) -> None:
        new_vals, new_oks = [], []
        for rec in records:
            if key in rec.manifest:
                value, ok = _to_float(rec.manifest[key])
            else:
                value, ok = 0.0, False
            new_vals.append(value)
            new_oks.append(ok)
        vals.extend(new_vals)
        oks.extend(new_oks)

    # -- column access -----------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        return self._cols[name].view

    def manifest_column(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """(values, valid) float64/bool columns for one manifest key,
        materialized on first use and extended on every refresh."""
        with self._lock:
            pair = self._manifest_cols.get(key)
            if pair is None:
                pair = (_Column(np.float64), _Column(np.bool_))
                self._extend_manifest(key, *pair,
                                      self.db._records[: self._synced_rows])
                self._manifest_cols[key] = pair
            return pair[0].view, pair[1].view

    def partition_rows(self, system: str, benchmark: str) -> np.ndarray:
        """Row ids of one (system, benchmark) partition, insertion order."""
        s = self.pools["system"].lookup(system)
        b = self.pools["benchmark"].lookup(benchmark)
        if s is None or b is None:
            return np.empty(0, dtype=np.int64)
        part = self._partitions.get((s, b))
        return part.view if part is not None else np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return self._synced_rows

    # -- vectorized queries ------------------------------------------------
    def view(self) -> "FrameView":
        return FrameView(self, np.arange(self._synced_rows, dtype=np.int64))

    def filter(self, benchmark: Optional[str] = None,
               system: Optional[str] = None,
               experiment: Optional[str] = None,
               fom_name: Optional[str] = None,
               exclude_flaky: bool = False) -> "FrameView":
        return self.view().filter(
            benchmark=benchmark, system=system, experiment=experiment,
            fom_name=fom_name, exclude_flaky=exclude_flaky)

    def series_rows(self, benchmark: str, system: str, fom_name: str,
                    x_key: str, exclude_flaky: bool = False,
                    start: int = 0) -> np.ndarray:
        """Row ids (insertion order) of the usable samples of one series,
        optionally only those past the first ``start`` rows of the
        partition — the incremental hook: consumers that remembered how many
        partition rows they saw get exactly the new samples."""
        rows = self.partition_rows(system, benchmark)[start:]
        if rows.size == 0:
            return rows
        f = self.pools["fom_name"].lookup(fom_name)
        if f is None:
            return np.empty(0, dtype=np.int64)
        xvals, xok = self.manifest_column(x_key)
        mask = (self.column("fom_name")[rows] == f)
        mask &= self.column("value_ok")[rows]
        mask &= xok[rows]
        if exclude_flaky:
            mask &= ~self.column("flaky")[rows]
        return rows[mask]

    def series(self, benchmark: str, system: str, fom_name: str,
               x_key: str, exclude_flaky: bool = False
               ) -> Tuple[np.ndarray, np.ndarray]:
        """(x, y) arrays sorted by (x, y) — bit-compatible with
        ``MetricsDatabase.series`` (which returns ``sorted(pairs)``)."""
        rows = self.series_rows(benchmark, system, fom_name, x_key,
                                exclude_flaky=exclude_flaky)
        xvals, _ = self.manifest_column(x_key)
        x = xvals[rows]
        y = self.column("value")[rows]
        order = np.lexsort((y, x))
        return x[order], y[order]

    def epoch_series(self, benchmark: str, system: str, fom_name: str,
                     epoch_key: str = "epoch", exclude_flaky: bool = True
                     ) -> List[Tuple[float, float]]:
        """Per-epoch mean series, matching the detector's row-oriented
        grouping (values averaged in (x, y)-sorted order) exactly."""
        x, y = self.series(benchmark, system, fom_name, epoch_key,
                           exclude_flaky=exclude_flaky)
        if x.size == 0:
            return []
        bounds = np.flatnonzero(np.diff(x)) + 1
        starts = np.concatenate(([0], bounds))
        stops = np.concatenate((bounds, [x.size]))
        return [(float(x[a]), float(np.mean(y[a:b])))
                for a, b in zip(starts, stops)]

    def aggregate(self, fom_name: str, group_by: str = "system",
                  exclude_flaky: bool = True) -> Dict[str, Dict[str, float]]:
        """Vectorized twin of ``MetricsDatabase.aggregate``."""
        f = self.pools["fom_name"].lookup(fom_name)
        if f is None:
            return {}
        mask = (self.column("fom_name") == f) & self.column("value_ok")
        if exclude_flaky:
            mask &= ~self.column("flaky")
        rows = np.flatnonzero(mask)
        if rows.size == 0:
            return {}
        values = self.column("value")[rows]
        if group_by in ("benchmark", "system", "experiment", "fom_name"):
            codes = self.column(group_by)[rows]
            pool = self.pools[group_by]
            labels = {c: pool.name(c) for c in np.unique(codes)}
        else:
            # rare path: group by an arbitrary manifest key
            raw = [str(self.manifests[r].get(group_by)) for r in rows]
            uniq = {name: i for i, name in enumerate(dict.fromkeys(raw))}
            codes = np.array([uniq[name] for name in raw], dtype=np.int64)
            labels = {i: name for name, i in uniq.items()}
        out: Dict[str, Dict[str, float]] = {}
        for code, label in labels.items():
            group = values[codes == code]
            out[label] = {
                "mean": float(np.mean(group)),
                "min": float(np.min(group)),
                "max": float(np.max(group)),
                "count": int(group.size),
            }
        return dict(sorted(out.items()))

    def benchmark_usage(self) -> Dict[str, int]:
        codes = self.column("benchmark")
        if codes.size == 0:
            return {}
        counts = np.bincount(codes, minlength=len(self.pools["benchmark"]))
        order = np.argsort(-counts, kind="stable")
        return {self.pools["benchmark"].name(int(c)): int(counts[c])
                for c in order if counts[c]}


class FrameView:
    """A zero-copy selection of frame rows: an index array over the parent's
    columns.  Filters compose by shrinking the index array; the underlying
    column buffers are never copied."""

    __slots__ = ("frame", "rows")

    def __init__(self, frame: MetricsFrame, rows: np.ndarray):
        self.frame = frame
        self.rows = rows

    def __len__(self) -> int:
        return int(self.rows.size)

    # -- materialized columns (copies happen here, on demand) --------------
    def values(self) -> np.ndarray:
        return self.frame.column("value")[self.rows]

    def column(self, name: str) -> np.ndarray:
        return self.frame.column(name)[self.rows]

    def labels(self, dimension: str) -> List[str]:
        pool = self.frame.pools[dimension]
        return [pool.name(int(c)) for c in self.column(dimension)]

    # -- composition -------------------------------------------------------
    def filter(self, benchmark: Optional[str] = None,
               system: Optional[str] = None,
               experiment: Optional[str] = None,
               fom_name: Optional[str] = None,
               exclude_flaky: bool = False,
               predicate: Optional[Callable[[np.ndarray], np.ndarray]] = None
               ) -> "FrameView":
        """Narrow the view; unknown labels produce an empty view.

        ``predicate`` receives this view's value array and returns a boolean
        mask — the vectorized analogue of the record-level predicate.
        """
        mask = np.ones(self.rows.size, dtype=bool)
        for dim, wanted in (("benchmark", benchmark), ("system", system),
                            ("experiment", experiment), ("fom_name", fom_name)):
            if wanted is None:
                continue
            code = self.frame.pools[dim].lookup(wanted)
            if code is None:
                return FrameView(self.frame, np.empty(0, dtype=np.int64))
            mask &= self.column(dim) == code
        if exclude_flaky:
            mask &= ~self.column("flaky")
        if predicate is not None:
            mask &= np.asarray(predicate(self.values()), dtype=bool)
        return FrameView(self.frame, self.rows[mask])

    def groupby(self, dimension: str) -> Dict[str, "FrameView"]:
        codes = self.column(dimension)
        pool = self.frame.pools[dimension]
        return {
            pool.name(int(c)): FrameView(self.frame, self.rows[codes == c])
            for c in sorted(np.unique(codes))
        }

    def to_pairs(self, x_key: str) -> List[Tuple[float, float]]:
        """(manifest[x_key], value) pairs — view-level twin of
        ``MetricsDatabase.series`` (sorted, invalid rows skipped)."""
        xvals, xok = self.frame.manifest_column(x_key)
        keep = self.column("value_ok") & xok[self.rows]
        rows = self.rows[keep]
        x = xvals[rows]
        y = self.frame.column("value")[rows]
        order = np.lexsort((y, x))
        return list(zip(x[order].tolist(), y[order].tolist()))
