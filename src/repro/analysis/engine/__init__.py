"""Columnar analysis engine (exaCB-style incremental result analysis).

``MetricsFrame`` — struct-of-arrays storage with interned string codes,
zero-copy ``FrameView`` filter/groupby, and generation-counter sync against
the append-only ``MetricsDatabase``.  ``SeriesState``/``OnlineStats`` —
incremental regression statistics, bit-identical to batch recomputation.
``AnalysisEngine`` — ties frame, incremental detectors, memoized Extra-P
fits, and thread-pool fan-out together with per-stage Profiler timings.
"""

from .core import AnalysisEngine
from .frame import FrameView, MetricsFrame, StringPool
from .incremental import OnlineStats, SeriesState

__all__ = [
    "AnalysisEngine",
    "FrameView",
    "MetricsFrame",
    "OnlineStats",
    "SeriesState",
    "StringPool",
]
