"""Incremental regression statistics: O(new) per-epoch updates that stay
bit-identical to batch recomputation.

The row-oriented path re-derives everything from scratch each epoch: re-sort
the full series, re-group by epoch, re-mean every baseline prefix, re-score
every window.  Over an E-epoch campaign that is O(E²) means per series —
O(E³) cumulative.  :class:`SeriesState` keeps the per-epoch sample groups,
their means, and the window scores alive between epochs, so absorbing an
epoch costs one group update plus a rescore of the trailing positions whose
inputs actually changed.

The equivalence guarantee is strict, not approximate: every arithmetic
reduction (per-epoch mean, baseline prefix mean, window mean) is performed
with the very same ``np.mean`` calls over identically-ordered operands as
:meth:`RegressionDetector.detect`, so incremental events compare equal —
``RegressionEvent == RegressionEvent``, float-for-float — to a batch rescan
(tests pin this).  That choice costs an O(history) prefix mean per *new*
window position (numpy's pairwise summation cannot be updated in O(1)
without changing the bits), which still turns the per-epoch cost from
O(E²) into O(E).

:class:`OnlineStats` is the classic Welford accumulator, used for O(1)
running mean/variance summaries per series (dashboard stat lines) where
bit-identity to a batch ``np.mean`` is *not* required.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..regression import RegressionEvent

__all__ = ["OnlineStats", "SeriesState"]


class OnlineStats:
    """Welford's online mean/variance (numerically stable, mergeable)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def variance(self, ddof: int = 0) -> float:
        if self.count <= ddof:
            return 0.0
        return self._m2 / (self.count - ddof)

    def std(self, ddof: int = 0) -> float:
        return math.sqrt(self.variance(ddof))

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Chan et al. parallel combination — merging per-shard accumulators
        equals having pushed every sample into one."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        return self

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "std": self.std(), "variance": self.variance()}

    def __repr__(self):
        return (f"OnlineStats(count={self.count}, mean={self.mean:.6g}, "
                f"std={self.std():.6g})")


class SeriesState:
    """Rolling regression state for one (benchmark, system, fom) series.

    Feed raw ``(epoch, value)`` samples through :meth:`extend` as they
    arrive; read the current event list with :meth:`events`.  The state
    holds per-epoch sample groups (so late samples for an old epoch are
    handled: the affected suffix of window scores is re-derived), the
    epoch-mean vector, the scored window positions, and a Welford
    accumulator over raw samples.
    """

    def __init__(self, threshold: float = 0.10, window: int = 3,
                 higher_is_better: bool = True):
        if not (0.0 < threshold < 1.0):
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.threshold = threshold
        self.window = window
        self.higher_is_better = higher_is_better
        self.epochs: List[float] = []
        self._samples: List[List[float]] = []
        self._means: List[float] = []
        #: (position, baseline, observed, ratio, bad) — same tuple the batch
        #: detector scores, kept sorted by position
        self._scored: List[Tuple[int, float, float, float, bool]] = []
        self.welford = OnlineStats()
        self.samples_seen = 0

    # -- ingestion ---------------------------------------------------------
    def extend(self, pairs: Iterable[Tuple[float, float]]) -> None:
        """Absorb new samples; only the affected suffix is re-scored."""
        dirty: Optional[int] = None
        for epoch, value in pairs:
            epoch = float(epoch)
            value = float(value)
            self.welford.push(value)
            self.samples_seen += 1
            idx = bisect_left(self.epochs, epoch)
            if idx < len(self.epochs) and self.epochs[idx] == epoch:
                self._samples[idx].append(value)
            else:
                self.epochs.insert(idx, epoch)
                self._samples.insert(idx, [value])
                self._means.insert(idx, 0.0)
            dirty = idx if dirty is None else min(dirty, idx)
        if dirty is None:
            return
        # Re-derive epoch means from ``dirty`` on: an insertion shifted
        # later groups, an append changed one group.  Samples are averaged
        # in sorted order — exactly the order the batch path sees them in
        # after ``sorted(pairs)``.
        for idx in range(dirty, len(self.epochs)):
            self._means[idx] = float(np.mean(sorted(self._samples[idx])))
        self._rescore(dirty)

    def _rescore(self, dirty: int) -> None:
        """Recompute window scores whose baseline prefix or observed window
        reaches the first changed epoch index."""
        n = len(self.epochs)
        start = max(self.window, dirty - self.window + 1)
        self._scored = [s for s in self._scored if s[0] < start]
        values = np.asarray(self._means, dtype=float)
        for i in range(start, n - self.window + 1):
            baseline = float(np.mean(values[:i]))
            if baseline == 0:
                continue
            observed = float(np.mean(values[i:i + self.window]))
            ratio = observed / baseline
            bad = (ratio < 1 - self.threshold) if self.higher_is_better \
                else (ratio > 1 + self.threshold)
            self._scored.append((i, baseline, observed, ratio, bad))

    # -- readout -----------------------------------------------------------
    def series(self) -> List[Tuple[float, float]]:
        """The current (epoch, mean) series — what the batch detector would
        have built from the same samples."""
        return list(zip(self.epochs, self._means))

    def events(self, metric: str = "metric") -> List[RegressionEvent]:
        """Collapse scored positions to events, mirroring the batch
        detector's contiguous-run logic tuple-for-tuple."""
        if len(self.epochs) < 2 * self.window:
            return []
        events: List[RegressionEvent] = []
        run: List[Tuple[int, float, float, float, bool]] = []

        def flush_run():
            if not run:
                return
            extreme = min(run, key=lambda s: s[3]) if self.higher_is_better \
                else max(run, key=lambda s: s[3])
            i, baseline, observed, ratio, _ = extreme
            events.append(RegressionEvent(
                metric=metric,
                epoch=float(self.epochs[i]),
                baseline=baseline,
                observed=observed,
                ratio=ratio,
            ))
            run.clear()

        for entry in self._scored:
            if entry[4]:
                run.append(entry)
            else:
                flush_run()
        flush_run()
        return events

    def __len__(self) -> int:
        return len(self.epochs)

    def __repr__(self):
        return (f"SeriesState({len(self.epochs)} epochs, "
                f"{self.samples_seen} samples, window={self.window})")
