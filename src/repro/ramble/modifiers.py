"""Modifiers — Ramble's construct for changing experiment behaviour "in
repeatable ways" (§3.2) and for architecture-specific FOMs like hardware
counters (§4.5).

A modifier can inject environment variables, wrap the command line, and
contribute extra figures of merit.  We ship the two the paper mentions as
future work so the analysis pipeline can exercise them:

* :class:`HardwareCountersModifier` — appends a per-run counter report
  (simulated from the benchmark's own metrics) and FOMs to parse it;
* :class:`CaliperModifier` — turns on always-on Caliper profiling
  (:mod:`repro.analysis.caliper`) around the run.
"""

from __future__ import annotations

from typing import Dict, List

from .application import FigureOfMeritDef

__all__ = ["Modifier", "HardwareCountersModifier", "CaliperModifier", "ModifierRegistry"]


class Modifier:
    """Base modifier: hooks the executor calls around each experiment."""

    name = "modifier"

    def env_vars(self, experiment) -> Dict[str, str]:
        return {}

    def wrap_command(self, command: str) -> str:
        return command

    def extra_output(self, experiment, stdout: str) -> str:
        """Text appended to the experiment log after execution."""
        return ""

    def figures_of_merit(self) -> List[FigureOfMeritDef]:
        return []


class HardwareCountersModifier(Modifier):
    """Simulated per-run hardware counters.

    Real Benchpark would read PAPI/rocprof counters; we derive plausible
    counters from the run context (deterministic per experiment name) so the
    FOM plumbing — Table 1 row 5's "(optional) hardware counters" — is
    exercised end to end.
    """

    name = "hardware-counters"

    def __init__(self, counters=("cycles", "instructions", "flops")):
        self.counters = tuple(counters)

    def extra_output(self, experiment, stdout: str) -> str:
        seed = abs(hash(experiment.name)) % 1000
        lines = ["# hardware counters"]
        base = {
            "cycles": 1_000_000 + seed * 977,
            "instructions": 800_000 + seed * 701,
            "flops": 500_000 + seed * 499,
        }
        for counter in self.counters:
            value = base.get(counter, 100_000 + seed)
            lines.append(f"counter {counter}: {value}")
        return "\n".join(lines) + "\n"

    def figures_of_merit(self) -> List[FigureOfMeritDef]:
        return [
            FigureOfMeritDef(
                name=f"hwc_{c}",
                fom_regex=rf"counter {c}: (?P<v>\d+)",
                group_name="v",
                units="count",
            )
            for c in self.counters
        ]


class CaliperModifier(Modifier):
    """Wraps the run in a Caliper profiling session (§5)."""

    name = "caliper"

    def env_vars(self, experiment) -> Dict[str, str]:
        return {"CALI_CONFIG": "runtime-report,profile"}

    def extra_output(self, experiment, stdout: str) -> str:
        from repro.analysis.caliper import global_session

        profile = global_session().last_profile()
        if profile is None:
            return ""
        return "# caliper profile attached\n"


class ModifierRegistry:
    def __init__(self):
        self._modifiers: Dict[str, Modifier] = {}

    def register(self, modifier: Modifier) -> Modifier:
        self._modifiers[modifier.name] = modifier
        return modifier

    def get(self, name: str) -> Modifier:
        try:
            return self._modifiers[name]
        except KeyError:
            raise KeyError(
                f"unknown modifier {name!r}; known: {sorted(self._modifiers)}"
            ) from None

    def all(self) -> List[Modifier]:
        return list(self._modifiers.values())
