"""Builtin Ramble application definitions.

One definition per benchmark, each *benchmark-specific and system-agnostic*
(Table 1).  The Saxpy class transcribes the paper's Figure 8 verbatim; the
others follow the same pattern for AMG2023, STREAM, and the OSU collectives.
FOM regexes are written against the actual output of the runnable kernels in
:mod:`repro.benchmarks`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from .application import (
    ApplicationBase,
    ApplicationError,
    SpackApplication,
    executable,
    figure_of_merit,
    software_spec,
    success_criteria,
    workload,
    workload_variable,
)

__all__ = ["Saxpy", "Amg2023", "Stream", "OsuMicroBenchmarks",
           "Quicksilver", "ApplicationRepository", "builtin_applications"]


class Saxpy(SpackApplication):
    """The paper's Figure 8 application definition, verbatim."""

    name = "saxpy"

    executable("p", "saxpy -n {n}", use_mpi=True)
    workload("problem", executables=["p"])
    workload_variable(
        "n",
        default="1",
        description="problem size",
        workloads=["problem"],
    )
    figure_of_merit(
        "success",
        fom_regex=r"(?P<done>Kernel done)",
        group_name="done",
        units="",
    )
    figure_of_merit(
        "kernel_time",
        fom_regex=r"saxpy kernel time: (?P<time>[0-9.eE+-]+) s",
        group_name="time",
        units="s",
    )
    figure_of_merit(
        "bandwidth",
        fom_regex=r"saxpy bandwidth: (?P<bw>[0-9.eE+-]+) GB/s",
        group_name="bw",
        units="GB/s",
    )
    success_criteria(
        "pass",
        mode="string",
        match=r"Kernel done",
        file="{experiment_run_dir}/{experiment_name}.out",
    )
    software_spec("saxpy", "saxpy@1.0.0")


class Amg2023(SpackApplication):
    """AMG2023 [21]: parallel algebraic multigrid benchmark."""

    name = "amg2023"

    executable("amg", "amg -problem {problem} -n {n} -ranks {n_ranks}",
               use_mpi=True)
    workload("problem1", executables=["amg"])
    workload("problem2", executables=["amg"])
    workload_variable("problem", default="1", description="problem selector",
                      workloads=["problem1"])
    workload_variable("problem", default="2", description="problem selector",
                      workloads=["problem2"])
    workload_variable("n", default="16",
                      description="grid points per dimension",
                      workloads=["problem1", "problem2"])
    figure_of_merit(
        "fom_setup",
        fom_regex=r"Figure of Merit \(FOM_Setup\): (?P<fom>[0-9.eE+-]+)",
        group_name="fom",
        units="nnz/s",
    )
    figure_of_merit(
        "fom_solve",
        fom_regex=r"Figure of Merit \(FOM_Solve\): (?P<fom>[0-9.eE+-]+)",
        group_name="fom",
        units="nnz*iter/s",
    )
    figure_of_merit(
        "iterations",
        fom_regex=r"iterations: (?P<it>\d+)",
        group_name="it",
        units="",
    )
    figure_of_merit(
        "solve_time",
        fom_regex=r"solve time: (?P<t>[0-9.eE+-]+) s",
        group_name="t",
        units="s",
    )
    success_criteria(
        "converged",
        mode="string",
        match=r"solver converged",
        file="{experiment_run_dir}/{experiment_name}.out",
    )
    software_spec("amg2023", "amg2023@1.2")


class Stream(SpackApplication):
    """STREAM memory-bandwidth microbenchmark."""

    name = "stream"

    executable("stream", "stream -n {array_size} --ntimes {ntimes}",
               use_mpi=False)
    workload("standard", executables=["stream"])
    workload_variable("array_size", default="1000000",
                      description="elements per array", workloads=["standard"])
    workload_variable("ntimes", default="10", description="iterations",
                      workloads=["standard"])
    figure_of_merit(
        "triad_bw",
        fom_regex=r"Triad:\s+(?P<rate>[0-9.]+)",
        group_name="rate",
        units="MB/s",
    )
    figure_of_merit(
        "copy_bw",
        fom_regex=r"Copy:\s+(?P<rate>[0-9.]+)",
        group_name="rate",
        units="MB/s",
    )
    success_criteria(
        "validates",
        mode="string",
        match=r"Solution Validates",
        file="{experiment_run_dir}/{experiment_name}.out",
    )
    software_spec("stream", "stream@5.10")


class OsuMicroBenchmarks(SpackApplication):
    """OSU collective latency tests (the Figure 14 workload)."""

    name = "osu-micro-benchmarks"

    executable(
        "bcast",
        "osu_bcast --op {collective} --ranks {n_ranks} "
        "--max-size {max_size} --iterations {iterations}",
        use_mpi=True,
    )
    workload("collective", executables=["bcast"])
    workload_variable("collective", default="bcast",
                      description="which collective to time",
                      workloads=["collective"])
    workload_variable("max_size", default="65536",
                      description="largest message size in bytes",
                      workloads=["collective"])
    workload_variable("iterations", default="100",
                      description="repetitions per size",
                      workloads=["collective"])
    figure_of_merit(
        "total_time",
        fom_regex=r"Total time: (?P<t>[0-9.eE+-]+) s",
        group_name="t",
        units="s",
    )
    figure_of_merit(
        "latency_8b",
        fom_regex=r"^8\s+(?P<lat>[0-9.]+)$",
        group_name="lat",
        units="us",
    )
    success_criteria(
        "complete",
        mode="string",
        match=r"Benchmark complete",
        file="{experiment_run_dir}/{experiment_name}.out",
    )
    software_spec("osu-micro-benchmarks", "osu-micro-benchmarks@7.2")


class Quicksilver(SpackApplication):
    """Quicksilver-class Monte Carlo transport proxy (ECP suite, §7)."""

    name = "quicksilver"

    executable("qs", "qs -n {n_particles} --slab {slab} --ranks {n_ranks}",
               use_mpi=True)
    workload("slab", executables=["qs"])
    workload_variable("n_particles", default="100000",
                      description="particle count", workloads=["slab"])
    workload_variable("slab", default="10.0",
                      description="slab width in mean free paths",
                      workloads=["slab"])
    figure_of_merit(
        "fom_segments",
        fom_regex=r"Figure Of Merit: (?P<fom>[0-9.eE+-]+) segments/s",
        group_name="fom",
        units="segments/s",
    )
    figure_of_merit(
        "segments",
        fom_regex=r"segments: (?P<seg>\d+)",
        group_name="seg",
        units="",
    )
    success_criteria(
        "complete",
        mode="string",
        match=r"MC done",
        file="{experiment_run_dir}/{experiment_name}.out",
    )
    software_spec("quicksilver", "quicksilver@1.0")


class ApplicationRepository:
    """Registry of application definitions (Ramble's app repo + Benchpark's
    ``repo/`` overlay, Figure 1a lines 41–48)."""

    def __init__(self):
        self._apps: Dict[str, Type[ApplicationBase]] = {}

    def register(self, cls: Type[ApplicationBase]) -> Type[ApplicationBase]:
        self._apps[cls.app_name()] = cls
        return cls

    def get(self, name: str) -> Type[ApplicationBase]:
        try:
            return self._apps[name]
        except KeyError:
            raise ApplicationError(
                f"unknown application {name!r}; known: {sorted(self._apps)}"
            ) from None

    def exists(self, name: str) -> bool:
        return name in self._apps

    def all_names(self) -> List[str]:
        return sorted(self._apps)


_builtin: Optional[ApplicationRepository] = None


def builtin_applications() -> ApplicationRepository:
    global _builtin
    if _builtin is None:
        repo = ApplicationRepository()
        for cls in (Saxpy, Amg2023, Stream, OsuMicroBenchmarks, Quicksilver):
            repo.register(cls)
        _builtin = repo
    return _builtin
