"""Application definitions — Ramble's ``application.py`` DSL (§3.2, Figure 8).

An application definition is *benchmark-specific and system-agnostic*
(Table 1, rows 3–5): it declares how to run the benchmark, what inputs it
takes, and how to judge the result.  The paper's saxpy example maps 1:1::

    class Saxpy(SpackApplication):
        name = "saxpy"

        executable("p", "saxpy -n {n}", use_mpi=True)
        workload("problem", executables=["p"])
        workload_variable("n", default="1", description="problem size",
                          workloads=["problem"])
        figure_of_merit("success", fom_regex=r"(?P<done>Kernel done)",
                        group_name="done", units="")
        success_criteria("pass", mode="string", match=r"Kernel done",
                         file="{experiment_run_dir}/{experiment_name}.out")

Directives register onto the class via the same deferred-directive machinery
as the mini-Spack package DSL.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "ApplicationBase",
    "SpackApplication",
    "ExecutableDef",
    "WorkloadDef",
    "WorkloadVariableDef",
    "FigureOfMeritDef",
    "SuccessCriterionDef",
    "executable",
    "workload",
    "workload_variable",
    "figure_of_merit",
    "success_criteria",
    "input_file",
    "software_spec",
    "ApplicationError",
]


class ApplicationError(Exception):
    pass


class ExecutableDef:
    """One command template of the application."""

    def __init__(self, name: str, command: str, use_mpi: bool = False,
                 redirect: str = "{log_file}"):
        self.name = name
        self.command = command
        self.use_mpi = use_mpi
        self.redirect = redirect

    def __repr__(self):
        return f"ExecutableDef({self.name!r}, {self.command!r}, mpi={self.use_mpi})"


class WorkloadDef:
    """A named workload: the executables it runs and its variables."""

    def __init__(self, name: str, executables: Sequence[str],
                 inputs: Sequence[str] = ()):
        self.name = name
        self.executables = list(executables)
        self.inputs = list(inputs)
        self.variables: Dict[str, "WorkloadVariableDef"] = {}

    def __repr__(self):
        return f"WorkloadDef({self.name!r}, executables={self.executables})"


class WorkloadVariableDef:
    """A tunable input parameter of a workload (paper §4.2)."""

    def __init__(self, name: str, default: Any, description: str = "",
                 values: Optional[Sequence[Any]] = None):
        self.name = name
        self.default = default
        self.description = description
        self.values = list(values) if values is not None else None

    def __repr__(self):
        return f"WorkloadVariableDef({self.name!r}, default={self.default!r})"


class FigureOfMeritDef:
    """A metric extracted from experiment output by regex (§4.5)."""

    def __init__(self, name: str, fom_regex: str, group_name: str,
                 units: str = "", log_file: str = "{log_file}",
                 contexts: Sequence[str] = ()):
        self.name = name
        self.fom_regex = fom_regex
        self.group_name = group_name
        self.units = units
        self.log_file = log_file
        self.contexts = list(contexts)
        try:
            self._compiled = re.compile(fom_regex, re.MULTILINE)
        except re.error as e:
            raise ApplicationError(f"figure_of_merit {name!r}: bad regex: {e}")
        if group_name not in self._compiled.groupindex:
            raise ApplicationError(
                f"figure_of_merit {name!r}: regex has no group {group_name!r}"
            )

    def extract(self, text: str) -> List[str]:
        return [m.group(self.group_name) for m in self._compiled.finditer(text)]

    def __repr__(self):
        return f"FigureOfMeritDef({self.name!r})"


class SuccessCriterionDef:
    """Pass/fail rule for an experiment (§4.5).

    Two modes, as in Ramble:

    * ``string`` — pass iff ``match`` (a regex) appears in ``file``;
    * ``fom_comparison`` — pass iff ``formula`` holds, where ``{value}``
      expands to the extracted value of ``fom_name`` (e.g.
      ``formula="{value} > 0.9"``).
    """

    def __init__(self, name: str, mode: str = "string", match: str = "",
                 file: str = "{log_file}", fom_name: str = "",
                 formula: str = ""):
        if mode not in ("string", "fom_comparison"):
            raise ApplicationError(f"success_criteria {name!r}: unknown mode {mode!r}")
        if mode == "fom_comparison" and (not fom_name or not formula):
            raise ApplicationError(
                f"success_criteria {name!r}: fom_comparison needs fom_name "
                f"and formula"
            )
        self.name = name
        self.mode = mode
        self.match = match
        self.file = file
        self.fom_name = fom_name
        self.formula = formula

    def check_text(self, text: str) -> bool:
        if self.mode != "string":
            raise ApplicationError(f"{self.name}: not a string criterion")
        return re.search(self.match, text) is not None

    def check_fom(self, fom_values: Sequence[Any]) -> bool:
        """Evaluate the comparison formula against extracted FOM values;
        every occurrence must pass, and at least one value must exist."""
        if self.mode != "fom_comparison":
            raise ApplicationError(f"{self.name}: not a fom_comparison criterion")
        values = list(fom_values)
        if not values:
            return False
        return all(
            _eval_comparison(self.formula.replace("{value}", str(v)))
            for v in values
        )

    def __repr__(self):
        return f"SuccessCriterionDef({self.name!r}, mode={self.mode!r})"


def _eval_comparison(text: str) -> bool:
    """Safely evaluate a numeric comparison like '3.2 > 0.9' or
    '10 <= 20 <= 30'."""
    import ast
    import operator as op

    ops = {
        ast.Gt: op.gt, ast.GtE: op.ge, ast.Lt: op.lt, ast.LtE: op.le,
        ast.Eq: op.eq, ast.NotEq: op.ne,
    }
    arith = {
        ast.Add: op.add, ast.Sub: op.sub, ast.Mult: op.mul, ast.Div: op.truediv,
    }

    def ev(node):
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -ev(node.operand)
        if isinstance(node, ast.BinOp) and type(node.op) in arith:
            return arith[type(node.op)](ev(node.left), ev(node.right))
        if isinstance(node, ast.Compare):
            left = ev(node.left)
            for cmp_op, right_node in zip(node.ops, node.comparators):
                if type(cmp_op) not in ops:
                    raise ApplicationError(f"unsupported operator in {text!r}")
                right = ev(right_node)
                if not ops[type(cmp_op)](left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.BoolOp):
            results = [ev(v) for v in node.values]
            return all(results) if isinstance(node.op, ast.And) else any(results)
        raise ApplicationError(f"unsupported expression in formula {text!r}")

    try:
        result = ev(ast.parse(text, mode="eval"))
    except (SyntaxError, ValueError) as e:
        raise ApplicationError(f"bad success formula {text!r}: {e}") from e
    return bool(result)


# ---------------------------------------------------------------------------
# directive machinery (same deferred pattern as repro.spack.package)
# ---------------------------------------------------------------------------
_directive_stack: List[Callable[[type], None]] = []


def executable(name: str, command: str, use_mpi: bool = False,
               redirect: str = "{log_file}") -> None:
    d = ExecutableDef(name, command, use_mpi=use_mpi, redirect=redirect)
    _directive_stack.append(lambda cls: cls.executables.__setitem__(name, d))


def workload(name: str, executables: Sequence[str], inputs: Sequence[str] = ()) -> None:
    d = WorkloadDef(name, executables, inputs)
    _directive_stack.append(lambda cls: cls.workloads.__setitem__(name, d))


def workload_variable(name: str, default: Any, description: str = "",
                      workloads: Sequence[str] = (),
                      values: Optional[Sequence[Any]] = None) -> None:
    d = WorkloadVariableDef(name, default, description, values)
    wl_names = list(workloads)

    def apply(cls):
        targets = wl_names or list(cls.workloads)
        for wname in targets:
            if wname not in cls.workloads:
                raise ApplicationError(
                    f"workload_variable {name!r}: unknown workload {wname!r}"
                )
            cls.workloads[wname].variables[name] = d

    _directive_stack.append(apply)


def figure_of_merit(name: str, fom_regex: str, group_name: str,
                    units: str = "", log_file: str = "{log_file}",
                    contexts: Sequence[str] = ()) -> None:
    d = FigureOfMeritDef(name, fom_regex, group_name, units, log_file, contexts)
    _directive_stack.append(lambda cls: cls.figures_of_merit.__setitem__(name, d))


def success_criteria(name: str, mode: str = "string", match: str = "",
                     file: str = "{log_file}", fom_name: str = "",
                     formula: str = "") -> None:
    d = SuccessCriterionDef(name, mode, match, file, fom_name, formula)
    _directive_stack.append(lambda cls: cls.success_criteria.__setitem__(name, d))


def input_file(name: str, url: str, description: str = "") -> None:
    _directive_stack.append(
        lambda cls: cls.inputs.__setitem__(name, {"url": url, "description": description})
    )


def software_spec(name: str, pkg_spec: str) -> None:
    """Default Spack spec for the application's software environment."""
    _directive_stack.append(lambda cls: cls.software_specs.__setitem__(name, pkg_spec))


class ApplicationMeta(type):
    def __new__(mcs, name, bases, attrs):
        cls = super().__new__(mcs, name, bases, attrs)
        cls.executables = {}
        cls.workloads = {}
        cls.figures_of_merit = {}
        cls.success_criteria = {}
        cls.inputs = {}
        cls.software_specs = {}
        for base in reversed(bases):
            cls.executables.update(getattr(base, "executables", {}))
            for wname, wl in getattr(base, "workloads", {}).items():
                clone = WorkloadDef(wl.name, wl.executables, wl.inputs)
                clone.variables.update(wl.variables)
                cls.workloads[wname] = clone
            cls.figures_of_merit.update(getattr(base, "figures_of_merit", {}))
            cls.success_criteria.update(getattr(base, "success_criteria", {}))
            cls.inputs.update(getattr(base, "inputs", {}))
            cls.software_specs.update(getattr(base, "software_specs", {}))
        global _directive_stack
        pending, _directive_stack = _directive_stack, []
        for apply_fn in pending:
            apply_fn(cls)
        return cls


class ApplicationBase(metaclass=ApplicationMeta):
    """Base class for Ramble applications."""

    #: application name; defaults to the lowercased class name
    name = ""

    @classmethod
    def app_name(cls) -> str:
        return cls.name or cls.__name__.lower()

    @classmethod
    def get_workload(cls, name: str) -> WorkloadDef:
        try:
            return cls.workloads[name]
        except KeyError:
            raise ApplicationError(
                f"{cls.app_name()}: unknown workload {name!r}; "
                f"available: {sorted(cls.workloads)}"
            ) from None

    @classmethod
    def default_variables(cls, workload_name: str) -> Dict[str, Any]:
        wl = cls.get_workload(workload_name)
        return {n: v.default for n, v in wl.variables.items()}

    @classmethod
    def commands_for(cls, workload_name: str) -> List[ExecutableDef]:
        wl = cls.get_workload(workload_name)
        out = []
        for ename in wl.executables:
            if ename not in cls.executables:
                raise ApplicationError(
                    f"{cls.app_name()}: workload {workload_name!r} references "
                    f"unknown executable {ename!r}"
                )
            out.append(cls.executables[ename])
        return out


class SpackApplication(ApplicationBase):
    """An application whose software is provisioned through Spack —
    the only flavour Benchpark uses."""
