"""Software-environment resolution — ramble.yaml's ``spack:`` section
(Figures 9 & 10).

Two layers cooperate:

* the **system-side** ``spack.yaml`` (Figure 9) names reusable package
  definitions (``default-compiler: gcc@12.1.1``,
  ``default-mpi: mvapich2@...``) — system-specific, benchmark-agnostic;
* the **experiment-side** ``ramble.yaml: spack:`` (Figure 10 lines 31–40)
  defines the benchmark's packages (``saxpy: spack_spec: saxpy@1.0.0
  +openmp ^cmake@3.23.1, compiler: default-compiler``) and groups them into
  named environments (``saxpy: packages: [default-mpi, saxpy]``).

:func:`resolve_environment` merges the two into the list of root specs the
mini-Spack concretizer/installer consumes — the coupling Table 1 rows 1–2
describe.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.spack import Spec, parse_spec

__all__ = ["SoftwareError", "PackageDef", "resolve_environment", "merge_spack_sections"]


class SoftwareError(ValueError):
    pass


class PackageDef:
    """A named package definition: a spack spec plus an optional compiler
    reference (itself the name of another package definition)."""

    def __init__(self, name: str, spack_spec: str, compiler: Optional[str] = None):
        self.name = name
        self.spack_spec = spack_spec
        self.compiler = compiler

    @classmethod
    def from_dict(cls, name: str, d: Mapping[str, Any]) -> "PackageDef":
        if "spack_spec" not in d:
            raise SoftwareError(f"package definition {name!r} missing spack_spec")
        return cls(name, str(d["spack_spec"]), d.get("compiler"))

    def __repr__(self):
        return f"PackageDef({self.name!r}, {self.spack_spec!r}, compiler={self.compiler!r})"


def merge_spack_sections(system_spack: Mapping[str, Any],
                         experiment_spack: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge the system spack.yaml and ramble.yaml spack sections; the
    experiment side wins on conflicts (it is more specific)."""
    merged: Dict[str, Any] = {"packages": {}, "environments": {}}
    for src in (system_spack, experiment_spack):
        for pname, pdef in (src.get("packages") or {}).items():
            merged["packages"][pname] = pdef
        for ename, edef in (src.get("environments") or {}).items():
            merged["environments"][ename] = edef
    return merged


def _compiler_for(defs: Mapping[str, PackageDef], compiler_name: str):
    from repro.spack import CompilerSpec

    if compiler_name not in defs:
        raise SoftwareError(
            f"compiler reference {compiler_name!r} is not a defined package; "
            f"defined: {sorted(defs)}"
        )
    comp_spec = parse_spec(defs[compiler_name].spack_spec)
    return CompilerSpec(comp_spec.name, comp_spec.versions)


def resolve_environment(spack_section: Mapping[str, Any],
                        env_name: str) -> List[Spec]:
    """Resolve one named environment to its abstract root specs.

    Each package reference in the environment resolves through the merged
    ``packages:`` definitions; a ``compiler:`` field appends ``%compiler``
    parsed from the referenced compiler definition.
    """
    pkg_defs = {
        name: PackageDef.from_dict(name, d)
        for name, d in (spack_section.get("packages") or {}).items()
    }
    environments = spack_section.get("environments") or {}
    if env_name not in environments:
        raise SoftwareError(
            f"environment {env_name!r} not defined; available: {sorted(environments)}"
        )
    entry = environments[env_name] or {}
    package_names = entry.get("packages", [])
    if not package_names:
        raise SoftwareError(f"environment {env_name!r} lists no packages")

    roots: List[Spec] = []
    for ref in package_names:
        if ref not in pkg_defs:
            raise SoftwareError(
                f"environment {env_name!r} references undefined package {ref!r}; "
                f"defined: {sorted(pkg_defs)}"
            )
        pdef = pkg_defs[ref]
        root = parse_spec(pdef.spack_spec)
        if pdef.compiler:
            # Attach to the root node — appending "%gcc" to the spec string
            # would bind it to the last ^dependency instead.
            root.compiler = _compiler_for(pkg_defs, pdef.compiler)
        roots.append(root)
    return roots
