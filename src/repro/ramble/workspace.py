"""Ramble workspaces — the five-command lifecycle of Figure 5.

A workspace is "a self contained directory representing a set of
experiments" (§3.2).  Layout::

    <workspace>/
      configs/ramble.yaml            # primary configuration (Figure 10)
      configs/execute_experiment.tpl # template script (Figure 13)
      experiments/<app>/<workload>/<experiment>/   # one dir per experiment
          execute_experiment         # rendered batch script
          <experiment>.out           # execution log (after `ramble on`)
      software/                      # mini-Spack store for this workspace
      results.latest.json            # analysis output

The five commands map to methods:

=====================  ==========================
``workspace create``   :meth:`Workspace.create`
``workspace edit``     :meth:`Workspace.write_config` (programmatic edit)
``workspace setup``    :meth:`Workspace.setup`
``ramble on``          :meth:`Workspace.run`
``workspace analyze``  :meth:`Workspace.analyze`
=====================  ==========================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

import yaml

from repro.spack import Spec

from .application import SuccessCriterionDef
from .apps import ApplicationRepository, builtin_applications
from .expander import Expander
from .matrices import expand_matrix
from .software import merge_spack_sections, resolve_environment
from .templates import DEFAULT_EXECUTE_TEMPLATE, render_template

__all__ = ["Workspace", "Experiment", "WorkspaceError"]


class WorkspaceError(RuntimeError):
    pass


@dataclass
class Experiment:
    """One concrete experiment generated during setup."""

    name: str
    application: str
    workload: str
    variables: Dict[str, str]
    run_dir: Path
    script_path: Path
    env_specs: List[Spec] = field(default_factory=list)
    #: experiment-specific success criteria from ramble.yaml (§4.5)
    success_criteria: List[SuccessCriterionDef] = field(default_factory=list)

    @property
    def log_file(self) -> Path:
        return self.run_dir / f"{self.name}.out"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "application": self.application,
            "workload": self.workload,
            "variables": dict(self.variables),
            "run_dir": str(self.run_dir),
        }


class Workspace:
    """A Ramble workspace rooted at a directory."""

    CONFIG = "ramble.yaml"
    TEMPLATE = "execute_experiment.tpl"

    def __init__(self, path: Path | str):
        self.path = Path(path)
        if not self.config_path.exists():
            raise WorkspaceError(
                f"{self.path} is not a ramble workspace (no configs/{self.CONFIG}); "
                f"use Workspace.create()"
            )
        self.apps: ApplicationRepository = builtin_applications()
        self.experiments: List[Experiment] = []
        self._load_experiment_index()

    # ------------------------------------------------------------------
    # workspace create
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: Path | str,
               config: Optional[Mapping[str, Any]] = None,
               template: str = DEFAULT_EXECUTE_TEMPLATE) -> "Workspace":
        path = Path(path)
        (path / "configs").mkdir(parents=True, exist_ok=True)
        (path / "experiments").mkdir(exist_ok=True)
        (path / "software").mkdir(exist_ok=True)
        config = dict(config) if config else {"ramble": {"applications": {}}}
        (path / "configs" / cls.CONFIG).write_text(
            yaml.safe_dump(config, sort_keys=False)
        )
        (path / "configs" / cls.TEMPLATE).write_text(template)
        return cls(path)

    @property
    def config_path(self) -> Path:
        return self.path / "configs" / self.CONFIG

    @property
    def template_path(self) -> Path:
        return self.path / "configs" / self.TEMPLATE

    @property
    def experiments_dir(self) -> Path:
        return self.path / "experiments"

    @property
    def software_dir(self) -> Path:
        return self.path / "software"

    # ------------------------------------------------------------------
    # workspace edit (programmatic)
    # ------------------------------------------------------------------
    def read_config(self) -> Dict[str, Any]:
        data = yaml.safe_load(self.config_path.read_text()) or {}
        if "ramble" not in data:
            raise WorkspaceError(f"{self.config_path}: missing top-level 'ramble:'")
        return data

    def write_config(self, config: Mapping[str, Any]) -> None:
        if "ramble" not in config:
            raise WorkspaceError("workspace config must have a top-level 'ramble:'")
        self.config_path.write_text(yaml.safe_dump(dict(config), sort_keys=False))

    # ------------------------------------------------------------------
    # workspace setup
    # ------------------------------------------------------------------
    def setup(self, spack_runtime=None,
              extra_variables: Optional[Mapping[str, Any]] = None
              ) -> List[Experiment]:
        """Generate all experiment directories, render their scripts, and
        (if a spack runtime is provided) install required software.

        ``spack_runtime`` is anything with ``concretize_together(specs)``
        and ``install(spec)`` — usually
        :class:`repro.core.runtime.SpackRuntime`.
        """
        ramble = self.read_config()["ramble"]
        spack_section = self._merged_spack_section(ramble)
        template = self.template_path.read_text()

        self.experiments = []
        applications = ramble.get("applications") or {}
        if not applications:
            raise WorkspaceError("ramble.yaml defines no applications")
        for app_name, app_cfg in applications.items():
            app_cls = self.apps.get(app_name)
            for wl_name, wl_cfg in (app_cfg.get("workloads") or {}).items():
                self._setup_workload(
                    app_cls, wl_name, wl_cfg or {}, ramble, spack_section,
                    template, spack_runtime, dict(extra_variables or {}),
                )
        self._save_experiment_index()
        return list(self.experiments)

    def _merged_spack_section(self, ramble: Mapping[str, Any]) -> Dict[str, Any]:
        """Combine included system spack config (Fig 10 line 3) with the
        workspace's own spack section."""
        system_side: Dict[str, Any] = {}
        for include in ramble.get("include") or []:
            inc_path = (self.path / include).resolve() if not Path(include).is_absolute() else Path(include)
            if inc_path.name == "spack.yaml" and inc_path.exists():
                data = yaml.safe_load(inc_path.read_text()) or {}
                system_side = data.get("spack", data)
        return merge_spack_sections(system_side, ramble.get("spack") or {})

    def _included_variables(self, ramble: Mapping[str, Any]) -> Dict[str, Any]:
        """Variables from included variables.yaml files (Figure 12)."""
        out: Dict[str, Any] = {}
        for include in ramble.get("include") or []:
            inc_path = (self.path / include).resolve() if not Path(include).is_absolute() else Path(include)
            if inc_path.name == "variables.yaml" and inc_path.exists():
                data = yaml.safe_load(inc_path.read_text()) or {}
                out.update(data.get("variables", data) or {})
        return out

    def _setup_workload(self, app_cls, wl_name: str, wl_cfg: Mapping[str, Any],
                        ramble: Mapping[str, Any], spack_section: Dict[str, Any],
                        template: str, spack_runtime,
                        extra_variables: Dict[str, Any]) -> None:
        app_name = app_cls.app_name()
        workload = app_cls.get_workload(wl_name)

        # Variable precedence (low → high): application defaults,
        # included variables.yaml, workspace-level variables, workload
        # variables, experiment variables, harness extras.
        base: Dict[str, Any] = {n: v.default for n, v in workload.variables.items()}
        base.update(self._included_variables(ramble))
        base.update(ramble.get("variables") or {})
        base.update(wl_cfg.get("variables") or {})

        # Workload env_vars (Figure 10 lines 14-16: env_vars: set:
        # OMP_NUM_THREADS: '{n_threads}') become export lines in the batch
        # script, expanded per experiment.
        env_vars_cfg: Dict[str, Any] = dict(
            (wl_cfg.get("env_vars") or {}).get("set") or {}
        )

        experiments_cfg = wl_cfg.get("experiments") or {}
        if not experiments_cfg:
            raise WorkspaceError(
                f"{app_name}/{wl_name}: no experiments defined"
            )

        # §3.2.3: "Downloading source and input files" — materialize the
        # application's declared inputs into the workspace (simulated
        # download: the file records its source URL and is content-stable).
        inputs_dir = self.path / "inputs" / app_name
        for input_name, meta in (app_cls.inputs or {}).items():
            inputs_dir.mkdir(parents=True, exist_ok=True)
            target = inputs_dir / input_name
            if not target.exists():
                target.write_text(
                    f"# simulated download\n# source: {meta.get('url', '')}\n"
                    f"# description: {meta.get('description', '')}\n"
                )

        env_specs: List[Spec] = []
        if spack_section.get("environments"):
            env_name = app_name if app_name in (spack_section["environments"]) \
                else next(iter(spack_section["environments"]))
            env_specs = resolve_environment(spack_section, env_name)
            if spack_runtime is not None:
                concrete = spack_runtime.concretize_together(env_specs)
                for spec in concrete:
                    spack_runtime.install(spec)
                env_specs = concrete

        for exp_template_name, exp_cfg in experiments_cfg.items():
            exp_vars = dict(base)
            exp_vars.update((exp_cfg or {}).get("variables") or {})
            # Harness-supplied extras have the last word (precedence doc in
            # _setup_workload's caller).
            exp_vars.update(extra_variables)
            matrices = (exp_cfg or {}).get("matrices") or []
            criteria = [
                SuccessCriterionDef(
                    name=c.get("name", f"criterion{i}"),
                    mode=c.get("mode", "string"),
                    match=c.get("match", ""),
                    file=c.get("file", "{log_file}"),
                    fom_name=c.get("fom_name", ""),
                    formula=c.get("formula", ""),
                )
                for i, c in enumerate((exp_cfg or {}).get("success_criteria") or [])
            ]
            vectors = expand_matrix(exp_vars, matrices)
            for vector in vectors:
                self._materialize_experiment(
                    app_cls, wl_name, exp_template_name, vector, template,
                    env_specs, criteria, env_vars_cfg,
                )

    def _materialize_experiment(self, app_cls, wl_name: str,
                                name_template: str, vector: Dict[str, Any],
                                template: str, env_specs: List[Spec],
                                success_criteria: Optional[List[SuccessCriterionDef]] = None,
                                env_vars: Optional[Dict[str, Any]] = None,
                                ) -> None:
        app_name = app_cls.app_name()
        variables = dict(vector)
        # Derived defaults Ramble computes when absent.
        if "n_ranks" not in variables and {"processes_per_node", "n_nodes"} <= set(variables):
            variables["n_ranks"] = "{processes_per_node}*{n_nodes}"
        variables.setdefault("n_nodes", "1")
        variables.setdefault("n_ranks", "1")
        variables.setdefault("n_threads", "1")
        variables.setdefault("batch_time", "30")
        variables.setdefault("mpi_command", "")
        variables.setdefault("batch_submit", "bash {execute_experiment}")
        variables.setdefault("batch_nodes", "#SBATCH -N {n_nodes}")
        variables.setdefault("batch_ranks", "#SBATCH -n {n_ranks}")
        variables.setdefault("batch_timeout", "#SBATCH -t {batch_time}:00")
        variables.setdefault("spack_setup", "# spack environment loaded")

        expander = Expander(variables)
        exp_name = expander.expand(name_template)
        run_dir = self.experiments_dir / app_name / wl_name / exp_name
        run_dir.mkdir(parents=True, exist_ok=True)

        variables["experiment_name"] = exp_name
        variables["experiment_run_dir"] = str(run_dir)
        variables["application_name"] = app_name
        variables["workload_name"] = wl_name
        variables["log_file"] = str(run_dir / f"{exp_name}.out")
        variables["execute_experiment"] = str(run_dir / "execute_experiment")

        # The experiment's command: every executable of the workload, with
        # the mpi launcher prefix for use_mpi executables (Figure 13's
        # {command}).
        expander = Expander(variables)
        commands = []
        for var_name, var_value in (env_vars or {}).items():
            value = expander.expand(str(var_value))
            commands.append(f"export {var_name}={value}")
            variables[f"env_{var_name}"] = value
        for exe in app_cls.commands_for(wl_name):
            prefix = f"{variables['mpi_command']} " if exe.use_mpi else ""
            commands.append(
                expander.expand(f"{prefix}{exe.command} >> {{log_file}} 2>&1")
            )
        variables["command"] = "\n".join(commands)

        script = render_template(template, variables)
        script_path = run_dir / "execute_experiment"
        script_path.write_text(script)
        script_path.chmod(0o755)

        flat = {k: str(Expander(variables).expand(str(v))) for k, v in variables.items()}
        self.experiments.append(
            Experiment(
                name=exp_name,
                application=app_name,
                workload=wl_name,
                variables=flat,
                run_dir=run_dir,
                script_path=script_path,
                env_specs=env_specs,
                success_criteria=list(success_criteria or []),
            )
        )

    # ------------------------------------------------------------------
    # ramble on
    # ------------------------------------------------------------------
    def run(self, executor, modifiers: Sequence = ()) -> List[Dict[str, Any]]:
        """Execute every experiment through an executor (``ramble on``).

        ``executor`` is anything with
        ``execute(experiment) -> {returncode, stdout, seconds}`` — see
        :class:`repro.systems.executor.LocalExecutor` and friends.

        ``modifiers`` (§4.5) wrap each run: their env vars are recorded and
        their ``extra_output`` is appended to the experiment log so their
        figures of merit can be extracted at analysis time.
        """
        if not self.experiments:
            raise WorkspaceError("workspace has no experiments; run setup() first")
        self._active_modifiers = list(modifiers)
        outcomes = []
        for exp in self.experiments:
            result = executor.execute(exp)
            stdout = result.get("stdout", "")
            for modifier in modifiers:
                for key, value in modifier.env_vars(exp).items():
                    exp.variables[f"env_{key}"] = value
                extra = modifier.extra_output(exp, stdout)
                if extra:
                    stdout += ("" if stdout.endswith("\n") else "\n") + extra
            exp.log_file.write_text(stdout)
            outcomes.append({"experiment": exp.name, **result})
        return outcomes

    # ------------------------------------------------------------------
    # workspace analyze
    # ------------------------------------------------------------------
    def analyze(self) -> Dict[str, Any]:
        """Extract figures of merit and evaluate success criteria
        (``ramble workspace analyze``); writes results.latest.json."""
        from .analysis import analyze_experiment

        if not self.experiments:
            raise WorkspaceError("workspace has no experiments; run setup() first")
        modifiers = getattr(self, "_active_modifiers", [])
        extra_foms = [f for m in modifiers for f in m.figures_of_merit()]
        results = {
            "workspace": str(self.path),
            "experiments": [
                analyze_experiment(self.apps.get(e.application), e,
                                   extra_foms=extra_foms)
                for e in self.experiments
            ],
        }
        (self.path / "results.latest.json").write_text(
            json.dumps(results, indent=2, sort_keys=True)
        )
        return results

    # ------------------------------------------------------------------
    # persistence of the experiment index
    # ------------------------------------------------------------------
    def _index_path(self) -> Path:
        return self.path / "experiments" / "index.json"

    def _save_experiment_index(self) -> None:
        self._index_path().write_text(
            json.dumps([e.to_dict() for e in self.experiments], indent=2)
        )

    def _load_experiment_index(self) -> None:
        if not self._index_path().exists():
            return
        for d in json.loads(self._index_path().read_text()):
            run_dir = Path(d["run_dir"])
            self.experiments.append(
                Experiment(
                    name=d["name"],
                    application=d["application"],
                    workload=d["workload"],
                    variables=d["variables"],
                    run_dir=run_dir,
                    script_path=run_dir / "execute_experiment",
                )
            )
