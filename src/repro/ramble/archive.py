"""Workspace archives — "an exact specification of the experiments" (§5).

"Benchpark produces an exact specification of the experiments, including
application-specific, system-specific, and experiment-specific manifests
that enable functional reproducibility of these experiments.  Storing the
Benchpark manifest with the performance results will enable introspection
into benchmark performance across systems and time."

An archive is a self-contained JSON bundle of everything needed to re-run a
workspace: the ramble.yaml configuration, the execution template, the
concrete software specs (the Spack lock), the generated experiment set,
and — if present — the analysis results.  Its content hash is the identity
collaborators exchange: same manifest hash ⇒ same experiments.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict

from .workspace import Workspace

__all__ = ["archive_workspace", "restore_workspace", "manifest_hash", "ArchiveError"]

ARCHIVE_VERSION = 1


class ArchiveError(RuntimeError):
    pass


def archive_workspace(ws: Workspace) -> Dict[str, Any]:
    """Bundle a workspace into a portable manifest+results archive."""
    bundle: Dict[str, Any] = {
        "archive_version": ARCHIVE_VERSION,
        "config": ws.read_config(),
        "template": ws.template_path.read_text(),
        "experiments": [
            {
                "name": e.name,
                "application": e.application,
                "workload": e.workload,
                "variables": dict(e.variables),
                "software": [s.to_node_dict(deps=True) for s in e.env_specs],
            }
            for e in ws.experiments
        ],
    }
    results_path = ws.path / "results.latest.json"
    if results_path.exists():
        bundle["results"] = json.loads(results_path.read_text())
    bundle["manifest_hash"] = manifest_hash(bundle)
    return bundle


def manifest_hash(bundle: Dict[str, Any]) -> str:
    """Content hash of the *specification* part of an archive (config,
    template, software) — results deliberately excluded, so two runs of the
    same specification share a manifest identity."""
    payload = {
        "archive_version": bundle.get("archive_version", ARCHIVE_VERSION),
        "config": bundle.get("config"),
        "template": bundle.get("template"),
        "software": [e.get("software") for e in bundle.get("experiments", [])],
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def save_archive(bundle: Dict[str, Any], path: Path | str) -> Path:
    path = Path(path)
    path.write_text(json.dumps(bundle, indent=2, sort_keys=True))
    return path


def load_archive(path: Path | str) -> Dict[str, Any]:
    bundle = json.loads(Path(path).read_text())
    if bundle.get("archive_version") != ARCHIVE_VERSION:
        raise ArchiveError(
            f"unsupported archive version {bundle.get('archive_version')!r}"
        )
    recomputed = manifest_hash(bundle)
    if bundle.get("manifest_hash") != recomputed:
        raise ArchiveError(
            f"archive manifest hash mismatch: recorded "
            f"{bundle.get('manifest_hash')!r}, recomputed {recomputed!r} — "
            f"the specification was modified after archiving"
        )
    return bundle


def restore_workspace(bundle: Dict[str, Any], path: Path | str) -> Workspace:
    """Recreate a runnable workspace from an archive (the collaborator's
    side of the §7.1 exchange).  The restored workspace re-runs setup from
    the archived specification; functional reproducibility means the
    resulting experiment set matches the archived one exactly."""
    if "config" not in bundle or "template" not in bundle:
        raise ArchiveError("archive is missing config/template")
    ws = Workspace.create(path, config=bundle["config"],
                          template=bundle["template"])
    return ws
