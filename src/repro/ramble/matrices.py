"""Experiment matrix expansion (Figure 10's ``matrices`` section).

Ramble generates the set of concrete experiments from an experiment
template's variables:

* a variable whose value is a **list** contributes multiple values;
* variables named in a **matrix** are *crossed* (cartesian product) with the
  other variables of that matrix;
* multiple matrices are crossed with each other;
* list variables **not** in any matrix are *zipped* together (they must all
  have the same length — Ramble errors otherwise);
* scalar variables are constant across all experiments.

Figure 10's example: ``n`` × ``n_threads`` crossed by the ``size_threads``
matrix (2 × 2 = 4), zipped with ``processes_per_node``/``n_nodes`` (length
2) → 8 experiments, exactly what we reproduce in the bench for Figure 10.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Sequence

__all__ = ["expand_matrix", "MatrixError"]


class MatrixError(ValueError):
    pass


def expand_matrix(
    variables: Mapping[str, Any],
    matrices: Sequence[Mapping[str, Sequence[str]] | Sequence[str]] = (),
) -> List[Dict[str, Any]]:
    """Expand variables (+ matrix declarations) into experiment vectors.

    ``matrices`` accepts Ramble's YAML shapes: either a list of variable
    names, or a single-key mapping {matrix_name: [variable names]}.

    Returns one dict of scalar variable values per concrete experiment.
    """
    matrix_groups: List[List[str]] = []
    for entry in matrices:
        if isinstance(entry, Mapping):
            if len(entry) != 1:
                raise MatrixError(
                    f"matrix entry must have exactly one name: {entry!r}"
                )
            (names,) = entry.values()
        else:
            names = list(entry)
        if not names:
            raise MatrixError("empty matrix")
        matrix_groups.append([str(n) for n in names])

    seen: set = set()
    for group in matrix_groups:
        for name in group:
            if name in seen:
                raise MatrixError(f"variable {name!r} appears in two matrices")
            if name not in variables:
                raise MatrixError(f"matrix references undefined variable {name!r}")
            if not isinstance(variables[name], list):
                raise MatrixError(
                    f"matrix variable {name!r} must have a list value"
                )
            seen.add(name)

    scalars = {
        k: v for k, v in variables.items() if not isinstance(v, list)
    }
    zipped_names = [
        k for k, v in variables.items() if isinstance(v, list) and k not in seen
    ]

    # Zipped variables must agree on length.
    if zipped_names:
        lengths = {len(variables[k]) for k in zipped_names}
        if len(lengths) > 1:
            detail = {k: len(variables[k]) for k in zipped_names}
            raise MatrixError(
                f"list variables outside matrices must have equal lengths, "
                f"got {detail}"
            )
        zip_count = lengths.pop()
    else:
        zip_count = 1

    # Each matrix contributes the cross product of its variables' values.
    matrix_products: List[List[Dict[str, Any]]] = []
    for group in matrix_groups:
        rows = [
            dict(zip(group, combo))
            for combo in itertools.product(*(variables[n] for n in group))
        ]
        matrix_products.append(rows)

    experiments: List[Dict[str, Any]] = []
    for zip_idx in range(zip_count):
        zip_values = {k: variables[k][zip_idx] for k in zipped_names}
        for combo in itertools.product(*matrix_products) if matrix_products else [()]:
            vector = dict(scalars)
            vector.update(zip_values)
            for row in combo:
                vector.update(row)
            experiments.append(vector)
    return experiments
