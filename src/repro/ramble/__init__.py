"""Mini-Ramble: the reproducible-run substrate (paper §3.2).

Application DSL (Figure 8), variable expansion, experiment matrices
(Figure 10), workspaces (Figure 5 lifecycle), template rendering
(Figure 13), FOM analysis (§4.5), and modifiers."""

from .analysis import ExperimentStatus, analyze_experiment, extract_foms
from .archive import archive_workspace, load_archive, manifest_hash, restore_workspace, save_archive
from .application import (
    ApplicationBase,
    ApplicationError,
    SpackApplication,
    executable,
    figure_of_merit,
    success_criteria,
    workload,
    workload_variable,
)
from .apps import ApplicationRepository, builtin_applications
from .expander import Expander, ExpansionError
from .matrices import MatrixError, expand_matrix
from .modifiers import CaliperModifier, HardwareCountersModifier, Modifier
from .software import SoftwareError, resolve_environment
from .templates import DEFAULT_EXECUTE_TEMPLATE, TemplateError, render_template
from .workspace import Experiment, Workspace, WorkspaceError

__all__ = [
    "ApplicationBase",
    "ApplicationError",
    "ApplicationRepository",
    "CaliperModifier",
    "DEFAULT_EXECUTE_TEMPLATE",
    "Expander",
    "ExpansionError",
    "Experiment",
    "ExperimentStatus",
    "HardwareCountersModifier",
    "MatrixError",
    "Modifier",
    "SoftwareError",
    "SpackApplication",
    "TemplateError",
    "Workspace",
    "WorkspaceError",
    "analyze_experiment",
    "archive_workspace",
    "load_archive",
    "manifest_hash",
    "restore_workspace",
    "save_archive",
    "builtin_applications",
    "executable",
    "expand_matrix",
    "extract_foms",
    "figure_of_merit",
    "render_template",
    "resolve_environment",
    "success_criteria",
    "workload",
    "workload_variable",
]
