"""Template rendering — ``execute_experiment.tpl`` (Figure 13).

A workspace carries at least one template execution script; every experiment
gets a copy with all ``{var}`` references instantiated from the merged
variable stack (ramble.yaml + variables.yaml + experiment context).
"""

from __future__ import annotations

from typing import Mapping

from .expander import Expander, ExpansionError

__all__ = ["render_template", "DEFAULT_EXECUTE_TEMPLATE", "TemplateError"]


class TemplateError(ValueError):
    pass


#: The paper's Figure 13 template, verbatim.
DEFAULT_EXECUTE_TEMPLATE = """\
#!/bin/bash
{batch_nodes}
{batch_ranks}
{batch_timeout}
cd {experiment_run_dir}
{spack_setup}
{command}
"""


def render_template(template: str, variables: Mapping[str, object]) -> str:
    """Instantiate a template against a variable mapping.

    Unlike ad-hoc ``str.format``, rendering goes through the Ramble
    expander, so nested references and arithmetic work; undefined
    variables raise :class:`TemplateError` naming the culprit.
    """
    expander = Expander(variables)
    try:
        return expander.expand(template)
    except ExpansionError as e:
        raise TemplateError(f"template rendering failed: {e.args[0]}") from e
