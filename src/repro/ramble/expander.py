"""Variable expansion — Ramble's ``{var}`` templating engine (§3.2).

Every string in ``ramble.yaml``, ``variables.yaml`` and template files may
reference variables with ``{name}`` (Figures 10, 12, 13).  Expansion is

* **recursive** — a variable's value may itself contain references
  (``mpi_command: 'srun -N {n_nodes} -n {n_ranks}'`` where
  ``n_ranks: '{processes_per_node}*{n_nodes}'``);
* **arithmetic-aware** — after substitution, a value that is a pure
  arithmetic expression is evaluated (``'8*2'`` → ``'16'``), which is how
  Ramble derives rank counts from node counts;
* **cycle-checked** — self-referential definitions raise instead of hanging.
"""

from __future__ import annotations

import ast
import operator
import re
from typing import Any, Dict, Mapping, Optional, Set

__all__ = ["Expander", "ExpansionError"]

_REF_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")

_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}
_UNARYOPS = {ast.UAdd: operator.pos, ast.USub: operator.neg}


class ExpansionError(KeyError):
    """Undefined variable, cycle, or malformed arithmetic."""


def _safe_eval(text: str) -> Optional[Any]:
    """Evaluate a pure-arithmetic expression; None if it isn't one."""
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError:
        return None
    except ValueError:
        # compile() rejects lone surrogates with UnicodeEncodeError
        return None

    def ev(node):
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return node.value
        if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
            return _BINOPS[type(node.op)](ev(node.left), ev(node.right))
        if isinstance(node, ast.UnaryOp) and type(node.op) in _UNARYOPS:
            return _UNARYOPS[type(node.op)](ev(node.operand))
        raise ValueError("not arithmetic")

    try:
        return ev(tree)
    except (ValueError, ZeroDivisionError, TypeError, OverflowError):
        return None


class Expander:
    """Expands ``{var}`` references against a variable mapping."""

    def __init__(self, variables: Mapping[str, Any]):
        self.variables: Dict[str, Any] = dict(variables)

    def __contains__(self, name: str) -> bool:
        return name in self.variables

    def set(self, name: str, value: Any) -> None:
        self.variables[name] = value

    def expand_var(self, name: str) -> str:
        """Fully expand the variable ``name``."""
        if name not in self.variables:
            raise ExpansionError(f"undefined variable {name!r}")
        return self.expand(str(self.variables[name]), _active={name})

    def expand(self, text: str, _active: Optional[Set[str]] = None) -> str:
        """Fully expand a string, resolving references recursively and
        evaluating arithmetic once no references remain."""
        active = set(_active or ())
        out = self._expand_refs(str(text), active)
        if _is_arith_expr(out):
            return self._fmt(_safe_eval(out))
        return out

    def _expand_refs(self, text: str, active: Set[str]) -> str:
        def repl(m: re.Match) -> str:
            name = m.group(1)
            if name in active:
                raise ExpansionError(
                    f"cyclic variable definition involving {name!r}"
                )
            if name not in self.variables:
                raise ExpansionError(f"undefined variable {name!r}")
            inner = str(self.variables[name])
            expanded = self._expand_refs(inner, active | {name})
            val = _safe_eval(expanded)
            if val is not None and _is_arith_expr(expanded):
                return self._fmt(val)
            return expanded

        prev = None
        while prev != text:
            prev = text
            text = _REF_RE.sub(repl, text)
        return text

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    def expand_all(self) -> Dict[str, str]:
        """Expand every variable; handy for rendering full contexts."""
        return {name: self.expand_var(name) for name in self.variables}

    def copy_with(self, extra: Mapping[str, Any]) -> "Expander":
        merged = dict(self.variables)
        merged.update(extra)
        return Expander(merged)


def _is_arith_expr(text: str) -> bool:
    """True for strings like '8*2' or '3 + 4', not bare literals like '8'
    or '1.0.0' (version strings must survive expansion untouched)."""
    stripped = text.strip()
    if not any(op in stripped for op in "+-*/%"):
        return False
    # Avoid treating flag-like strings ('-n 8') or paths as arithmetic:
    return _safe_eval(stripped) is not None
