"""Experiment analysis — ``ramble workspace analyze`` (§3.2.5, §4.5).

Reads each experiment's output log, extracts every declared figure of merit
by regex, and evaluates success criteria.  Result records mirror Ramble's
``results.latest.json`` shape: per-experiment status
(SUCCESS / FAILED / NOT_RUN) plus a list of context-grouped FOM values.
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from .application import ApplicationBase, FigureOfMeritDef
from .expander import Expander

__all__ = ["analyze_experiment", "extract_foms", "ExperimentStatus"]


class ExperimentStatus:
    SUCCESS = "SUCCESS"
    FAILED = "FAILED"
    NOT_RUN = "NOT_RUN"


def _coerce(value: str) -> Any:
    """FOM values become numbers when they look like numbers."""
    try:
        f = float(value)
    except ValueError:
        return value
    if f.is_integer() and ("." not in value and "e" not in value.lower()):
        return int(f)
    return f


def extract_foms(app_cls: Type[ApplicationBase], text: str,
                 extra_foms: List[FigureOfMeritDef] = ()) -> List[Dict[str, Any]]:
    """All figure-of-merit matches in an output log.

    ``extra_foms`` come from active modifiers (hardware counters etc.) and
    are extracted alongside the application's own FOMs.
    """
    foms: List[Dict[str, Any]] = []
    for fom in list(app_cls.figures_of_merit.values()) + list(extra_foms):
        for value in fom.extract(text):
            foms.append(
                {
                    "name": fom.name,
                    "value": _coerce(value),
                    "units": fom.units,
                }
            )
    return foms


def analyze_experiment(app_cls: Type[ApplicationBase], experiment,
                       extra_foms: List[FigureOfMeritDef] = ()) -> Dict[str, Any]:
    """Analyze one :class:`~repro.ramble.workspace.Experiment`."""
    record: Dict[str, Any] = {
        "name": experiment.name,
        "application": experiment.application,
        "workload": experiment.workload,
        "n_ranks": experiment.variables.get("n_ranks"),
        "variables": dict(experiment.variables),
    }
    if not experiment.log_file.exists():
        record["status"] = ExperimentStatus.NOT_RUN
        record["figures_of_merit"] = []
        return record

    text = experiment.log_file.read_text()
    foms = extract_foms(app_cls, text, extra_foms)
    record["figures_of_merit"] = foms

    expander = Expander(experiment.variables)
    status = ExperimentStatus.SUCCESS
    criteria_results = []
    criteria = list(app_cls.success_criteria.values())
    # Experiment-specific criteria from ramble.yaml (Table 1 row 5's
    # Experiment column) ride along on the Experiment object.
    criteria += list(getattr(experiment, "success_criteria", []) or [])
    for crit in criteria:
        if crit.mode == "string":
            # The criterion may point at a specific file; ours all resolve
            # to the experiment log.
            target = expander.expand(crit.file)
            content = text
            if target != str(experiment.log_file):
                from pathlib import Path

                p = Path(target)
                content = p.read_text() if p.exists() else ""
            passed = crit.check_text(content)
        else:  # fom_comparison
            values = [f["value"] for f in foms if f["name"] == crit.fom_name]
            passed = crit.check_fom(values)
        criteria_results.append({"criterion": crit.name, "passed": passed})
        if not passed:
            status = ExperimentStatus.FAILED
    record["success_criteria"] = criteria_results
    record["status"] = status
    return record
