"""The Benchpark driver — the nine-step workflow of Figure 1c.

    1. user clones the Benchpark repository
    2. user runs Benchpark with a system profile + benchmark suite template
       (``/bin/benchpark $experiment $system $workspace_dir``)
    3. Benchpark clones Spack and Ramble
    4. Benchpark generates the workspace config
    5. user calls Ramble within the workspace (``ramble workspace setup``)
    6. Ramble uses Spack to build each benchmark
    7. Ramble renders batch experiment scripts
    8. user calls Ramble to submit/execute the scripts (``ramble on``)
    9. user calls Ramble to analyze output and extract metrics
       (``ramble workspace analyze``)

:func:`benchpark_setup` performs steps 2–4; :class:`BenchparkSession` wraps
the full loop (and is what the CLI, the examples, and the Figure 1 bench
drive).  Steps 5–9 delegate to the mini-Ramble workspace with the
per-system :class:`~repro.core.runtime.SpackRuntime`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

import yaml

from repro.ramble import Workspace
from repro.spack import BinaryCache
from repro.systems import SystemDescriptor, SystemExecutor, get_system

from .layout import (
    EXPERIMENT_VARIANTS,
    experiment_ramble_yaml,
    system_spack_yaml,
    system_variables_yaml,
)
from .runtime import SpackRuntime

__all__ = ["benchpark_setup", "BenchparkSession", "BenchparkError", "WORKFLOW_STEPS"]

WORKFLOW_STEPS = [
    "1: User clones Benchpark repository",
    "2: User runs Benchpark with a system profile and benchmark suite template",
    "3: Benchpark clones Spack and Ramble",
    "4: Benchpark generates workspace config",
    "5: User calls Ramble within workspace (ramble workspace setup)",
    "6: Ramble uses Spack to build each benchmark",
    "7: Ramble renders batch experiment scripts",
    "8: User calls Ramble to submit batch experiment scripts (ramble on)",
    "9: User calls Ramble to analyze output and extract metrics",
]


class BenchparkError(RuntimeError):
    pass


def _parse_experiment_id(experiment: str) -> tuple:
    """'saxpy/openmp' → (benchmark, variant); bare 'saxpy' picks the first
    declared variant."""
    benchmark, _, variant = experiment.partition("/")
    if benchmark not in EXPERIMENT_VARIANTS:
        raise BenchparkError(
            f"unknown benchmark {benchmark!r}; "
            f"known: {sorted(EXPERIMENT_VARIANTS)}"
        )
    if not variant:
        variant = EXPERIMENT_VARIANTS[benchmark][0]
    if variant not in EXPERIMENT_VARIANTS[benchmark]:
        raise BenchparkError(
            f"benchmark {benchmark!r} has no variant {variant!r}; "
            f"known: {EXPERIMENT_VARIANTS[benchmark]}"
        )
    return benchmark, variant


def benchpark_setup(experiment: str, system: str,
                    workspace_dir: Path | str,
                    log: Optional[List[str]] = None) -> "BenchparkSession":
    """Steps 2–4: create a ready-to-setup workspace for (experiment, system).

    ``experiment`` is ``<benchmark>[/<variant>]``, e.g. ``saxpy/openmp`` or
    ``amg2023/cuda`` — exactly the Figure 1a experiment directories.
    """
    steps = log if log is not None else []
    benchmark, variant = _parse_experiment_id(experiment)
    desc = get_system(system)  # raises on unknown system
    steps.append(WORKFLOW_STEPS[1])

    workspace_dir = Path(workspace_dir)
    # Step 3 — "Benchpark clones Spack and Ramble": offline, cloning means
    # provisioning the embedded substrates and recording their provenance.
    (workspace_dir / ".benchpark").mkdir(parents=True, exist_ok=True)
    (workspace_dir / ".benchpark" / "provenance.json").write_text(json.dumps({
        "spack": "repro.spack (embedded mini-Spack)",
        "ramble": "repro.ramble (embedded mini-Ramble)",
        "benchmark": benchmark,
        "variant": variant,
        "system": system,
    }, indent=2))
    steps.append(WORKFLOW_STEPS[2])

    # Step 4 — generate workspace config from the experiment template plus
    # the system profile.
    config = experiment_ramble_yaml(benchmark, variant, desc)
    # Inline the system variables instead of file includes: the workspace is
    # self-contained (Ramble's design goal, §3.2).
    config["ramble"].pop("include", None)
    variables = dict(config["ramble"].get("variables") or {})
    variables.update(system_variables_yaml(desc)["variables"])
    config["ramble"]["variables"] = variables
    # Inline the system-side spack.yaml package definitions (Figure 9) the
    # include would have provided — default-compiler, default-mpi.
    system_packages = system_spack_yaml(desc)["spack"]["packages"]
    spack_section = config["ramble"].setdefault("spack", {})
    merged_packages = dict(system_packages)
    merged_packages.update(spack_section.get("packages") or {})
    spack_section["packages"] = merged_packages
    ws = Workspace.create(workspace_dir, config=config)
    # Also drop per-system configs next to the workspace for inspection.
    configs_dir = workspace_dir / "configs" / desc.name
    configs_dir.mkdir(parents=True, exist_ok=True)
    (configs_dir / "variables.yaml").write_text(
        yaml.safe_dump(system_variables_yaml(desc), sort_keys=False))
    steps.append(WORKFLOW_STEPS[3])

    return BenchparkSession(ws, desc, benchmark, variant, steps)


class BenchparkSession:
    """A live (workspace, system) pair driving workflow steps 5–9."""

    def __init__(self, workspace: Workspace, system: SystemDescriptor,
                 benchmark: str, variant: str,
                 steps: Optional[List[str]] = None):
        self.workspace = workspace
        self.system = system
        self.benchmark = benchmark
        self.variant = variant
        self.steps: List[str] = steps if steps is not None else []
        self.runtime: Optional[SpackRuntime] = None
        self._build_results = []

    # -- step 5 + 6: ramble workspace setup ------------------------------
    def setup(self, binary_cache: Optional[BinaryCache] = None):
        self.runtime = SpackRuntime(
            self.system,
            store_root=self.workspace.path / "software" / "store",
            binary_cache=binary_cache,
        )
        self.steps.append(WORKFLOW_STEPS[4])
        experiments = self.workspace.setup(spack_runtime=self.runtime)
        self.steps.append(WORKFLOW_STEPS[5])
        self.steps.append(WORKFLOW_STEPS[6])
        return experiments

    # -- step 8: ramble on ------------------------------------------------
    def run(self, executor=None) -> List[Dict[str, Any]]:
        """Execute the workspace.  ``executor`` defaults to a plain
        :class:`SystemExecutor`; the continuous-benchmarking loop passes a
        :class:`~repro.resilience.FaultTolerantExecutor` here instead."""
        if not self.workspace.experiments:
            raise BenchparkError("run before setup(); call setup() first")
        outcomes = self.workspace.run(executor or SystemExecutor(self.system))
        self.steps.append(WORKFLOW_STEPS[7])
        return outcomes

    # -- step 9: ramble workspace analyze ---------------------------------
    def analyze(self) -> Dict[str, Any]:
        results = self.workspace.analyze()
        self.steps.append(WORKFLOW_STEPS[8])
        return results

    def run_all(self, binary_cache: Optional[BinaryCache] = None,
                executor=None) -> Dict[str, Any]:
        """Steps 5–9 in one call."""
        self.setup(binary_cache=binary_cache)
        self.run(executor=executor)
        return self.analyze()
