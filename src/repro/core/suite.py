"""Benchmark suite templates — Figure 1c step 2's "benchmark suite template".

A *suite* is a named collection of experiments that runs as a unit: the
artifact an HPC center hands to vendors during procurement (§1), or freezes
in time for acceptance testing (§7: benchmarks "being 'frozen' in time for
procurement purposes").  Suites are plain data — benchmark/variant pairs —
so they live in version control next to the experiment definitions, and a
suite run produces one workspace per experiment plus an aggregated result
set in the metrics database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.ci import MetricsDatabase

from .driver import BenchparkError, benchpark_setup
from .layout import EXPERIMENT_VARIANTS

__all__ = ["SuiteDefinition", "SuiteRun", "BUILTIN_SUITES", "get_suite", "run_suite"]


@dataclass(frozen=True)
class SuiteDefinition:
    """A named, versioned set of experiments."""

    name: str
    description: str
    experiments: tuple
    version: str = "1.0"

    def validate(self) -> None:
        if not self.experiments:
            raise BenchparkError(f"suite {self.name!r} has no experiments")
        for experiment in self.experiments:
            benchmark, _, variant = experiment.partition("/")
            if benchmark not in EXPERIMENT_VARIANTS:
                raise BenchparkError(
                    f"suite {self.name!r}: unknown benchmark {benchmark!r}"
                )
            if variant and variant not in EXPERIMENT_VARIANTS[benchmark]:
                raise BenchparkError(
                    f"suite {self.name!r}: {benchmark} has no variant {variant!r}"
                )


BUILTIN_SUITES: Dict[str, SuiteDefinition] = {
    suite.name: suite
    for suite in (
        SuiteDefinition(
            name="smoke",
            description="minimal correctness sweep (one tiny run per benchmark)",
            experiments=("saxpy/openmp", "stream/openmp"),
        ),
        SuiteDefinition(
            name="procurement",
            description="the paper's §4 demonstration set, frozen for "
                        "procurement-style evaluation",
            experiments=("saxpy/openmp", "amg2023/openmp",
                         "osu-micro-benchmarks/mpi"),
        ),
        SuiteDefinition(
            name="gpu-acceptance",
            description="GPU programming-model coverage for accelerated systems",
            experiments=("saxpy/cuda", "amg2023/cuda"),
        ),
    )
}


def get_suite(name: str) -> SuiteDefinition:
    try:
        suite = BUILTIN_SUITES[name]
    except KeyError:
        raise BenchparkError(
            f"unknown suite {name!r}; known: {sorted(BUILTIN_SUITES)}"
        ) from None
    suite.validate()
    return suite


@dataclass
class SuiteRun:
    """Outcome of running a suite on one system."""

    suite: SuiteDefinition
    system: str
    db: MetricsDatabase
    statuses: Dict[str, bool] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return bool(self.statuses) and all(self.statuses.values())

    def summary(self) -> str:
        lines = [
            f"suite {self.suite.name!r} v{self.suite.version} on {self.system}: "
            f"{'PASS' if self.passed else 'FAIL'}",
        ]
        for experiment, ok in self.statuses.items():
            lines.append(f"  {experiment:<30} {'ok' if ok else 'FAILED'}")
        lines.append(f"  {len(self.db)} FOM records collected")
        return "\n".join(lines)


def run_suite(
    suite_name: str,
    system: str,
    workdir: Path | str,
    db: Optional[MetricsDatabase] = None,
) -> SuiteRun:
    """Run every experiment of a suite on a system; FOMs land in one
    metrics database (shared across suites when passed in)."""
    suite = get_suite(suite_name)
    db = db if db is not None else MetricsDatabase()
    run = SuiteRun(suite=suite, system=system, db=db)
    workdir = Path(workdir)
    for experiment in suite.experiments:
        session = benchpark_setup(
            experiment, system, workdir / experiment.replace("/", "-")
        )
        results = session.run_all()
        db.ingest_analysis(system, results)
        run.statuses[experiment] = all(
            e["status"] == "SUCCESS" for e in results["experiments"]
        )
    return run
