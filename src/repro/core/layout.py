"""Benchpark repository layout — Figure 1a.

Generates and validates the four-subdirectory Benchpark tree::

    benchpark/           the driver script
      bin/benchpark.sh
    configs/             HPC System-specific
      <system>/compilers.yaml packages.yaml spack.yaml variables.yaml
    experiments/         Experiment-specific
      <benchmark>/<variant>/execute_experiment.tpl ramble.yaml
    repo/                Spack/Ramble overlay
      repo.yaml
      <benchmark>/application.py package.py

System config files are generated from the
:class:`~repro.systems.descriptor.SystemDescriptor` registry, so adding a
system to Benchpark is exactly "give a full specification of the system"
(§4) — one descriptor.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

import yaml

from repro.ramble.templates import DEFAULT_EXECUTE_TEMPLATE
from repro.systems import SYSTEMS, SystemDescriptor, get_system

__all__ = [
    "EXPERIMENT_VARIANTS",
    "generate_benchpark_tree",
    "system_compilers_yaml",
    "system_packages_yaml",
    "system_spack_yaml",
    "system_variables_yaml",
    "experiment_ramble_yaml",
    "validate_tree",
    "render_tree",
]

#: Which programming-model variants exist per benchmark (Figure 1a lines
#: 20-40 show amg2023/{cuda,openmp,rocm} and saxpy/{cuda,openmp,rocm}).
EXPERIMENT_VARIANTS: Dict[str, List[str]] = {
    "saxpy": ["openmp", "cuda", "rocm"],
    "amg2023": ["openmp", "cuda", "rocm"],
    "stream": ["openmp"],
    "osu-micro-benchmarks": ["mpi"],
    "quicksilver": ["openmp", "cuda"],
}

#: spack spec fragment per programming-model variant
_VARIANT_SPECS = {
    "openmp": "+openmp",
    "cuda": "+cuda cuda_arch=70 ~openmp",
    "rocm": "+rocm amdgpu_target=gfx90a ~openmp",
    "mpi": "",
}
_VARIANT_SPECS["cuda"] = "+cuda cuda_arch=70 ~openmp"

_BENCHMARK_BASE_SPECS = {
    "saxpy": "saxpy@1.0.0",
    "amg2023": "amg2023@1.2",
    "stream": "stream@5.10",
    "osu-micro-benchmarks": "osu-micro-benchmarks@7.2",
    "quicksilver": "quicksilver@1.0",
}


# ---------------------------------------------------------------------------
# system-specific config file generation (Table 1's System column)
# ---------------------------------------------------------------------------
def system_compilers_yaml(system: SystemDescriptor) -> Dict[str, Any]:
    return {
        "compilers": [
            {"compiler": dict(c, operating_system="linux",
                              target=system.cpu_target)}
            for c in system.compilers
        ]
    }


def system_packages_yaml(system: SystemDescriptor) -> Dict[str, Any]:
    return {"packages": dict(system.packages_config)}


def system_spack_yaml(system: SystemDescriptor) -> Dict[str, Any]:
    """Figure 9: named package definitions for this system."""
    compiler = system.compilers[0]["spec"] if system.compilers else "gcc@12.1.1"
    mpi_provider = _default_mpi_spec(system)
    packages = {
        "default-compiler": {"spack_spec": compiler},
        "default-mpi": {"spack_spec": mpi_provider},
    }
    return {"spack": {"packages": packages}}


def _default_mpi_spec(system: SystemDescriptor) -> str:
    providers = (
        (system.packages_config.get("mpi") or {}).get("providers", {}).get("mpi")
    )
    if providers:
        name = providers[0]
        externals = (system.packages_config.get(name) or {}).get("externals")
        if externals:
            return externals[0]["spec"]
        return name
    return "mvapich2@2.3.7"


def system_variables_yaml(system: SystemDescriptor) -> Dict[str, Any]:
    """Figure 12: scheduler and launcher commands for this system."""
    directives = {
        "slurm": ("#SBATCH -N {n_nodes}", "#SBATCH -n {n_ranks}",
                  "#SBATCH -t {batch_time}:00"),
        "lsf": ("#BSUB -nnodes {n_nodes}", "#BSUB -n {n_ranks}",
                "#BSUB -W {batch_time}"),
        "flux": ("# flux: -N {n_nodes}", "# flux: -n {n_ranks}",
                 "# flux: -t {batch_time}m"),
    }[system.scheduler]
    return {
        "variables": {
            "mpi_command": system.mpi_command,
            "batch_submit": system.batch_submit,
            "batch_nodes": directives[0],
            "batch_ranks": directives[1],
            "batch_timeout": directives[2],
        }
    }


# ---------------------------------------------------------------------------
# experiment-specific ramble.yaml generation (Table 1's Experiment column)
# ---------------------------------------------------------------------------
def experiment_ramble_yaml(benchmark: str, variant: str,
                           system: SystemDescriptor) -> Dict[str, Any]:
    if benchmark not in EXPERIMENT_VARIANTS:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; known: {sorted(EXPERIMENT_VARIANTS)}"
        )
    if variant not in EXPERIMENT_VARIANTS[benchmark]:
        raise KeyError(
            f"{benchmark} has no {variant!r} variant; "
            f"known: {EXPERIMENT_VARIANTS[benchmark]}"
        )
    spec = f"{_BENCHMARK_BASE_SPECS[benchmark]} {_VARIANT_SPECS[variant]}".strip()
    workloads = {
        "saxpy": ("problem", "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}",
                  {"processes_per_node": ["8", "4"], "n_nodes": ["1", "2"],
                   "n_threads": ["2", "4"], "n": ["512", "1024"]},
                  [{"size_threads": ["n", "n_threads"]}]),
        "amg2023": ("problem1", "amg_{n}_{n_nodes}_{n_ranks}",
                    {"processes_per_node": "8", "n_nodes": ["1", "2"],
                     "n": "10"}, [{"nodes": ["n_nodes"]}]),
        "stream": ("standard", "stream_{array_size}",
                   {"array_size": ["200000", "400000"], "n_nodes": "1"}, []),
        "osu-micro-benchmarks": (
            "collective", "osu_{collective}_{n_ranks}",
            {"collective": "bcast", "n_nodes": "1",
             "n_ranks": ["2", "4", "8"], "max_size": "65536"}, []),
        "quicksilver": ("slab", "qs_{n_particles}_{n_ranks}",
                        {"n_particles": "50000", "n_nodes": "1",
                         "n_ranks": ["1", "4"]},
                        [{"ranks": ["n_ranks"]}]),
    }[benchmark]
    wl_name, exp_template, exp_vars, matrices = workloads
    experiment: Dict[str, Any] = {"variables": exp_vars}
    if matrices:
        experiment["matrices"] = matrices
    return {
        "ramble": {
            "include": [
                f"./configs/{system.name}/spack.yaml",
                f"./configs/{system.name}/variables.yaml",
            ],
            "config": {"deprecated": True,
                       "spack_flags": {"install": "--add --keep-stage",
                                       "concretize": "-U -f"}},
            "applications": {
                benchmark: {
                    "workloads": {wl_name: {"experiments": {exp_template: experiment}}}
                }
            },
            "spack": {
                "packages": {
                    benchmark: {
                        "spack_spec": spec,
                        "compiler": "default-compiler",
                    }
                },
                "environments": {
                    benchmark: {"packages": ["default-mpi", benchmark]}
                },
            },
        }
    }


# ---------------------------------------------------------------------------
# tree generation / validation (Figure 1a)
# ---------------------------------------------------------------------------
DRIVER_SCRIPT = """\
#!/bin/bash
# Benchpark driver (Figure 1c step 2):
#   benchpark.sh $experiment $system $workspace_dir
exec python3 -m repro.core.cli setup "$@"
"""


def ci_config_for(benchmarks: List[str], systems: List[str]) -> str:
    """Generate the repository's ``.gitlab-ci.yml`` (Table 1 row 6,
    Benchmark-specific column): one build+bench job per (benchmark, system)
    pair, tagged so site runners pick up only their own system's jobs."""
    import yaml as _yaml

    config: Dict[str, Any] = {"stages": ["build", "bench"]}
    for benchmark in benchmarks:
        for system in systems:
            variant = EXPERIMENT_VARIANTS[benchmark][0]
            config[f"build-{benchmark}-{system}"] = {
                "stage": "build",
                "tags": [system],
                "script": [f"benchpark setup {benchmark}/{variant} {system} "
                           f"$CI_WORKSPACE"],
            }
            config[f"bench-{benchmark}-{system}"] = {
                "stage": "bench",
                "tags": [system],
                "script": [f"benchpark run $CI_WORKSPACE {system}",
                           f"benchpark analyze $CI_WORKSPACE"],
            }
    return _yaml.safe_dump(config, sort_keys=False)


def generate_benchpark_tree(
    root: Path | str,
    systems: Optional[List[str]] = None,
    benchmarks: Optional[List[str]] = None,
) -> Path:
    """Materialize the Figure 1a directory structure on disk."""
    root = Path(root)
    systems = systems or sorted(SYSTEMS)
    benchmarks = benchmarks or sorted(EXPERIMENT_VARIANTS)

    (root / "benchpark" / "bin").mkdir(parents=True, exist_ok=True)
    driver = root / "benchpark" / "bin" / "benchpark.sh"
    driver.write_text(DRIVER_SCRIPT)
    driver.chmod(0o755)

    for sys_name in systems:
        system = get_system(sys_name)
        sys_dir = root / "configs" / sys_name
        sys_dir.mkdir(parents=True, exist_ok=True)
        (sys_dir / "compilers.yaml").write_text(
            yaml.safe_dump(system_compilers_yaml(system), sort_keys=False))
        (sys_dir / "packages.yaml").write_text(
            yaml.safe_dump(system_packages_yaml(system), sort_keys=False))
        (sys_dir / "spack.yaml").write_text(
            yaml.safe_dump(system_spack_yaml(system), sort_keys=False))
        (sys_dir / "variables.yaml").write_text(
            yaml.safe_dump(system_variables_yaml(system), sort_keys=False))

    for benchmark in benchmarks:
        for variant in EXPERIMENT_VARIANTS[benchmark]:
            exp_dir = root / "experiments" / benchmark / variant
            exp_dir.mkdir(parents=True, exist_ok=True)
            (exp_dir / "execute_experiment.tpl").write_text(
                DEFAULT_EXECUTE_TEMPLATE)
            # the per-system include is resolved at workspace-generation
            # time; the stored template targets a placeholder system
            template_system = get_system(systems[0])
            (exp_dir / "ramble.yaml").write_text(yaml.safe_dump(
                experiment_ramble_yaml(benchmark, variant, template_system),
                sort_keys=False))

    # CI testing component (Table 1 row 6): the repository's pipeline file.
    (root / ".gitlab-ci.yml").write_text(ci_config_for(benchmarks, systems))

    repo_dir = root / "repo"
    repo_dir.mkdir(exist_ok=True)
    (repo_dir / "repo.yaml").write_text(
        yaml.safe_dump({"repo": {"namespace": "benchpark"}}))
    for benchmark in benchmarks:
        bdir = repo_dir / benchmark
        bdir.mkdir(exist_ok=True)
        (bdir / "application.py").write_text(
            f"# overlay: see repro.ramble.apps.{benchmark}\n"
            f"from repro.ramble.apps import builtin_applications\n"
            f"APPLICATION = builtin_applications().get({benchmark!r})\n")
        (bdir / "package.py").write_text(
            f"# overlay: see repro.spack.builtin\n"
            f"from repro.spack.repository import builtin_repo\n"
            f"PACKAGE = builtin_repo().get_class({benchmark!r})\n")
    return root


def validate_tree(root: Path | str,
                  systems: Optional[List[str]] = None,
                  benchmarks: Optional[List[str]] = None) -> List[str]:
    """Check a tree against Figure 1a; returns a list of problems
    (empty = valid)."""
    root = Path(root)
    systems = systems or sorted(SYSTEMS)
    benchmarks = benchmarks or sorted(EXPERIMENT_VARIANTS)
    problems = []
    if not (root / "benchpark" / "bin" / "benchpark.sh").exists():
        problems.append("missing benchpark/bin/benchpark.sh")
    for sys_name in systems:
        for fname in ("compilers.yaml", "packages.yaml", "spack.yaml",
                      "variables.yaml"):
            path = root / "configs" / sys_name / fname
            if not path.exists():
                problems.append(f"missing configs/{sys_name}/{fname}")
    for benchmark in benchmarks:
        for variant in EXPERIMENT_VARIANTS[benchmark]:
            for fname in ("ramble.yaml", "execute_experiment.tpl"):
                path = root / "experiments" / benchmark / variant / fname
                if not path.exists():
                    problems.append(
                        f"missing experiments/{benchmark}/{variant}/{fname}")
    if not (root / "repo" / "repo.yaml").exists():
        problems.append("missing repo/repo.yaml")
    return problems


def render_tree(root: Path | str, max_depth: int = 4) -> str:
    """ASCII rendering of the tree (the Figure 1a listing)."""
    root = Path(root)
    lines = [root.name or str(root)]

    def walk(directory: Path, prefix: str, depth: int) -> None:
        if depth > max_depth:
            return
        entries = sorted(directory.iterdir(), key=lambda p: (p.is_file(), p.name))
        for i, entry in enumerate(entries):
            connector = "└── " if i == len(entries) - 1 else "├── "
            lines.append(prefix + connector + entry.name)
            if entry.is_dir():
                extension = "    " if i == len(entries) - 1 else "│   "
                walk(entry, prefix + extension, depth + 1)

    walk(root, "", 1)
    return "\n".join(lines)
