"""Per-system Spack runtime — the bundle Benchpark hands to Ramble.

Couples a system's configuration scopes (compilers.yaml / packages.yaml,
§3.1.2), the archspec-detected target, a concretizer, a store, and an
installer (optionally backed by the shared binary cache) into one object
with the two methods the Ramble workspace needs:
``concretize_together(specs)`` and ``install(spec)``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.archspec import get_target
from repro.spack import (
    BinaryCache,
    BuildResult,
    CompilerRegistry,
    Concretizer,
    ConfigScope,
    Configuration,
    Installer,
    Spec,
    Store,
)
from repro.systems import SystemDescriptor

__all__ = ["SpackRuntime"]


class SpackRuntime:
    """Everything needed to build software for one system."""

    def __init__(self, system: SystemDescriptor, store_root: Path | str,
                 binary_cache: Optional[BinaryCache] = None):
        self.system = system
        scope = ConfigScope(
            f"system:{system.name}",
            {
                "packages": dict(system.packages_config),
                "compilers": [{"compiler": dict(c)} for c in system.compilers],
            },
        )
        self.config = Configuration(scope)
        compilers = CompilerRegistry.from_config(self.config)
        target = get_target(system.cpu_target)
        self.concretizer = Concretizer(
            config=self.config,
            compilers=compilers,
            default_target=target.name,
        )
        self.store = Store(store_root)
        self.installer = Installer(self.store, binary_cache=binary_cache)

    # -- the Ramble-facing interface ---------------------------------------
    def concretize_together(self, specs: List[Spec | str],
                            unify: bool = True) -> List[Spec]:
        return self.concretizer.concretize_together(list(specs), unify=unify)

    def install(self, spec: Spec) -> List[BuildResult]:
        return self.installer.install(spec)

    def optimization_flags(self, compiler: str, version: str) -> str:
        """archspec's role 1 (§3.1.3): flags tailored to this system."""
        return get_target(self.system.cpu_target).optimization_flags(
            compiler, version
        )
