"""The continuous-benchmarking loop itself.

§2: "Being able to automate the benchmarking process and store the results
of the evaluation before and after any changes to hardware, firmware,
drivers, or software will provide a deeper understanding of the impact of
these changes."

:class:`ContinuousBenchmarking` runs one (experiment, system) campaign per
*epoch* — a scheduled CI trigger in real Benchpark — against a system whose
health follows a :class:`~repro.systems.failures.FailureSchedule`, stores
every FOM in the metrics database tagged with its epoch, and scans the
accumulated history with a :class:`~repro.analysis.regression.RegressionDetector`.
The regression-tracking bench injects a DIMM degradation mid-history and
shows the loop localizing it in time.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.engine import AnalysisEngine
from repro.analysis.regression import RegressionDetector, RegressionEvent
from repro.ci import MetricsDatabase
from repro.perf import ContentStore, Profiler, fingerprint
from repro.resilience import (
    CircuitBreakerRegistry,
    FaultTolerantExecutor,
    RetryPolicy,
    TransientFaultInjector,
)
from repro.systems import SystemExecutor, get_system
from repro.systems.failures import FailureSchedule

from .driver import benchpark_setup

__all__ = ["ContinuousBenchmarking"]

#: checkpoint schema version, bumped on incompatible layout changes
CHECKPOINT_VERSION = 1

#: FOMs worth tracking per benchmark, with their direction.
TRACKED_FOMS: Dict[str, List[tuple]] = {
    "saxpy": [("bandwidth", True), ("kernel_time", False)],
    "amg2023": [("fom_solve", True), ("fom_setup", True)],
    "stream": [("triad_bw", True), ("copy_bw", True)],
    "osu-micro-benchmarks": [("total_time", False)],
    "quicksilver": [("fom_segments", True)],
}


class ContinuousBenchmarking:
    """A long-running benchmarking loop for one experiment on one system."""

    def __init__(
        self,
        experiment: str,
        system: str,
        workdir: Path | str,
        schedule: Optional[FailureSchedule] = None,
        detector: Optional[RegressionDetector] = None,
        injector: Optional[TransientFaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breakers: Optional[CircuitBreakerRegistry] = None,
        resume: bool = True,
        incremental: bool = True,
        result_cache: Optional[ContentStore] = None,
    ):
        self.experiment = experiment
        self.system_name = system
        self.base_system = get_system(system)
        self.workdir = Path(workdir)
        self.schedule = schedule or FailureSchedule()
        self.detector = detector or RegressionDetector(threshold=0.10, window=2)
        self.injector = injector
        self.retry_policy = retry_policy
        self.breakers = breakers
        if self.breakers is None and injector is not None:
            self.breakers = CircuitBreakerRegistry()
        self.db = MetricsDatabase()
        self.epochs_run = 0
        #: content-addressed reuse of prior epoch results: an epoch whose
        #: inputs (experiment, effective system state, epoch index) finger-
        #: print to a previously *clean* run replays that run's results
        #: instead of re-executing.  Pass a shared/persisted ContentStore to
        #: let a re-run campaign reuse an earlier campaign's work.
        self.incremental = incremental
        self.result_cache = (
            result_cache if result_cache is not None
            else ContentStore("epoch-results")
        )
        self.profiler = Profiler()
        #: per-epoch resilience metadata: {epoch: {experiment: attempt info}}
        self.attempt_history: Dict[str, Dict[str, Any]] = {}
        if resume and self.checkpoint_path.exists():
            self._load_checkpoint()
        #: incremental analysis over the accumulated history: the columnar
        #: frame absorbs each epoch's appends in O(new) and per-series
        #: detector states make the post-epoch regression scan O(new)
        #: instead of a full history rescan — with events bit-identical to
        #: the batch path (the engine's contract).  Built after any
        #: checkpoint load so it wraps the restored database.
        self.analysis = AnalysisEngine(
            self.db,
            threshold=self.detector.threshold,
            window=self.detector.window,
            profiler=self.profiler,
        )

    @property
    def benchmark_name(self) -> str:
        return self.experiment.split("/")[0]

    # -- checkpoint / resume -------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        return self.workdir / "campaign_checkpoint.json"

    def _save_checkpoint(self) -> None:
        """Persist campaign state so a killed loop resumes where it died.
        Written via a temp file + rename so a kill mid-write leaves the
        previous checkpoint intact."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CHECKPOINT_VERSION,
            "experiment": self.experiment,
            "system": self.system_name,
            "epochs_run": self.epochs_run,
            "attempt_history": self.attempt_history,
            "records": self.db.to_records(),
            # additive key: older checkpoints (and readers) without it are
            # still version-1 compatible
            "result_cache": self.result_cache.snapshot(),
        }
        tmp = self.checkpoint_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(self.checkpoint_path)

    def _load_checkpoint(self) -> None:
        try:
            payload = json.loads(self.checkpoint_path.read_text())
        except json.JSONDecodeError as e:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} is corrupt ({e}); "
                f"delete it (or pass resume=False) to restart the campaign"
            ) from e
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} has version "
                f"{payload.get('version')}; expected {CHECKPOINT_VERSION}"
            )
        if (payload.get("experiment") != self.experiment
                or payload.get("system") != self.system_name):
            raise ValueError(
                f"checkpoint {self.checkpoint_path} is for "
                f"{payload.get('experiment')} on {payload.get('system')}, "
                f"not {self.experiment} on {self.system_name}"
            )
        self.epochs_run = int(payload["epochs_run"])
        self.attempt_history = dict(payload.get("attempt_history", {}))
        self.db = MetricsDatabase.from_records(payload["records"])
        snap = payload.get("result_cache")
        if snap:
            # restore() folds the checkpointed hit/miss counters into the
            # baseline, so a resumed campaign reports *cumulative* rates
            self.result_cache.restore(snap)

    # ------------------------------------------------------------------
    def _executor(self, system, epoch: int):
        inner = SystemExecutor(system, epoch=epoch)
        if (self.injector is None and self.retry_policy is None
                and self.breakers is None):
            return inner
        return FaultTolerantExecutor(
            inner, injector=self.injector, policy=self.retry_policy,
            breakers=self.breakers, runner_tag="continuous",
        )

    def _epoch_key(self, system, epoch: int) -> str:
        """Fingerprint of everything that determines an epoch's results:
        the experiment, the *effective* system state at this epoch (the
        failure schedule may have degraded it), and the epoch index itself
        — executors salt their measurement noise per epoch, so epoch N and
        epoch M of the same campaign legitimately differ and must never
        alias."""
        return fingerprint({
            "experiment": self.experiment,
            "system": system.to_dict(),
            "epoch": epoch,
        })

    @staticmethod
    def _epoch_is_clean(outcomes: List[Dict[str, Any]]) -> bool:
        """True when every run converged on its first attempt with no
        faults — the only results safe to serve from cache later.  A flaky
        or faulted epoch must re-execute on the next identical campaign."""
        for o in outcomes:
            if int(o.get("attempts", 1) or 1) != 1:
                return False
            if o.get("flaky"):
                return False
            if int(o.get("returncode", 0) or 0) != 0:
                return False
            if o.get("state", "completed") != "completed":
                return False
        return True

    def _replay_epoch(self, epoch: int, key: str, entry: Dict[str, Any]) -> int:
        """Serve one epoch from the result cache: identical inputs already
        produced these results, so ingest them directly — tagged with
        provenance — instead of re-running setup/run/analyze."""
        with self.profiler.timer("epoch:replay"):
            results = copy.deepcopy(entry["results"])
            for exp in results["experiments"]:
                variables = exp.setdefault("variables", {})
                variables["epoch"] = str(epoch)
                variables["attempts"] = "1"
                variables["flaky"] = "false"
                variables["cached"] = "true"
                variables["cache_provenance"] = (
                    f"replayed clean epoch {entry['epoch']} "
                    f"(fingerprint {key})"
                )
            count = self.db.ingest_analysis(self.system_name, results)
            self.epochs_run += 1
            self._save_checkpoint()
        return count

    def run_epoch(self) -> int:
        """One scheduled benchmarking run; returns FOMs recorded.

        With ``incremental=True`` (the default), the epoch's inputs are
        fingerprinted first; if an identical epoch already ran cleanly —
        e.g. this campaign was re-run with a shared or checkpoint-restored
        ``result_cache`` — its results are replayed instead of re-executing
        the benchmarks.  Flaky or faulted epochs are never cached, so a
        replay always stands for a deterministic, converged run.
        """
        epoch = self.epochs_run
        system = self.schedule.system_at(self.base_system, epoch)
        key = self._epoch_key(system, epoch) if self.incremental else None
        entry = self.result_cache.get(key) if key is not None else None
        if entry is not None:
            return self._replay_epoch(epoch, key, entry)
        with self.profiler.timer("epoch:setup"):
            session = benchpark_setup(
                self.experiment, self.system_name,
                self.workdir / f"epoch-{epoch}",
            )
            session.setup()
        with self.profiler.timer("epoch:run"):
            outcomes = session.run(executor=self._executor(system, epoch))
        with self.profiler.timer("epoch:analyze"):
            results = session.analyze()
        # Pristine copy for the cache *before* epoch tagging mutates the
        # payload — a later replay re-tags for its own epoch.
        pristine = copy.deepcopy(results)
        # Tag every record with its epoch for the time axis, plus the
        # attempt log so the analysis layer can tell converged samples from
        # retried (flaky) ones.
        by_name = {o.get("experiment"): o for o in outcomes}
        epoch_meta: Dict[str, Any] = {}
        for exp in results["experiments"]:
            variables = exp.setdefault("variables", {})
            variables["epoch"] = str(epoch)
            outcome = by_name.get(exp["name"], {})
            attempts = int(outcome.get("attempts", 1) or 1)
            flaky = bool(outcome.get("flaky", False))
            variables["attempts"] = str(attempts)
            variables["flaky"] = "true" if flaky else "false"
            if outcome.get("fault_kinds"):
                variables["fault_kinds"] = ",".join(outcome["fault_kinds"])
            if attempts != 1 or flaky:
                epoch_meta[exp["name"]] = {
                    "attempts": attempts,
                    "flaky": flaky,
                    "fault_kinds": list(outcome.get("fault_kinds", [])),
                    "total_backoff_s": float(
                        outcome.get("total_backoff_s", 0.0)
                    ),
                    "state": outcome.get("state", "completed"),
                }
        count = self.db.ingest_analysis(self.system_name, results)
        if epoch_meta:
            self.attempt_history[str(epoch)] = epoch_meta
        if key is not None and self._epoch_is_clean(outcomes):
            self.result_cache.put(key, {"results": pristine, "epoch": epoch})
        self.epochs_run += 1
        self._save_checkpoint()
        return count

    def run(self, epochs: int) -> "ContinuousBenchmarking":
        """Run ``epochs`` *additional* epochs."""
        for _ in range(epochs):
            self.run_epoch()
        return self

    def run_until(self, total_epochs: int) -> "ContinuousBenchmarking":
        """Run until ``total_epochs`` epochs exist — the resumable entry
        point: after a kill, a fresh loop picks up the checkpoint and only
        runs the missing epochs."""
        while self.epochs_run < total_epochs:
            self.run_epoch()
        return self

    # ------------------------------------------------------------------
    def regressions(self) -> List[RegressionEvent]:
        """Scan the accumulated history for every tracked FOM.

        Runs through the analysis engine: per-FOM series fan out over a
        thread pool and each consumes only samples recorded since its last
        scan, so the per-epoch cost stays O(new) as history grows.
        """
        return self.analysis.scan([
            (self.benchmark_name, self.system_name, fom_name, higher_is_better)
            for fom_name, higher_is_better in TRACKED_FOMS.get(
                self.benchmark_name, [])
        ])

    def history(self, fom_name: str) -> List[tuple]:
        """(epoch, mean value) series for one FOM."""
        import numpy as np

        raw = self.db.series(self.benchmark_name, self.system_name,
                             fom_name, "epoch")
        by_epoch: dict = {}
        for epoch, value in raw:
            by_epoch.setdefault(epoch, []).append(value)
        return [(e, float(np.mean(v))) for e, v in sorted(by_epoch.items())]

    def diagnose(self) -> List:
        """Name the suspected failing subsystem(s) from the cross-FOM
        regression fingerprint (§1: 'diagnosing hardware failures')."""
        from repro.analysis.diagnosis import diagnose

        monitored = [f for f, _ in TRACKED_FOMS.get(self.benchmark_name, [])]
        return diagnose(self.regressions(), monitored)

    def report(self) -> str:
        lines = [
            f"continuous benchmarking: {self.experiment} on {self.system_name}",
            f"epochs run: {self.epochs_run}, records: {len(self.db)}",
        ]
        stats = self.result_cache.stats()
        if stats["lookups"]:
            lines.append(
                f"epoch result cache: {stats['hits']}/{stats['lookups']} "
                f"hit(s) ({stats['hit_rate']:.0%} cumulative), "
                f"{stats['entries']} cached epoch(s)"
            )
        if self.attempt_history:
            retried = sum(len(v) for v in self.attempt_history.values())
            lines.append(
                f"{retried} run(s) needed retries across epochs "
                f"{sorted(self.attempt_history)} "
                f"({self.db.flaky_count()} flaky sample(s) excluded from "
                f"regression analysis)"
            )
        events = self.regressions()
        if events:
            lines.append(f"{len(events)} regression(s) detected:")
            lines += [f"  {e}" for e in events]
            for hypothesis in self.diagnose():
                lines.append(f"  diagnosis: {hypothesis}")
        else:
            lines.append("no regressions detected")
        return "\n".join(lines)
