"""The continuous-benchmarking loop itself.

§2: "Being able to automate the benchmarking process and store the results
of the evaluation before and after any changes to hardware, firmware,
drivers, or software will provide a deeper understanding of the impact of
these changes."

:class:`ContinuousBenchmarking` runs one (experiment, system) campaign per
*epoch* — a scheduled CI trigger in real Benchpark — against a system whose
health follows a :class:`~repro.systems.failures.FailureSchedule`, stores
every FOM in the metrics database tagged with its epoch, and scans the
accumulated history with a :class:`~repro.analysis.regression.RegressionDetector`.
The regression-tracking bench injects a DIMM degradation mid-history and
shows the loop localizing it in time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.regression import RegressionDetector, RegressionEvent
from repro.ci import MetricsDatabase
from repro.systems import SystemExecutor, get_system
from repro.systems.failures import FailureSchedule

from .driver import benchpark_setup

__all__ = ["ContinuousBenchmarking"]

#: FOMs worth tracking per benchmark, with their direction.
TRACKED_FOMS: Dict[str, List[tuple]] = {
    "saxpy": [("bandwidth", True), ("kernel_time", False)],
    "amg2023": [("fom_solve", True), ("fom_setup", True)],
    "stream": [("triad_bw", True), ("copy_bw", True)],
    "osu-micro-benchmarks": [("total_time", False)],
    "quicksilver": [("fom_segments", True)],
}


class ContinuousBenchmarking:
    """A long-running benchmarking loop for one experiment on one system."""

    def __init__(
        self,
        experiment: str,
        system: str,
        workdir: Path | str,
        schedule: Optional[FailureSchedule] = None,
        detector: Optional[RegressionDetector] = None,
    ):
        self.experiment = experiment
        self.system_name = system
        self.base_system = get_system(system)
        self.workdir = Path(workdir)
        self.schedule = schedule or FailureSchedule()
        self.detector = detector or RegressionDetector(threshold=0.10, window=2)
        self.db = MetricsDatabase()
        self.epochs_run = 0

    @property
    def benchmark_name(self) -> str:
        return self.experiment.split("/")[0]

    # ------------------------------------------------------------------
    def run_epoch(self) -> int:
        """One scheduled benchmarking run; returns FOMs recorded."""
        epoch = self.epochs_run
        system = self.schedule.system_at(self.base_system, epoch)
        session = benchpark_setup(
            self.experiment, self.system_name,
            self.workdir / f"epoch-{epoch}",
        )
        session.setup()
        session.workspace.run(SystemExecutor(system, epoch=epoch))
        results = session.analyze()
        # Tag every record with its epoch for the time axis.
        for exp in results["experiments"]:
            exp.setdefault("variables", {})["epoch"] = str(epoch)
        count = self.db.ingest_analysis(self.system_name, results)
        self.epochs_run += 1
        return count

    def run(self, epochs: int) -> "ContinuousBenchmarking":
        for _ in range(epochs):
            self.run_epoch()
        return self

    # ------------------------------------------------------------------
    def regressions(self) -> List[RegressionEvent]:
        """Scan the accumulated history for every tracked FOM."""
        events: List[RegressionEvent] = []
        for fom_name, higher_is_better in TRACKED_FOMS.get(
            self.benchmark_name, []
        ):
            detector = RegressionDetector(
                threshold=self.detector.threshold,
                window=self.detector.window,
                higher_is_better=higher_is_better,
            )
            events.extend(detector.detect_in_db(
                self.db, self.benchmark_name, self.system_name, fom_name,
            ))
        return sorted(events, key=lambda e: e.epoch)

    def history(self, fom_name: str) -> List[tuple]:
        """(epoch, mean value) series for one FOM."""
        import numpy as np

        raw = self.db.series(self.benchmark_name, self.system_name,
                             fom_name, "epoch")
        by_epoch: dict = {}
        for epoch, value in raw:
            by_epoch.setdefault(epoch, []).append(value)
        return [(e, float(np.mean(v))) for e, v in sorted(by_epoch.items())]

    def diagnose(self) -> List:
        """Name the suspected failing subsystem(s) from the cross-FOM
        regression fingerprint (§1: 'diagnosing hardware failures')."""
        from repro.analysis.diagnosis import diagnose

        monitored = [f for f, _ in TRACKED_FOMS.get(self.benchmark_name, [])]
        return diagnose(self.regressions(), monitored)

    def report(self) -> str:
        lines = [
            f"continuous benchmarking: {self.experiment} on {self.system_name}",
            f"epochs run: {self.epochs_run}, records: {len(self.db)}",
        ]
        events = self.regressions()
        if events:
            lines.append(f"{len(events)} regression(s) detected:")
            lines += [f"  {e}" for e in events]
            for hypothesis in self.diagnose():
                lines.append(f"  diagnosis: {hypothesis}")
        else:
            lines.append("no regressions detected")
        return "\n".join(lines)
