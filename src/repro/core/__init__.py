"""Benchpark — the paper's primary contribution: the component model
(Table 1), repository layout (Figure 1a), the driver and nine-step workflow
(Figure 1c), the per-system Spack runtime, and the CLI."""

from .components import TABLE1, render_table1, verify_cells
from .continuous import ContinuousBenchmarking
from .driver import BenchparkError, BenchparkSession, WORKFLOW_STEPS, benchpark_setup
from .layout import (
    EXPERIMENT_VARIANTS,
    ci_config_for,
    experiment_ramble_yaml,
    generate_benchpark_tree,
    render_tree,
    validate_tree,
)
from .runtime import SpackRuntime
from .suite import BUILTIN_SUITES, SuiteDefinition, SuiteRun, get_suite, run_suite

__all__ = [
    "BenchparkError",
    "BenchparkSession",
    "ContinuousBenchmarking",
    "EXPERIMENT_VARIANTS",
    "SpackRuntime",
    "TABLE1",
    "WORKFLOW_STEPS",
    "benchpark_setup",
    "ci_config_for",
    "experiment_ramble_yaml",
    "generate_benchpark_tree",
    "BUILTIN_SUITES",
    "SuiteDefinition",
    "SuiteRun",
    "get_suite",
    "render_table1",
    "run_suite",
    "render_tree",
    "validate_tree",
    "verify_cells",
]
