"""The Benchpark component model — Table 1 of the paper.

Benchpark's central design idea is **orthogonalization**: every artifact in
the system is *benchmark-specific*, *system-specific*, or
*experiment-specific*, and the six benchmarking concerns (source code, build
instructions, benchmark input, run instructions, experiment evaluation, CI
testing) each draw from all three axes.  This module encodes that matrix and
verifies, introspectively, that our implementation provides each cell — the
regenerated Table 1 is printed from here by ``benchmarks/bench_table1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

__all__ = ["Axis", "ComponentCell", "TABLE1", "render_table1", "verify_cells"]


class Axis:
    BENCHMARK = "Benchmark-specific"
    SYSTEM = "HPC System-specific"
    EXPERIMENT = "Experiment-specific"


@dataclass(frozen=True)
class ComponentCell:
    """One cell of Table 1: which artifact covers (component, axis), and
    which of our modules implements it."""

    component: str
    axis: str
    artifact: str
    module: str
    check: Callable[[], bool]


def _importable(path: str) -> Callable[[], bool]:
    def check() -> bool:
        import importlib

        module, _, attr = path.partition(":")
        mod = importlib.import_module(module)
        return hasattr(mod, attr) if attr else True

    return check


#: Rows of Table 1 in paper order.
COMPONENT_ORDER = [
    "1 Source code",
    "2 Build instructions",
    "3 Benchmark input",
    "4 Run instructions",
    "5 Experiment evaluation",
    "6 CI testing",
]

TABLE1: List[ComponentCell] = [
    # 1 — Source code
    ComponentCell("1 Source code", Axis.BENCHMARK, "package.py",
                  "repro.spack.package:PackageBase",
                  _importable("repro.spack.package:PackageBase")),
    ComponentCell("1 Source code", Axis.SYSTEM, "archspec (Sec. 3.1.3)",
                  "repro.archspec:get_target",
                  _importable("repro.archspec:get_target")),
    ComponentCell("1 Source code", Axis.EXPERIMENT, "ramble.yaml: spack",
                  "repro.ramble.software:resolve_environment",
                  _importable("repro.ramble.software:resolve_environment")),
    # 2 — Build instructions
    ComponentCell("2 Build instructions", Axis.BENCHMARK, "package.py",
                  "repro.spack.installer:Installer",
                  _importable("repro.spack.installer:Installer")),
    ComponentCell("2 Build instructions", Axis.SYSTEM,
                  "Spack config. files, spack.yaml",
                  "repro.spack.config:Configuration",
                  _importable("repro.spack.config:Configuration")),
    ComponentCell("2 Build instructions", Axis.EXPERIMENT, "ramble.yaml: spack",
                  "repro.ramble.software:merge_spack_sections",
                  _importable("repro.ramble.software:merge_spack_sections")),
    # 3 — Benchmark input
    ComponentCell("3 Benchmark input", Axis.BENCHMARK,
                  "application.py, (optional) data",
                  "repro.ramble.application:workload_variable",
                  _importable("repro.ramble.application:workload_variable")),
    ComponentCell("3 Benchmark input", Axis.SYSTEM, "variables.yaml",
                  "repro.core.layout:system_variables_yaml",
                  _importable("repro.core.layout:system_variables_yaml")),
    ComponentCell("3 Benchmark input", Axis.EXPERIMENT,
                  "ramble.yaml: experiments",
                  "repro.ramble.matrices:expand_matrix",
                  _importable("repro.ramble.matrices:expand_matrix")),
    # 4 — Run instructions
    ComponentCell("4 Run instructions", Axis.BENCHMARK, "application.py",
                  "repro.ramble.application:executable",
                  _importable("repro.ramble.application:executable")),
    ComponentCell("4 Run instructions", Axis.SYSTEM,
                  "variables.yaml: scheduler, launcher",
                  "repro.systems.scheduler:BatchScheduler",
                  _importable("repro.systems.scheduler:BatchScheduler")),
    ComponentCell("4 Run instructions", Axis.EXPERIMENT,
                  "ramble.yaml: experiments",
                  "repro.ramble.workspace:Workspace",
                  _importable("repro.ramble.workspace:Workspace")),
    # 5 — Experiment evaluation
    ComponentCell("5 Experiment evaluation", Axis.BENCHMARK,
                  "(optional) application.py",
                  "repro.ramble.application:figure_of_merit",
                  _importable("repro.ramble.application:figure_of_merit")),
    ComponentCell("5 Experiment evaluation", Axis.SYSTEM,
                  "(optional) hardware counters, etc.",
                  "repro.ramble.modifiers:HardwareCountersModifier",
                  _importable("repro.ramble.modifiers:HardwareCountersModifier")),
    ComponentCell("5 Experiment evaluation", Axis.EXPERIMENT,
                  "ramble.yaml: success_criteria",
                  "repro.ramble.analysis:analyze_experiment",
                  _importable("repro.ramble.analysis:analyze_experiment")),
    # 6 — CI testing
    ComponentCell("6 CI testing", Axis.BENCHMARK, ".gitlab-ci.yml",
                  "repro.ci.pipeline:parse_ci_config",
                  _importable("repro.ci.pipeline:parse_ci_config")),
    ComponentCell("6 CI testing", Axis.SYSTEM, "Hubcast@LLNL/RIKEN/AWS/...",
                  "repro.ci.hubcast:Hubcast",
                  _importable("repro.ci.hubcast:Hubcast")),
    ComponentCell("6 CI testing", Axis.EXPERIMENT, "Benchpark executable",
                  "repro.core.driver:benchpark_setup",
                  _importable("repro.core.driver:benchpark_setup")),
]


def verify_cells() -> Dict[Tuple[str, str], bool]:
    """Run every cell's implementation check."""
    return {(c.component, c.axis): c.check() for c in TABLE1}


def render_table1() -> str:
    """Regenerate Table 1 as text, in the paper's layout."""
    axes = [Axis.BENCHMARK, Axis.SYSTEM, Axis.EXPERIMENT]
    cells = {(c.component, c.axis): c.artifact for c in TABLE1}
    widths = [26, 30, 36, 28]
    header = (
        f"{'Component':<{widths[0]}}"
        + "".join(f"{a:<{w}}" for a, w in zip(axes, widths[1:]))
    )
    lines = [
        "Table 1: Components of Benchpark, a collaborative continuous "
        "benchmark suite",
        header,
        "-" * len(header),
    ]
    for component in COMPONENT_ORDER:
        row = f"{component:<{widths[0]}}"
        for axis, w in zip(axes, widths[1:]):
            row += f"{cells[(component, axis)]:<{w}}"
        lines.append(row.rstrip())
    return "\n".join(lines)
