"""The ``benchpark`` command-line interface.

Mirrors the paper's Figure 1c step 2::

    benchpark setup <experiment> <system> <workspace_dir>

plus the obvious companions:

    benchpark list systems|benchmarks|experiments
    benchpark run <workspace_dir> <system>
    benchpark analyze <workspace_dir>
    benchpark tree <dir>            # generate the Figure 1a repo layout
    benchpark table1                # regenerate Table 1
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchpark",
        description="Collaborative continuous benchmarking for HPC "
                    "(SC-W 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_setup = sub.add_parser("setup", help="generate a workspace (Fig 1c steps 2-4)")
    p_setup.add_argument("experiment", help="<benchmark>[/<variant>], e.g. saxpy/openmp")
    p_setup.add_argument("system", help="system profile name, e.g. cts1")
    p_setup.add_argument("workspace_dir")
    p_setup.add_argument("--full", action="store_true",
                         help="also run setup/on/analyze (steps 5-9)")

    p_run = sub.add_parser("run", help="execute a prepared workspace (ramble on)")
    p_run.add_argument("workspace_dir")
    p_run.add_argument("system")

    p_analyze = sub.add_parser("analyze", help="extract FOMs (workspace analyze)")
    p_analyze.add_argument("workspace_dir")

    p_list = sub.add_parser("list", help="list known entities")
    p_list.add_argument("what", choices=("systems", "benchmarks", "experiments"))

    p_tree = sub.add_parser("tree", help="generate the Benchpark repo layout (Fig 1a)")
    p_tree.add_argument("directory")

    sub.add_parser("table1", help="print the regenerated Table 1")

    p_suite = sub.add_parser("suite", help="run a named benchmark suite")
    p_suite.add_argument("suite_name")
    p_suite.add_argument("system")
    p_suite.add_argument("workdir")

    p_report = sub.add_parser(
        "report", help="render the dashboard from a dumped metrics DB")
    p_report.add_argument("db_json", help="file written by MetricsDatabase.dump()")

    p_archive = sub.add_parser(
        "archive", help="bundle a workspace into a shareable manifest+results file")
    p_archive.add_argument("workspace_dir")
    p_archive.add_argument("output_json")

    p_restore = sub.add_parser(
        "restore", help="recreate a runnable workspace from an archive")
    p_restore.add_argument("archive_json")
    p_restore.add_argument("workspace_dir")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "setup":
        from .driver import BenchparkError, benchpark_setup

        try:
            session = benchpark_setup(args.experiment, args.system,
                                      args.workspace_dir)
        except (BenchparkError, KeyError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        for step in session.steps:
            print(step)
        if args.full:
            results = session.run_all()
            for step in session.steps[3:]:
                print(step)
            ok = all(e["status"] == "SUCCESS" for e in results["experiments"])
            print(f"{len(results['experiments'])} experiments, "
                  f"{'all SUCCESS' if ok else 'FAILURES present'}")
            return 0 if ok else 1
        print(f"workspace ready at {args.workspace_dir}")
        return 0

    if args.command == "run":
        from repro.ramble import Workspace
        from repro.systems import SystemExecutor, get_system

        ws = Workspace(args.workspace_dir)
        outcomes = ws.run(SystemExecutor(get_system(args.system)))
        bad = [o for o in outcomes if o["returncode"] != 0]
        print(f"ran {len(outcomes)} experiments, {len(bad)} failed")
        return 1 if bad else 0

    if args.command == "analyze":
        from repro.ramble import Workspace

        ws = Workspace(args.workspace_dir)
        results = ws.analyze()
        print(json.dumps(results, indent=2, sort_keys=True))
        return 0

    if args.command == "list":
        if args.what == "systems":
            from repro.systems import SYSTEMS

            for name, desc in sorted(SYSTEMS.items()):
                gpu = f" + {desc.gpu.count_per_node}x {desc.gpu.model}" if desc.gpu else ""
                print(f"{name:<12} {desc.site:<6} {desc.nodes} nodes, "
                      f"{desc.cores_per_node} cores ({desc.cpu_target}){gpu}")
        elif args.what == "benchmarks":
            from repro.ramble import builtin_applications

            for name in builtin_applications().all_names():
                print(name)
        else:
            from .layout import EXPERIMENT_VARIANTS

            for benchmark, variants in sorted(EXPERIMENT_VARIANTS.items()):
                for variant in variants:
                    print(f"{benchmark}/{variant}")
        return 0

    if args.command == "tree":
        from .layout import generate_benchpark_tree, render_tree

        root = generate_benchpark_tree(Path(args.directory))
        print(render_tree(root))
        return 0

    if args.command == "table1":
        from .components import render_table1

        print(render_table1())
        return 0

    if args.command == "report":
        from repro.analysis import render_report
        from repro.ci import MetricsDatabase

        try:
            db = MetricsDatabase.load(args.db_json)
        except (OSError, ValueError, KeyError) as e:
            print(f"error: cannot load {args.db_json}: {e}", file=sys.stderr)
            return 2
        print(render_report(db))
        return 0

    if args.command == "suite":
        from .driver import BenchparkError
        from .suite import run_suite

        try:
            run = run_suite(args.suite_name, args.system, args.workdir)
        except (BenchparkError, KeyError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(run.summary())
        return 0 if run.passed else 1

    if args.command == "archive":
        from repro.ramble import Workspace, archive_workspace, save_archive

        ws = Workspace(args.workspace_dir)
        bundle = archive_workspace(ws)
        save_archive(bundle, args.output_json)
        print(f"archived {len(bundle['experiments'])} experiments "
              f"(manifest {bundle['manifest_hash']}) to {args.output_json}")
        return 0

    if args.command == "restore":
        from repro.ramble import load_archive, restore_workspace
        from repro.ramble.archive import ArchiveError

        try:
            bundle = load_archive(args.archive_json)
        except (ArchiveError, OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        ws = restore_workspace(bundle, args.workspace_dir)
        experiments = ws.setup()
        print(f"restored workspace at {args.workspace_dir} with "
              f"{len(experiments)} experiments (manifest "
              f"{bundle['manifest_hash']})")
        return 0

    return 2  # unreachable


if __name__ == "__main__":
    sys.exit(main())
