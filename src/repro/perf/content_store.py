"""ContentStore — a generic content-addressed cache with hit/miss accounting.

Every incremental layer of the pipeline (memoized concretization, CI job
reuse, epoch-level result replay) shares this one primitive: a map from
:func:`repro.perf.fingerprint` digests to previously computed results, with
statistics good enough to gate CI on ("warm hit rate must stay ≥ 90%").

The store is thread-safe (the parallel installer and batch executor probe it
concurrently), optionally disk-backed, and snapshot/restorable so campaign
checkpoints can carry both the cached entries *and* the cumulative counters
across a kill/resume — a resumed campaign reports lifetime hit rates, not
per-resume ones.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ContentStore"]

_STAT_KEYS = ("hits", "misses", "puts")


class ContentStore:
    """In-memory (optionally disk-persisted) content-addressed cache."""

    def __init__(self, name: str = "store", path: Optional[Path | str] = None):
        self.name = name
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, Any] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: counters carried over from a prior life (checkpoint resume)
        self._baseline = {k: 0 for k in _STAT_KEYS}
        if self.path is not None and self.path.exists():
            self._entries = json.loads(self.path.read_text()).get("entries", {})

    # -- core map interface -------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``, counting the access as a hit or miss."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return default

    def peek(self, key: str, default: Any = None) -> Any:
        """Look up without touching the statistics."""
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: str, value: Any) -> Any:
        with self._lock:
            self._entries[key] = value
            self.puts += 1
            if self.path is not None:
                self._persist()
            return value

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset all counters (including baseline)."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.puts = 0
            self._baseline = {k: 0 for k in _STAT_KEYS}
            if self.path is not None:
                self._persist()

    # -- statistics -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Cumulative statistics (baseline from any restored snapshot plus
        this life's counters)."""
        with self._lock:
            hits = self.hits + self._baseline["hits"]
            misses = self.misses + self._baseline["misses"]
            lookups = hits + misses
            return {
                "name": self.name,
                "entries": len(self._entries),
                "hits": hits,
                "misses": misses,
                "puts": self.puts + self._baseline["puts"],
                "lookups": lookups,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }

    # -- checkpoint integration ---------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable dump of entries + cumulative counters."""
        with self._lock:
            stats = self.stats()
            return {
                "name": self.name,
                "entries": dict(self._entries),
                "stats": {k: stats[k] for k in _STAT_KEYS},
            }

    def restore(self, snapshot: Dict[str, Any]) -> "ContentStore":
        """Load a prior :meth:`snapshot`: entries are merged in and the
        snapshot's counters become the baseline, so :meth:`stats` reports
        lifetime totals across restarts."""
        with self._lock:
            self._entries.update(snapshot.get("entries", {}))
            prior = snapshot.get("stats", {})
            for k in _STAT_KEYS:
                self._baseline[k] += int(prior.get(k, 0))
            if self.path is not None:
                self._persist()
        return self

    # -- disk persistence -----------------------------------------------------
    def _persist(self) -> None:
        """Atomic write (tmp + rename) so a kill mid-write keeps the old file."""
        assert self.path is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps({"entries": self._entries}, sort_keys=True))
        tmp.replace(self.path)

    def __repr__(self):
        s = self.stats()
        return (f"ContentStore({self.name!r}, {s['entries']} entries, "
                f"{s['hits']}h/{s['misses']}m)")
