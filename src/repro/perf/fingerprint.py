"""Canonical content hashing — the key function of the incremental pipeline.

Benchpark's premise (paper §3) is *functional reproducibility*: identical
inputs — package recipes, system configurations, experiment specifications —
produce identical results.  :func:`fingerprint` turns that premise into an
addressable property: any object that describes an input to the pipeline can
be reduced to a stable hex digest, and two inputs with the same fingerprint
are interchangeable.  Every cache in :mod:`repro.perf` keys on these digests
(exaCB-style incremental evaluation; SCOPE keys results the same way).

Canonicalization rules:

* mappings are order-insensitive (sorted by canonicalized key);
* sets are sorted; lists/tuples preserve order;
* ``Spec``-like objects (anything with ``to_node_dict``) hash their full
  dependency DAG;
* package classes (anything class-like with ``pkg_name``) hash their entire
  recipe: versions, variants, dependencies, conflicts, provides, and the
  class source — so editing a recipe invalidates everything built from it;
* ``Path`` objects hash by *content* when they point at a file (a config
  file's fingerprint changes iff its bytes do, not when it moves);
* other objects fall back to ``to_dict()``/dataclass fields, then ``str``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "fingerprint",
    "canonicalize",
    "fingerprint_file",
    "package_signature",
]

#: default digest length (hex chars); 64 bits of collision resistance is
#: plenty for cache keys that also live in human-readable provenance fields
DIGEST_LEN = 16


def _hash_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _is_package_class(obj: Any) -> bool:
    """Duck-typed check for a mini-Spack package class (avoid importing
    repro.spack here — it imports us)."""
    return (
        isinstance(obj, type)
        and callable(getattr(obj, "pkg_name", None))
        and hasattr(obj, "variants")
        and hasattr(obj, "dependencies")
    )


def package_signature(cls: type) -> dict:
    """The full recipe of a package class as canonical data.

    Covers everything the concretizer and installer read from a recipe:
    declared versions (with preferred/deprecated flags), variant definitions,
    conditional dependencies, conflicts, provided virtuals, build system —
    plus the class source code, so a changed ``cmake_args`` hook invalidates
    builds even when the declared metadata is unchanged.
    """
    sig: dict = {
        "name": cls.pkg_name(),
        "build_system": getattr(cls, "build_system", ""),
        "versions": {
            str(v): {k: bool(m.get(k)) for k in ("preferred", "deprecated")}
            for v, m in getattr(cls, "versions", {}).items()
        },
        "variants": {
            name: {
                "default": canonicalize(vdef.default),
                "values": list(vdef.values) if vdef.values is not None else None,
                "multi": bool(vdef.multi),
            }
            for name, vdef in getattr(cls, "variants", {}).items()
        },
        "dependencies": {
            dname: [
                {
                    "spec": str(e["spec"]),
                    "when": str(e["when"]) if e.get("when") is not None else None,
                    "type": sorted(e.get("type", ())),
                }
                for e in entries
            ]
            for dname, entries in getattr(cls, "dependencies", {}).items()
        },
        "conflicts": [
            {
                "spec": str(r["spec"]),
                "when": str(r["when"]) if r.get("when") is not None else None,
            }
            for r in getattr(cls, "conflict_rules", [])
        ],
        "provides": {
            virtual: sorted(str(w) for w in whens if w is not None)
            for virtual, whens in getattr(cls, "provided", {}).items()
        },
    }
    try:
        sig["source"] = _hash_text(inspect.getsource(cls))
    except (OSError, TypeError):
        # dynamically created classes (tests) have no retrievable source;
        # the declared metadata above still distinguishes them
        sig["source"] = None
    return sig


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable canonical data (see module doc)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": hashlib.sha256(bytes(obj)).hexdigest()}
    if isinstance(obj, Path):
        return fingerprint_file(obj)
    if _is_package_class(obj):
        return {"__package__": package_signature(obj)}
    if isinstance(obj, Mapping):
        items = [
            [canonicalize(k), canonicalize(v)] for k, v in obj.items()
        ]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__map__": items}
    if isinstance(obj, (set, frozenset)):
        vals = [canonicalize(v) for v in obj]
        return {"__set__": sorted(vals, key=lambda v: json.dumps(v, sort_keys=True))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    # Spec-like: the node dict covers the full dependency DAG.
    to_node_dict = getattr(obj, "to_node_dict", None)
    if callable(to_node_dict):
        return {"__spec__": to_node_dict(deps=True)}
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return {"__obj__": canonicalize(to_dict())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__obj__": canonicalize(dataclasses.asdict(obj))}
    # Last resort: a stable string rendering (Version, CompilerSpec, enums).
    return {"__str__": f"{type(obj).__name__}:{obj}"}


def fingerprint(obj: Any, length: int = DIGEST_LEN) -> str:
    """Stable content hash of any pipeline input (hex, ``length`` chars)."""
    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return _hash_text(payload)[:length]


def fingerprint_file(path: Path | str, length: int = DIGEST_LEN) -> dict:
    """Canonical form of a filesystem path: content-addressed when the file
    exists (moving a config file does not invalidate; editing it does)."""
    path = Path(path)
    if path.is_file():
        return {"__file__": hashlib.sha256(path.read_bytes()).hexdigest()[:length]}
    return {"__path__": str(path)}
