"""Per-stage wall-time accounting for the pipeline hot path.

The incremental pipeline claims speedups; this is where the evidence comes
from.  A :class:`Profiler` records wall times per named stage
(``epoch:setup``, ``epoch:run``, ``epoch:replay`` …) and renders them as a
table or a JSON-able dict for bench artifacts.  Thread-safe so the parallel
installer's workers can record into one profiler.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List

__all__ = ["Profiler"]


class Profiler:
    """Accumulates wall-time samples per stage name."""

    def __init__(self):
        self._times: Dict[str, List[float]] = {}
        self._lock = threading.Lock()

    def record(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._times.setdefault(stage, []).append(float(seconds))

    @contextmanager
    def timer(self, stage: str):
        """``with profiler.timer("epoch:setup"): ...``"""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.record(stage, time.perf_counter() - t0)

    # -- queries -----------------------------------------------------------
    def stages(self) -> List[str]:
        with self._lock:
            return sorted(self._times)

    def total(self, stage: str) -> float:
        with self._lock:
            return sum(self._times.get(stage, ()))

    def count(self, stage: str) -> int:
        with self._lock:
            return len(self._times.get(stage, ()))

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            for stage, samples in sorted(self._times.items()):
                total = sum(samples)
                out[stage] = {
                    "count": len(samples),
                    "total_s": total,
                    "mean_s": total / len(samples),
                    "max_s": max(samples),
                }
            return out

    def merge(self, other: "Profiler") -> "Profiler":
        for stage, samples in other._times.items():
            with self._lock:
                self._times.setdefault(stage, []).extend(samples)
        return self

    def report(self) -> str:
        rows = self.to_dict()
        if not rows:
            return "profiler: no samples"
        width = max(len(s) for s in rows)
        lines = [f"{'stage'.ljust(width)}  count     total      mean"]
        for stage, r in rows.items():
            lines.append(
                f"{stage.ljust(width)}  {r['count']:5d}  {r['total_s']:8.4f}s "
                f"{r['mean_s']:8.5f}s"
            )
        return "\n".join(lines)

    def __repr__(self):
        return f"Profiler({len(self._times)} stages)"
