"""repro.perf — the incremental, content-addressed pipeline substrate.

Three primitives shared by every layer of the reproduction:

* :func:`fingerprint` — canonical content hashing of pipeline inputs
  (specs, configs, recipes, experiment definitions);
* :class:`ContentStore` — a thread-safe content-addressed cache with
  hit/miss statistics and checkpointable snapshots;
* :class:`Profiler` — per-stage wall-time accounting.

Built on them: memoized concretization (:mod:`repro.spack.concretizer`),
parallel DAG installs (:mod:`repro.spack.installer`), cached CI jobs
(:mod:`repro.ci.pipeline`), and epoch-level result reuse
(:mod:`repro.core.continuous`).
"""

from .content_store import ContentStore
from .fingerprint import canonicalize, fingerprint, fingerprint_file, package_signature
from .profiler import Profiler

__all__ = [
    "ContentStore",
    "Profiler",
    "canonicalize",
    "fingerprint",
    "fingerprint_file",
    "package_signature",
]
