"""Variant semantics for the mini-Spack substrate.

A *variant* is a named build option of a package.  Packages declare variants
with the :func:`repro.spack.package.variant` directive; specs constrain them
with ``+name`` / ``~name`` (boolean) or ``name=value`` / ``name=v1,v2``
(single- and multi-valued).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

__all__ = ["VariantDef", "VariantValue", "BoolValue", "normalize_value"]


class VariantDef:
    """Declaration of a variant in a package definition.

    Parameters mirror Spack's ``variant()`` directive: a default value, a
    human description, an optional set of allowed ``values``, and ``multi``
    for multi-valued variants.
    """

    def __init__(
        self,
        name: str,
        default: Any = False,
        description: str = "",
        values: Optional[Sequence[Any]] = None,
        multi: bool = False,
    ):
        self.name = name
        self.description = description
        self.multi = multi
        self.values = tuple(str(v) for v in values) if values is not None else None
        self.default = normalize_value(default, multi=multi)
        if isinstance(self.default, bool) and self.values is not None:
            raise ValueError(
                f"variant {name!r}: boolean default with explicit values"
            )

    @property
    def is_bool(self) -> bool:
        return isinstance(self.default, bool)

    def validate(self, value: "VariantValue") -> None:
        """Raise ValueError if ``value`` is not allowed for this variant."""
        if self.is_bool:
            if not isinstance(value, bool):
                raise ValueError(
                    f"variant {self.name!r} is boolean, got {value!r}"
                )
            return
        if isinstance(value, bool):
            raise ValueError(
                f"variant {self.name!r} is valued, got boolean {value!r}"
            )
        vals = value if isinstance(value, tuple) else (value,)
        if len(vals) > 1 and not self.multi:
            raise ValueError(
                f"variant {self.name!r} is single-valued, got {value!r}"
            )
        if self.values is not None:
            bad = [v for v in vals if v not in self.values]
            if bad:
                raise ValueError(
                    f"invalid value(s) {bad} for variant {self.name!r}; "
                    f"allowed: {list(self.values)}"
                )

    def __repr__(self):
        return f"VariantDef({self.name!r}, default={self.default!r}, multi={self.multi})"


#: The value of a variant on a spec: bool, a string, or a tuple of strings
#: (multi-valued, stored sorted for canonical form).
VariantValue = Union[bool, str, Tuple[str, ...]]

BoolValue = bool


def normalize_value(value: Any, multi: bool = False) -> VariantValue:
    """Canonicalize a raw variant value.

    Strings ``'True'``/``'False'`` become booleans; comma strings and
    iterables become sorted tuples when multi-valued.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        if value in ("True", "true", "TRUE"):
            return True
        if value in ("False", "false", "FALSE"):
            return False
        if "," in value:
            return tuple(sorted(v for v in value.split(",") if v))
        return (value,) if multi and not isinstance(value, tuple) else value
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(sorted(str(v) for v in value))
    return str(value)


def value_satisfies(have: VariantValue, want: VariantValue) -> bool:
    """True if a spec with variant value ``have`` satisfies constraint ``want``.

    Multi-valued semantics are superset semantics: ``foo=a,b`` satisfies
    ``foo=a``.
    """
    if isinstance(want, bool) or isinstance(have, bool):
        return have == want
    have_set = set(have) if isinstance(have, tuple) else {have}
    want_set = set(want) if isinstance(want, tuple) else {want}
    return want_set <= have_set


def value_intersects(a: VariantValue, b: VariantValue) -> bool:
    """True if some concrete value could satisfy both constraints."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    a_set = set(a) if isinstance(a, tuple) else {a}
    b_set = set(b) if isinstance(b, tuple) else {b}
    # Two single-valued constraints intersect only if equal; with tuples we
    # can always take the union for a multi-valued variant, so default True.
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    return True if (a_set | b_set) else False


def value_merge(a: VariantValue, b: VariantValue) -> VariantValue:
    """Merge two compatible constraints (union for multi-valued)."""
    if isinstance(a, bool) or isinstance(b, bool):
        if a != b:
            raise ValueError(f"conflicting boolean variant values: {a} vs {b}")
        return a
    a_set = set(a) if isinstance(a, tuple) else {a}
    b_set = set(b) if isinstance(b, tuple) else {b}
    merged = tuple(sorted(a_set | b_set))
    if isinstance(a, str) and isinstance(b, str):
        if a != b:
            raise ValueError(f"conflicting variant values: {a!r} vs {b!r}")
        return a
    return merged if len(merged) > 1 else merged[0]
