"""Configuration scopes — mini-Spack's layered YAML configuration (§3.1.2).

Spack merges configuration from an ordered list of *scopes* (defaults, site,
system, user, environment, command line).  Benchpark supplies per-system scope
directories containing ``compilers.yaml`` and ``packages.yaml`` (Figure 4).

Merge semantics follow Spack: higher-precedence scopes override scalar values
and prepend to lists; dictionaries merge recursively.  A key ending in ``::``
in the YAML replaces instead of merging (we expose that as ``replace=True``
sections).
"""

from __future__ import annotations

import copy
from pathlib import Path
from typing import Any, Dict, List, Optional

import yaml

from .parser import parse_spec
from .spec import Spec

__all__ = ["ConfigScope", "Configuration", "ExternalEntry", "ConfigError"]


class ConfigError(Exception):
    pass


def _merge(high: Any, low: Any) -> Any:
    """Merge ``high``-precedence data over ``low``."""
    if isinstance(high, dict) and isinstance(low, dict):
        out = dict(low)
        for key, hval in high.items():
            if key.endswith("::"):
                out[key[:-2]] = copy.deepcopy(hval)
            elif key in out:
                out[key] = _merge(hval, out[key])
            else:
                out[key] = copy.deepcopy(hval)
        return out
    if isinstance(high, list) and isinstance(low, list):
        return copy.deepcopy(high) + [x for x in low if x not in high]
    return copy.deepcopy(high)


class ConfigScope:
    """One named layer of configuration (a dict of section → data)."""

    def __init__(self, name: str, data: Optional[Dict[str, Any]] = None):
        self.name = name
        self.data: Dict[str, Any] = data or {}

    @classmethod
    def from_file(cls, name: str, path: Path | str) -> "ConfigScope":
        with open(path) as f:
            data = yaml.safe_load(f) or {}
        return cls(name, data)

    @classmethod
    def from_directory(cls, name: str, directory: Path | str) -> "ConfigScope":
        """Load every ``*.yaml`` in a scope directory; the file stem is the
        section name unless the file already has a single top-level section
        of the same name (Spack convention)."""
        directory = Path(directory)
        data: Dict[str, Any] = {}
        for path in sorted(directory.glob("*.yaml")):
            with open(path) as f:
                content = yaml.safe_load(f) or {}
            section = path.stem
            if isinstance(content, dict) and list(content.keys()) == [section]:
                content = content[section]
            data[section] = content
        return cls(name, data)

    def get(self, section: str) -> Any:
        return self.data.get(section)

    def set(self, section: str, value: Any) -> None:
        self.data[section] = value

    def __repr__(self):
        return f"ConfigScope({self.name!r}, sections={sorted(self.data)})"


class ExternalEntry:
    """A ``packages.yaml`` external: a preinstalled package on the system."""

    def __init__(self, spec: Spec, prefix: str):
        self.spec = spec
        self.prefix = prefix

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExternalEntry":
        return cls(parse_spec(d["spec"]), d["prefix"])

    def __repr__(self):
        return f"ExternalEntry({self.spec.format()!r} at {self.prefix!r})"


class Configuration:
    """An ordered stack of scopes; later scopes have higher precedence."""

    def __init__(self, *scopes: ConfigScope):
        self.scopes: List[ConfigScope] = list(scopes)

    def push_scope(self, scope: ConfigScope) -> None:
        self.scopes.append(scope)

    def pop_scope(self) -> ConfigScope:
        return self.scopes.pop()

    def get(self, section: str, default: Any = None) -> Any:
        """Merged view of a section across all scopes."""
        merged: Any = None
        for scope in self.scopes:  # low → high precedence
            val = scope.get(section)
            if val is None:
                continue
            merged = val if merged is None else _merge(val, merged)
        return merged if merged is not None else default

    def get_path(self, path: str, default: Any = None) -> Any:
        """Dotted-path lookup: ``config.get_path('packages.mpi.buildable')``."""
        section, _, rest = path.partition(".")
        data = self.get(section)
        for key in rest.split(".") if rest else []:
            if not isinstance(data, dict) or key not in data:
                return default
            data = data[key]
        return data if data is not None else default

    # -- packages.yaml helpers (Figure 4) ---------------------------------
    def externals_for(self, name: str) -> List[ExternalEntry]:
        pkgs = self.get("packages") or {}
        entry = pkgs.get(name) or {}
        return [ExternalEntry.from_dict(e) for e in entry.get("externals", [])]

    def is_buildable(self, name: str) -> bool:
        pkgs = self.get("packages") or {}
        entry = pkgs.get(name) or {}
        if "buildable" in entry:
            return bool(entry["buildable"])
        default = (pkgs.get("all") or {}).get("buildable", True)
        return bool(default)

    def preferred_variants(self, name: str) -> Optional[Spec]:
        pkgs = self.get("packages") or {}
        entry = pkgs.get(name) or {}
        variants = entry.get("variants")
        if not variants:
            return None
        text = " ".join(variants) if isinstance(variants, list) else str(variants)
        return parse_spec(f"{name} {text}" if not text.startswith(("+", "~")) else f"{name}{text}")

    def preferred_version_of(self, name: str) -> Optional[str]:
        pkgs = self.get("packages") or {}
        entry = pkgs.get(name) or {}
        versions = entry.get("version")
        if not versions:
            return None
        return str(versions[0] if isinstance(versions, list) else versions)

    def virtual_providers(self, virtual: str) -> List[str]:
        """Preferred providers for a virtual package, e.g. mpi → [mvapich2]."""
        pkgs = self.get("packages") or {}
        entry = pkgs.get(virtual) or pkgs.get("all") or {}
        providers = entry.get("providers", {})
        if isinstance(providers, dict):
            return [str(p) for p in providers.get(virtual, [])]
        return []

    # -- compilers.yaml helpers --------------------------------------------
    def compilers(self) -> List[Dict[str, Any]]:
        comp = self.get("compilers") or []
        return [c.get("compiler", c) for c in comp]

    def dump(self) -> str:
        merged = {}
        sections = set()
        for scope in self.scopes:
            sections.update(scope.data)
        for section in sorted(sections):
            merged[section] = self.get(section)
        return yaml.safe_dump(merged, sort_keys=True)

    def fingerprint(self) -> str:
        """Content hash of the fully merged configuration — the "config
        fingerprint" component of concretization memo keys.  Computed from
        the merged view, so two scope stacks that merge identically share a
        fingerprint (and a one-value edit to any packages.yaml changes it)."""
        from repro.perf import fingerprint as _fp

        merged = {}
        sections = set()
        for scope in self.scopes:
            sections.update(scope.data)
        for section in sorted(sections):
            merged[section] = self.get(section)
        return _fp(merged)
