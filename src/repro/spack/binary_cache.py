"""Binary cache / build mirror (§3.1 component 4, §7.2 "rolling binary cache").

The paper notes that Spack's build pipeline publishes a rolling binary cache
through Amazon CloudFront so users only build packages with special
requirements.  We model that with a content-addressed object store keyed by
DAG hash: ``push`` after a source build, ``fetch`` before building.

The backing store may be shared with the CI substrate's
:class:`repro.ci.objectstore.ObjectStore`, which is how the Figure 6
automation loop shares binaries between CI builders and benchmark runners.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Protocol

from .spec import Spec

__all__ = ["BinaryCache", "CacheStats"]


class _ObjectStore(Protocol):
    def put(self, key: str, data: bytes) -> None: ...
    def get(self, key: str) -> Optional[bytes]: ...
    def has(self, key: str) -> bool: ...


class _DictStore:
    """Default in-memory backend."""

    def __init__(self):
        self._data: Dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        self._data[key] = data

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def has(self, key: str) -> bool:
        return key in self._data

    def __len__(self):
        return len(self._data)


class CacheStats:
    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.pushes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self):
        return f"CacheStats(hits={self.hits}, misses={self.misses}, pushes={self.pushes})"


class BinaryCache:
    """Content-addressed cache of built package binaries."""

    def __init__(self, backend: Optional[_ObjectStore] = None):
        # `backend or _DictStore()` would discard an *empty* store whose
        # __len__ is 0 — compare against None explicitly.
        self.backend: _ObjectStore = backend if backend is not None else _DictStore()
        self.stats = CacheStats()

    @staticmethod
    def _key(spec: Spec) -> str:
        return f"buildcache/{spec.name}/{spec.dag_hash()}.spack"

    def push(self, spec: Spec, artifacts: Dict[str, str]) -> None:
        """Publish a built spec's artifacts to the cache."""
        payload = json.dumps(
            {"spec": spec.to_node_dict(deps=True), "artifacts": artifacts},
            sort_keys=True,
        ).encode()
        self.backend.put(self._key(spec), payload)
        self.stats.pushes += 1

    def has(self, spec: Spec) -> bool:
        return self.backend.has(self._key(spec))

    def fetch(self, spec: Spec) -> Optional[Dict[str, str]]:
        """Artifacts for a cached spec, or None (recording hit/miss stats)."""
        raw = self.backend.get(self._key(spec))
        if raw is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return json.loads(raw.decode())["artifacts"]
