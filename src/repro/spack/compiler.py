"""Compiler abstraction — entries from ``compilers.yaml`` (Figure 4, §3.1.2).

A :class:`Compiler` couples a :class:`~repro.spack.spec.CompilerSpec` with the
paths of its language frontends and the target operating system.  The
:class:`CompilerRegistry` answers the concretizer's "which compiler satisfies
``%gcc@12``?" queries.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .spec import CompilerSpec, SpecError

__all__ = ["Compiler", "CompilerRegistry", "CompilerNotFoundError"]


class CompilerNotFoundError(SpecError):
    pass


class Compiler:
    """A concrete compiler installation on a system."""

    def __init__(
        self,
        spec: CompilerSpec,
        cc: str = "",
        cxx: str = "",
        fc: str = "",
        operating_system: str = "linux",
        target: str = "x86_64",
        flags: Optional[Dict[str, str]] = None,
    ):
        if not spec.concrete:
            raise SpecError(f"compiler registration requires concrete version: {spec}")
        self.spec = spec
        self.cc = cc or f"/usr/bin/{spec.name}"
        self.cxx = cxx or f"/usr/bin/{spec.name}++"
        self.fc = fc
        self.operating_system = operating_system
        self.target = target
        self.flags = flags or {}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Compiler":
        spec = CompilerSpec.parse(d["spec"])
        paths = d.get("paths", {})
        return cls(
            spec,
            cc=paths.get("cc", ""),
            cxx=paths.get("cxx", ""),
            fc=paths.get("fc", ""),
            operating_system=d.get("operating_system", "linux"),
            target=d.get("target", "x86_64"),
            flags=d.get("flags", {}),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": str(self.spec),
            "paths": {"cc": self.cc, "cxx": self.cxx, "fc": self.fc},
            "operating_system": self.operating_system,
            "target": self.target,
            "flags": dict(self.flags),
        }

    def __repr__(self):
        return f"Compiler({self.spec})"


class CompilerRegistry:
    """All compilers known on a system (from its ``compilers.yaml``)."""

    def __init__(self, compilers: Iterable[Compiler] = ()):
        self._compilers: List[Compiler] = list(compilers)

    @classmethod
    def from_config(cls, config) -> "CompilerRegistry":
        return cls(Compiler.from_dict(c) for c in config.compilers())

    def add(self, compiler: Compiler) -> None:
        self._compilers.append(compiler)

    def all(self) -> List[Compiler]:
        return list(self._compilers)

    def find(self, constraint: Optional[CompilerSpec] = None) -> List[Compiler]:
        """All compilers satisfying ``constraint`` (all of them if None)."""
        if constraint is None:
            return list(self._compilers)
        return [c for c in self._compilers if c.spec.satisfies(constraint)]

    def best(self, constraint: Optional[CompilerSpec] = None) -> Compiler:
        """The compiler to use for a constraint.

        With a named constraint, the highest satisfying version wins.  With
        no constraint at all, the *first registered* compiler is the site
        default (compilers.yaml order) — comparing versions across vendors
        (gcc@12 vs intel@2021) would be meaningless.
        """
        matches = self.find(constraint)
        if not matches:
            raise CompilerNotFoundError(
                f"no compiler satisfies %{constraint}" if constraint
                else "no compilers registered"
            )
        if constraint is None:
            return matches[0]
        return max(matches, key=lambda c: c.spec.versions)  # type: ignore[arg-type]

    def __len__(self):
        return len(self._compilers)

    def __iter__(self):
        return iter(self._compilers)
