"""Parser for the Spack spec syntax (paper §3.1, component 1).

Grammar (simplified from Spack, sufficient for Benchpark)::

    spec        := node (dep)*
    dep         := '^' node
    node        := [name] clause*
    clause      := '@' versions | '+' ident | '~' ident | '-' ident
                 | '%' compiler | kvpair
    compiler    := ident ['@' versions]
    kvpair      := ident '=' value            # variant / target / platform
    versions    := version-constraint (',' version-constraint)*

Examples accepted::

    amg2023+caliper
    saxpy@1.0.0 +openmp ^cmake@3.23.1
    mvapich2@2.3.7-gcc12.1.1-magic
    hypre@2.28: %gcc@12.1.1 target=zen3 cflags=-O3
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional

from .spec import CompilerSpec, Spec, SpecError
from .variant import normalize_value
from .version import ver

__all__ = ["parse_spec", "parse_specs", "SpecParseError", "tokenize"]


class SpecParseError(SpecError):
    """Raised on invalid spec syntax, with position information."""

    def __init__(self, message: str, text: str, pos: int):
        marker = " " * pos + "^"
        super().__init__(f"{message}\n  {text}\n  {marker}")
        self.text = text
        self.pos = pos


class Token(NamedTuple):
    kind: str
    value: str
    pos: int


# Identifiers may contain dots and dashes (package names like
# ``intel-oneapi-mkl``, versions handled separately after '@').
_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("AT", r"@"),
    ("ON", r"\+"),
    ("OFF", r"~|(?<=\s)-(?=[a-zA-Z])"),
    ("PCT", r"%"),
    ("DEP", r"\^"),
    ("EQ", r"="),
    ("ID", r"[A-Za-z0-9_][A-Za-z0-9_.\-]*"),
    ("VAL", r"[^\s=^%+~]+"),
]
_MASTER_RE = re.compile("|".join(f"(?P<{k}>{p})" for k, p in _TOKEN_SPEC))


def tokenize(text: str) -> Iterator[Token]:
    pos = 0
    while pos < len(text):
        m = _MASTER_RE.match(text, pos)
        if not m:
            raise SpecParseError(f"unexpected character {text[pos]!r}", text, pos)
        kind = m.lastgroup
        assert kind is not None
        if kind != "WS":
            yield Token(kind, m.group(), pos)
        pos = m.end()


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = list(tokenize(text))
        self.i = 0

    def peek(self) -> Optional[Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise SpecParseError("unexpected end of spec", self.text, len(self.text))
        self.i += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise SpecParseError(
                f"expected {kind}, got {tok.kind} ({tok.value!r})", self.text, tok.pos
            )
        return tok

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Spec:
        root = self.parse_node(allow_anonymous=True)
        while True:
            tok = self.peek()
            if tok is None:
                break
            if tok.kind == "DEP":
                self.next()
                dep = self.parse_node(allow_anonymous=False)
                if dep.name == root.name:
                    raise SpecParseError(
                        f"package {root.name!r} cannot depend on itself",
                        self.text, tok.pos,
                    )
                root.dependencies[dep.name] = dep
            else:
                raise SpecParseError(
                    f"unexpected token {tok.value!r}", self.text, tok.pos
                )
        return root

    def parse_node(self, allow_anonymous: bool) -> Spec:
        spec = Spec()
        tok = self.peek()
        if tok is not None and tok.kind == "ID":
            nxt = self.tokens[self.i + 1] if self.i + 1 < len(self.tokens) else None
            if nxt is None or nxt.kind != "EQ":
                spec.name = self.next().value
        if not spec.name and not allow_anonymous:
            pos = tok.pos if tok else len(self.text)
            raise SpecParseError("dependency spec must be named", self.text, pos)

        while True:
            tok = self.peek()
            if tok is None or tok.kind == "DEP":
                break
            if tok.kind == "AT":
                self.next()
                vtok = self.next()
                if vtok.kind not in ("ID", "VAL"):
                    raise SpecParseError("expected version", self.text, vtok.pos)
                vtext = vtok.value
                # ranges like "2.28:" tokenize as a single ID because ':' is
                # allowed in VAL; handle trailing ':' glued into next token.
                if spec.versions is not None:
                    raise SpecParseError("duplicate '@'", self.text, tok.pos)
                try:
                    spec.versions = ver(vtext)
                except ValueError as e:
                    raise SpecParseError(str(e), self.text, vtok.pos) from e
            elif tok.kind == "ON":
                self.next()
                name = self.expect("ID").value
                spec.variants[name] = True
            elif tok.kind == "OFF":
                self.next()
                name = self.expect("ID").value
                spec.variants[name] = False
            elif tok.kind == "PCT":
                self.next()
                ctok = self.expect("ID")
                cname = ctok.value
                cversions = None
                nxt = self.peek()
                if nxt is not None and nxt.kind == "AT":
                    self.next()
                    vtok = self.next()
                    cversions = ver(vtok.value)
                if spec.compiler is not None:
                    raise SpecParseError("duplicate compiler", self.text, ctok.pos)
                spec.compiler = CompilerSpec(cname, cversions)
            elif tok.kind == "ID":
                nxt = self.tokens[self.i + 1] if self.i + 1 < len(self.tokens) else None
                if nxt is not None and nxt.kind == "EQ":
                    key = self.next().value
                    self.next()  # '='
                    vtok = self.next()
                    value = vtok.value
                    if key == "target":
                        spec.target = value
                    elif key == "platform":
                        spec.platform = value
                    else:
                        spec.variants[key] = normalize_value(value)
                else:
                    break  # next anonymous node — shouldn't happen at top level
            else:
                break
        return spec


# ':' appears in version ranges; widen ID to carry it when after '@' is hard
# in a single-pass lexer, so we post-process: allow ':' inside ID tokens.
_TOKEN_SPEC[7] = ("ID", r"[A-Za-z0-9_][A-Za-z0-9_.\-:,]*")
_MASTER_RE = re.compile("|".join(f"(?P<{k}>{p})" for k, p in _TOKEN_SPEC))


def parse_spec(text: str) -> Spec:
    """Parse a single spec string into a :class:`Spec`."""
    if not text or not text.strip():
        raise SpecParseError("empty spec", text or "", 0)
    parser = _Parser(text.strip())
    spec = parser.parse()
    # A name that ends with ':' or ',' came from greedy ID lexing of
    # versions; reject clearly.
    if spec.name and any(c in spec.name for c in ":,"):
        raise SpecParseError(f"invalid package name {spec.name!r}", text, 0)
    return spec


def parse_specs(text: str) -> List[Spec]:
    """Parse a whitespace-separated list of *named* specs.

    Unlike :func:`parse_spec`, each top-level name starts a new spec, which
    matches how ``spack install pkg1 pkg2`` parses its command line.
    """
    specs: List[Spec] = []
    for chunk in _split_top_level(text):
        specs.append(parse_spec(chunk))
    return specs


def _split_top_level(text: str) -> List[str]:
    """Split on whitespace that precedes a bare package name."""
    chunks: List[str] = []
    current: List[str] = []
    for word in text.split():
        starts_new = (
            bool(current)
            and word[0].isalnum()
            and "=" not in word.split("@")[0]
            and not word.startswith(("+", "~", "%", "^", "@", "-"))
        )
        if starts_new:
            chunks.append(" ".join(current))
            current = []
        current.append(word)
    if current:
        chunks.append(" ".join(current))
    return chunks
