"""The installation store — database of installed packages (§3.1, component 4).

A :class:`Store` is rooted at a directory; every installed spec gets a
prefix ``<root>/<name>-<version>-<hash7>`` containing its artifacts and a
``.spack/spec.json`` metadata record, plus an entry in the store-wide
``index.json`` database.  This mirrors Spack's opt/spack layout closely
enough for reuse detection, uninstall, and binary-cache round-trips.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from .spec import Spec, SpecError

__all__ = ["Store", "InstallRecord", "StoreError"]


class StoreError(SpecError):
    pass


class InstallRecord:
    """One row of the install database."""

    def __init__(self, spec: Spec, prefix: str, explicit: bool = False,
                 installed_from: str = "source", build_seconds: float = 0.0):
        self.spec = spec
        self.prefix = prefix
        self.explicit = explicit
        self.installed_from = installed_from  # "source" | "cache" | "external"
        self.build_seconds = build_seconds

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.to_node_dict(deps=True),
            "prefix": self.prefix,
            "explicit": self.explicit,
            "installed_from": self.installed_from,
            "build_seconds": self.build_seconds,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "InstallRecord":
        return cls(
            Spec.from_node_dict(d["spec"], concrete=True),
            d["prefix"],
            d.get("explicit", False),
            d.get("installed_from", "source"),
            d.get("build_seconds", 0.0),
        )


class Store:
    """Filesystem-backed installation database."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._records: Dict[str, InstallRecord] = {}
        self._load()

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _load(self) -> None:
        if self.index_path.exists():
            data = json.loads(self.index_path.read_text())
            for h, rec in data.get("installs", {}).items():
                self._records[h] = InstallRecord.from_dict(rec)

    def _flush(self) -> None:
        data = {"installs": {h: r.to_dict() for h, r in self._records.items()}}
        self.index_path.write_text(json.dumps(data, indent=2, sort_keys=True))

    # ------------------------------------------------------------------
    def prefix_for(self, spec: Spec) -> Path:
        if not spec.concrete:
            raise StoreError(f"cannot compute prefix of abstract spec {spec}")
        if spec.external:
            return Path(spec.external_path)  # type: ignore[arg-type]
        return self.root / f"{spec.name}-{spec.version}-{spec.dag_hash(7)}"

    def is_installed(self, spec: Spec) -> bool:
        if spec.external:
            return True
        return spec.dag_hash() in self._records

    def get_record(self, spec: Spec) -> Optional[InstallRecord]:
        return self._records.get(spec.dag_hash())

    def add(self, spec: Spec, explicit: bool = False,
            installed_from: str = "source", build_seconds: float = 0.0,
            artifacts: Optional[Dict[str, str]] = None) -> InstallRecord:
        """Register an installation, materializing its prefix on disk."""
        if not spec.concrete:
            raise StoreError(f"cannot install abstract spec {spec}")
        prefix = self.prefix_for(spec)
        if not spec.external:
            meta = prefix / ".spack"
            meta.mkdir(parents=True, exist_ok=True)
            (meta / "spec.json").write_text(
                json.dumps(spec.to_node_dict(deps=True), indent=2, sort_keys=True)
            )
            for rel, content in (artifacts or {}).items():
                path = prefix / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content)
        record = InstallRecord(spec, str(prefix), explicit=explicit,
                               installed_from=installed_from,
                               build_seconds=build_seconds)
        self._records[spec.dag_hash()] = record
        self._flush()
        return record

    def remove(self, spec: Spec) -> None:
        h = spec.dag_hash()
        if h not in self._records:
            raise StoreError(f"{spec.format()} is not installed")
        dependents = [
            r.spec.format()
            for r in self._records.values()
            if r.spec.dag_hash() != h
            and any(d.dag_hash() == h for d in r.spec.traverse(root=False))
        ]
        if dependents:
            raise StoreError(
                f"cannot uninstall {spec.format()}: required by {dependents}"
            )
        rec = self._records.pop(h)
        self._flush()
        prefix = Path(rec.prefix)
        if prefix.exists() and prefix.is_relative_to(self.root):
            import shutil

            shutil.rmtree(prefix)

    def all_records(self) -> List[InstallRecord]:
        return list(self._records.values())

    def query(self, constraint: Optional[Spec] = None) -> List[Spec]:
        """All installed specs satisfying ``constraint`` (all if None)."""
        specs = [r.spec for r in self._records.values()]
        if constraint is None:
            return sorted(specs, key=lambda s: s.name)
        return sorted(
            (s for s in specs if s.satisfies(constraint)), key=lambda s: s.name
        )

    def gc(self) -> List[Spec]:
        """Garbage-collect: remove installed specs that are neither
        explicit nor needed (transitively) by an explicit spec.  Returns
        the removed specs (``spack gc``)."""
        needed: set = set()
        for rec in self._records.values():
            if rec.explicit:
                for node in rec.spec.traverse():
                    needed.add(node.dag_hash())
        removed: List[Spec] = []
        # Iterate until stable: removing one orphan may orphan nothing else
        # here (we compute the full needed set up front), one pass suffices,
        # but dependents ordering matters for remove(); do leaves last.
        orphans = [
            rec.spec for h, rec in list(self._records.items()) if h not in needed
        ]
        # Remove dependents before their dependencies.
        for spec in sorted(
            orphans,
            key=lambda s: -len(list(s.traverse(root=False))),
        ):
            if spec.dag_hash() in self._records:
                self.remove(spec)
                removed.append(spec)
        return removed

    def __contains__(self, spec: Spec) -> bool:
        return self.is_installed(spec)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[InstallRecord]:
        return iter(self._records.values())
