"""Package definitions — the mini-Spack package DSL (paper §3.1, component 3).

A package file defines the *build space* of a package and a build recipe
templatized by the concrete spec, exactly like Spack's ``package.py``::

    class Saxpy(CMakePackage, CudaPackage, ROCmPackage):
        '''Test saxpy problem.'''

        version("1.0.0")
        variant("openmp", default=True, description="OpenMP")
        depends_on("cmake@3.20:", type="build")

        def cmake_args(self):
            args = []
            if "+openmp" in self.spec:
                args.append("-DUSE_OPENMP=ON")
            return args

Directives (``version``, ``variant``, ``depends_on``, ``conflicts``,
``provides``) may only appear in a class body; they register metadata on the
class being defined via a directive stack, mirroring Spack's DirectiveMeta.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .parser import parse_spec
from .spec import Spec, SpecError
from .variant import VariantDef
from .version import Version

__all__ = [
    "PackageBase",
    "Package",
    "MakefilePackage",
    "CMakePackage",
    "AutotoolsPackage",
    "PythonPackage",
    "BundlePackage",
    "CudaPackage",
    "ROCmPackage",
    "version",
    "variant",
    "depends_on",
    "conflicts",
    "provides",
    "maintainers",
    "PackageError",
    "ConflictError",
]


class PackageError(SpecError):
    """Problem in a package definition or build."""


class ConflictError(PackageError):
    """A concretized spec violates a declared conflict."""


class _Directive:
    """A deferred directive, applied when the class body finishes."""

    def __init__(self, apply_fn: Callable[[type], None]):
        self.apply_fn = apply_fn


_directive_stack: List[_Directive] = []


def version(ver_string: str, sha256: Optional[str] = None, preferred: bool = False,
            deprecated: bool = False) -> None:
    """Declare an available version of the package."""
    v = Version(str(ver_string))

    def apply(cls):
        cls.versions[v] = {
            "sha256": sha256,
            "preferred": preferred,
            "deprecated": deprecated,
        }

    _directive_stack.append(_Directive(apply))


def variant(name: str, default=False, description: str = "",
            values: Optional[Sequence] = None, multi: bool = False) -> None:
    """Declare a build variant."""
    vdef = VariantDef(name, default=default, description=description,
                      values=values, multi=multi)

    def apply(cls):
        cls.variants[name] = vdef

    _directive_stack.append(_Directive(apply))


def depends_on(spec_string: str, when: Optional[str] = None,
               type: Tuple[str, ...] | str = ("build", "link")) -> None:
    """Declare a dependency; ``when`` restricts it to matching specs."""
    dep_spec = parse_spec(spec_string)
    when_spec = parse_spec(when) if when else None
    dep_types = (type,) if isinstance(type, str) else tuple(type)

    def apply(cls):
        cls.dependencies.setdefault(dep_spec.name, []).append(
            {"spec": dep_spec, "when": when_spec, "type": dep_types}
        )

    _directive_stack.append(_Directive(apply))


def conflicts(spec_string: str, when: Optional[str] = None, msg: str = "") -> None:
    """Declare that specs matching ``spec_string`` cannot be built
    (optionally only ``when`` a condition holds)."""
    conflict_spec = parse_spec(spec_string)
    when_spec = parse_spec(when) if when else None

    def apply(cls):
        cls.conflict_rules.append({"spec": conflict_spec, "when": when_spec, "msg": msg})

    _directive_stack.append(_Directive(apply))


def provides(virtual: str, when: Optional[str] = None) -> None:
    """Declare that this package provides a virtual package (e.g. ``mpi``)."""
    when_spec = parse_spec(when) if when else None

    def apply(cls):
        cls.provided.setdefault(virtual, []).append(when_spec)

    _directive_stack.append(_Directive(apply))


def maintainers(*names: str) -> None:
    def apply(cls):
        cls.maintainer_list.extend(names)

    _directive_stack.append(_Directive(apply))


class PackageMeta(type):
    """Collects directives issued in the class body onto the new class."""

    def __new__(mcs, name, bases, attrs):
        cls = super().__new__(mcs, name, bases, attrs)
        # Fresh copies so subclasses don't mutate parents; start from
        # accumulated parent metadata (multiple inheritance merges).
        cls.versions = {}
        cls.variants = {}
        cls.dependencies = {}
        cls.conflict_rules = []
        cls.provided = {}
        cls.maintainer_list = []
        for base in reversed(bases):
            cls.versions.update(getattr(base, "versions", {}))
            cls.variants.update(getattr(base, "variants", {}))
            for dname, lst in getattr(base, "dependencies", {}).items():
                cls.dependencies.setdefault(dname, []).extend(lst)
            cls.conflict_rules.extend(getattr(base, "conflict_rules", []))
            for vname, lst in getattr(base, "provided", {}).items():
                cls.provided.setdefault(vname, []).extend(lst)
            cls.maintainer_list.extend(getattr(base, "maintainer_list", []))
        global _directive_stack
        pending, _directive_stack = _directive_stack, []
        for directive in pending:
            directive.apply_fn(cls)
        return cls


class PackageBase(metaclass=PackageMeta):
    """Base class for all packages.

    Subclass attributes populated by directives:

    * ``versions`` — {Version: metadata}
    * ``variants`` — {name: VariantDef}
    * ``dependencies`` — {name: [{spec, when, type}]}
    * ``conflict_rules`` — [{spec, when, msg}]
    * ``provided`` — {virtual: [when_spec]}
    """

    #: build system name, used by the installer to pick a build pipeline
    build_system = "generic"
    homepage = ""
    url = ""

    def __init__(self, spec: Spec):
        if not spec.concrete:
            raise PackageError(
                f"package object requires a concrete spec, got {spec}"
            )
        self.spec = spec

    # -- class-level queries (used by the concretizer on abstract specs) ---
    @classmethod
    def pkg_name(cls) -> str:
        """The package name: CamelCase class name → kebab-case."""
        name = cls.__name__
        out = [name[0].lower()]
        for ch in name[1:]:
            if ch.isupper():
                out.append("-")
                out.append(ch.lower())
            else:
                out.append(ch)
        return "".join(out)

    @classmethod
    def available_versions(cls) -> List[Version]:
        return sorted(cls.versions)

    @classmethod
    def preferred_version(cls) -> Version:
        from .version import highest

        if not cls.versions:
            raise PackageError(f"package {cls.pkg_name()} declares no versions")
        preferred = [v for v, meta in cls.versions.items() if meta.get("preferred")]
        if preferred:
            return max(preferred)
        live = [v for v, meta in cls.versions.items() if not meta.get("deprecated")]
        return highest(live or list(cls.versions))

    @classmethod
    def dependencies_for(cls, spec: Spec) -> Dict[str, Spec]:
        """Dependency constraints active for a (partially) concrete spec."""
        active: Dict[str, Spec] = {}
        for dname, entries in cls.dependencies.items():
            for entry in entries:
                when = entry["when"]
                # The concretizer fills version/variants before expanding
                # dependencies, so `when` conditions are decided with
                # satisfies (not intersects) — multi-valued variants would
                # otherwise spuriously activate every conditional dep.
                if when is not None and not spec.satisfies(when):
                    continue
                if dname in active:
                    active[dname].constrain(entry["spec"])
                else:
                    active[dname] = entry["spec"].copy()
        return active

    @classmethod
    def validate_concrete(cls, spec: Spec) -> None:
        """Check conflicts against a concrete spec."""
        for rule in cls.conflict_rules:
            when = rule["when"]
            if when is not None and not spec.satisfies(when):
                continue
            if spec.satisfies(rule["spec"]):
                msg = rule["msg"] or f"{spec.name}: conflict {rule['spec']}"
                raise ConflictError(msg)

    # -- instance-level build interface -------------------------------------
    def build_env(self) -> Dict[str, str]:
        """Environment variables the simulated build exports."""
        return {
            "SPEC": str(self.spec),
            "PREFIX": self.prefix,
        }

    @property
    def prefix(self) -> str:
        if self.spec.external:
            return self.spec.external_path  # type: ignore[return-value]
        return f"/opt/store/{self.spec.name}-{self.spec.version}-{self.spec.dag_hash(8)}"

    def install_phases(self) -> List[str]:
        return ["install"]

    def artifacts(self) -> Dict[str, str]:
        """Files the simulated build produces (path → content description)."""
        return {f"bin/{self.spec.name}": f"executable for {self.spec.format()}"}


class Package(PackageBase):
    build_system = "generic"


class MakefilePackage(PackageBase):
    build_system = "makefile"

    def install_phases(self) -> List[str]:
        return ["edit", "build", "install"]


class CMakePackage(PackageBase):
    build_system = "cmake"

    depends_on("cmake@3.13:", type="build")

    def cmake_args(self) -> List[str]:
        return []

    def install_phases(self) -> List[str]:
        return ["cmake", "build", "install"]


class AutotoolsPackage(PackageBase):
    build_system = "autotools"

    def configure_args(self) -> List[str]:
        return []

    def install_phases(self) -> List[str]:
        return ["autoreconf", "configure", "build", "install"]


class PythonPackage(PackageBase):
    build_system = "python_pip"

    def install_phases(self) -> List[str]:
        return ["install"]


class BundlePackage(PackageBase):
    """A package with no code of its own — only dependencies."""

    build_system = "bundle"

    def install_phases(self) -> List[str]:
        return []

    def artifacts(self) -> Dict[str, str]:
        return {}


class CudaPackage(PackageBase):
    """Mixin adding the ``+cuda`` variant and ``cuda_arch`` values."""

    variant("cuda", default=False, description="Build with CUDA")
    variant(
        "cuda_arch",
        default="none",
        values=("none", "60", "70", "80", "90"),
        multi=True,
        description="CUDA architecture",
    )
    depends_on("cuda", when="+cuda")
    conflicts("cuda_arch=none", when="+cuda",
              msg="CUDA architecture is required when +cuda")


class ROCmPackage(PackageBase):
    """Mixin adding the ``+rocm`` variant and ``amdgpu_target`` values."""

    variant("rocm", default=False, description="Build with ROCm")
    variant(
        "amdgpu_target",
        default="none",
        values=("none", "gfx906", "gfx908", "gfx90a", "gfx942"),
        multi=True,
        description="AMD GPU architecture",
    )
    depends_on("hip", when="+rocm")
    conflicts("amdgpu_target=none", when="+rocm",
              msg="AMD GPU architecture is required when +rocm")
