"""The concretizer — abstract specs in, concrete specs out (§3.1, component 2).

Given a user's *abstract* spec (``amg2023+caliper``), the concretizer fills in
every remaining choice point of the build space:

* selects a concrete **version** for every package (highest preferred
  release satisfying all constraints, or the version pinned by an external);
* resolves **virtual** packages (``mpi``, ``blas``, ``lapack``) to providers,
  honouring ``packages.yaml`` provider preferences and externals;
* replaces packages with **externals** from system configuration (Figure 4)
  — an external is a leaf: it is used as-is and never rebuilt;
* fills **variants** from (in precedence order) the user spec, configuration
  preferences, then package defaults;
* assigns a **compiler** from the system's registry and a **target** from
  archspec detection;
* expands conditional **dependencies** (``depends_on(..., when=...)``) to a
  full DAG, iterating to a fixpoint because chosen variants activate deps;
* enforces declared **conflicts** on the final DAG.

Environment-wide *unification* (``concretizer: unify: true``, Figure 3) makes
all roots share one concrete spec per package name; with ``unify: false``
each root is solved independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.perf import ContentStore, fingerprint

from .compiler import CompilerNotFoundError, CompilerRegistry
from .config import Configuration
from .parser import parse_spec
from .repository import RepoPath, default_repo_path
from .spec import CompilerSpec, Spec, SpecError, UnsatisfiableSpecError
from .version import Version, highest, ver

__all__ = [
    "Concretizer",
    "ConcretizationError",
    "NoVersionError",
    "NoProviderError",
    "concretization_memo",
    "clear_concretization_memo",
]

#: Order in which providers are tried when configuration expresses no
#: preference.  Mirrors Spack's de-facto defaults.
_DEFAULT_PROVIDER_ORDER = {
    "mpi": ["mvapich2", "openmpi", "cray-mpich", "spectrum-mpi"],
    "blas": ["openblas", "intel-oneapi-mkl"],
    "lapack": ["openblas", "intel-oneapi-mkl"],
}

_MAX_FIXPOINT_ITERATIONS = 32

#: Process-wide memo of completed solves, shared by default across every
#: Concretizer instance.  Keys fingerprint *all* solver inputs (abstract
#: specs, merged configuration, repo recipes, compiler registry, defaults),
#: so sharing is safe: two concretizers that would solve identically hit the
#: same entry, and any input change misses.
_GLOBAL_MEMO = ContentStore("concretize")


def concretization_memo() -> ContentStore:
    """The process-wide concretization memo (hit/miss stats included)."""
    return _GLOBAL_MEMO


def clear_concretization_memo() -> None:
    """Drop all memoized solves (tests and benchmarks use this to measure
    cold-vs-warm behaviour)."""
    _GLOBAL_MEMO.clear()


class ConcretizationError(SpecError):
    pass


class NoVersionError(ConcretizationError):
    def __init__(self, name: str, constraint) -> None:
        super().__init__(
            f"package {name!r} has no version satisfying @{constraint}"
        )


class NoProviderError(ConcretizationError):
    def __init__(self, virtual: str):
        super().__init__(f"no installed or buildable provider for virtual {virtual!r}")


class Concretizer:
    """Stateless solver bound to a repo path, configuration and compilers."""

    def __init__(
        self,
        config: Optional[Configuration] = None,
        repo_path: Optional[RepoPath] = None,
        compilers: Optional[CompilerRegistry] = None,
        default_target: str = "x86_64",
        default_platform: str = "linux",
        reuse_store=None,
        memoize: bool = True,
        memo: Optional[ContentStore] = None,
    ):
        self.config = config or Configuration()
        self.repo = repo_path or default_repo_path()
        self.compilers = compilers or CompilerRegistry()
        self.default_target = default_target
        self.default_platform = default_platform
        #: a Store to reuse installed specs from (``spack install --reuse``);
        #: None solves everything fresh
        self.reuse_store = reuse_store
        #: completed-solve memo; ``memo`` overrides the process-wide default,
        #: ``memoize=False`` disables caching entirely
        self.memo: Optional[ContentStore] = (
            (memo if memo is not None else _GLOBAL_MEMO) if memoize else None
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def concretize(self, spec: Spec | str) -> Spec:
        """Concretize one abstract spec into a frozen DAG."""
        solved = self.concretize_together([spec])
        return solved[0]

    def concretize_together(self, specs: List[Spec | str], unify: bool = True) -> List[Spec]:
        """Concretize a list of roots, optionally unifying shared packages.

        Solves are memoized by content: the key fingerprints the abstract
        specs together with every other solver input (merged configuration,
        repo recipes, compiler registry, target/platform defaults).  Under
        ``unify=True`` the whole batch is one key — a root's solution depends
        on its siblings — which is exactly environment-level reuse: the same
        manifest re-concretizes in O(cache lookup).  With ``unify=False``
        each root is keyed independently, so adding one root to an
        environment re-solves only the new root.
        """
        memo_key = self._memo_key(specs, unify)
        if memo_key is not None:
            cached = self.memo.get(memo_key)
            if cached is not None:
                return [Spec.from_node_dict(d, concrete=True) for d in cached]

        roots = [parse_spec(s) if isinstance(s, str) else s.copy() for s in specs]
        results: List[Spec] = []
        cache: Dict[str, Spec] = {}
        if unify:
            for root in roots:
                results.append(self._solve(root, cache))
        else:
            for i, root in enumerate(roots):
                per_root_key = self._memo_key([specs[i]], unify=False)
                if per_root_key is not None:
                    hit = self.memo.peek(per_root_key)
                    if hit is not None:
                        results.append(Spec.from_node_dict(hit[0], concrete=True))
                        continue
                solved = self._solve(root, {})
                results.append(solved)
                if per_root_key is not None:
                    self._validate(solved)
                    self.memo.put(per_root_key, [solved.to_node_dict(deps=True)])
        for solved in results:
            self._validate(solved)
        if memo_key is not None:
            self.memo.put(memo_key, [s.to_node_dict(deps=True) for s in results])
        return results

    # ------------------------------------------------------------------
    # memoization
    # ------------------------------------------------------------------
    def _memo_key(self, specs: List[Spec | str], unify: bool) -> Optional[str]:
        """Content fingerprint of every solver input, or None when this
        solve cannot be memoized (a reuse store's contents are mutable and
        are not part of the fingerprint)."""
        if self.memo is None or self.reuse_store is not None:
            return None
        return fingerprint({
            "specs": [
                s if isinstance(s, str) else s.to_node_dict(deps=True)
                for s in specs
            ],
            "unify": unify,
            "config": self.config.fingerprint(),
            "repo": self.repo.fingerprint(),
            "compilers": [c.to_dict() for c in self.compilers.all()],
            "target": self.default_target,
            "platform": self.default_platform,
        })

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _solve(self, root: Spec, cache: Dict[str, Spec]) -> Spec:
        # Constraints the user attached as ^dep nodes apply to the DAG, not
        # necessarily to direct dependencies; stash them for lookup.
        dag_constraints: Dict[str, Spec] = {
            name: dep for name, dep in root.dependencies.items()
        }
        bare = root.copy()
        bare.dependencies = {}
        return self._solve_node(bare, dag_constraints, cache, [])

    def _solve_node(
        self,
        spec: Spec,
        dag_constraints: Dict[str, Spec],
        cache: Dict[str, Spec],
        stack: List[str],
    ) -> Spec:
        name = spec.name
        if not name:
            raise ConcretizationError(f"cannot concretize anonymous spec {spec}")
        if name in stack:
            cycle = " -> ".join(stack + [name])
            raise ConcretizationError(f"dependency cycle: {cycle}")

        # Virtual resolution first: replace the node with its provider.
        if self.repo.is_virtual(name):
            provider = self._choose_provider(name, spec, cache)
            renamed = spec.copy()
            renamed.name = provider
            # Version constraints on a virtual (e.g. mpi@3:) do not transfer
            # to provider versions; drop them but keep variants/compiler.
            renamed.versions = None
            return self._solve_node(renamed, dag_constraints, cache, stack)

        if name in cache:
            solved = cache[name]
            if not solved.satisfies(_constraint_only(spec)):
                raise UnsatisfiableSpecError(
                    f"environment is unified but {name} was already resolved to "
                    f"{solved.format()} which does not satisfy {spec.format()}; "
                    f"set 'concretizer: unify: false' to solve roots separately"
                )
            return solved

        if name in dag_constraints and dag_constraints[name] is not spec:
            spec.constrain(_constraint_only(dag_constraints[name]))

        reused = self._try_reuse(spec, cache)
        if reused is not None:
            return reused

        pref = self._config_preference_spec(name)
        if pref is not None:
            self._soft_constrain(spec, pref)

        pkg_cls = self.repo.get_class(name)

        external = self._find_external(name, spec)
        if external is not None:
            spec.external_path = external.prefix
            spec.constrain(_constraint_only(external.spec))
            if external.spec.versions is not None:
                spec.versions = external.spec.versions
        elif not self.config.is_buildable(name):
            raise ConcretizationError(
                f"package {name!r} is marked buildable: false and no external "
                f"matching {spec.format()!r} is configured"
            )

        self._choose_version(spec, pkg_cls)
        self._fill_variants(spec, pkg_cls)
        self._choose_compiler(spec)
        if spec.target is None:
            spec.target = self.default_target
        if spec.platform is None:
            spec.platform = self.default_platform

        cache[name] = spec  # provisional: children may reference us (no cycles)

        # Externals are leaves — their deps are already baked in.
        if not spec.external:
            self._expand_dependencies(spec, pkg_cls, dag_constraints, cache, stack + [name])

        spec.mark_concrete()
        return spec

    # ------------------------------------------------------------------
    # reuse (spack install --reuse)
    # ------------------------------------------------------------------
    def _try_reuse(self, spec: Spec, cache: Dict[str, Spec]) -> Optional[Spec]:
        """Adopt an already-installed spec satisfying the constraints, if a
        reuse store is configured.  The reused DAG's nodes enter the
        unification cache so the rest of the solve shares them."""
        if self.reuse_store is None:
            return None
        constraint = _constraint_only(spec)
        candidates = self.reuse_store.query(constraint)
        if not candidates:
            return None
        # Prefer the highest version among satisfying installed specs.
        best = max(candidates, key=lambda s: s.version)
        adopted = best.copy()
        for node in adopted.traverse():
            cache.setdefault(node.name, node)
        return adopted

    # ------------------------------------------------------------------
    # choice points
    # ------------------------------------------------------------------
    def _choose_provider(self, virtual: str, spec: Spec, cache: Dict[str, Spec]) -> str:
        candidates = self.repo.providers_of(virtual)
        if not candidates:
            raise NoProviderError(virtual)
        # Already-solved provider in this environment wins (unification).
        for c in candidates:
            if c in cache:
                return c
        # packages.yaml provider preference.
        for p in self.config.virtual_providers(virtual):
            if p in candidates:
                return p
        # An external provider beats a source build.
        for c in candidates:
            if self.config.externals_for(c):
                return c
        for p in _DEFAULT_PROVIDER_ORDER.get(virtual, []):
            if p in candidates and self.config.is_buildable(p):
                return p
        buildable = [c for c in candidates if self.config.is_buildable(c)]
        if not buildable:
            raise NoProviderError(virtual)
        return buildable[0]

    def _find_external(self, name: str, spec: Spec):
        for entry in self.config.externals_for(name):
            if entry.spec.intersects(_constraint_only(spec)):
                return entry
        return None

    def _choose_version(self, spec: Spec, pkg_cls) -> None:
        available = pkg_cls.available_versions()
        if spec.external and spec.versions is not None:
            # External pinned a (possibly non-registered) version; accept it.
            return
        if spec.versions is not None and getattr(spec.versions, "concrete", False):
            if available and not any(v.satisfies(spec.versions) for v in available):
                raise NoVersionError(spec.name, spec.versions)
            return
        preferred_str = self.config.preferred_version_of(spec.name)
        if spec.versions is None and preferred_str:
            pinned = ver(preferred_str)
            matching = [v for v in available if v.satisfies(pinned)]
            if matching:
                spec.versions = highest(matching)
                return
        if spec.versions is None:
            if not available:
                raise NoVersionError(spec.name, "any")
            spec.versions = pkg_cls.preferred_version()
            return
        matching = [v for v in available if v.satisfies(spec.versions)]
        if not matching:
            raise NoVersionError(spec.name, spec.versions)
        spec.versions = highest(matching)

    def _fill_variants(self, spec: Spec, pkg_cls) -> None:
        for vname, vdef in pkg_cls.variants.items():
            if vname not in spec.variants:
                spec.variants[vname] = vdef.default
            vdef.validate(spec.variants[vname])
        unknown = set(spec.variants) - set(pkg_cls.variants)
        if unknown:
            raise ConcretizationError(
                f"{spec.name}: unknown variant(s) {sorted(unknown)}; "
                f"declared: {sorted(pkg_cls.variants)}"
            )

    def _choose_compiler(self, spec: Spec) -> None:
        if spec.compiler is not None and spec.compiler.concrete:
            if len(self.compilers):
                # Must exist on the system.
                if not self.compilers.find(spec.compiler):
                    raise CompilerNotFoundError(
                        f"no compiler {spec.compiler} registered on this system"
                    )
            return
        constraint = spec.compiler
        if constraint is None:
            default = self.config.get_path("packages.all.compiler")
            if default:
                first = default[0] if isinstance(default, list) else default
                constraint = CompilerSpec.parse(str(first))
        if len(self.compilers):
            spec.compiler = self.compilers.best(constraint).spec
        elif constraint is not None:
            if constraint.versions is None:
                raise CompilerNotFoundError(
                    f"compiler %{constraint.name} has no version and no "
                    f"registry is available to pick one"
                )
            spec.compiler = CompilerSpec(
                constraint.name, Version(str(constraint.versions))
            ) if constraint.concrete else constraint
        else:
            spec.compiler = CompilerSpec("gcc", Version("12.1.1"))

    def _expand_dependencies(
        self,
        spec: Spec,
        pkg_cls,
        dag_constraints: Dict[str, Spec],
        cache: Dict[str, Spec],
        stack: List[str],
    ) -> None:
        # Fixpoint: resolving variants may activate new conditional deps.
        # Track *declared* dependency names (virtuals resolve to providers,
        # so spec.dependencies keys alone can't tell us what was handled).
        handled: set = set()
        waves: List[List[str]] = []  # per-iteration additions, for diagnostics
        for _ in range(_MAX_FIXPOINT_ITERATIONS):
            wanted = pkg_cls.dependencies_for(spec)
            new = {n: c for n, c in wanted.items() if n not in handled}
            waves.append(sorted(new))
            for dep_name, constraint in sorted(new.items()):
                handled.add(dep_name)
                dep_spec = constraint.copy()
                # Inherit compiler/target so one toolchain builds the DAG.
                if dep_spec.compiler is None and spec.compiler is not None:
                    dep_spec.compiler = spec.compiler.copy()
                if dep_spec.target is None:
                    dep_spec.target = spec.target
                if dep_name in dag_constraints:
                    dep_spec.constrain(_constraint_only(dag_constraints[dep_name]))
                solved = self._solve_node(dep_spec, dag_constraints, cache, stack)
                spec.dependencies[solved.name] = solved
            if not new:
                return
        # Name the cycle instead of dying with a bare "no fixpoint": the
        # tail of the wave history shows exactly which conditional
        # dependencies keep (re)appearing as variants toggle.
        tail = [w for w in waves[-4:] if w]
        cycle = " -> ".join("{" + ", ".join(w) + "}" for w in tail)
        raise ConcretizationError(
            f"{spec.name}: conditional dependencies did not reach a fixpoint "
            f"after {_MAX_FIXPOINT_ITERATIONS} iterations; variants keep "
            f"toggling new dependencies (last waves: {cycle}). Check the "
            f"when= conditions of {spec.name}'s depends_on directives for a "
            f"variant/dependency cycle."
        )

    # ------------------------------------------------------------------
    # configuration preferences / validation
    # ------------------------------------------------------------------
    def _config_preference_spec(self, name: str) -> Optional[Spec]:
        return self.config.preferred_variants(name)

    @staticmethod
    def _soft_constrain(spec: Spec, pref: Spec) -> None:
        """Apply preferences only where the user expressed no opinion."""
        for vname, val in pref.variants.items():
            spec.variants.setdefault(vname, val)
        if spec.compiler is None and pref.compiler is not None:
            spec.compiler = pref.compiler.copy()

    def _validate(self, solved: Spec) -> None:
        for node in solved.traverse():
            if self.repo.exists(node.name):
                self.repo.get_class(node.name).validate_concrete(node)


def _constraint_only(spec: Spec) -> Spec:
    """A dependency-free copy of a spec, for satisfies/constrain checks."""
    c = spec.copy()
    c._concrete = False
    c.dependencies = {}
    return c
