"""``spack ci generate`` — turn an environment into a CI build pipeline.

§7.2: "the Spack build pipeline and rolling binary cache makes packages
available to all Spack users around the globe".  The real mechanism is
``spack ci generate``: from a concretized environment, emit a GitLab CI
pipeline with **one job per package**, wired with ``needs:`` edges along
the dependency DAG, where each job installs its spec and pushes the binary
to the cache.  Already-cached specs are pruned (rebuild filtering), which
is exactly how the rolling cache keeps pipelines incremental.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import yaml

from .binary_cache import BinaryCache
from .environment import Environment
from .spec import Spec, SpecError

__all__ = ["generate_ci_pipeline", "job_name_for"]


def job_name_for(spec: Spec) -> str:
    """Stable CI job name for one concrete spec."""
    return f"{spec.name}-{spec.dag_hash(7)}"


def generate_ci_pipeline(
    env: Environment,
    tags: Optional[List[str]] = None,
    binary_cache: Optional[BinaryCache] = None,
    stage_name: str = "build",
) -> str:
    """Emit a ``.gitlab-ci.yml`` that rebuilds the environment's lockfile.

    * one job per unique DAG node, named ``<name>-<hash7>``;
    * ``needs:`` edges mirror direct dependencies (externals are free and
      get no job);
    * with a ``binary_cache``, specs already cached are pruned and their
      dependents' needs drop with them — the rebuild filter;
    * each job's script is the spack command a runner would execute.

    Raises :class:`SpecError` if the environment is not concretized.
    """
    if not env.concrete_roots:
        raise SpecError(
            "environment is not concretized; run concretize() before "
            "generating a CI pipeline"
        )

    nodes: Dict[str, Spec] = {}
    for root in env.concrete_roots:
        for node in root.traverse():
            if node.external:
                continue  # provided by the system, nothing to build
            nodes[node.dag_hash()] = node

    cached = {
        h for h, node in nodes.items()
        if binary_cache is not None and binary_cache.has(node)
    }

    config: Dict[str, object] = {"stages": [stage_name]}
    jobs_emitted = 0
    for h, node in sorted(nodes.items(), key=lambda kv: kv[1].name):
        if h in cached:
            continue
        needs = [
            job_name_for(dep)
            for dep in node.dependencies.values()
            if not dep.external and dep.dag_hash() in nodes
            and dep.dag_hash() not in cached
        ]
        job: Dict[str, object] = {
            "stage": stage_name,
            "script": [
                f"spack install --cache-only-fallback /{node.dag_hash()}",
                f"spack buildcache push /{node.dag_hash()}",
            ],
            "variables": {"SPACK_SPEC": node.format()},
        }
        if tags:
            job["tags"] = list(tags)
        if needs:
            job["needs"] = sorted(needs)
        config[job_name_for(node)] = job
        jobs_emitted += 1

    if jobs_emitted == 0:
        # Everything cached: emit the no-op job real spack generates.
        config["no-specs-to-rebuild"] = {
            "stage": stage_name,
            "script": ["echo 'All specs are already in the binary cache'"],
        }
    return yaml.safe_dump(config, sort_keys=False)
