"""The builtin package repository.

Contains every package the paper's demonstration needs: the two Benchpark
benchmarks (saxpy §4, AMG2023 [21]), the toolchain (cmake, gcc runtime), MPI
implementations (mvapich2, openmpi, cray-mpich — all ``provides('mpi')``),
math libraries (intel-oneapi-mkl, openblas — ``provides('blas','lapack')``),
hypre, GPU runtimes (cuda, hip), and the analysis stack (caliper, adiak).

Versions/variants mirror the real Spack recipes closely enough that the
paper's example specs (``amg2023+caliper``, ``saxpy@1.0.0 +openmp
^cmake@3.23.1``, ``mvapich2@2.3.7-gcc12.1.1-magic``,
``intel-oneapi-mkl@2022.1.0``) concretize as printed in Figures 2–4 and 9–11.
"""

from __future__ import annotations

from typing import List

from .package import (
    AutotoolsPackage,
    BundlePackage,
    CMakePackage,
    CudaPackage,
    MakefilePackage,
    Package,
    ROCmPackage,
    depends_on,
    provides,
    variant,
    version,
)
from .repository import Repository

__all__ = ["make_repo"]


# --------------------------------------------------------------------------
# Toolchain
# --------------------------------------------------------------------------
class Cmake(Package):
    """CMake build system generator."""

    homepage = "https://cmake.org"

    version("3.27.4")
    version("3.26.3")
    version("3.23.1")
    version("3.20.0")


class Gmake(Package):
    """GNU make."""

    version("4.4.1")
    version("4.3")


class Python(Package):
    """CPython interpreter (as a build/run dependency)."""

    version("3.11.7")
    version("3.10.8")


# --------------------------------------------------------------------------
# MPI providers (virtual: mpi)
# --------------------------------------------------------------------------
class Mvapich2(AutotoolsPackage):
    """MVAPICH2 MPI library (default MPI on cts1 in the paper, Fig 4)."""

    provides("mpi")

    version("2.3.7-gcc12.1.1-magic")
    version("2.3.7")
    version("2.3.6")

    variant("wrapperrpath", default=True, description="Enable wrapper rpath")


class Openmpi(AutotoolsPackage):
    """Open MPI library."""

    provides("mpi")

    version("4.1.5")
    version("4.1.2")

    variant("cuda", default=False, description="CUDA-aware transports")


class CrayMpich(Package):
    """HPE/Cray MPICH (ats4-style systems)."""

    provides("mpi")

    version("8.1.26")
    version("8.1.21")


class SpectrumMpi(Package):
    """IBM Spectrum MPI (ats2/Sierra-class systems)."""

    provides("mpi")

    version("10.4.0.6")
    version("10.3.1.2")


# --------------------------------------------------------------------------
# Math libraries (virtuals: blas, lapack)
# --------------------------------------------------------------------------
class IntelOneapiMkl(Package):
    """Intel oneAPI Math Kernel Library (external on cts1, Fig 4)."""

    provides("blas")
    provides("lapack")

    version("2023.2.0")
    version("2022.1.0")

    variant("ilp64", default=False, description="64-bit integer interface")


class Openblas(MakefilePackage):
    """OpenBLAS: optimized BLAS/LAPACK."""

    provides("blas")
    provides("lapack")

    version("0.3.23")
    version("0.3.20")

    variant("threads", default="none", values=("none", "openmp", "pthreads"),
            description="Threading model")


# --------------------------------------------------------------------------
# GPU runtimes
# --------------------------------------------------------------------------
class Cuda(Package):
    """NVIDIA CUDA toolkit."""

    version("12.2.0")
    version("11.8.0")
    version("11.2.0")


class Hip(CMakePackage):
    """AMD HIP / ROCm runtime."""

    version("5.7.1")
    version("5.4.3")
    version("5.2.0")


# --------------------------------------------------------------------------
# Analysis stack (paper §5)
# --------------------------------------------------------------------------
class Caliper(CMakePackage):
    """Caliper: performance introspection library [19]."""

    version("2.10.0")
    version("2.9.0")

    variant("adiak", default=True, description="Enable Adiak metadata")
    variant("mpi", default=True, description="Enable MPI support")

    depends_on("adiak@0.2:", when="+adiak")
    depends_on("mpi", when="+mpi")


class Adiak(CMakePackage):
    """Adiak: run metadata collection [20]."""

    version("0.4.0")
    version("0.2.2")


# --------------------------------------------------------------------------
# Benchmarks (paper §4)
# --------------------------------------------------------------------------
class Saxpy(CMakePackage, CudaPackage, ROCmPackage):
    """Test saxpy problem (paper Figure 11, verbatim semantics)."""

    version("1.0.0")

    variant("openmp", default=True, description="OpenMP")

    depends_on("mpi")

    def cmake_args(self) -> List[str]:
        spec = self.spec
        args = []
        if "openmp" in spec.variants and spec.variants["openmp"]:
            args.append("-DUSE_OPENMP=ON")
        if spec.variants.get("cuda"):
            args.append("-DUSE_CUDA=ON")
        if spec.variants.get("rocm"):
            args.append("-DUSE_HIP=ON")
        return args


class Hypre(AutotoolsPackage, CudaPackage, ROCmPackage):
    """HYPRE: scalable linear solvers (AMG2023's engine)."""

    version("2.28.0")
    version("2.26.0")
    version("2.24.0")

    variant("openmp", default=False, description="OpenMP threading")
    variant("mixedint", default=False, description="Mixed 32/64-bit integers")

    depends_on("mpi")
    depends_on("blas")
    depends_on("lapack")


class Amg2023(CMakePackage, CudaPackage, ROCmPackage):
    """AMG2023: parallel algebraic multigrid benchmark [21]."""

    version("1.2")
    version("1.1")
    version("1.0")

    variant("openmp", default=False, description="OpenMP threading")
    variant("caliper", default=False, description="Caliper annotations")

    depends_on("mpi")
    depends_on("hypre@2.24:")
    depends_on("caliper", when="+caliper")
    depends_on("adiak", when="+caliper")
    depends_on("hypre+cuda", when="+cuda")
    depends_on("hypre+rocm", when="+rocm")
    # Propagate GPU architectures to hypre, as the real recipe does with
    # a loop over CudaPackage.cuda_arch_values.
    for _arch in ("60", "70", "80", "90"):
        depends_on(f"hypre cuda_arch={_arch}", when=f"cuda_arch={_arch}")
    for _arch in ("gfx906", "gfx908", "gfx90a", "gfx942"):
        depends_on(f"hypre amdgpu_target={_arch}", when=f"amdgpu_target={_arch}")

    def cmake_args(self) -> List[str]:
        args = []
        if self.spec.variants.get("caliper"):
            args.append("-DAMG_WITH_CALIPER=ON")
        if self.spec.variants.get("openmp"):
            args.append("-DAMG_WITH_OMP=ON")
        return args


class Stream(MakefilePackage):
    """STREAM memory bandwidth benchmark (extension)."""

    version("5.10")

    variant("openmp", default=True, description="OpenMP threading")
    variant("ntimes", default="10", values=None, description="Repetitions")


class OsuMicroBenchmarks(AutotoolsPackage):
    """OSU MPI micro-benchmarks (collective latency; drives Fig 14)."""

    version("7.2")
    version("6.2")

    depends_on("mpi")

    variant("graphing", default=False, description="Enable plot output")


class Quicksilver(CMakePackage, CudaPackage):
    """Quicksilver: ECP Monte Carlo transport proxy app."""

    version("1.0")

    variant("openmp", default=True, description="OpenMP threading")

    depends_on("mpi")


class Benchsuite(BundlePackage):
    """Meta-package pulling in the full Benchpark demonstration suite."""

    version("1.0")

    depends_on("saxpy")
    depends_on("amg2023")
    depends_on("osu-micro-benchmarks")
    depends_on("quicksilver")


_ALL_PACKAGE_CLASSES = [
    Cmake,
    Gmake,
    Python,
    Mvapich2,
    Openmpi,
    CrayMpich,
    SpectrumMpi,
    IntelOneapiMkl,
    Openblas,
    Cuda,
    Hip,
    Caliper,
    Adiak,
    Saxpy,
    Hypre,
    Amg2023,
    Stream,
    OsuMicroBenchmarks,
    Quicksilver,
    Benchsuite,
]


def make_repo() -> Repository:
    """Construct the builtin repository with every package registered."""
    repo = Repository("builtin")
    for cls in _ALL_PACKAGE_CLASSES:
        repo.register(cls)
    return repo
