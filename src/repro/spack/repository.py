"""Package repositories with overlay semantics (Figure 1a's ``repo/`` dir).

Spack and Ramble both resolve package definitions through an ordered list of
repositories; Benchpark adds a ``repo/`` overlay for definitions not yet
upstreamed (paper §2).  :class:`RepoPath` implements exactly that: the first
repository that defines a package wins.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from .package import PackageBase, PackageError

__all__ = ["Repository", "RepoPath", "UnknownPackageError"]


class UnknownPackageError(PackageError):
    def __init__(self, name: str, repos: Iterable[str] = ()):
        where = f" in repos {list(repos)}" if repos else ""
        super().__init__(f"unknown package: {name!r}{where}")
        self.name = name


class Repository:
    """A named collection of package classes (like a Spack repo namespace)."""

    def __init__(self, namespace: str):
        self.namespace = namespace
        self._packages: Dict[str, Type[PackageBase]] = {}
        self._fingerprint: Optional[str] = None

    def register(self, cls: Type[PackageBase]) -> Type[PackageBase]:
        """Register a package class (usable as a decorator)."""
        name = cls.pkg_name()
        self._packages[name] = cls
        self._fingerprint = None  # recipe set changed
        return cls

    def fingerprint(self) -> str:
        """Content hash over every recipe in this repository — the "repo
        fingerprint" component of concretization memo keys.  Cached until the
        package set changes (recipe *edits* mean re-registration here, since
        classes are immutable once defined)."""
        if self._fingerprint is None:
            from repro.perf import fingerprint as _fp

            self._fingerprint = _fp({
                "namespace": self.namespace,
                "packages": {n: cls for n, cls in self._packages.items()},
            })
        return self._fingerprint

    def get_class(self, name: str) -> Type[PackageBase]:
        try:
            return self._packages[name]
        except KeyError:
            raise UnknownPackageError(name, [self.namespace]) from None

    def exists(self, name: str) -> bool:
        return name in self._packages

    def all_package_names(self) -> List[str]:
        return sorted(self._packages)

    def providers_of(self, virtual: str) -> List[str]:
        """Package names that declare ``provides(virtual)``."""
        return sorted(
            name
            for name, cls in self._packages.items()
            if virtual in cls.provided
        )

    def is_virtual(self, name: str) -> bool:
        return not self.exists(name) and bool(self.providers_of(name))

    def __len__(self):
        return len(self._packages)

    def __repr__(self):
        return f"Repository({self.namespace!r}, {len(self)} packages)"


class RepoPath:
    """Ordered overlay of repositories; earlier repos shadow later ones."""

    def __init__(self, *repos: Repository):
        self.repos: List[Repository] = list(repos)

    def prepend(self, repo: Repository) -> None:
        self.repos.insert(0, repo)

    def fingerprint(self) -> str:
        """Combined fingerprint of the overlay, order-sensitive (an overlay
        shadowing a builtin must hash differently from the reverse)."""
        from repro.perf import fingerprint as _fp

        return _fp([r.fingerprint() for r in self.repos])

    def get_class(self, name: str) -> Type[PackageBase]:
        for repo in self.repos:
            if repo.exists(name):
                return repo.get_class(name)
        raise UnknownPackageError(name, [r.namespace for r in self.repos])

    def exists(self, name: str) -> bool:
        return any(r.exists(name) for r in self.repos)

    def all_package_names(self) -> List[str]:
        names = set()
        for repo in self.repos:
            names.update(repo.all_package_names())
        return sorted(names)

    def providers_of(self, virtual: str) -> List[str]:
        names: List[str] = []
        for repo in self.repos:
            for n in repo.providers_of(virtual):
                if n not in names:
                    names.append(n)
        return names

    def is_virtual(self, name: str) -> bool:
        return not self.exists(name) and bool(self.providers_of(name))

    def __repr__(self):
        return f"RepoPath({[r.namespace for r in self.repos]})"


_builtin: Optional[Repository] = None


def builtin_repo() -> Repository:
    """The lazily-constructed builtin package repository."""
    global _builtin
    if _builtin is None:
        from . import builtin as _builtin_module

        _builtin = _builtin_module.make_repo()
    return _builtin


def default_repo_path() -> RepoPath:
    return RepoPath(builtin_repo())
