"""Version semantics for the mini-Spack substrate.

Spack-style versions are dotted sequences of numeric and alphabetic
components (``1.2.3``, ``2.3.7-gcc12.1.1-magic``, ``develop``).  Ordering
follows Spack's rules closely enough for concretization:

* numeric components compare numerically;
* alphabetic components compare lexicographically;
* numeric components sort *after* alphabetic ones at the same position, so
  ``1.2`` > ``1.beta`` and named versions like ``develop``/``main`` sort
  above all numeric releases (they are treated as infinity versions).

Three kinds of version constraints appear in specs and packages:

``Version``
    a single concrete version, e.g. ``@1.2.3`` (interpreted prefix-wise when
    used as a constraint: ``1.2`` satisfies the constraint ``1.2``, and so
    does ``1.2.9``).

``VersionRange``
    an inclusive range ``@1.2:1.8`` (either side may be open).

``VersionList``
    a comma-separated union ``@1.2,1.4:1.6``.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterable, Sequence, Union

__all__ = [
    "Version",
    "VersionRange",
    "VersionList",
    "ver",
    "INFINITY_NAMES",
]

#: Named versions that sort above every numeric release, highest first.
INFINITY_NAMES = ("develop", "main", "master", "head", "trunk")

_SEGMENT_RE = re.compile(r"([0-9]+|[a-zA-Z]+)")


@total_ordering
class _Component:
    """One dotted component of a version, ordered per Spack rules."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str]):
        self.value = value

    def _key(self):
        # Infinity names > numbers > other strings.  Encode rank first.
        if isinstance(self.value, str) and self.value in INFINITY_NAMES:
            # Earlier in INFINITY_NAMES means newer.
            return (2, -INFINITY_NAMES.index(self.value), "")
        if isinstance(self.value, int):
            return (1, self.value, "")
        return (0, 0, self.value)

    def __eq__(self, other):
        return isinstance(other, _Component) and self._key() == other._key()

    def __lt__(self, other):
        return self._key() < other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        return f"_Component({self.value!r})"


def _parse_components(string: str) -> tuple:
    components = []
    for part in re.split(r"[._\-]", string):
        for seg in _SEGMENT_RE.findall(part):
            components.append(_Component(int(seg) if seg.isdigit() else seg))
    return tuple(components)


@total_ordering
class Version:
    """A single version, e.g. ``Version('1.2.3')``.

    Comparison is componentwise; a shorter version that is a prefix of a
    longer one compares *less than* it (``1.2 < 1.2.1``), but *satisfies* it
    in the constraint sense when used the other way around: the constraint
    ``@1.2`` is satisfied by ``1.2.1``.
    """

    __slots__ = ("string", "components")

    def __init__(self, string: Union[str, int, float, "Version"]):
        if isinstance(string, Version):
            string = string.string
        self.string = str(string)
        if not self.string:
            raise ValueError("empty version string")
        self.components = _parse_components(self.string)

    # -- ordering ---------------------------------------------------------
    def __eq__(self, other):
        if isinstance(other, str):
            other = Version(other)
        return isinstance(other, Version) and self.components == other.components

    def __lt__(self, other):
        if isinstance(other, str):
            other = Version(other)
        if not isinstance(other, Version):
            return NotImplemented
        return self.components < other.components

    def __hash__(self):
        return hash(self.components)

    # -- constraint interface ----------------------------------------------
    @property
    def concrete(self) -> bool:
        return True

    def is_prefix_of(self, other: "Version") -> bool:
        """True if ``other`` starts with all of our components."""
        n = len(self.components)
        return other.components[:n] == self.components

    def satisfies(self, constraint: "VersionConstraint") -> bool:
        """True if this concrete version satisfies ``constraint``.

        A bare version constraint is prefix-semantics: ``1.2.3`` satisfies
        the constraint ``1.2`` but not vice versa.
        """
        if isinstance(constraint, Version):
            return constraint.is_prefix_of(self)
        return constraint.includes(self)

    def includes(self, version: "Version") -> bool:
        """Constraint-side membership test (prefix semantics)."""
        return self.is_prefix_of(version)

    def intersects(self, other: "VersionConstraint") -> bool:
        if isinstance(other, Version):
            return self.is_prefix_of(other) or other.is_prefix_of(self)
        return other.intersects(self)

    def up_to(self, index: int) -> "Version":
        """Return a truncated version: ``Version('1.2.3').up_to(2) == 1.2``."""
        parts = [str(c.value) for c in self.components[:index]]
        return Version(".".join(parts))

    def __str__(self):
        return self.string

    def __repr__(self):
        return f"Version({self.string!r})"


class VersionRange:
    """Inclusive range ``low:high``; either bound may be ``None`` (open)."""

    __slots__ = ("low", "high")

    def __init__(self, low: Union[Version, str, None], high: Union[Version, str, None]):
        self.low = Version(low) if isinstance(low, str) else low
        self.high = Version(high) if isinstance(high, str) else high
        if self.low and self.high and self.high < self.low and not self.low.is_prefix_of(self.high):
            raise ValueError(f"malformed range {self.low}:{self.high}")

    @property
    def concrete(self) -> bool:
        return False

    def includes(self, version: Version) -> bool:
        if self.low is not None:
            # low bound is prefix-inclusive: range 1.2: includes 1.2.x
            if version < self.low and not self.low.is_prefix_of(version):
                return False
        if self.high is not None:
            if version > self.high and not self.high.is_prefix_of(version):
                return False
        return True

    def intersects(self, other: "VersionConstraint") -> bool:
        if isinstance(other, Version):
            return self.includes(other)
        if isinstance(other, VersionRange):
            lo = max(
                (b for b in (self.low, other.low) if b is not None),
                default=None,
            )
            hi = min(
                (b for b in (self.high, other.high) if b is not None),
                default=None,
            )
            if lo is None or hi is None:
                return True
            return lo <= hi or lo.is_prefix_of(hi) or hi.is_prefix_of(lo)
        return other.intersects(self)

    def satisfies(self, other: "VersionConstraint") -> bool:
        """Range satisfies another constraint if it is contained within it."""
        if isinstance(other, Version):
            return (
                self.low is not None
                and self.high is not None
                and self.low.satisfies(other)
                and self.high.satisfies(other)
            )
        if isinstance(other, VersionRange):
            low_ok = other.low is None or (
                self.low is not None and (self.low >= other.low or other.low.is_prefix_of(self.low))
            )
            high_ok = other.high is None or (
                self.high is not None and (self.high <= other.high or other.high.is_prefix_of(self.high))
            )
            return low_ok and high_ok
        if isinstance(other, VersionList):
            return any(self.satisfies(c) for c in other.constraints)
        return False

    def __eq__(self, other):
        return (
            isinstance(other, VersionRange)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self):
        return hash((self.low, self.high))

    def __str__(self):
        return f"{self.low or ''}:{self.high or ''}"

    def __repr__(self):
        return f"VersionRange({self.low!r}, {self.high!r})"


class VersionList:
    """A union of versions and ranges, e.g. ``@1.2,1.4:1.6``."""

    __slots__ = ("constraints",)

    def __init__(self, constraints: Iterable["VersionConstraint"] = ()):
        self.constraints = tuple(constraints)

    @classmethod
    def parse(cls, text: str) -> "VersionConstraint":
        """Parse the text after ``@`` in a spec, e.g. ``1.2,1.4:1.6``."""
        parts = [p for p in text.split(",") if p]
        if not parts:
            raise ValueError(f"empty version constraint: {text!r}")
        constraints = [_parse_single(p) for p in parts]
        if len(constraints) == 1:
            return constraints[0]
        return cls(constraints)

    @property
    def concrete(self) -> bool:
        return len(self.constraints) == 1 and self.constraints[0].concrete

    def includes(self, version: Version) -> bool:
        return any(c.includes(version) if not isinstance(c, Version) else c.is_prefix_of(version)
                   for c in self.constraints)

    def intersects(self, other: "VersionConstraint") -> bool:
        return any(c.intersects(other) for c in self.constraints)

    def satisfies(self, other: "VersionConstraint") -> bool:
        return all(
            c.satisfies(other) if not isinstance(c, Version) else c.satisfies(other)
            for c in self.constraints
        )

    def __eq__(self, other):
        return isinstance(other, VersionList) and self.constraints == other.constraints

    def __hash__(self):
        return hash(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __str__(self):
        return ",".join(str(c) for c in self.constraints)

    def __repr__(self):
        return f"VersionList({list(self.constraints)!r})"


VersionConstraint = Union[Version, VersionRange, VersionList]


def _parse_single(text: str) -> VersionConstraint:
    if ":" in text:
        low, _, high = text.partition(":")
        return VersionRange(low or None, high or None)
    return Version(text)


def ver(text: Union[str, int, float, Version]) -> VersionConstraint:
    """Convenience constructor mirroring ``spack.version.ver``.

    ``ver('1.2')`` → Version; ``ver('1.2:1.8')`` → VersionRange;
    ``ver('1.2,1.4:')`` → VersionList.
    """
    if isinstance(text, Version):
        return text
    return VersionList.parse(str(text))


def highest(versions: Sequence[Version]) -> Version:
    """Return the highest version, preferring numeric over infinity names.

    Spack's concretizer prefers the highest *released* version; ``develop``
    and friends are only chosen if explicitly requested or nothing else
    exists.  We mirror that policy here.
    """
    if not versions:
        raise ValueError("no versions to choose from")
    numeric = [v for v in versions if not _is_infinity(v)]
    pool = numeric or list(versions)
    return max(pool)


def _is_infinity(v: Version) -> bool:
    return any(
        isinstance(c.value, str) and c.value in INFINITY_NAMES for c in v.components
    )
