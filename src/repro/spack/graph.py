"""Dependency-graph analysis over concrete specs.

Spack models builds as DAGs; this module exposes that DAG as a
``networkx.DiGraph`` and answers scheduling questions the installer and
benches need:

* topological build order (what the installation engine follows),
* the **critical path** of simulated build times — the lower bound on
  makespan with unlimited build parallelism,
* makespan under ``k`` parallel build jobs (list scheduling), which powers
  the build-parallelism ablation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .installer import _BUILD_COST, _DEFAULT_COST
from .spec import Spec, SpecError

__all__ = [
    "spec_to_graph",
    "build_order",
    "critical_path",
    "parallel_makespan",
    "graph_stats",
]


def _node_cost(spec: Spec) -> float:
    if spec.external:
        return 0.0
    return _BUILD_COST.get(spec.name, _DEFAULT_COST)


def spec_to_graph(spec: Spec) -> "nx.DiGraph":
    """DiGraph with an edge dep → dependent (build direction), node attrs
    ``spec`` and ``cost`` (simulated build seconds)."""
    if not spec.concrete:
        raise SpecError(f"graph analysis requires a concrete spec, got {spec}")
    g = nx.DiGraph()
    for node in spec.traverse():
        g.add_node(node.name, spec=node, cost=_node_cost(node))
    for node in spec.traverse():
        for dep in node.dependencies.values():
            g.add_edge(dep.name, node.name)
    if not nx.is_directed_acyclic_graph(g):
        raise SpecError(f"dependency graph of {spec.name} has a cycle")
    return g


def build_order(spec: Spec) -> List[str]:
    """A valid installation order (dependencies before dependents),
    deterministic (lexicographic tie-break)."""
    g = spec_to_graph(spec)
    return list(nx.lexicographical_topological_sort(g))


def critical_path(spec: Spec) -> Tuple[List[str], float]:
    """The longest cost-weighted chain: (package names, total seconds)."""
    g = spec_to_graph(spec)
    dist: Dict[str, float] = {}
    parent: Dict[str, Optional[str]] = {}
    for name in nx.topological_sort(g):
        cost = g.nodes[name]["cost"]
        best_pred, best = None, 0.0
        for pred in g.predecessors(name):
            if dist[pred] >= best:
                best, best_pred = dist[pred], pred
        dist[name] = best + cost
        parent[name] = best_pred
    end = max(dist, key=lambda n: dist[n])
    path = []
    node: Optional[str] = end
    while node is not None:
        path.append(node)
        node = parent[node]
    return list(reversed(path)), dist[end]


def parallel_makespan(spec: Spec, workers: int) -> float:
    """Makespan of building the DAG with ``workers`` parallel build jobs
    (greedy list scheduling, ready tasks longest-first)."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    g = spec_to_graph(spec)
    indegree = {n: g.in_degree(n) for n in g.nodes}
    ready = [(-g.nodes[n]["cost"], n) for n, d in indegree.items() if d == 0]
    heapq.heapify(ready)
    #: (finish_time, node) of running builds
    running: List[Tuple[float, str]] = []
    now = 0.0
    done = 0
    total = g.number_of_nodes()
    while done < total:
        while ready and len(running) < workers:
            neg_cost, name = heapq.heappop(ready)
            heapq.heappush(running, (now - neg_cost, name))
        if not running:
            raise SpecError("deadlock in build scheduling (cycle?)")
        now, finished = heapq.heappop(running)
        done += 1
        for succ in g.successors(finished):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (-g.nodes[succ]["cost"], succ))
    return now


def graph_stats(spec: Spec) -> Dict[str, float]:
    """Summary statistics of a build DAG."""
    g = spec_to_graph(spec)
    _, cp = critical_path(spec)
    total = sum(g.nodes[n]["cost"] for n in g.nodes)
    return {
        "nodes": g.number_of_nodes(),
        "edges": g.number_of_edges(),
        "total_build_seconds": total,
        "critical_path_seconds": cp,
        "max_parallel_speedup": total / cp if cp > 0 else 1.0,
        "longest_chain": len(nx.dag_longest_path(g)),
    }
