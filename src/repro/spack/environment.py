"""Spack environments — the manifest-and-lock model (§3.1.1, Figures 2 & 3).

An environment is a directory with:

* ``spack.yaml`` — the *manifest*, treated as user input: abstract specs plus
  configuration (``concretizer: unify``, ``view``), and
* ``spack.lock`` — the *lockfile*, the concretizer's output: the full
  concrete DAG for every root, written only by ``concretize()``.

The Figure 2 workflow maps to::

    env = Environment.create(dir)          # spack env create --dir .
    env.add("amg2023+caliper")             # spack add amg2023+caliper
    env.concretize(concretizer)            # spack concretize
    env.install(installer)                 # spack install
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

import yaml

from .concretizer import Concretizer
from .installer import BuildResult, Installer
from .parser import parse_spec
from .spec import Spec, SpecError

__all__ = ["Environment", "EnvironmentError_"]


class EnvironmentError_(SpecError):
    pass


class Environment:
    """A Spack environment rooted at a directory."""

    MANIFEST = "spack.yaml"
    LOCKFILE = "spack.lock"

    def __init__(self, path: Path | str):
        self.path = Path(path)
        if not self.manifest_path.exists():
            raise EnvironmentError_(
                f"no {self.MANIFEST} in {self.path}; use Environment.create()"
            )
        self._concrete_roots: List[Spec] = []
        #: content fingerprint of the manifest inputs the lockfile was
        #: solved from (None for pre-fingerprint lockfiles)
        self._lock_fingerprint: Optional[str] = None
        self._load_lock()

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: Path | str,
               specs: Optional[List[str]] = None,
               unify: bool = True,
               view: bool = True) -> "Environment":
        """``spack env create --dir <path>``"""
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "spack": {
                "specs": list(specs or []),
                "concretizer": {"unify": unify},
                "view": view,
            }
        }
        (path / cls.MANIFEST).write_text(yaml.safe_dump(manifest, sort_keys=False))
        return cls(path)

    @property
    def manifest_path(self) -> Path:
        return self.path / self.MANIFEST

    @property
    def lock_path(self) -> Path:
        return self.path / self.LOCKFILE

    # -- manifest ---------------------------------------------------------
    def _read_manifest(self) -> Dict:
        data = yaml.safe_load(self.manifest_path.read_text()) or {}
        if "spack" not in data:
            raise EnvironmentError_(f"{self.manifest_path}: missing 'spack:' section")
        return data

    def _write_manifest(self, data: Dict) -> None:
        self.manifest_path.write_text(yaml.safe_dump(data, sort_keys=False))

    @property
    def user_specs(self) -> List[Spec]:
        data = self._read_manifest()
        return [parse_spec(s) for s in data["spack"].get("specs", [])]

    @property
    def unify(self) -> bool:
        data = self._read_manifest()
        return bool(data["spack"].get("concretizer", {}).get("unify", True))

    def add(self, spec: str) -> None:
        """``spack add <spec>`` — append an abstract spec to the manifest."""
        parse_spec(spec)  # validate syntax before committing
        data = self._read_manifest()
        specs = data["spack"].setdefault("specs", [])
        if spec not in specs:
            specs.append(spec)
        self._write_manifest(data)

    def remove(self, spec: str) -> None:
        data = self._read_manifest()
        specs = data["spack"].setdefault("specs", [])
        if spec not in specs:
            raise EnvironmentError_(f"{spec!r} is not in the environment")
        specs.remove(spec)
        self._write_manifest(data)

    # -- lockfile -----------------------------------------------------------
    def _load_lock(self) -> None:
        if self.lock_path.exists():
            data = json.loads(self.lock_path.read_text())
            self._concrete_roots = [
                Spec.from_node_dict(d, concrete=True) for d in data.get("roots", [])
            ]
            self._lock_fingerprint = data.get("_meta", {}).get("manifest-fingerprint")

    def _write_lock(self) -> None:
        data = {
            "_meta": {
                "file-type": "spack-lockfile",
                "lockfile-version": 1,
                "manifest-fingerprint": self._lock_fingerprint,
            },
            "roots": [s.to_node_dict(deps=True) for s in self._concrete_roots],
        }
        self.lock_path.write_text(json.dumps(data, indent=2, sort_keys=True))

    @staticmethod
    def _manifest_fingerprint(user_specs: List[str], unify: bool) -> str:
        from repro.perf import fingerprint

        return fingerprint({"specs": list(user_specs), "unify": unify})

    @property
    def concrete_roots(self) -> List[Spec]:
        return list(self._concrete_roots)

    # -- operations -----------------------------------------------------------
    def concretize(self, concretizer: Concretizer, force: bool = False) -> List[Spec]:
        """``spack concretize [-f]`` — manifest in, lockfile out."""
        user = self._read_manifest()["spack"].get("specs", [])
        if not user:
            raise EnvironmentError_("environment has no specs to concretize")
        manifest_fp = self._manifest_fingerprint(user, self.unify)
        if self._concrete_roots and not force:
            # Fast path: the lockfile records the content fingerprint of the
            # manifest it was solved from; an exact match means fresh with
            # no parsing or satisfies-scan at all.
            if manifest_fp == self._lock_fingerprint:
                return self.concrete_roots
            # Slow path (older lockfiles / reordered manifests): the lock is
            # fresh only if every manifest spec is *satisfied* by its locked
            # root — name equality alone would return a stale solution after
            # `spack add pkg+newvariant`.
            wanted = [parse_spec(s) for s in user]
            locked_by_name = {r.name: r for r in self._concrete_roots}
            fresh = len(wanted) == len(self._concrete_roots) and all(
                w.name in locked_by_name
                and locked_by_name[w.name].satisfies(w)
                for w in wanted
            )
            if fresh:
                return self.concrete_roots
        self._concrete_roots = concretizer.concretize_together(
            list(user), unify=self.unify
        )
        self._lock_fingerprint = manifest_fp
        self._write_lock()
        return self.concrete_roots

    def install(self, installer: Installer) -> List[BuildResult]:
        """``spack install`` — install everything in the lockfile."""
        if not self._concrete_roots:
            raise EnvironmentError_(
                "environment is not concretized; run concretize() first"
            )
        results: List[BuildResult] = []
        for root in self._concrete_roots:
            results.extend(installer.install(root))
        if self._view_enabled():
            self._regenerate_view(installer)
        return results

    def _view_enabled(self) -> bool:
        return bool(self._read_manifest()["spack"].get("view", False))

    def _regenerate_view(self, installer: Installer) -> None:
        """A view is a merged prefix: symlink-like records of all roots."""
        view_dir = self.path / ".spack-env" / "view"
        view_dir.mkdir(parents=True, exist_ok=True)
        links = {}
        for root in self._concrete_roots:
            for node in root.traverse():
                rec = installer.store.get_record(node)
                if rec is not None:
                    links[node.name] = rec.prefix
        (view_dir / "links.json").write_text(json.dumps(links, indent=2, sort_keys=True))

    def status(self, installer: Installer) -> Dict[str, str]:
        """name → installed/missing, for every node in the lockfile."""
        out: Dict[str, str] = {}
        for root in self._concrete_roots:
            for node in root.traverse():
                out[node.name] = (
                    "installed" if installer.store.is_installed(node) else "missing"
                )
        return out
