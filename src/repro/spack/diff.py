"""``spack diff`` — structured comparison of two concrete specs.

The §7.1 anecdote ("even after deploying a near identical operating system
… and moving the exact same binary and dependencies between the systems,
the faulty behavior persisted") is a spec-diff problem: *which* attribute of
two supposedly-identical software stacks actually differs?  This module
answers it mechanically: given two concrete specs, report every node whose
version, variants, compiler, target, or external status diverges, and the
nodes present on only one side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .spec import Spec, SpecError

__all__ = ["SpecDiff", "NodeDiff", "diff_specs"]


@dataclass
class NodeDiff:
    """Differences for one package present in both DAGs."""

    name: str
    #: attribute → (left value, right value)
    changes: Dict[str, tuple] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return not self.changes

    def __str__(self):
        parts = [f"{attr}: {a!r} -> {b!r}" for attr, (a, b) in
                 sorted(self.changes.items())]
        return f"{self.name}: " + "; ".join(parts)


@dataclass
class SpecDiff:
    """Full comparison result."""

    left: str
    right: str
    only_left: List[str] = field(default_factory=list)
    only_right: List[str] = field(default_factory=list)
    changed: List[NodeDiff] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not (self.only_left or self.only_right or self.changed)

    def summary(self) -> str:
        if self.identical:
            return f"{self.left} and {self.right} are identical"
        lines = [f"diff {self.left} vs {self.right}:"]
        for name in self.only_left:
            lines.append(f"  - only in left:  {name}")
        for name in self.only_right:
            lines.append(f"  + only in right: {name}")
        for node in self.changed:
            lines.append(f"  ~ {node}")
        return "\n".join(lines)


def _node_attrs(spec: Spec) -> Dict[str, object]:
    return {
        "version": str(spec.versions),
        "variants": {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in sorted(spec.variants.items())
        },
        "compiler": str(spec.compiler) if spec.compiler else None,
        "target": spec.target,
        "external": spec.external_path,
    }


def diff_specs(left: Spec, right: Spec) -> SpecDiff:
    """Compare two concrete spec DAGs node by node."""
    if not (left.concrete and right.concrete):
        raise SpecError("spec diff requires two concrete specs")
    left_nodes = {n.name: n for n in left.traverse()}
    right_nodes = {n.name: n for n in right.traverse()}

    result = SpecDiff(left=left.format(), right=right.format())
    result.only_left = sorted(set(left_nodes) - set(right_nodes))
    result.only_right = sorted(set(right_nodes) - set(left_nodes))

    for name in sorted(set(left_nodes) & set(right_nodes)):
        a, b = _node_attrs(left_nodes[name]), _node_attrs(right_nodes[name])
        node = NodeDiff(name)
        for attr in a:
            if a[attr] != b[attr]:
                node.changes[attr] = (a[attr], b[attr])
        if not node.identical:
            result.changed.append(node)
    return result
