"""Mini-Spack: the reproducible-build substrate (paper §3.1).

Public API re-exports the four primary components the paper enumerates:
the Spec syntax, the concretizer, package files, and the installation
engine — plus environments, configuration, and the binary cache.
"""

from .binary_cache import BinaryCache
from .compiler import Compiler, CompilerRegistry
from .concretizer import ConcretizationError, Concretizer
from .config import ConfigScope, Configuration
from .ci_pipeline import generate_ci_pipeline
from .diff import SpecDiff, diff_specs
from .environment import Environment
from .graph import build_order, critical_path, graph_stats, parallel_makespan, spec_to_graph
from .installer import BuildResult, Installer
from .package import (
    AutotoolsPackage,
    BundlePackage,
    CMakePackage,
    CudaPackage,
    MakefilePackage,
    Package,
    PackageBase,
    ROCmPackage,
    conflicts,
    depends_on,
    provides,
    variant,
    version,
)
from .parser import SpecParseError, parse_spec, parse_specs
from .repository import RepoPath, Repository, builtin_repo, default_repo_path
from .spec import CompilerSpec, Spec, SpecError, UnsatisfiableSpecError
from .store import Store
from .version import Version, VersionList, VersionRange, ver

__all__ = [
    "BinaryCache",
    "BuildResult",
    "CMakePackage",
    "Compiler",
    "CompilerRegistry",
    "CompilerSpec",
    "ConcretizationError",
    "Concretizer",
    "ConfigScope",
    "Configuration",
    "Environment",
    "Installer",
    "Package",
    "PackageBase",
    "RepoPath",
    "Repository",
    "Spec",
    "SpecDiff",
    "SpecError",
    "SpecParseError",
    "Store",
    "UnsatisfiableSpecError",
    "Version",
    "VersionList",
    "VersionRange",
    "build_order",
    "generate_ci_pipeline",
    "builtin_repo",
    "critical_path",
    "graph_stats",
    "parallel_makespan",
    "spec_to_graph",
    "default_repo_path",
    "diff_specs",
    "parse_spec",
    "parse_specs",
    "ver",
]
