"""The installation engine (§3.1, component 4).

Installs a concrete spec DAG in topological order, from source or from a
binary cache.  Real compilation is impossible offline, so the *build* of a
package is simulated: the engine still

* verifies every dependency is installed before its dependents,
* runs the package's recipe hooks (``cmake_args``/``configure_args``) so
  recipe bugs surface exactly as they would in Spack,
* materializes the install prefix and artifacts in the store, and
* accounts simulated build time from a per-package cost model — which makes
  cache-vs-source ablations meaningful (DESIGN.md §6).

Determinism: identical concrete specs produce identical prefixes, hashes,
artifacts, and simulated timings — the functional-reproducibility property
the paper's whole premise rests on.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from .binary_cache import BinaryCache
from .package import PackageBase, PackageError
from .repository import RepoPath, default_repo_path
from .spec import Spec, SpecError
from .store import Store

__all__ = ["Installer", "BuildResult", "InstallError", "topological_levels"]

#: Simulated source-build cost in seconds per package (defaults to 30).
#: Numbers are loosely scaled from real Spack build times.
_BUILD_COST = {
    "cmake": 180.0,
    "gmake": 20.0,
    "python": 300.0,
    "mvapich2": 420.0,
    "openmpi": 360.0,
    "cray-mpich": 60.0,
    "spectrum-mpi": 60.0,
    "intel-oneapi-mkl": 90.0,
    "openblas": 240.0,
    "cuda": 120.0,
    "hip": 150.0,
    "caliper": 75.0,
    "adiak": 25.0,
    "saxpy": 8.0,
    "hypre": 210.0,
    "amg2023": 45.0,
    "stream": 5.0,
    "osu-micro-benchmarks": 40.0,
    "quicksilver": 60.0,
}
_DEFAULT_COST = 30.0
#: Installing from the binary cache costs a fixed fraction of a source build.
_CACHE_SPEEDUP = 12.0


class InstallError(SpecError):
    pass


class BuildResult:
    """Outcome of installing one spec."""

    def __init__(self, spec: Spec, action: str, seconds: float, prefix: str,
                 phases: List[str]):
        self.spec = spec
        self.action = action  # "source" | "cache" | "external" | "already"
        self.seconds = seconds
        self.prefix = prefix
        self.phases = phases
        #: simulated-clock interval under topological-level scheduling:
        #: a node starts when its slowest dependency finishes, so the DAG's
        #: makespan is the critical path, not the serial sum
        self.sim_start: float = 0.0
        self.sim_end: float = seconds

    def __repr__(self):
        return (f"BuildResult({self.spec.name}@{self.spec.version} "
                f"{self.action} {self.seconds:.1f}s)")


def topological_levels(spec: Spec) -> List[List[Spec]]:
    """Group a concrete DAG's nodes into dependency levels: every node in
    level *k* depends only on nodes in levels < *k*, so each level can be
    installed concurrently once the previous ones are done."""
    nodes = list(spec.traverse(order="post"))  # deps before dependents
    depth: Dict[str, int] = {}
    for node in nodes:
        deps = list(node.dependencies.values())
        depth[node.name] = 1 + max((depth[d.name] for d in deps), default=-1)
    levels: List[List[Spec]] = [[] for _ in range(max(depth.values(), default=0) + 1)]
    for node in nodes:  # post-order keeps intra-level ordering deterministic
        levels[depth[node.name]].append(node)
    return levels


class Installer:
    """Installs concrete spec DAGs into a :class:`Store`."""

    def __init__(
        self,
        store: Store,
        repo_path: Optional[RepoPath] = None,
        binary_cache: Optional[BinaryCache] = None,
        use_cache: bool = True,
        push_to_cache: bool = True,
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ):
        self.store = store
        self.repo = repo_path or default_repo_path()
        self.cache = binary_cache
        self.use_cache = use_cache and binary_cache is not None
        self.push_to_cache = push_to_cache and binary_cache is not None
        #: fan independent DAG nodes out to a worker pool, level by level
        self.parallel = parallel
        self.max_workers = max_workers
        #: store/cache mutations are serialized; the per-package "build"
        #: work (recipe hooks) runs outside the lock
        self._store_lock = threading.RLock()
        #: filled by every install(): serial-sum vs critical-path accounting
        self.last_install_stats: Dict[str, float] = {}

    def install(self, spec: Spec, explicit: bool = True) -> List[BuildResult]:
        """Install ``spec`` and its dependencies; returns per-node results
        in installation (topological post-) order.

        Independent packages install concurrently: the DAG is scheduled in
        topological levels through a thread pool, and the simulated clock
        charges each node from the finish time of its slowest dependency —
        so the DAG's simulated makespan is its *critical path*, not the
        serial sum of build times.  Result ordering is deterministic
        (post-order) regardless of worker completion order.
        """
        if not spec.concrete:
            raise InstallError(
                f"only concrete specs can be installed, got {spec.format()!r} "
                f"(run the concretizer first)"
            )
        nodes = list(spec.traverse(order="post"))
        root_hash = spec.dag_hash()
        by_name: Dict[str, BuildResult] = {}

        def run_node(node: Spec) -> BuildResult:
            is_root = node.dag_hash() == root_hash
            return self._install_node(node, explicit=explicit and is_root)

        levels = topological_levels(spec)
        if self.parallel and len(nodes) > 1:
            workers = self.max_workers or min(8, max(len(lv) for lv in levels))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for level in levels:
                    # barrier per level: deps are fully installed before any
                    # dependent starts, exactly like Spack's DAG scheduler
                    for node, result in zip(level, pool.map(run_node, level)):
                        by_name[node.name] = result
        else:
            for node in nodes:
                by_name[node.name] = run_node(node)

        # Simulated clock: start = slowest direct dependency's finish.
        finish: Dict[str, float] = {}
        for node in nodes:  # post-order: deps already have finish times
            result = by_name[node.name]
            start = max(
                (finish[d.name] for d in node.dependencies.values()),
                default=0.0,
            )
            result.sim_start = start
            result.sim_end = start + result.seconds
            finish[node.name] = result.sim_end
        serial = sum(r.seconds for r in by_name.values())
        critical = max(finish.values(), default=0.0)
        self.last_install_stats = {
            "nodes": float(len(nodes)),
            "levels": float(len(levels)),
            "serial_seconds": serial,
            "critical_path_seconds": critical,
            "parallel_speedup": (serial / critical) if critical > 0 else 1.0,
        }
        return [by_name[node.name] for node in nodes]

    def _install_node(self, spec: Spec, explicit: bool) -> BuildResult:
        with self._store_lock:
            if spec.external:
                prefix = spec.external_path or ""
                if not self.store.is_installed(spec) or self.store.get_record(spec) is None:
                    self.store.add(spec, explicit=explicit, installed_from="external")
                return BuildResult(spec, "external", 0.0, prefix, [])
            if self.store.is_installed(spec):
                rec = self.store.get_record(spec)
                return BuildResult(spec, "already", 0.0, rec.prefix if rec else "", [])

            self._check_deps_installed(spec)

            pkg_cls = self.repo.get_class(spec.name)
            pkg = pkg_cls(spec)
            base_cost = _BUILD_COST.get(spec.name, _DEFAULT_COST)

            if self.use_cache and self.cache is not None and self.cache.has(spec):
                artifacts = self.cache.fetch(spec) or {}
                seconds = base_cost / _CACHE_SPEEDUP
                rec = self.store.add(spec, explicit=explicit, installed_from="cache",
                                     build_seconds=seconds, artifacts=artifacts)
                return BuildResult(spec, "cache", seconds, rec.prefix, ["extract"])
            if self.use_cache and self.cache is not None:
                self.cache.fetch(spec)  # record the miss

        # The actual "build" (recipe hooks) runs outside the lock so
        # independent packages genuinely overlap in the worker pool.
        phases = pkg.install_phases()
        artifacts = self._run_build(pkg, phases)
        seconds = base_cost * self._variant_cost_factor(spec)
        with self._store_lock:
            rec = self.store.add(spec, explicit=explicit, installed_from="source",
                                 build_seconds=seconds, artifacts=artifacts)
            if self.push_to_cache and self.cache is not None:
                self.cache.push(spec, artifacts)
        return BuildResult(spec, "source", seconds, rec.prefix, phases)

    def _check_deps_installed(self, spec: Spec) -> None:
        missing = [
            d.format()
            for d in spec.traverse(root=False)
            if not self.store.is_installed(d)
        ]
        if missing:
            raise InstallError(
                f"cannot build {spec.name}: dependencies not installed: {missing}"
            )

    @staticmethod
    def _variant_cost_factor(spec: Spec) -> float:
        """GPU builds take longer; OpenMP slightly longer."""
        factor = 1.0
        if spec.variants.get("cuda") is True or spec.variants.get("rocm") is True:
            factor *= 1.6
        if spec.variants.get("openmp") is True:
            factor *= 1.1
        return factor

    @staticmethod
    def _target_flags(spec) -> str:
        """archspec role 1 (§3.1.3): tailor the build to the target."""
        if spec.target is None or spec.compiler is None:
            return ""
        from repro.archspec import UnsupportedMicroarchitecture, get_target

        try:
            uarch = get_target(spec.target)
            return uarch.optimization_flags(
                spec.compiler.name, str(spec.compiler.versions)
            )
        except UnsupportedMicroarchitecture:
            return ""

    def _run_build(self, pkg: PackageBase, phases: List[str]) -> Dict[str, str]:
        """Execute recipe hooks per build phase; returns produced artifacts."""
        log: List[str] = []
        cflags = self._target_flags(pkg.spec)
        if cflags:
            log.append(f"archspec: CFLAGS={cflags}")
        for phase in phases:
            if phase == "cmake":
                args = pkg.cmake_args()  # type: ignore[attr-defined]
                log.append(f"cmake {' '.join(args)} -DCMAKE_INSTALL_PREFIX={pkg.prefix}")
            elif phase == "configure":
                args = pkg.configure_args()  # type: ignore[attr-defined]
                log.append(f"./configure --prefix={pkg.prefix} {' '.join(args)}")
            elif phase in ("build", "edit", "autoreconf", "install", "extract"):
                log.append(f"{phase}: ok")
            else:
                raise PackageError(f"unknown build phase {phase!r} in {pkg.spec.name}")
        artifacts = dict(pkg.artifacts())
        artifacts[".spack/build.log"] = "\n".join(log) + "\n"
        return artifacts
