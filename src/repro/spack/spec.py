"""The Spec data model — the common language of the mini-Spack substrate.

A *spec* describes a build of a package: its name, version constraint,
variants, compiler, target microarchitecture, and dependencies, e.g.::

    amg2023+caliper %gcc@12.1.1 ^cmake@3.23.1 target=zen3

Specs come in two flavours (paper §3.1):

* **abstract** specs express user constraints — any field may be missing;
* **concrete** specs are fully resolved by the concretizer — every choice
  point is filled in and the spec carries a content (DAG) hash.

The three fundamental operations, mirrored from Spack:

``satisfies``  — is every constraint of the other spec met by this one?
``intersects`` — could some concrete spec satisfy both?
``constrain``  — merge the other spec's constraints into this one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, Optional

from .variant import (
    VariantValue,
    normalize_value,
    value_intersects,
    value_merge,
    value_satisfies,
)
from .version import Version, VersionConstraint, VersionList, ver

__all__ = ["Spec", "CompilerSpec", "SpecError", "UnsatisfiableSpecError"]


class SpecError(Exception):
    """Malformed or inconsistent spec."""


class UnsatisfiableSpecError(SpecError):
    """Raised when constraining two incompatible specs."""


class CompilerSpec:
    """A compiler constraint: name plus optional version, e.g. ``gcc@12.1.1``."""

    __slots__ = ("name", "versions")

    def __init__(self, name: str, versions: Optional[VersionConstraint] = None):
        self.name = name
        self.versions = versions

    @classmethod
    def parse(cls, text: str) -> "CompilerSpec":
        name, _, vtext = text.partition("@")
        if not name:
            raise SpecError(f"compiler spec missing name: {text!r}")
        return cls(name, ver(vtext) if vtext else None)

    @property
    def concrete(self) -> bool:
        return self.versions is not None and getattr(self.versions, "concrete", False)

    def satisfies(self, other: "CompilerSpec") -> bool:
        if self.name != other.name:
            return False
        if other.versions is None:
            return True
        if self.versions is None:
            return False
        return self.versions.satisfies(other.versions)

    def intersects(self, other: "CompilerSpec") -> bool:
        if self.name != other.name:
            return False
        if self.versions is None or other.versions is None:
            return True
        return self.versions.intersects(other.versions)

    def constrain(self, other: "CompilerSpec") -> "CompilerSpec":
        if self.name != other.name:
            raise UnsatisfiableSpecError(
                f"compiler {self.name} incompatible with {other.name}"
            )
        if other.versions is None:
            return self
        if self.versions is None:
            return CompilerSpec(self.name, other.versions)
        if not self.versions.intersects(other.versions):
            raise UnsatisfiableSpecError(
                f"compiler versions {self.versions} and {other.versions} disjoint"
            )
        # Keep the more specific (concrete) constraint.
        chosen = self.versions if getattr(self.versions, "concrete", False) else other.versions
        return CompilerSpec(self.name, chosen)

    def copy(self) -> "CompilerSpec":
        return CompilerSpec(self.name, self.versions)

    def __eq__(self, other):
        return (
            isinstance(other, CompilerSpec)
            and self.name == other.name
            and str(self.versions or "") == str(other.versions or "")
        )

    def __hash__(self):
        return hash((self.name, str(self.versions or "")))

    def __str__(self):
        return f"{self.name}@{self.versions}" if self.versions else self.name

    def __repr__(self):
        return f"CompilerSpec({str(self)!r})"


class Spec:
    """A (possibly abstract) build specification.

    Construct directly for programmatic use, or via
    :func:`repro.spack.parser.parse_spec` for the string syntax.
    """

    def __init__(self, name: str = ""):
        self.name: str = name
        self.versions: Optional[VersionConstraint] = None
        self.variants: Dict[str, VariantValue] = {}
        self.compiler: Optional[CompilerSpec] = None
        self.target: Optional[str] = None
        self.platform: Optional[str] = None
        #: direct dependency constraints, name -> Spec
        self.dependencies: Dict[str, "Spec"] = {}
        #: set by the concretizer / config for external packages
        self.external_path: Optional[str] = None
        self._concrete: bool = False
        self._hash: Optional[str] = None

    # -- basic properties ---------------------------------------------------
    @property
    def concrete(self) -> bool:
        return self._concrete

    @property
    def external(self) -> bool:
        return self.external_path is not None

    @property
    def version(self) -> Version:
        """The single concrete version (only valid on concrete specs)."""
        if self.versions is None or not getattr(self.versions, "concrete", False):
            raise SpecError(f"spec {self} has no concrete version")
        if isinstance(self.versions, Version):
            return self.versions
        if isinstance(self.versions, VersionList):
            only = self.versions.constraints[0]
            if isinstance(only, Version):
                return only
        raise SpecError(f"spec {self} has no concrete version")

    def mark_concrete(self) -> None:
        """Freeze this spec (and compute its DAG hash lazily)."""
        self._concrete = True
        self._hash = None

    # -- satisfaction ---------------------------------------------------------
    def satisfies(self, other: "Spec") -> bool:
        """True if this spec meets every constraint in ``other``.

        Anonymous constraints (``other.name == ''``) match any package name —
        Spack uses these for things like ``%gcc`` or ``+debug`` applied
        generically.
        """
        if other.name and self.name != other.name:
            return False
        if other.versions is not None:
            if self.versions is None:
                return False
            if not self.versions.satisfies(other.versions):
                return False
        for vname, want in other.variants.items():
            if vname not in self.variants:
                return False
            if not value_satisfies(self.variants[vname], want):
                return False
        if other.compiler is not None:
            if self.compiler is None or not self.compiler.satisfies(other.compiler):
                return False
        if other.target is not None and self.target != other.target:
            return False
        if other.platform is not None and self.platform != other.platform:
            return False
        for dname, dspec in other.dependencies.items():
            mine = self._find_dep(dname)
            if mine is None or not mine.satisfies(dspec):
                return False
        return True

    def _find_dep(self, name: str) -> Optional["Spec"]:
        """Find a dependency anywhere in the DAG (transitive)."""
        for dep in self.traverse(root=False):
            if dep.name == name:
                return dep
        return None

    def intersects(self, other: "Spec") -> bool:
        """True if some concrete spec could satisfy both self and other."""
        if self.name and other.name and self.name != other.name:
            return False
        if self.versions is not None and other.versions is not None:
            if not self.versions.intersects(other.versions):
                return False
        for vname, want in other.variants.items():
            if vname in self.variants and not value_intersects(self.variants[vname], want):
                return False
        if self.compiler is not None and other.compiler is not None:
            if not self.compiler.intersects(other.compiler):
                return False
        if self.target and other.target and self.target != other.target:
            return False
        for dname, dspec in other.dependencies.items():
            if dname in self.dependencies and not self.dependencies[dname].intersects(dspec):
                return False
        return True

    def constrain(self, other: "Spec") -> "Spec":
        """Merge ``other``'s constraints into this spec (in place).

        Raises :class:`UnsatisfiableSpecError` on conflict.  Returns self for
        chaining.
        """
        if self._concrete:
            raise SpecError(f"cannot constrain concrete spec {self}")
        if other.name:
            if self.name and self.name != other.name:
                raise UnsatisfiableSpecError(
                    f"cannot constrain {self.name} with {other.name}"
                )
            self.name = other.name
        if other.versions is not None:
            if self.versions is None:
                self.versions = other.versions
            else:
                if not self.versions.intersects(other.versions):
                    raise UnsatisfiableSpecError(
                        f"{self.name}: versions {self.versions} and "
                        f"{other.versions} are disjoint"
                    )
                if getattr(other.versions, "concrete", False):
                    self.versions = other.versions
        for vname, val in other.variants.items():
            if vname in self.variants:
                try:
                    self.variants[vname] = value_merge(self.variants[vname], val)
                except ValueError as e:
                    raise UnsatisfiableSpecError(f"{self.name}: {e}") from e
            else:
                self.variants[vname] = val
        if other.compiler is not None:
            self.compiler = (
                other.compiler.copy()
                if self.compiler is None
                else self.compiler.constrain(other.compiler)
            )
        if other.target is not None:
            if self.target is not None and self.target != other.target:
                raise UnsatisfiableSpecError(
                    f"{self.name}: targets {self.target} and {other.target} conflict"
                )
            self.target = other.target
        if other.platform is not None:
            if self.platform is not None and self.platform != other.platform:
                raise UnsatisfiableSpecError(
                    f"{self.name}: platforms {self.platform} / {other.platform}"
                )
            self.platform = other.platform
        for dname, dspec in other.dependencies.items():
            if dname in self.dependencies:
                self.dependencies[dname].constrain(dspec)
            else:
                self.dependencies[dname] = dspec.copy()
        return self

    # -- traversal ------------------------------------------------------------
    def traverse(self, root: bool = True, order: str = "pre") -> Iterator["Spec"]:
        """Depth-first traversal of the dependency DAG, deduplicated by name."""
        seen = set()

        def visit(spec: "Spec", is_root: bool) -> Iterator["Spec"]:
            if spec.name in seen:
                return
            seen.add(spec.name)
            if order == "pre" and (root or not is_root):
                yield spec
            for dname in sorted(spec.dependencies):
                yield from visit(spec.dependencies[dname], False)
            if order == "post" and (root or not is_root):
                yield spec

        yield from visit(self, True)

    def __contains__(self, name: str) -> bool:
        return any(s.name == name for s in self.traverse())

    def __getitem__(self, name: str) -> "Spec":
        for s in self.traverse():
            if s.name == name:
                return s
        raise KeyError(name)

    # -- hashing / serialization ----------------------------------------------
    def dag_hash(self, length: int = 32) -> str:
        """Content hash of the full concrete DAG (stable across processes).

        Memoized on concrete (frozen) specs only: abstract specs can still
        be mutated by ``constrain``, so caching their hash would serve stale
        values.  The cached digest survives :meth:`copy`, which keeps the
        hot paths (store lookups, installer scheduling, memo keys) from
        re-serializing the DAG over and over.
        """
        if self._hash is not None:
            return self._hash[:length]
        payload = json.dumps(self.to_node_dict(deps=True), sort_keys=True)
        digest = hashlib.sha256(payload.encode()).hexdigest()
        if self._concrete:
            self._hash = digest
        return digest[:length]

    def to_node_dict(self, deps: bool = False) -> Dict[str, Any]:
        d: Dict[str, Any] = {"name": self.name}
        if self.versions is not None:
            d["version"] = str(self.versions)
        if self.variants:
            d["variants"] = {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in sorted(self.variants.items())
            }
        if self.compiler:
            d["compiler"] = str(self.compiler)
        if self.target:
            d["target"] = self.target
        if self.platform:
            d["platform"] = self.platform
        if self.external_path:
            d["external"] = self.external_path
        if deps and self.dependencies:
            d["dependencies"] = {
                n: s.to_node_dict(deps=True) for n, s in sorted(self.dependencies.items())
            }
        return d

    @classmethod
    def from_node_dict(cls, d: Dict[str, Any], concrete: bool = False) -> "Spec":
        spec = cls(d["name"])
        if "version" in d:
            spec.versions = ver(d["version"])
        for k, v in d.get("variants", {}).items():
            spec.variants[k] = normalize_value(tuple(v) if isinstance(v, list) else v)
        if "compiler" in d:
            spec.compiler = CompilerSpec.parse(d["compiler"])
        spec.target = d.get("target")
        spec.platform = d.get("platform")
        spec.external_path = d.get("external")
        for n, sub in d.get("dependencies", {}).items():
            spec.dependencies[n] = cls.from_node_dict(sub, concrete=concrete)
        if concrete:
            spec.mark_concrete()
        return spec

    def copy(self) -> "Spec":
        new = Spec.from_node_dict(self.to_node_dict(deps=True))
        if self._concrete:
            new.mark_concrete()
            new._hash = self._hash  # same DAG, same digest — don't recompute
        return new

    # -- formatting -------------------------------------------------------------
    def format(self, deps: bool = False) -> str:
        parts = [self.name or ""]
        if self.versions is not None:
            parts.append(f"@{self.versions}")
        for vname in sorted(self.variants):
            val = self.variants[vname]
            if val is True:
                parts.append(f"+{vname}")
            elif val is False:
                parts.append(f"~{vname}")
            elif isinstance(val, tuple):
                parts.append(f" {vname}={','.join(val)}")
            else:
                parts.append(f" {vname}={val}")
        if self.compiler:
            parts.append(f" %{self.compiler}")
        if self.target:
            parts.append(f" target={self.target}")
        out = "".join(parts).strip()
        if deps:
            for dname in sorted(self.dependencies):
                out += f" ^{self.dependencies[dname].format(deps=False)}"
        return out

    def tree(self, show_hashes: bool = False) -> str:
        """``spack spec``-style indented DAG rendering::

            amg2023@1.2+caliper ...
                ^adiak@0.4.0 ...
                ^caliper@2.10.0 ...
        """
        lines = []
        seen = set()

        def visit(node: "Spec", depth: int) -> None:
            prefix = "    " * depth + ("^" if depth else "")
            h = f"[{node.dag_hash(7)}]  " if show_hashes and node.concrete else ""
            lines.append(f"{prefix}{h}{node.format()}")
            if node.name in seen:
                return
            seen.add(node.name)
            for dname in sorted(node.dependencies):
                visit(node.dependencies[dname], depth + 1)

        visit(self, 0)
        return "\n".join(lines)

    def __str__(self):
        return self.format(deps=True)

    def __repr__(self):
        return f"Spec({self.format(deps=True)!r})"

    def __eq__(self, other):
        if not isinstance(other, Spec):
            return False
        if self._concrete and other._concrete:
            # sha256 of the same sorted node dict — collision-safe equality
            # without re-serializing both DAGs
            return self.dag_hash(64) == other.dag_hash(64)
        return self.to_node_dict(deps=True) == other.to_node_dict(deps=True)

    def __hash__(self):
        if self._concrete:
            return hash(self.dag_hash(64))
        return hash(json.dumps(self.to_node_dict(deps=True), sort_keys=True))
