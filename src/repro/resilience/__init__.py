"""Resilience layer — surviving *transient* failures in continuous
benchmarking.

The paper motivates continuous benchmarking with "tracking system
performance over time and diagnosing hardware failures" (§1), but a real
CI loop must first survive failures that are transient — node flaps,
scheduler timeouts, OOM kills, filesystem hiccups — and distinguish them
from genuine regressions before the analysis layer ever sees a FOM.

This package models that boundary:

* :mod:`~repro.resilience.faults` — deterministic transient-fault
  injection, salted per (system, experiment, epoch, attempt) exactly like
  ``SystemExecutor._noise``, and distinct from the *persistent*
  :class:`~repro.systems.failures.Degradation`;
* :mod:`~repro.resilience.retry` — a retryable/fatal error taxonomy and a
  :class:`RetryPolicy` with bounded exponential backoff, deterministic
  jitter, and per-attempt wall-clock timeouts;
* :mod:`~repro.resilience.breaker` — circuit breakers keyed per
  (system, runner-tag) so a sick system stops consuming campaign budget;
* :mod:`~repro.resilience.ft_executor` — a
  :class:`FaultTolerantExecutor` composing all of the above around any
  inner executor (``LocalExecutor``/``SystemExecutor``/…).
"""

from .breaker import BreakerOpenError, CircuitBreaker, CircuitBreakerRegistry
from .faults import FaultKind, TransientFault, TransientFaultInjector
from .ft_executor import FaultTolerantExecutor
from .retry import (
    AttemptLog,
    AttemptTimeout,
    PermanentError,
    RetryExhausted,
    RetryPolicy,
    TransientError,
)

__all__ = [
    "AttemptLog",
    "AttemptTimeout",
    "BreakerOpenError",
    "CircuitBreaker",
    "CircuitBreakerRegistry",
    "FaultKind",
    "FaultTolerantExecutor",
    "PermanentError",
    "RetryExhausted",
    "RetryPolicy",
    "TransientError",
    "TransientFault",
    "TransientFaultInjector",
]
