"""Circuit breakers — stop a sick system from eating the campaign budget.

A retry policy protects one run; it does nothing for the *next* run against
a system that is down for the afternoon.  The breaker closes that gap with
the classic three states:

* **closed** — healthy; every run is allowed.  Consecutive failures are
  counted, and at ``failure_threshold`` the breaker opens.
* **open** — sick; runs are refused outright (no queue time, no retries,
  no backoff) until ``recovery_time_s`` of clock has passed.
* **half-open** — recovering; a limited number of probe runs go through.
  A probe success closes the breaker, a probe failure re-opens it.

Time is an injectable callable so simulated campaigns (which have no wall
clock to burn) can drive recovery with a fake clock.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from .retry import PermanentError

__all__ = ["BreakerOpenError", "CircuitBreaker", "CircuitBreakerRegistry"]


class BreakerOpenError(PermanentError):
    """Run refused: the (system, runner-tag) breaker is open."""


class CircuitBreaker:
    """One breaker for one (system, runner-tag) stream of runs."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 3,
                 recovery_time_s: float = 300.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time_s < 0:
            raise ValueError("recovery_time_s must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.half_open_probes = half_open_probes
        self.clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float = 0.0
        self._probes_in_flight = 0
        #: counters for reporting
        self.stats = {"allowed": 0, "refused": 0, "opened": 0, "closed": 0}

    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        if (self.state == self.OPEN
                and self.clock() - self.opened_at >= self.recovery_time_s):
            self.state = self.HALF_OPEN
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """May the next run proceed?  Half-open admits probe runs only."""
        self._maybe_half_open()
        if self.state == self.CLOSED:
            self.stats["allowed"] += 1
            return True
        if self.state == self.HALF_OPEN:
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                self.stats["allowed"] += 1
                return True
        self.stats["refused"] += 1
        return False

    def record_success(self) -> None:
        if self.state == self.HALF_OPEN:
            self.stats["closed"] += 1
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self._probes_in_flight = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._open()
        elif (self.state == self.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._open()

    def _open(self) -> None:
        self.state = self.OPEN
        self.opened_at = self.clock()
        self._probes_in_flight = 0
        self.stats["opened"] += 1

    def __repr__(self):
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self.consecutive_failures})")


class CircuitBreakerRegistry:
    """Breakers keyed by (system, runner-tag), created on first use with
    shared settings."""

    def __init__(self, failure_threshold: int = 3,
                 recovery_time_s: float = 300.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        self._settings = dict(
            failure_threshold=failure_threshold,
            recovery_time_s=recovery_time_s,
            half_open_probes=half_open_probes,
            clock=clock,
        )
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def get(self, system: str, runner_tag: str = "default") -> CircuitBreaker:
        key = (system, runner_tag)
        if key not in self._breakers:
            self._breakers[key] = CircuitBreaker(**self._settings)
        return self._breakers[key]

    def states(self) -> Dict[str, str]:
        return {f"{s}/{t}": b.state for (s, t), b in sorted(self._breakers.items())}

    def __len__(self):
        return len(self._breakers)
