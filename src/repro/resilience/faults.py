"""Deterministic transient-fault injection.

The existing :mod:`repro.systems.failures` models *persistent* hardware
degradation — a DIMM running slow until repaired.  Transient faults are the
other failure family a continuous-benchmarking fleet sees: a node flaps for
one job, the scheduler times a submission out, the filesystem hiccups while
a log is written.  They are not regressions; they must be retried, not
analyzed.

Injection is deterministic the same way :meth:`SystemExecutor._noise` is:
a SHA-256 digest of ``(system, experiment, epoch, attempt)`` (plus the
fault kind and an optional campaign salt) maps to a uniform number compared
against the configured rate.  Replaying a campaign with the same salt
replays the exact same faults — which is what makes checkpoint/resume and
regression tests of the resilience layer possible at all.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = ["FaultKind", "TransientFault", "TransientFaultInjector"]


class FaultKind(str, enum.Enum):
    """Classified transient faults, ordered by how we probe for them."""

    NODE_FAILURE = "node_failure"
    SCHEDULER_TIMEOUT = "scheduler_timeout"
    OOM = "oom"
    FS_HICCUP = "fs_hiccup"

    def __str__(self) -> str:  # "node_failure", not "FaultKind.NODE_FAILURE"
        return self.value


#: Human-readable log lines per fault kind (what a real run would show).
_FAULT_MESSAGES: Dict[FaultKind, str] = {
    FaultKind.NODE_FAILURE: "node failed health check mid-run (DRAIN)",
    FaultKind.SCHEDULER_TIMEOUT: "scheduler did not allocate within walltime",
    FaultKind.OOM: "oom-killer terminated the benchmark process",
    FaultKind.FS_HICCUP: "parallel filesystem stalled while writing the log",
}


@dataclass(frozen=True)
class TransientFault:
    """One injected transient fault occurrence."""

    kind: FaultKind
    system: str
    experiment: str
    epoch: int
    attempt: int

    @property
    def message(self) -> str:
        return (f"{_FAULT_MESSAGES[self.kind]} "
                f"[{self.system}/{self.experiment} epoch={self.epoch} "
                f"attempt={self.attempt}]")

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


class TransientFaultInjector:
    """Deterministically decides whether an attempt hits a transient fault.

    Parameters
    ----------
    rates:
        default per-kind fault probability in [0, 1).  Kinds absent from
        the mapping never fire.
    per_system:
        optional ``{system_name: {kind: rate}}`` overrides — a flaky
        cluster can fail more often than a healthy one in the same
        campaign.
    salt:
        campaign-level salt so two campaigns over the same experiments see
        independent fault streams.
    """

    def __init__(
        self,
        rates: Optional[Mapping[FaultKind, float]] = None,
        per_system: Optional[Mapping[str, Mapping[FaultKind, float]]] = None,
        salt: str = "",
    ):
        self.rates = self._validated(rates or {})
        self.per_system = {
            name: self._validated(r) for name, r in (per_system or {}).items()
        }
        self.salt = salt

    @staticmethod
    def _validated(rates: Mapping[FaultKind, float]) -> Dict[FaultKind, float]:
        out: Dict[FaultKind, float] = {}
        for kind, rate in rates.items():
            kind = FaultKind(kind)
            if not (0.0 <= rate < 1.0):
                raise ValueError(
                    f"fault rate for {kind} must be in [0, 1), got {rate}"
                )
            out[kind] = float(rate)
        return out

    def rates_for(self, system: str) -> Dict[FaultKind, float]:
        return self.per_system.get(system, self.rates)

    def _uniform(self, system: str, experiment: str, epoch: int,
                 attempt: int, kind: FaultKind) -> float:
        digest = hashlib.sha256(
            f"{self.salt}:{system}:{experiment}:{epoch}:{attempt}:{kind}"
            .encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def sample(self, system: str, experiment: str, epoch: int,
               attempt: int) -> Optional[TransientFault]:
        """The fault (if any) hitting this attempt; at most one fires, the
        first in :class:`FaultKind` declaration order."""
        for kind in FaultKind:
            rate = self.rates_for(system).get(kind, 0.0)
            if rate <= 0.0:
                continue
            if self._uniform(system, experiment, epoch, attempt, kind) < rate:
                return TransientFault(
                    kind=kind, system=system, experiment=experiment,
                    epoch=epoch, attempt=attempt,
                )
        return None
