"""Retry policy: error taxonomy, bounded exponential backoff, timeouts.

The taxonomy is the load-bearing part: a retry loop that cannot tell a
node flap (:class:`TransientError`) from a wrong answer
(:class:`PermanentError`) either wastes campaign budget re-running broken
code or gives up on recoverable runs.  Backoff delays are *deterministic* —
jitter comes from a SHA-256 of the salt and attempt number, not a PRNG —
so a resumed campaign replays identically, and by default they are only
*accounted* (``total_backoff_s``), not slept, because the simulated fleet
has no wall clock to burn.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from .faults import TransientFault

__all__ = [
    "TransientError",
    "PermanentError",
    "AttemptTimeout",
    "RetryExhausted",
    "RetryPolicy",
    "AttemptLog",
]


class TransientError(RuntimeError):
    """Retryable: the next attempt may well succeed."""

    def __init__(self, message: str, fault: Optional[TransientFault] = None):
        super().__init__(message)
        self.fault = fault

    @property
    def kind(self) -> str:
        return str(self.fault.kind) if self.fault else "transient"


class PermanentError(RuntimeError):
    """Fatal: retrying cannot help (bad config, wrong answer, no account)."""


class AttemptTimeout(TransientError):
    """An attempt exceeded the policy's per-attempt wall-clock budget."""


class RetryExhausted(PermanentError):
    """Every allowed attempt failed transiently."""

    def __init__(self, message: str, log: "AttemptLog"):
        super().__init__(message)
        self.log = log


@dataclass
class AttemptLog:
    """What happened across the attempts of one retried call."""

    attempts: int = 0
    fault_kinds: List[str] = field(default_factory=list)
    total_backoff_s: float = 0.0

    @property
    def flaky(self) -> bool:
        """True when success needed more than one attempt."""
        return self.attempts > 1 or bool(self.fault_kinds)

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "fault_kinds": list(self.fault_kinds),
            "total_backoff_s": self.total_backoff_s,
        }


class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        total tries including the first (>= 1).
    base_delay_s / multiplier / max_delay_s:
        delay before retry *k* (1-based) is
        ``min(base * multiplier**(k-1), max_delay_s)``, then jittered.
    jitter:
        relative jitter amplitude in [0, 1): the delay is scaled by a
        deterministic factor in ``[1-jitter, 1+jitter]`` — and re-capped at
        ``max_delay_s``, which is a hard ceiling.
    attempt_timeout_s:
        per-attempt wall-clock budget; an attempt observed to run longer
        raises :class:`AttemptTimeout` (transient — a timeout on a shared
        machine usually is).
    """

    def __init__(self, max_attempts: int = 4, base_delay_s: float = 1.0,
                 multiplier: float = 2.0, max_delay_s: float = 60.0,
                 jitter: float = 0.5,
                 attempt_timeout_s: Optional[float] = None):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not (0.0 <= jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if attempt_timeout_s is not None and attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.attempt_timeout_s = attempt_timeout_s

    # ------------------------------------------------------------------
    def backoff_s(self, attempt: int, salt: str = "") -> float:
        """Delay before retry number ``attempt`` (1-based), deterministic
        in (attempt, salt), never exceeding ``max_delay_s``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                  self.max_delay_s)
        if self.jitter:
            digest = hashlib.sha256(f"{salt}:backoff:{attempt}".encode()).digest()
            u = int.from_bytes(digest[:8], "big") / 2**64
            raw *= 1.0 + (2.0 * u - 1.0) * self.jitter
        return min(raw, self.max_delay_s)

    @staticmethod
    def classify(exc: BaseException) -> str:
        """'transient' | 'permanent' — the retryable/fatal taxonomy."""
        if isinstance(exc, TransientError):
            return "transient"
        return "permanent"

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[[int], Any],
        salt: str = "",
        sleep: Optional[Callable[[float], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> tuple:
        """Call ``fn(attempt)`` (attempt is 1-based) until it succeeds or
        the budget runs out; returns ``(result, AttemptLog)``.

        :class:`TransientError` triggers a retry after backoff;
        :class:`PermanentError` (and any other exception) propagates
        immediately.  ``sleep`` defaults to ``None`` — the backoff is
        accounted in the log but not actually slept, which is what the
        simulated fleet wants; pass ``time.sleep`` for real delays.
        """
        log = AttemptLog()
        while True:
            log.attempts += 1
            attempt = log.attempts
            t0 = clock()
            try:
                result = fn(attempt)
            except TransientError as exc:
                log.fault_kinds.append(exc.kind)
                if attempt >= self.max_attempts:
                    raise RetryExhausted(
                        f"gave up after {attempt} attempts: {exc}", log
                    ) from exc
                delay = self.backoff_s(attempt, salt)
                log.total_backoff_s += delay
                if sleep is not None:
                    sleep(delay)
                continue
            elapsed = clock() - t0
            if (self.attempt_timeout_s is not None
                    and elapsed > self.attempt_timeout_s):
                timeout = AttemptTimeout(
                    f"attempt {attempt} took {elapsed:.3f}s "
                    f"(budget {self.attempt_timeout_s:.3f}s)"
                )
                log.fault_kinds.append("attempt_timeout")
                if attempt >= self.max_attempts:
                    raise RetryExhausted(
                        f"gave up after {attempt} attempts: {timeout}", log
                    ) from timeout
                delay = self.backoff_s(attempt, salt)
                log.total_backoff_s += delay
                if sleep is not None:
                    sleep(delay)
                continue
            return result, log
