"""Fault-tolerant executor — retry/timeout/breaker composition.

Wraps any inner executor with the ``execute(experiment) -> {returncode,
stdout, seconds}`` contract (:class:`~repro.systems.executor.LocalExecutor`,
:class:`~repro.systems.executor.SystemExecutor`, …) and composes, in order:

1. the circuit breaker — a run against an open (system, runner-tag) is
   refused without consuming any attempt budget;
2. transient-fault injection — each attempt may be hit by a deterministic
   :class:`~repro.resilience.faults.TransientFault`;
3. the retry policy — faulted attempts back off and re-run; exhaustion is
   a real failure that trips the breaker.

The result dict is the inner result plus an attempt log (``attempts``,
``fault_kinds``, ``total_backoff_s``, ``flaky``), which the continuous
layer persists into :class:`~repro.ci.metricsdb.MetricsDatabase` so the
regression detector can exclude non-converged samples.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .breaker import CircuitBreaker, CircuitBreakerRegistry
from .faults import TransientFaultInjector
from .retry import RetryExhausted, RetryPolicy, TransientError

__all__ = ["FaultTolerantExecutor"]

#: BSD's EX_TEMPFAIL — "failure is temporary, retry later"; distinct from
#: the benchmark-level nonzero codes the inner executors emit.
EX_TEMPFAIL = 75


class FaultTolerantExecutor:
    """Retry/timeout/breaker wrapper around an inner executor."""

    def __init__(
        self,
        inner,
        injector: Optional[TransientFaultInjector] = None,
        policy: Optional[RetryPolicy] = None,
        breakers: Optional[CircuitBreakerRegistry] = None,
        runner_tag: str = "default",
    ):
        self.inner = inner
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.breakers = breakers
        self.runner_tag = runner_tag
        #: per-experiment attempt logs, keyed by experiment name — one
        #: campaign-side view of how flaky each run was.
        self.attempt_log: Dict[str, Dict[str, Any]] = {}

    # -- context the inner executor carries --------------------------------
    @property
    def system_name(self) -> str:
        system = getattr(self.inner, "system", None)
        return getattr(system, "name", None) or "local"

    @property
    def epoch(self) -> int:
        return int(getattr(self.inner, "epoch", 0))

    def _breaker(self) -> Optional[CircuitBreaker]:
        if self.breakers is None:
            return None
        return self.breakers.get(self.system_name, self.runner_tag)

    # ----------------------------------------------------------------------
    def execute(self, experiment) -> Dict[str, Any]:
        breaker = self._breaker()
        if breaker is not None and not breaker.allow():
            result = {
                "returncode": EX_TEMPFAIL,
                "stdout": (f"ERROR: circuit breaker open for "
                           f"{self.system_name}/{self.runner_tag}; "
                           f"run refused\n"),
                "seconds": 0.0,
                "attempts": 0,
                "fault_kinds": [],
                "total_backoff_s": 0.0,
                "flaky": False,
                "state": "refused",
            }
            self.attempt_log[experiment.name] = result
            return result

        def one_attempt(attempt: int) -> Dict[str, Any]:
            if self.injector is not None:
                fault = self.injector.sample(
                    self.system_name, experiment.name, self.epoch, attempt
                )
                if fault is not None:
                    raise TransientError(fault.message, fault)
            if hasattr(self.inner, "attempt"):
                # re-runs on a just-flapped system measure noisier
                self.inner.attempt = attempt
            return self.inner.execute(experiment)

        salt = f"{self.system_name}:{experiment.name}:{self.epoch}"
        try:
            result, log = self.policy.run(one_attempt, salt=salt)
        except RetryExhausted as exc:
            if breaker is not None:
                breaker.record_failure()
            result = {
                "returncode": EX_TEMPFAIL,
                "stdout": f"ERROR: {exc}\n",
                "seconds": 0.0,
                "state": "exhausted",
                **exc.log.to_dict(),
                "flaky": True,
            }
            self.attempt_log[experiment.name] = result
            return result

        if breaker is not None:
            if result.get("returncode", 0) == 0:
                breaker.record_success()
            else:
                breaker.record_failure()
        if log.flaky:
            result["stdout"] = result.get("stdout", "") + (
                f"# resilience: succeeded on attempt {log.attempts} "
                f"after {log.fault_kinds} "
                f"(total backoff {log.total_backoff_s:.2f}s)\n"
            )
        result.update(log.to_dict())
        result["flaky"] = log.flaky
        result.setdefault("state", "completed")
        self.attempt_log[experiment.name] = result
        return result
