"""repro — reproduction of "Towards Collaborative Continuous Benchmarking
for HPC" (SC-W 2023): the Benchpark framework plus every substrate it
composes (mini-Spack, mini-Ramble, archspec, simulated HPC systems, real
benchmark kernels, the CI automation loop, and the analysis stack).

Top-level subpackages:

* :mod:`repro.core` — Benchpark itself (the paper's contribution)
* :mod:`repro.spack` — reproducible build instructions (§3.1)
* :mod:`repro.archspec` — microarchitecture detection (§3.1.3)
* :mod:`repro.ramble` — reproducible run instructions (§3.2)
* :mod:`repro.systems` — simulated HPC systems (cts1/ats2/ats4, §4)
* :mod:`repro.benchmarks` — runnable saxpy/AMG/STREAM/OSU kernels (§4)
* :mod:`repro.ci` — Hubcast/Jacamar/GitLab automation (§3.3)
* :mod:`repro.analysis` — Caliper/Adiak/Thicket/Extra-P (§5)
"""

__version__ = "1.0.0"
