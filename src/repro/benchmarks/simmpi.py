"""SimMPI — an in-process simulated MPI world.

The substitution for real MPI (DESIGN.md §3): benchmarks that need collective
semantics run against a :class:`SimWorld` whose operations

* have **real data semantics** — ``bcast`` really replicates the root's
  payload, ``allreduce`` really reduces across per-rank buffers (so tests can
  assert numerical correctness exactly like an mpi4py program would), and
* have **modeled time semantics** — every call advances a simulated clock by
  the α–β cost from :class:`repro.systems.mpi_model.MpiCostModel`, so
  latency-bound microbenchmarks (OSU bcast, Figure 14's workload) produce
  timings with the right scaling shape at arbitrary rank counts, far beyond
  what one Python process could actually host.

Data is held as "one value per rank" lists, mirroring the SPMD view from the
outside: ``world.bcast(data, root=0)`` returns the per-rank receive buffers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.systems.descriptor import InterconnectSpec
from repro.systems.mpi_model import MpiCostModel

__all__ = ["SimWorld", "SimMpiError", "DEFAULT_INTERCONNECT"]

DEFAULT_INTERCONNECT = InterconnectSpec(
    name="loopback", latency_us=0.5, bandwidth_gbs=20.0, collective_algo="binomial"
)


class SimMpiError(RuntimeError):
    pass


def _nbytes(value: Any) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (int, float, complex)):
        return 8
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (list, tuple)):
        return sum(_nbytes(v) for v in value)
    return 64  # pickled-object estimate


class SimWorld:
    """A simulated communicator over ``size`` ranks."""

    def __init__(self, size: int, interconnect: Optional[InterconnectSpec] = None):
        if size < 1:
            raise SimMpiError(f"world size must be >= 1, got {size}")
        self.size = size
        self.model = MpiCostModel(interconnect or DEFAULT_INTERCONNECT)
        #: simulated elapsed communication time, seconds
        self.sim_time = 0.0
        #: op name -> invocation count (for profiling / Caliper integration)
        self.op_counts: Dict[str, int] = {}
        #: op name -> accumulated simulated seconds
        self.op_times: Dict[str, float] = {}

    # -- bookkeeping -------------------------------------------------------
    def _account(self, op: str, seconds: float) -> None:
        self.sim_time += seconds
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        self.op_times[op] = self.op_times.get(op, 0.0) + seconds

    def _check_per_rank(self, values: Sequence[Any], what: str) -> None:
        if len(values) != self.size:
            raise SimMpiError(
                f"{what} expects one value per rank "
                f"({self.size}), got {len(values)}"
            )

    # -- time-only fast path ------------------------------------------------
    def account_only(self, op: str, m_bytes: int) -> None:
        """Advance the clock for a collective without materializing per-rank
        data — used by timing loops (OSU) where replicating a 1 MB buffer to
        thousands of simulated ranks would swamp memory for no benefit."""
        self._account(op, self.model.cost(op, self.size, m_bytes))

    # -- collectives -----------------------------------------------------------
    def bcast(self, value: Any, root: int = 0) -> List[Any]:
        """Replicate the root's value to all ranks."""
        self._check_rank(root)
        self._account("bcast", self.model.bcast(self.size, _nbytes(value)))
        if isinstance(value, np.ndarray):
            return [value if r == root else value.copy() for r in range(self.size)]
        return [value for _ in range(self.size)]

    def reduce(self, values: Sequence[Any], op: Callable = np.add, root: int = 0) -> Any:
        """Combine per-rank values onto the root."""
        self._check_rank(root)
        self._check_per_rank(values, "reduce")
        self._account("reduce", self.model.reduce(self.size, _nbytes(values[0])))
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, values: Sequence[Any], op: Callable = np.add) -> List[Any]:
        """Combine per-rank values; every rank receives the result."""
        self._check_per_rank(values, "allreduce")
        self._account("allreduce", self.model.allreduce(self.size, _nbytes(values[0])))
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        if isinstance(acc, np.ndarray):
            return [acc.copy() for _ in range(self.size)]
        return [acc for _ in range(self.size)]

    def allgather(self, values: Sequence[Any]) -> List[List[Any]]:
        """Each rank receives the full list of per-rank values."""
        self._check_per_rank(values, "allgather")
        self._account(
            "allgather", self.model.allgather(self.size, _nbytes(values[0]))
        )
        gathered = list(values)
        return [list(gathered) for _ in range(self.size)]

    def gather(self, values: Sequence[Any], root: int = 0) -> List[Any]:
        self._check_rank(root)
        self._check_per_rank(values, "gather")
        self._account("gather", self.model.gather(self.size, _nbytes(values[0])))
        return list(values)

    def scatter(self, values: Sequence[Any], root: int = 0) -> List[Any]:
        self._check_rank(root)
        self._check_per_rank(values, "scatter")
        self._account("scatter", self.model.scatter(self.size, _nbytes(values[0])))
        return list(values)

    def alltoall(self, matrix: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """matrix[src][dst] → received[dst][src] (a transpose)."""
        self._check_per_rank(matrix, "alltoall")
        for row in matrix:
            self._check_per_rank(row, "alltoall row")
        self._account(
            "alltoall", self.model.alltoall(self.size, _nbytes(matrix[0][0]))
        )
        return [[matrix[s][d] for s in range(self.size)] for d in range(self.size)]

    def barrier(self) -> None:
        self._account("barrier", self.model.barrier(self.size))

    def sendrecv(self, value: Any, dest: int, source: int) -> Any:
        """Point-to-point exchange (used by halo exchanges)."""
        self._check_rank(dest)
        self._check_rank(source)
        self._account("sendrecv", self.model.ptp(_nbytes(value)))
        return value

    def halo_exchange(self, neighbors: int, m_bytes: int) -> None:
        """Account a nearest-neighbour exchange without moving data."""
        self._account("halo", self.model.halo_exchange(neighbors, m_bytes))

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise SimMpiError(f"rank {rank} out of range [0, {self.size})")

    # -- reporting -----------------------------------------------------------
    def comm_profile(self) -> Dict[str, Dict[str, float]]:
        return {
            op: {"count": self.op_counts[op], "seconds": self.op_times[op]}
            for op in sorted(self.op_counts)
        }

    def to_caliper_profile(self, metadata: Optional[Dict[str, Any]] = None):
        """Export the accumulated communication accounting as a Caliper
        :class:`~repro.analysis.caliper.Profile`: one ``MPI_<Op>`` region
        per collective, with visits and inclusive time from the simulated
        clock — the exact shape Thicket/Extra-P consume for Figure 14."""
        from repro.analysis.caliper import Profile, RegionNode

        root = RegionNode("")
        mpi = root.child("MPI")
        mpi.visits = 1
        mpi.inclusive = self.sim_time
        for op in sorted(self.op_counts):
            node = mpi.child(f"MPI_{op.capitalize()}")
            node.visits = self.op_counts[op]
            node.inclusive = self.op_times[op]
        merged = {"nprocs": self.size}
        merged.update(metadata or {})
        return Profile(root, merged)

    def __repr__(self):
        return f"SimWorld(size={self.size}, sim_time={self.sim_time:.6f}s)"
