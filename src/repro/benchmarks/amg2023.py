"""AMG2023 command-line entry point.

Mirrors the real AMG2023 binary's interface closely enough for Benchpark's
``application.py`` (``amg -problem 1 -n {n} ...``):

    python -m repro.benchmarks.amg2023 -problem 1 -n 16 -ranks 8

Prints the FOM lines Benchpark's figures of merit parse (see
:mod:`repro.benchmarks.amg.solver`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .amg import run_amg

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="amg", description="AMG2023 proxy benchmark"
    )
    parser.add_argument("-problem", type=int, default=1, choices=(1, 2, 3),
                        help="1: 3D 7-pt Laplace, 2: 2D anisotropic, 3: 3D 27-pt")
    parser.add_argument("-n", type=int, default=16,
                        help="grid points per dimension")
    parser.add_argument("-ranks", type=int, default=1,
                        help="simulated MPI ranks")
    parser.add_argument("-solver", choices=("pcg", "amg"), default="pcg")
    parser.add_argument("-smoother", choices=("jacobi", "gauss_seidel"),
                        default="jacobi")
    parser.add_argument("-gamma", type=int, default=1,
                        help="cycle index: 1=V, 2=W")
    parser.add_argument("-tol", type=float, default=1e-8)
    args = parser.parse_args(argv)

    result = run_amg(
        problem=args.problem,
        n=args.n,
        n_ranks=args.ranks,
        solver=args.solver,
        smoother=args.smoother,
        gamma=args.gamma,
        tol=args.tol,
    )
    print(result.report())
    return 0 if result.stats.converged else 1


if __name__ == "__main__":
    sys.exit(main())
