"""AMG solve phase: multigrid cycling and preconditioned conjugate gradient.

V- and W-cycles over a :class:`~repro.benchmarks.amg.hierarchy.Hierarchy`,
with a dense direct solve on the coarsest level, plus:

* :func:`amg_solve` — standalone AMG iteration to a residual tolerance
  (AMG2023's ``-solver 1`` style), and
* :func:`pcg_solve` — CG preconditioned with one AMG cycle per iteration
  (AMG2023's default ``-solver 0``, hypre's AMG-PCG).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .hierarchy import Hierarchy
from .smoothers import make_smoother

__all__ = ["cycle", "amg_solve", "pcg_solve", "SolveStats"]


@dataclass
class SolveStats:
    """Convergence record of one solve."""

    iterations: int = 0
    residuals: List[float] = field(default_factory=list)
    solve_seconds: float = 0.0
    converged: bool = False
    method: str = "amg"

    @property
    def final_relative_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")

    @property
    def average_convergence_factor(self) -> float:
        if len(self.residuals) < 2 or self.residuals[0] == 0:
            return 0.0
        ratio = self.residuals[-1] / self.residuals[0]
        return float(ratio ** (1.0 / (len(self.residuals) - 1)))


def cycle(
    h: Hierarchy,
    b: np.ndarray,
    x: Optional[np.ndarray] = None,
    level: int = 0,
    gamma: int = 1,
    smoother: str = "jacobi",
    pre: int = 1,
    post: int = 1,
) -> np.ndarray:
    """One multigrid cycle (γ=1: V-cycle, γ=2: W-cycle) starting at level."""
    if gamma < 1:
        raise ValueError(f"gamma must be >= 1, got {gamma}")
    a = h.levels[level].a
    if x is None:
        x = np.zeros_like(b)
    if level == h.num_levels - 1:
        # Coarsest level: dense direct solve (size is <= coarse_size).
        return np.linalg.solve(a.toarray(), b)

    smooth = make_smoother(smoother, iterations=1)
    for _ in range(pre):
        x = smooth(a, x, b)
    residual = b - a @ x
    coarse_b = h.levels[level].r @ residual
    coarse_x = np.zeros_like(coarse_b)
    for _ in range(gamma):
        coarse_x = cycle(
            h, coarse_b, coarse_x, level=level + 1, gamma=gamma,
            smoother=smoother, pre=pre, post=post,
        )
    x = x + h.levels[level].p @ coarse_x
    for _ in range(post):
        x = smooth(a, x, b)
    return x


def amg_solve(
    h: Hierarchy,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iterations: int = 100,
    gamma: int = 1,
    smoother: str = "jacobi",
) -> tuple[np.ndarray, SolveStats]:
    """Standalone AMG iteration: repeat cycles until ||r||/||b|| < tol."""
    a = h.levels[0].a
    stats = SolveStats(method=f"amg-{'v' if gamma == 1 else 'w'}cycle")
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0:
        stats.converged = True
        return np.zeros_like(b), stats
    x = np.zeros_like(b)
    t0 = time.perf_counter()
    stats.residuals.append(1.0)
    for _ in range(max_iterations):
        x = cycle(h, b, x, gamma=gamma, smoother=smoother)
        rel = float(np.linalg.norm(b - a @ x)) / norm_b
        stats.residuals.append(rel)
        stats.iterations += 1
        if rel < tol:
            stats.converged = True
            break
    stats.solve_seconds = time.perf_counter() - t0
    return x, stats


def pcg_solve(
    h: Hierarchy,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iterations: int = 500,
    gamma: int = 1,
    smoother: str = "jacobi",
) -> tuple[np.ndarray, SolveStats]:
    """Conjugate gradient with one AMG cycle as the preconditioner —
    AMG2023's default solver configuration."""
    a = h.levels[0].a
    stats = SolveStats(method="amg-pcg")
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0:
        stats.converged = True
        return np.zeros_like(b), stats

    def precond(r: np.ndarray) -> np.ndarray:
        return cycle(h, r, gamma=gamma, smoother=smoother)

    x = np.zeros_like(b)
    r = b.copy()
    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    t0 = time.perf_counter()
    stats.residuals.append(1.0)
    for _ in range(max_iterations):
        ap = a @ p
        pap = float(p @ ap)
        if pap <= 0:
            break  # loss of positive-definiteness; bail out
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rel = float(np.linalg.norm(r)) / norm_b
        stats.residuals.append(rel)
        stats.iterations += 1
        if rel < tol:
            stats.converged = True
            break
        z = precond(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    stats.solve_seconds = time.perf_counter() - t0
    return x, stats
