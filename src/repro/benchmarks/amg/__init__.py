"""A real algebraic-multigrid solver standing in for AMG2023 [21].

Smoothed-aggregation AMG on SciPy sparse matrices: problem generators
(:mod:`grids`), setup (:mod:`hierarchy`), smoothers (:mod:`smoothers`),
V/W cycles + AMG-PCG (:mod:`cycles`), and the AMG2023-compatible benchmark
driver (:mod:`solver`) with its FOM_Setup / FOM_Solve output format.
"""

from .cycles import SolveStats, amg_solve, cycle, pcg_solve
from .grids import anisotropic_2d, poisson_2d, poisson_3d, poisson_3d_27pt, problem_matrix
from .hierarchy import Hierarchy, Level, aggregate, build_hierarchy, strength_graph
from .smoothers import gauss_seidel, jacobi, make_smoother
from .solver import AmgResult, model_comm_per_cycle, run_amg

__all__ = [
    "AmgResult",
    "Hierarchy",
    "Level",
    "SolveStats",
    "aggregate",
    "amg_solve",
    "anisotropic_2d",
    "build_hierarchy",
    "cycle",
    "gauss_seidel",
    "jacobi",
    "make_smoother",
    "model_comm_per_cycle",
    "pcg_solve",
    "poisson_2d",
    "poisson_3d",
    "poisson_3d_27pt",
    "problem_matrix",
    "run_amg",
    "strength_graph",
]
