"""Smoothers for the AMG hierarchy.

Weighted Jacobi and Gauss–Seidel, the two point smoothers AMG2023/hypre
offer for CPU runs (hypre relax types 0 and 3/6).  Jacobi is fully
vectorized; Gauss–Seidel uses a sparse triangular solve (SciPy) so it stays
O(nnz) — per the HPC-Python guides, no Python-level loops over rows.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

__all__ = ["jacobi", "gauss_seidel", "make_smoother", "SMOOTHERS"]


def jacobi(
    a: sp.csr_matrix,
    x: np.ndarray,
    b: np.ndarray,
    iterations: int = 1,
    omega: float = 2.0 / 3.0,
) -> np.ndarray:
    """Weighted Jacobi: x ← x + ω D⁻¹ (b − A x)."""
    d = a.diagonal()
    if np.any(d == 0):
        raise ValueError("Jacobi smoother requires a nonzero diagonal")
    dinv = omega / d
    for _ in range(iterations):
        x = x + dinv * (b - a @ x)
    return x


def gauss_seidel(
    a: sp.csr_matrix,
    x: np.ndarray,
    b: np.ndarray,
    iterations: int = 1,
    forward: bool = True,
) -> np.ndarray:
    """Gauss–Seidel via triangular solve: (D+L) x_new = b − U x_old."""
    lower = sp.tril(a, format="csr")
    upper = a - lower
    for _ in range(iterations):
        rhs = b - upper @ x
        x = spsolve_triangular(lower, rhs, lower=forward)
    return x


def make_smoother(name: str, iterations: int = 1, omega: float = 2.0 / 3.0
                  ) -> Callable[[sp.csr_matrix, np.ndarray, np.ndarray], np.ndarray]:
    """Factory returning smooth(a, x, b) → x for a named smoother."""
    if name == "jacobi":
        return lambda a, x, b: jacobi(a, x, b, iterations=iterations, omega=omega)
    if name == "gauss_seidel":
        return lambda a, x, b: gauss_seidel(a, x, b, iterations=iterations)
    raise ValueError(f"unknown smoother {name!r}; known: {sorted(SMOOTHERS)}")


SMOOTHERS = {"jacobi", "gauss_seidel"}
