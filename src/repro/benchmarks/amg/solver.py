"""AMG2023-compatible benchmark driver.

Ties the pieces together the way the AMG2023 binary does: build the problem,
time the **setup** phase (hierarchy construction) and the **solve** phase
(AMG-PCG), and report the two figures of merit AMG2023 prints::

    Figure of Merit (FOM_Setup): <nnz / setup seconds>
    Figure of Merit (FOM_Solve): <nnz * iterations / solve seconds>

plus the convergence summary Benchpark's ``application.py`` regexes parse.

Parallel runs are block-row decompositions: the numerics are computed once
(the result is identical regardless of decomposition — that's the point of
the benchmark) while communication time per cycle is modeled from the
hierarchy's per-level halo volumes through SimMPI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..simmpi import SimWorld
from .cycles import SolveStats, amg_solve, pcg_solve
from .grids import problem_matrix
from .hierarchy import Hierarchy, build_hierarchy

__all__ = ["AmgResult", "run_amg", "model_comm_per_cycle"]


@dataclass
class AmgResult:
    problem: str
    n_rows: int
    nnz: int
    n_ranks: int
    num_levels: int
    operator_complexity: float
    setup_seconds: float
    solve_seconds: float
    comm_seconds: float
    stats: SolveStats

    @property
    def fom_setup(self) -> float:
        return self.nnz / self.setup_seconds if self.setup_seconds > 0 else 0.0

    @property
    def fom_solve(self) -> float:
        total = self.solve_seconds + self.comm_seconds
        if total <= 0:
            return 0.0
        return self.nnz * max(self.stats.iterations, 1) / total

    def report(self) -> str:
        lines = [
            f"AMG2023 benchmark: {self.problem}",
            f"rows = {self.n_rows}, nnz = {self.nnz}, ranks = {self.n_ranks}",
            f"levels = {self.num_levels}, "
            f"operator complexity = {self.operator_complexity:.3f}",
            f"setup time: {self.setup_seconds:.6f} s",
            f"solve time: {self.solve_seconds + self.comm_seconds:.6f} s",
            f"iterations: {self.stats.iterations}",
            f"relative residual: {self.stats.final_relative_residual:.6e}",
            f"convergence factor: {self.stats.average_convergence_factor:.4f}",
            f"Figure of Merit (FOM_Setup): {self.fom_setup:.6e}",
            f"Figure of Merit (FOM_Solve): {self.fom_solve:.6e}",
            f"solver {'converged' if self.stats.converged else 'DID NOT converge'}",
        ]
        return "\n".join(lines)


def model_comm_per_cycle(h: Hierarchy, world: SimWorld) -> float:
    """Simulated communication seconds for one V-cycle at ``world.size``
    ranks: a halo exchange per smoothing sweep per level (surface-to-volume
    block-row decomposition) plus one small allreduce for the residual norm.
    """
    p = world.size
    if p <= 1:
        return 0.0
    before = world.sim_time
    for level in h.levels:
        rows_per_rank = max(level.n // p, 1)
        avg_row_nnz = level.nnz / max(level.n, 1)
        # Halo width ≈ one row-block boundary each side; volume scales with
        # the interface size ~ (rows_per_rank)^(2/3) for 3D problems.
        interface_rows = max(int(rows_per_rank ** (2.0 / 3.0)), 1)
        halo_bytes = int(interface_rows * avg_row_nnz * 8)
        world.halo_exchange(neighbors=2, m_bytes=halo_bytes)
    world.allreduce([0.0] * p)  # residual norm
    return world.sim_time - before


def run_amg(
    problem: int = 1,
    n: int = 16,
    n_ranks: int = 1,
    solver: str = "pcg",
    smoother: str = "jacobi",
    gamma: int = 1,
    tol: float = 1e-8,
    max_iterations: int = 200,
    theta: Optional[float] = None,
    world: Optional[SimWorld] = None,
    caliper_session=None,
) -> AmgResult:
    """Run the AMG benchmark end to end (setup + solve + FOMs).

    Passing a :class:`repro.analysis.caliper.CaliperSession` annotates the
    phases the paper plans to instrument (§5: "we plan to annotate the
    benchmarks with Caliper"): a ``problem``/``setup``/``solve`` region tree
    with Adiak-style run metadata attached at flush time by the caller.
    """
    from contextlib import nullcontext

    if theta is None:
        # Per-problem strength thresholds: the 27-point stencil's couplings
        # are uniformly 1/26 of the diagonal, so the 7-point default (0.08)
        # would filter every connection and collapse the hierarchy.
        theta = {1: 0.08, 2: 0.25, 3: 0.02}[problem]

    def region(name: str):
        return caliper_session.region(name) if caliper_session else nullcontext()

    with region("amg2023"):
        with region("problem"):
            a, desc = problem_matrix(problem, n)
            rng = np.random.default_rng(seed=42)
            b = rng.random(a.shape[0])

        with region("setup"):
            t0 = time.perf_counter()
            h = build_hierarchy(a, theta=theta)
            setup_seconds = time.perf_counter() - t0

        with region("solve"):
            if solver == "pcg":
                x, stats = pcg_solve(h, b, tol=tol,
                                     max_iterations=max_iterations,
                                     gamma=gamma, smoother=smoother)
            elif solver == "amg":
                x, stats = amg_solve(h, b, tol=tol,
                                     max_iterations=max_iterations,
                                     gamma=gamma, smoother=smoother)
            else:
                raise ValueError(f"unknown solver {solver!r}; use 'pcg' or 'amg'")

    comm_seconds = 0.0
    if n_ranks > 1:
        world = world or SimWorld(n_ranks)
        per_cycle = model_comm_per_cycle(h, world)
        comm_seconds = per_cycle * max(stats.iterations, 1)
        # Compute itself parallelizes over block rows.
        stats.solve_seconds /= n_ranks
        setup_seconds /= n_ranks

    return AmgResult(
        problem=desc,
        n_rows=a.shape[0],
        nnz=a.nnz,
        n_ranks=n_ranks,
        num_levels=h.num_levels,
        operator_complexity=h.operator_complexity,
        setup_seconds=setup_seconds,
        solve_seconds=stats.solve_seconds,
        comm_seconds=comm_seconds,
        stats=stats,
    )
