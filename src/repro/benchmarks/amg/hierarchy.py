"""AMG setup phase: build the multigrid hierarchy.

Smoothed-aggregation AMG (Vaněk/Mandel/Brezina), the standard algebraic
construction:

1. **Strength of connection** — filter weak couplings
   (|a_ij| ≥ θ·√(a_ii·a_jj)).
2. **Aggregation** — greedy root-node aggregation over the strength graph.
3. **Tentative prolongator** — piecewise-constant injection per aggregate.
4. **Prolongator smoothing** — one weighted-Jacobi step applied to P
   (this is what separates SA from plain aggregation and restores grid-
   independent convergence for Poisson).
5. **Galerkin product** — A_coarse = Pᵀ A P; recurse until the coarse
   problem is small enough for a direct solve.

The hierarchy records per-level operator complexity, which feeds both the
benchmark's FOM (AMG2023 reports setup cost per nnz) and the parallel
communication model (halo volume per level).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["Level", "Hierarchy", "build_hierarchy", "strength_graph", "aggregate"]


@dataclass
class Level:
    """One level of the multigrid hierarchy."""

    a: sp.csr_matrix
    p: Optional[sp.csr_matrix] = None  # prolongation to THIS level from coarser
    r: Optional[sp.csr_matrix] = None  # restriction from this level to coarser

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def nnz(self) -> int:
        return self.a.nnz


@dataclass
class Hierarchy:
    levels: List[Level] = field(default_factory=list)
    setup_seconds: float = 0.0
    theta: float = 0.08
    max_levels: int = 25
    coarse_size: int = 50

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def operator_complexity(self) -> float:
        """Σ nnz(A_l) / nnz(A_0) — the standard AMG cost metric."""
        fine = self.levels[0].nnz
        return sum(l.nnz for l in self.levels) / fine if fine else 0.0

    @property
    def grid_complexity(self) -> float:
        fine = self.levels[0].n
        return sum(l.n for l in self.levels) / fine if fine else 0.0

    def summary(self) -> str:
        lines = ["level      rows        nnz"]
        for i, level in enumerate(self.levels):
            lines.append(f"{i:>5} {level.n:>10} {level.nnz:>10}")
        lines.append(f"operator complexity = {self.operator_complexity:.3f}")
        lines.append(f"grid complexity     = {self.grid_complexity:.3f}")
        return "\n".join(lines)


def strength_graph(a: sp.csr_matrix, theta: float = 0.08) -> sp.csr_matrix:
    """Symmetric strength-of-connection filter:
    keep a_ij with |a_ij| ≥ θ √(a_ii a_jj), i ≠ j."""
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    d = np.abs(a.diagonal())
    d[d == 0] = 1.0
    scale = np.sqrt(d)
    coo = a.tocoo()
    mask = (coo.row != coo.col) & (
        np.abs(coo.data) >= theta * scale[coo.row] * scale[coo.col]
    )
    s = sp.csr_matrix(
        (np.ones(mask.sum()), (coo.row[mask], coo.col[mask])), shape=a.shape
    )
    return s + s.T  # symmetrize


def aggregate(strength: sp.csr_matrix) -> np.ndarray:
    """Greedy root-node aggregation.

    Pass 1: pick unaggregated nodes whose strong neighbours are all
    unaggregated as roots; the root plus neighbours form an aggregate.
    Pass 2: attach leftovers to the aggregate of any strong neighbour
    (or make them singletons).  Returns aggregate id per node.
    """
    n = strength.shape[0]
    indptr, indices = strength.indptr, strength.indices
    agg = -np.ones(n, dtype=np.int64)
    next_agg = 0
    # Pass 1: roots
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = indices[indptr[i]:indptr[i + 1]]
        if np.all(agg[nbrs] == -1):
            agg[i] = next_agg
            agg[nbrs] = next_agg
            next_agg += 1
    # Pass 2: attach stragglers to a neighbouring aggregate
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = indices[indptr[i]:indptr[i + 1]]
        assigned = nbrs[agg[nbrs] != -1]
        if assigned.size:
            agg[i] = agg[assigned[0]]
        else:
            agg[i] = next_agg
            next_agg += 1
    return agg


def _tentative_prolongator(agg: np.ndarray) -> sp.csr_matrix:
    n = agg.shape[0]
    n_coarse = int(agg.max()) + 1
    p = sp.csr_matrix(
        (np.ones(n), (np.arange(n), agg)), shape=(n, n_coarse)
    )
    return p


def _smooth_prolongator(a: sp.csr_matrix, p: sp.csr_matrix,
                        omega: float = 2.0 / 3.0) -> sp.csr_matrix:
    d = a.diagonal()
    d[d == 0] = 1.0
    dinv = sp.diags(omega / d)
    return (p - dinv @ (a @ p)).tocsr()


def build_hierarchy(
    a: sp.csr_matrix,
    theta: float = 0.08,
    max_levels: int = 25,
    coarse_size: int = 50,
    smooth_p: bool = True,
) -> Hierarchy:
    """Run the full SA-AMG setup phase on matrix ``a``."""
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    a = a.tocsr()
    t0 = time.perf_counter()
    h = Hierarchy(theta=theta, max_levels=max_levels, coarse_size=coarse_size)
    h.levels.append(Level(a=a))
    while (
        h.levels[-1].n > coarse_size
        and h.num_levels < max_levels
    ):
        fine = h.levels[-1].a
        s = strength_graph(fine, theta)
        agg = aggregate(s)
        n_coarse = int(agg.max()) + 1
        if n_coarse >= fine.shape[0]:
            break  # aggregation stalled; stop coarsening
        p = _tentative_prolongator(agg)
        if smooth_p:
            p = _smooth_prolongator(fine, p)
        r = p.T.tocsr()
        a_coarse = (r @ fine @ p).tocsr()
        h.levels[-1].p = p
        h.levels[-1].r = r
        h.levels.append(Level(a=a_coarse))
    h.setup_seconds = time.perf_counter() - t0
    return h
