"""Problem generators for the AMG benchmark.

AMG2023 [21] solves linear systems from structured Poisson-type problems
(it drives hypre's BoomerAMG the same way).  We generate the same operator
classes with ``scipy.sparse``:

* 2D / 3D 5- and 7-point Poisson Laplacians on regular grids
  (AMG2023's default ``-problem 1``);
* anisotropic variants (AMG2023 ``-problem 2`` has jumps/anisotropy);
* a random-perturbation SPD matrix for robustness testing.

All matrices are CSR, symmetric positive definite, with the standard
row-sum-zero-plus-boundary structure AMG coarsening expects.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["poisson_2d", "poisson_3d", "poisson_3d_27pt", "anisotropic_2d",
           "problem_matrix"]


def _laplace_1d(n: int) -> sp.csr_matrix:
    if n < 1:
        raise ValueError(f"grid dimension must be >= 1, got {n}")
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


def poisson_2d(nx: int, ny: int = 0) -> sp.csr_matrix:
    """5-point Laplacian on an nx × ny grid (Dirichlet boundaries)."""
    ny = ny or nx
    ix = sp.identity(nx, format="csr")
    iy = sp.identity(ny, format="csr")
    a = sp.kron(iy, _laplace_1d(nx), format="csr") + sp.kron(
        _laplace_1d(ny), ix, format="csr"
    )
    a = a.tocsr()
    a.eliminate_zeros()
    return a


def poisson_3d(nx: int, ny: int = 0, nz: int = 0) -> sp.csr_matrix:
    """7-point Laplacian on an nx × ny × nz grid — AMG2023's default."""
    ny = ny or nx
    nz = nz or nx
    ix = sp.identity(nx, format="csr")
    iy = sp.identity(ny, format="csr")
    iz = sp.identity(nz, format="csr")
    a = (
        sp.kron(sp.kron(iz, iy), _laplace_1d(nx), format="csr")
        + sp.kron(sp.kron(iz, _laplace_1d(ny), format="csr"), ix, format="csr")
        + sp.kron(sp.kron(_laplace_1d(nz), iy, format="csr"), ix, format="csr")
    )
    a = a.tocsr()
    a.eliminate_zeros()
    return a


def anisotropic_2d(nx: int, ny: int = 0, epsilon: float = 0.001) -> sp.csr_matrix:
    """Anisotropic diffusion  -u_xx - ε·u_yy: the classic AMG stress test
    (point smoothers alone stall; coarsening must follow the strong x
    direction)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    ny = ny or nx
    ix = sp.identity(nx, format="csr")
    iy = sp.identity(ny, format="csr")
    a = sp.kron(iy, _laplace_1d(nx), format="csr") + epsilon * sp.kron(
        _laplace_1d(ny), ix, format="csr"
    )
    a = a.tocsr()
    a.eliminate_zeros()
    return a


def problem_matrix(problem: int, n: int) -> Tuple[sp.csr_matrix, str]:
    """AMG2023-style problem selector: 1 = 3D Laplace, 2 = anisotropic 2D."""
    if problem == 1:
        return poisson_3d(n), f"3D 7-point Laplace {n}^3"
    if problem == 2:
        return anisotropic_2d(n, n), f"2D anisotropic {n}x{n} eps=0.001"
    if problem == 3:
        return poisson_3d_27pt(n), f"3D 27-point Laplace {n}^3"
    raise ValueError(f"unknown problem {problem}; supported: 1, 2, 3")


def poisson_3d_27pt(nx: int, ny: int = 0, nz: int = 0) -> sp.csr_matrix:
    """27-point 3D Laplacian: every node couples to its full 3x3x3
    neighbourhood (the denser stencil AMG2023's harder problems use).
    Built as 26·I − (E⊗E⊗E − I) with E the 0/±1 ones-tridiagonal, which is
    symmetric and strictly diagonally dominant on the (Dirichlet) boundary
    — hence SPD."""
    ny = ny or nx
    nz = nz or nx

    def ones_tridiag(n: int) -> sp.csr_matrix:
        off = np.ones(n - 1)
        return sp.diags([off, np.ones(n), off], [-1, 0, 1], format="csr")

    e = sp.kron(
        sp.kron(ones_tridiag(nz), ones_tridiag(ny), format="csr"),
        ones_tridiag(nx), format="csr",
    ).tocsr()
    n_total = nx * ny * nz
    a = 26.0 * sp.identity(n_total, format="csr") - (
        e - sp.identity(n_total, format="csr")
    )
    a = a.tocsr()
    a.eliminate_zeros()
    return a
