"""OSU-style MPI collective micro-benchmarks over SimMPI.

This is the workload behind the paper's Figure 14: MPI_Bcast timed across
process counts on the CTS architecture, measurements then fed to Extra-P.
The output format follows osu_bcast::

    # OSU MPI Broadcast Latency Test
    # Size       Avg Latency(us)
    8                       1.23
    ...

and adds a ``Total time`` line per run — the metric Figure 14 plots
("Total time_mean (s)" versus nprocs).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.systems.descriptor import InterconnectSpec
from repro.systems.mpi_model import COLLECTIVES
from .simmpi import SimWorld

__all__ = ["run_collective", "OsuResult", "main"]


@dataclass
class OsuResult:
    operation: str
    n_ranks: int
    #: message size (bytes) -> average latency (microseconds)
    latencies_us: Dict[int, float] = field(default_factory=dict)
    iterations: int = 100
    total_seconds: float = 0.0

    def report(self) -> str:
        lines = [
            f"# OSU MPI {self.operation.capitalize()} Latency Test",
            f"# ranks: {self.n_ranks}",
            "# Size       Avg Latency(us)",
        ]
        for size in sorted(self.latencies_us):
            lines.append(f"{size:<12}{self.latencies_us[size]:>18.2f}")
        lines.append(f"Total time: {self.total_seconds:.6f} s")
        lines.append("Benchmark complete")
        return "\n".join(lines)


def run_collective(
    operation: str = "bcast",
    n_ranks: int = 2,
    min_size: int = 8,
    max_size: int = 1 << 20,
    iterations: int = 100,
    interconnect: Optional[InterconnectSpec] = None,
    verify: bool = True,
) -> OsuResult:
    """Time one collective across power-of-two message sizes.

    With ``verify=True`` each size also runs one *data-carrying* call on
    real NumPy buffers and asserts collective semantics, so this benchmark
    doubles as a SimMPI correctness test (exactly like OSU's validation
    mode)."""
    if operation not in COLLECTIVES:
        raise ValueError(
            f"unknown collective {operation!r}; known: {sorted(COLLECTIVES)}"
        )
    if n_ranks < 1:
        raise ValueError(f"need >= 1 rank, got {n_ranks}")
    if min_size < 1 or max_size < min_size:
        raise ValueError(f"bad size range [{min_size}, {max_size}]")

    world = SimWorld(n_ranks, interconnect)
    result = OsuResult(operation=operation, n_ranks=n_ranks, iterations=iterations)

    size = min_size
    while size <= max_size:
        t_before = world.sim_time
        n_doubles = max(size // 8, 1)
        # Timing loop uses the account-only path: replicating buffers to
        # thousands of simulated ranks costs real memory for no fidelity.
        for _ in range(iterations):
            world.account_only(operation, size)
        elapsed = world.sim_time - t_before
        result.latencies_us[size] = elapsed / iterations * 1e6

        if verify:
            # Semantics check on a bounded payload (correctness does not
            # depend on buffer size; memory does).
            _verify_semantics(world, operation, min(n_doubles, 1024))
        size *= 2

    result.total_seconds = world.sim_time
    return result


def _verify_semantics(world: SimWorld, operation: str, n_doubles: int) -> None:
    p = world.size
    if operation == "bcast":
        data = np.arange(n_doubles, dtype=float)
        received = world.bcast(data, root=0)
        assert all(np.array_equal(r, data) for r in received)
    elif operation == "allreduce":
        per_rank = [np.full(n_doubles, float(r)) for r in range(p)]
        out = world.allreduce(per_rank)
        expected = np.full(n_doubles, sum(range(p)), dtype=float)
        assert all(np.allclose(o, expected) for o in out)
    elif operation == "reduce":
        per_rank = [np.full(n_doubles, 1.0) for _ in range(p)]
        out = world.reduce(per_rank)
        assert np.allclose(out, p)
    elif operation == "allgather":
        vals = [float(r) for r in range(p)]
        out = world.allgather(vals)
        assert all(o == vals for o in out)
    # gather/scatter/alltoall/barrier verified in unit tests


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="osu_bcast")
    parser.add_argument("--op", default="bcast", choices=sorted(COLLECTIVES))
    parser.add_argument("--ranks", type=int, default=2)
    parser.add_argument("--min-size", type=int, default=8)
    parser.add_argument("--max-size", type=int, default=1 << 16)
    parser.add_argument("--iterations", type=int, default=100)
    args = parser.parse_args(argv)
    result = run_collective(
        args.op, args.ranks, args.min_size, args.max_size, args.iterations
    )
    print(result.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
