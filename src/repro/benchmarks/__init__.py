"""Runnable benchmark implementations (paper §4): saxpy, AMG2023 (a real
smoothed-aggregation AMG solver), STREAM, and OSU-style collectives —
all executing real NumPy/SciPy numerics, with SimMPI supplying collective
semantics and modeled communication time."""

from . import amg
from .osu import OsuResult, run_collective
from .quicksilver import QuicksilverResult, run_quicksilver
from .saxpy import SaxpyResult, run_saxpy, saxpy_kernel
from .simmpi import SimWorld
from .stream import StreamResult, run_stream

__all__ = [
    "OsuResult",
    "QuicksilverResult",
    "SaxpyResult",
    "SimWorld",
    "StreamResult",
    "amg",
    "run_collective",
    "run_quicksilver",
    "run_saxpy",
    "run_stream",
    "saxpy_kernel",
]
