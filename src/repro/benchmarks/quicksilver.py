"""A Quicksilver-class Monte Carlo particle-transport proxy.

§7 points at the ECP Proxy Applications suite [9] as the community's shared
benchmark pool; Quicksilver (MC dynamic transport) is one of its staples and
has a very different performance signature from saxpy/AMG/STREAM — RNG- and
branch-heavy, latency-bound, with a *segments per second* figure of merit.

The physics here is a deliberately simplified mono-energetic slab problem
with honest Monte Carlo mechanics:

* particles start at the center of a 1-D slab of width ``L`` mean free
  paths, direction sampled isotropically;
* flight lengths are sampled from the exponential distribution with total
  cross-section Σt; at each collision the particle is absorbed with
  probability Σa/Σt or scattered isotropically otherwise;
* particles leak when they cross either slab face.

Everything is vectorized NumPy over the surviving-particle mask (per the
HPC-Python guides: no per-particle Python loops), deterministic per seed,
and statistically *validated*: the mean flight length must converge to
1/Σt, and absorption + leakage must account for every particle.

Output mirrors Quicksilver's: ``Figure Of Merit: <segments/s>`` plus tally
lines, with an ``MC done`` marker for success criteria.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .simmpi import SimWorld

__all__ = ["run_quicksilver", "QuicksilverResult", "main"]


@dataclass
class QuicksilverResult:
    n_particles: int
    n_ranks: int
    slab_width_mfp: float
    absorption_ratio: float  # Σa/Σt
    segments: int
    absorbed: int
    leaked: int
    mean_flight_length: float
    elapsed_seconds: float

    @property
    def fom_segments_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.segments / self.elapsed_seconds

    def report(self) -> str:
        return "\n".join([
            f"Quicksilver proxy: {self.n_particles} particles, "
            f"slab {self.slab_width_mfp} mfp, ranks = {self.n_ranks}",
            f"segments: {self.segments}",
            f"absorbed: {self.absorbed}  leaked: {self.leaked}",
            f"mean flight length: {self.mean_flight_length:.4f} "
            f"(analytic 1.0000)",
            f"Figure Of Merit: {self.fom_segments_per_second:.6e} segments/s",
            "MC done",
        ])


def run_quicksilver(
    n_particles: int = 100_000,
    slab_width_mfp: float = 10.0,
    absorption_ratio: float = 0.3,
    n_ranks: int = 1,
    seed: int = 20231112,
    world: Optional[SimWorld] = None,
) -> QuicksilverResult:
    """Run the transport proxy (lengths in units of the mean free path,
    so Σt = 1 and flight lengths are Exp(1))."""
    if n_particles < 1:
        raise ValueError(f"need at least 1 particle, got {n_particles}")
    if slab_width_mfp <= 0:
        raise ValueError(f"slab width must be positive, got {slab_width_mfp}")
    if not (0.0 < absorption_ratio <= 1.0):
        raise ValueError(
            f"absorption ratio must be in (0, 1], got {absorption_ratio}"
        )
    rng = np.random.default_rng(seed)
    half = slab_width_mfp / 2.0

    x = np.zeros(n_particles)
    mu = rng.uniform(-1.0, 1.0, size=n_particles)  # direction cosine

    alive = np.ones(n_particles, dtype=bool)
    segments = 0
    absorbed = 0
    leaked = 0
    total_flight = 0.0

    t0 = time.perf_counter()
    while alive.any():
        idx = np.flatnonzero(alive)
        flight = rng.exponential(1.0, size=idx.size)
        total_flight += float(flight.sum())
        segments += idx.size
        x[idx] += mu[idx] * flight

        out = np.abs(x[idx]) > half
        leaked += int(out.sum())
        alive[idx[out]] = False

        in_idx = idx[~out]
        if in_idx.size:
            absorb = rng.random(in_idx.size) < absorption_ratio
            absorbed += int(absorb.sum())
            alive[in_idx[absorb]] = False
            scatter_idx = in_idx[~absorb]
            mu[scatter_idx] = rng.uniform(-1.0, 1.0, size=scatter_idx.size)
    elapsed = time.perf_counter() - t0

    comm_seconds = 0.0
    if n_ranks > 1:
        # Domain-replicated MC: each rank tracks n/p particles; the tallies
        # are reduced at the end (Quicksilver's cycleTracking + reduce).
        world = world or SimWorld(n_ranks)
        world.allreduce([np.zeros(4)] * n_ranks)  # 4 tallies
        comm_seconds = world.sim_time
        elapsed = elapsed / n_ranks + comm_seconds

    return QuicksilverResult(
        n_particles=n_particles,
        n_ranks=n_ranks,
        slab_width_mfp=slab_width_mfp,
        absorption_ratio=absorption_ratio,
        segments=segments,
        absorbed=absorbed,
        leaked=leaked,
        mean_flight_length=total_flight / segments if segments else 0.0,
        elapsed_seconds=elapsed,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qs", description="Quicksilver-class MC transport proxy"
    )
    parser.add_argument("-n", type=int, default=100_000, help="particles")
    parser.add_argument("--slab", type=float, default=10.0,
                        help="slab width in mean free paths")
    parser.add_argument("--absorption", type=float, default=0.3)
    parser.add_argument("--ranks", type=int, default=1)
    args = parser.parse_args(argv)
    result = run_quicksilver(args.n, args.slab, args.absorption,
                             n_ranks=args.ranks)
    print(result.report())
    ok = result.absorbed + result.leaked == result.n_particles
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
