"""STREAM — the classic memory-bandwidth microbenchmark (McCalpin), as a
vectorized-NumPy implementation.  An extension benchmark beyond the paper's
two (§4), exercising Benchpark's claim that adding a benchmark needs only a
package.py + application.py pair.

The four kernels and their byte counts per element follow the reference C
implementation:

=========  ==================  =================
kernel     operation           bytes/iteration
=========  ==================  =================
Copy       c = a               16
Scale      b = q·c             16
Add        c = a + b           24
Triad      a = b + q·c         24
=========  ==================  =================

Output format mirrors stream.c's "Best Rate MB/s" table so FOM regexes look
like the real thing.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["run_stream", "StreamResult", "main", "KERNELS"]

KERNELS = ("Copy", "Scale", "Add", "Triad")
_Q = 3.0


@dataclass
class StreamResult:
    array_size: int
    ntimes: int
    #: kernel -> best rate in MB/s
    best_rates: Dict[str, float] = field(default_factory=dict)
    #: kernel -> average time in seconds
    avg_times: Dict[str, float] = field(default_factory=dict)
    valid: bool = True

    def report(self) -> str:
        lines = [
            f"STREAM array size = {self.array_size} (elements), "
            f"{self.ntimes} iterations",
            "Function    Best Rate MB/s  Avg time",
        ]
        for k in KERNELS:
            lines.append(
                f"{k + ':':<12}{self.best_rates[k]:>14.1f}  {self.avg_times[k]:.6f}"
            )
        lines.append(
            "Solution Validates: avg error less than 1.000000e-13"
            if self.valid
            else "Solution INVALID"
        )
        return "\n".join(lines)


def run_stream(array_size: int = 1_000_000, ntimes: int = 10,
               dtype=np.float64) -> StreamResult:
    """Run the four STREAM kernels ``ntimes`` and report best rates."""
    if array_size < 16:
        raise ValueError(f"array size too small: {array_size}")
    if ntimes < 2:
        raise ValueError("ntimes must be >= 2 (first iteration is warm-up)")
    a = np.full(array_size, 1.0, dtype=dtype)
    b = np.full(array_size, 2.0, dtype=dtype)
    c = np.full(array_size, 0.0, dtype=dtype)
    itemsize = a.itemsize
    bytes_per = {
        "Copy": 2 * itemsize * array_size,
        "Scale": 2 * itemsize * array_size,
        "Add": 3 * itemsize * array_size,
        "Triad": 3 * itemsize * array_size,
    }

    times: Dict[str, List[float]] = {k: [] for k in KERNELS}
    for _ in range(ntimes):
        t = time.perf_counter()
        np.copyto(c, a)
        times["Copy"].append(time.perf_counter() - t)

        t = time.perf_counter()
        np.multiply(c, _Q, out=b)
        times["Scale"].append(time.perf_counter() - t)

        t = time.perf_counter()
        np.add(a, b, out=c)
        times["Add"].append(time.perf_counter() - t)

        t = time.perf_counter()
        np.multiply(c, _Q, out=a)
        np.add(a, b, out=a)
        times["Triad"].append(time.perf_counter() - t)

    result = StreamResult(array_size=array_size, ntimes=ntimes)
    for k in KERNELS:
        trimmed = times[k][1:]  # drop warm-up iteration, like stream.c
        best = min(trimmed)
        result.best_rates[k] = bytes_per[k] / best / 1e6
        result.avg_times[k] = sum(trimmed) / len(trimmed)

    # Validation identical in spirit to stream.c: recompute expected values.
    ea, eb, ec = 1.0, 2.0, 0.0
    for _ in range(ntimes):
        ec = ea
        eb = _Q * ec
        ec = ea + eb
        ea = eb + _Q * ec
    result.valid = bool(
        np.allclose(a, ea) and np.allclose(b, eb) and np.allclose(c, ec)
    )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="stream")
    parser.add_argument("-n", "--array-size", type=int, default=1_000_000)
    parser.add_argument("--ntimes", type=int, default=10)
    args = parser.parse_args(argv)
    result = run_stream(args.array_size, args.ntimes)
    print(result.report())
    return 0 if result.valid else 1


if __name__ == "__main__":
    sys.exit(main())
