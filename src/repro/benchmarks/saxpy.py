"""The saxpy micro-benchmark — a real, runnable implementation of the
paper's Figure 7 kernel::

    void saxpy_kernel(float* r, float* x, float* y, int size) {
        for (int i = 0; i < size; ++i) r[i] = A * x[i] + y[i];
    }

Per the HPC-Python guides, the kernel is vectorized NumPy (views, no copies,
in-place writes).  The CLI mirrors the paper's ``saxpy -n {n}`` executable
(Figure 8 line 4) and prints:

* per-rank kernel timing,
* achieved memory bandwidth (3 array streams / elapsed),
* the exact success marker ``Kernel done`` that Figure 8's
  ``figure_of_merit``/``success_criteria`` regexes look for.

MPI mode (``use_mpi=True`` in application.py) splits the array across a
:class:`~repro.benchmarks.simmpi.SimWorld` and validates the distributed
result against the sequential kernel.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .simmpi import SimWorld

__all__ = ["saxpy_kernel", "run_saxpy", "SaxpyResult", "main"]

#: The scalar the paper's kernel calls ``A``.
A = 2.0


def saxpy_kernel(r: np.ndarray, x: np.ndarray, y: np.ndarray) -> None:
    """r ← A·x + y, in place (no temporaries beyond one fused multiply)."""
    if not (r.shape == x.shape == y.shape):
        raise ValueError(
            f"shape mismatch: r{r.shape} x{x.shape} y{y.shape}"
        )
    np.multiply(x, A, out=r)
    np.add(r, y, out=r)


@dataclass
class SaxpyResult:
    n: int
    n_ranks: int
    kernel_seconds: float
    bandwidth_gbs: float
    checksum: float
    correct: bool

    def report(self) -> str:
        lines = [
            f"saxpy: problem size n = {self.n}, ranks = {self.n_ranks}",
            f"saxpy kernel time: {self.kernel_seconds:.6f} s",
            f"saxpy bandwidth: {self.bandwidth_gbs:.3f} GB/s",
            f"saxpy checksum: {self.checksum:.6e}",
            f"verification: {'PASSED' if self.correct else 'FAILED'}",
            "Kernel done",
        ]
        return "\n".join(lines)


def run_saxpy(
    n: int,
    n_ranks: int = 1,
    repeats: int = 3,
    dtype=np.float32,
    world: Optional[SimWorld] = None,
) -> SaxpyResult:
    """Execute the saxpy benchmark.

    With ``n_ranks > 1`` the array is block-distributed; each rank's chunk
    is computed (really), then the partial checksums are combined with an
    ``allreduce`` whose communication time comes from the SimMPI model.
    """
    if n <= 0:
        raise ValueError(f"problem size must be positive, got {n}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rng = np.random.default_rng(seed=n)  # deterministic inputs per size
    x = rng.random(n, dtype=dtype)
    y = rng.random(n, dtype=dtype)
    r = np.empty_like(x)

    # Reference result for verification.
    expected = A * x + y

    best = float("inf")
    if n_ranks <= 1:
        for _ in range(repeats):
            t0 = time.perf_counter()
            saxpy_kernel(r, x, y)
            best = min(best, time.perf_counter() - t0)
        checksum = float(np.sum(r, dtype=np.float64))
        correct = bool(np.allclose(r, expected, rtol=1e-5))
        comm_time = 0.0
    else:
        world = world or SimWorld(n_ranks)
        bounds = np.linspace(0, n, n_ranks + 1, dtype=int)
        chunks: List[slice] = [
            slice(bounds[i], bounds[i + 1]) for i in range(n_ranks)
        ]
        for _ in range(repeats):
            t0 = time.perf_counter()
            for sl in chunks:
                saxpy_kernel(r[sl], x[sl], y[sl])
            best = min(best, time.perf_counter() - t0)
        partial = [float(np.sum(r[sl], dtype=np.float64)) for sl in chunks]
        totals = world.allreduce(partial, op=lambda a, b: a + b)
        checksum = totals[0]
        correct = bool(np.allclose(r, expected, rtol=1e-5))
        comm_time = world.sim_time
        # Perfectly parallel compute: each rank only did 1/p of the work.
        best = best / n_ranks + comm_time

    bytes_moved = 3 * n * x.itemsize  # read x, read y, write r
    bandwidth = bytes_moved / best / 1e9 if best > 0 else float("inf")
    return SaxpyResult(
        n=n,
        n_ranks=n_ranks,
        kernel_seconds=best,
        bandwidth_gbs=bandwidth,
        checksum=checksum,
        correct=correct,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="saxpy", description="saxpy micro-benchmark (paper §4.1)"
    )
    parser.add_argument("-n", type=int, default=1, help="problem size")
    parser.add_argument("--ranks", type=int, default=1, help="simulated MPI ranks")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    result = run_saxpy(args.n, n_ranks=args.ranks, repeats=args.repeats)
    print(result.report())
    return 0 if result.correct else 1


if __name__ == "__main__":
    sys.exit(main())
