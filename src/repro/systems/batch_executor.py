"""Batch-queued execution — workflow step 8 with a real scheduler in the
loop.

``ramble on`` on a production system does not run experiments directly: it
*submits* the rendered scripts (Figure 12's ``batch_submit: 'sbatch
{execute_experiment}'``) and the batch scheduler decides when each runs.
:class:`BatchExecutor` reproduces that: every experiment becomes a
:class:`~repro.systems.scheduler.Job` (nodes from its ``n_nodes`` variable,
duration estimated from the performance models), the scheduler simulates
the queue, and only then does the benchmark actually execute.  Outcomes
carry queue wait and simulated start/end times, so campaign makespans and
queueing effects are first-class results.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List

from .descriptor import SystemDescriptor
from .executor import SystemExecutor
from .scheduler import BatchScheduler, Job

__all__ = ["BatchExecutor"]


class BatchExecutor:
    """Submit-then-run executor bound to one system's scheduler.

    Unlike the immediate executors, ``execute()`` only *queues* an
    experiment; :meth:`drain` runs the scheduler simulation and then
    executes every job's benchmark.  For drop-in compatibility with
    ``Workspace.run`` (which calls ``execute`` per experiment and expects a
    result), ``execute`` queues and returns a pending marker; ``drain``
    must be called afterwards to materialize logs — or use
    :meth:`run_workspace`, which does both.
    """

    def __init__(self, system: SystemDescriptor, policy: str = "backfill",
                 epoch: int = 0, injector=None,
                 retry_policy=None, breakers=None,
                 runner_tag: str = "batch", max_workers: int = 4):
        self.system = system
        self.scheduler = BatchScheduler(system, policy=policy)
        self.inner = SystemExecutor(system, epoch=epoch)
        #: a fault-tolerant inner executor carries shared mutable state
        #: (injector RNG, circuit breakers) whose behaviour depends on call
        #: order — those campaigns stay serial to keep runs reproducible
        self._resilient = (
            injector is not None or retry_policy is not None
            or breakers is not None
        )
        if self._resilient:
            from repro.resilience import FaultTolerantExecutor

            self.inner = FaultTolerantExecutor(
                self.inner, injector=injector, policy=retry_policy,
                breakers=breakers, runner_tag=runner_tag,
            )
        self.max_workers = max(int(max_workers), 1)
        self._queued: List[tuple] = []

    # -- duration estimation ------------------------------------------------
    def _estimate_duration(self, experiment) -> float:
        """Rough runtime estimate for the scheduler (like a user's -t)."""
        batch_time = experiment.variables.get("batch_time", "30")
        try:
            minutes = float(batch_time)
        except ValueError:
            minutes = 30.0
        return max(minutes * 60.0, 1.0)

    def _nodes_of(self, experiment) -> int:
        try:
            return max(int(float(experiment.variables.get("n_nodes", 1))), 1)
        except ValueError:
            return 1

    # -- Workspace.run interface ----------------------------------------------
    def execute(self, experiment) -> Dict[str, Any]:
        job = Job(
            name=experiment.name,
            nodes=self._nodes_of(experiment),
            duration=self._estimate_duration(experiment),
            user="benchpark",
        )
        self.scheduler.submit(job)
        self._queued.append((experiment, job))
        return {
            "returncode": 0,
            "stdout": f"# queued as job {job.job_id} "
                      f"({job.nodes} nodes, {job.duration:.0f}s limit)\n",
            "seconds": 0.0,
            "job_id": job.job_id,
            "state": "queued",
        }

    def drain(self) -> List[Dict[str, Any]]:
        """Run the queue to completion, then actually execute every
        benchmark; returns one outcome per experiment with queue stats."""
        if not self._queued:
            return []
        self.scheduler.run_until_complete()
        # Independent experiments execute concurrently — a pure
        # SystemExecutor derives each outcome from (experiment, epoch)
        # alone, so fan-out cannot change any result, only the wall clock.
        # Scheduler bookkeeping and log writes below stay serial, in
        # submission order, so outcome ordering is deterministic either way.
        if not self._resilient and len(self._queued) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.max_workers, len(self._queued))
            ) as pool:
                results = list(
                    pool.map(self.inner.execute,
                             [e for e, _ in self._queued])
                )
        else:
            results = [self.inner.execute(e) for e, _ in self._queued]
        outcomes = []
        for (experiment, job), result in zip(self._queued, results):
            # Transient faults (a fault-tolerant inner executor reports
            # attempts > 1) requeue the job: each retry re-enters the queue
            # after its backoff, so the simulated timeline and queue stats
            # charge the retries honestly.
            extra_attempts = max(int(result.get("attempts", 1)) - 1, 0)
            if extra_attempts and job.finished:
                per_retry_delay = (
                    float(result.get("total_backoff_s", 0.0)) / extra_attempts
                )
                for _ in range(extra_attempts):
                    self.scheduler.requeue(job, delay=per_retry_delay)
                    self.scheduler.run_until_complete()
            result.update({
                "job_id": job.job_id,
                "queue_wait": job.wait_time,
                "sim_start": job.start_time,
                "sim_end": job.end_time,
                "sched_attempts": job.attempts,
                "state": result.get("state", "completed"),
            })
            experiment.log_file.write_text(result["stdout"])
            outcomes.append({"experiment": experiment.name, **result})
        self._queued.clear()
        return outcomes

    def run_workspace(self, workspace) -> List[Dict[str, Any]]:
        """Submit every experiment of a workspace, drain the queue, and
        leave logs in place for ``workspace.analyze()``."""
        for experiment in workspace.experiments:
            self.execute(experiment)
        return self.drain()

    @property
    def makespan(self) -> float:
        return self.scheduler.stats()["makespan"]
