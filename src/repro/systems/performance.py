"""Performance rescaling and analytic kernel models.

Two roles:

1. :func:`scale_compute_time` rewrites the *measured-on-this-host* timings in
   a benchmark's output so they read as if measured on a target
   :class:`~repro.systems.descriptor.SystemDescriptor` — the key substitution
   that lets Benchpark campaigns "run on" cts1/ats2/ats4 from one machine.
   Memory-bound numbers (saxpy/STREAM bandwidths) scale with the memory
   bandwidth ratio; compute-bound numbers (AMG setup/solve) with the core
   compute-rate ratio; communication numbers are already produced by the
   target's interconnect model and pass through untouched.

2. Analytic first-principles kernel models (:func:`saxpy_model_seconds`,
   :func:`amg_cycle_model_seconds`) for projections beyond what can be
   measured, used by the cross-system campaign bench.
"""

from __future__ import annotations

import re

from .descriptor import SystemDescriptor

__all__ = [
    "REFERENCE_CORE_GFLOPS",
    "REFERENCE_MEM_BW_GBS",
    "scale_compute_time",
    "saxpy_model_seconds",
    "stream_model_rate_mbs",
    "amg_cycle_model_seconds",
]

#: Assumed rates of the measuring host.  Only ratios matter for shape.
REFERENCE_CORE_GFLOPS = 20.0
REFERENCE_MEM_BW_GBS = 25.0


def _mem_factor(system: SystemDescriptor, use_gpu: bool = False) -> float:
    """time multiplier for memory-bound kernels: host_bw / system_bw."""
    bw = system.gpu.mem_bw_gbs if (use_gpu and system.gpu) else system.node_mem_bw_gbs
    return REFERENCE_MEM_BW_GBS / bw


def _compute_factor(system: SystemDescriptor, use_gpu: bool = False) -> float:
    """time multiplier for compute-bound kernels."""
    rate = system.gpu.fp64_gflops if (use_gpu and system.gpu) else system.core_gflops
    return REFERENCE_CORE_GFLOPS / rate


def scale_compute_time(
    text: str,
    host_gflops: float,
    system: SystemDescriptor,
    noise: float = 1.0,
    use_gpu: bool = False,
) -> str:
    """Rewrite timing/bandwidth lines in benchmark output for ``system``."""
    mem = _mem_factor(system, use_gpu) * noise
    cpu = _compute_factor(system, use_gpu) * noise

    def scale_num(match: re.Match, factor: float) -> str:
        value = float(match.group("v")) * factor
        return match.group(0).replace(match.group("v"), f"{value:.6g}")

    rules = [
        # saxpy: memory-bound
        (r"saxpy kernel time: (?P<v>[0-9.eE+-]+) s", mem),
        (r"saxpy bandwidth: (?P<v>[0-9.eE+-]+) GB/s", 1.0 / mem),
        # STREAM: memory-bound rates
        (r"(?:Copy|Scale|Add|Triad):\s+(?P<v>[0-9.]+)", 1.0 / mem),
        # AMG: compute/memory mix — use compute factor for times,
        # inverse for throughput FOMs
        (r"setup time: (?P<v>[0-9.eE+-]+) s", cpu),
        (r"solve time: (?P<v>[0-9.eE+-]+) s", cpu),
        (r"Figure of Merit \(FOM_Setup\): (?P<v>[0-9.eE+-]+)", 1.0 / cpu),
        (r"Figure of Merit \(FOM_Solve\): (?P<v>[0-9.eE+-]+)", 1.0 / cpu),
        # Quicksilver: compute/latency bound
        (r"Figure Of Merit: (?P<v>[0-9.eE+-]+) segments/s", 1.0 / cpu),
    ]
    for pattern, factor in rules:
        text = re.sub(pattern, lambda m, f=factor: scale_num(m, f), text)
    return text


def saxpy_model_seconds(n: int, system: SystemDescriptor,
                        use_gpu: bool = False, n_ranks: int = 1) -> float:
    """First-principles saxpy time: 3 streams of 4-byte floats through the
    memory system, plus one allreduce for the checksum."""
    from .mpi_model import MpiCostModel

    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    bw = (system.gpu.mem_bw_gbs if (use_gpu and system.gpu)
          else system.node_mem_bw_gbs) * 1e9
    compute = (3.0 * 4.0 * n / max(n_ranks, 1)) / bw
    comm = 0.0
    if n_ranks > 1:
        comm = MpiCostModel(system.interconnect).allreduce(n_ranks, 8)
    return compute + comm


def stream_model_rate_mbs(system: SystemDescriptor, kernel: str = "Triad") -> float:
    """Modeled STREAM best rate on a system (per node)."""
    efficiency = {"Copy": 0.85, "Scale": 0.85, "Add": 0.80, "Triad": 0.80}
    if kernel not in efficiency:
        raise ValueError(f"unknown STREAM kernel {kernel!r}")
    return system.node_mem_bw_gbs * 1e3 * efficiency[kernel]


def amg_cycle_model_seconds(
    n_rows: int,
    nnz: int,
    system: SystemDescriptor,
    n_ranks: int = 1,
    levels: int = 5,
    use_gpu: bool = False,
) -> float:
    """One V-cycle: ~5 SpMV-equivalents over the hierarchy (geometric sum
    ≈ 1.6× the fine-grid work), memory-bound at 12 bytes/nnz, plus per-level
    halo exchanges."""
    from .mpi_model import MpiCostModel

    bw = (system.gpu.mem_bw_gbs if (use_gpu and system.gpu)
          else system.node_mem_bw_gbs) * 1e9
    work_bytes = 5 * 1.6 * 12.0 * nnz / max(n_ranks, 1)
    compute = work_bytes / bw
    comm = 0.0
    if n_ranks > 1:
        model = MpiCostModel(system.interconnect)
        rows_per_rank = max(n_rows // n_ranks, 1)
        halo_bytes = int(max(rows_per_rank ** (2.0 / 3.0), 1) * 7 * 8)
        comm = levels * model.halo_exchange(2, halo_bytes) + model.allreduce(
            n_ranks, 8
        )
    return compute + comm
