"""Batch scheduler simulator — the ``sbatch``/``bsub``/``flux batch`` layer.

Event-driven simulation of a space-shared cluster: jobs request nodes and
have (simulated) durations; the scheduler assigns start times under either

* **fifo** — strict arrival order; a big job at the head blocks the queue;
* **backfill** — EASY backfilling: later jobs may start early iff they fit
  in the current hole and do not delay the head job's reservation.

The paper's continuous-benchmarking loop submits experiment scripts through
exactly this layer (workflow step 8), and the fifo-vs-backfill makespan
difference is one of our DESIGN.md §6 ablations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from .descriptor import SystemDescriptor

__all__ = ["Job", "BatchScheduler", "SchedulerError"]


class SchedulerError(RuntimeError):
    pass


@dataclass
class Job:
    """One batch job."""

    name: str
    nodes: int
    duration: float  # simulated seconds of runtime
    submit_time: float = 0.0
    user: str = "nobody"
    job_id: int = 0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: how many times this job has been (re)submitted — a transient fault
    #: requeues the job rather than failing the campaign
    attempts: int = 1

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def finished(self) -> bool:
        return self.end_time is not None


class BatchScheduler:
    """Simulated scheduler for one system."""

    def __init__(self, system: SystemDescriptor, policy: str = "backfill"):
        if policy not in ("fifo", "backfill"):
            raise SchedulerError(f"unknown policy {policy!r}; use fifo|backfill")
        self.system = system
        self.policy = policy
        self._ids = itertools.count(1)
        self.queue: List[Job] = []
        self.completed: List[Job] = []
        #: (end_time, nodes, job) for running jobs
        self._running: List[tuple] = []
        self.now = 0.0
        self.free_nodes = system.nodes

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> int:
        if job.nodes <= 0:
            raise SchedulerError(f"job {job.name!r}: nodes must be positive")
        if job.nodes > self.system.nodes:
            raise SchedulerError(
                f"job {job.name!r} requests {job.nodes} nodes but "
                f"{self.system.name} has {self.system.nodes}"
            )
        if job.duration <= 0:
            raise SchedulerError(f"job {job.name!r}: duration must be positive")
        job.job_id = next(self._ids)
        job.submit_time = max(job.submit_time, self.now)
        self.queue.append(job)
        return job.job_id

    def requeue(self, job: Job, delay: float = 0.0) -> int:
        """Re-submit a completed (faulted) job as a fresh attempt.

        The job keeps its identity but gets a new submit time (``now +
        delay`` — the retry policy's backoff maps to ``delay``), cleared
        start/end times, and an incremented attempt counter.  Its previous
        completion record is dropped so stats count it once.
        """
        if not job.finished:
            raise SchedulerError(
                f"job {job.name!r} is not finished; cannot requeue"
            )
        if delay < 0:
            raise SchedulerError(f"requeue delay must be >= 0, got {delay}")
        if job in self.completed:
            self.completed.remove(job)
        job.start_time = None
        job.end_time = None
        job.attempts += 1
        job.submit_time = self.now + delay
        self.queue.append(job)
        return job.job_id

    # ------------------------------------------------------------------
    def _start(self, job: Job) -> None:
        job.start_time = self.now
        job.end_time = self.now + job.duration
        self.free_nodes -= job.nodes
        heapq.heappush(self._running, (job.end_time, job.job_id, job))

    def _finish_next(self) -> None:
        end_time, _, job = heapq.heappop(self._running)
        self.now = max(self.now, end_time)
        self.free_nodes += job.nodes
        self.completed.append(job)

    def _eligible(self) -> List[Job]:
        return [j for j in self.queue if j.submit_time <= self.now]

    def _schedule_pass(self) -> bool:
        """Start whatever can start now; True if anything started."""
        started = False
        eligible = sorted(self._eligible(), key=lambda j: (j.submit_time, j.job_id))
        if not eligible:
            return False
        head = eligible[0]
        if head.nodes <= self.free_nodes:
            self.queue.remove(head)
            self._start(head)
            return True
        if self.policy == "fifo":
            return False
        # EASY backfill: compute the head job's reservation — the earliest
        # time enough nodes free up — then start any later job that fits now
        # and ends by then.
        reservation = self._head_reservation(head)
        for job in eligible[1:]:
            if job.nodes <= self.free_nodes and self.now + job.duration <= reservation:
                self.queue.remove(job)
                self._start(job)
                started = True
                # free_nodes changed; the head may still be blocked, continue
        return started

    def _head_reservation(self, head: Job) -> float:
        free = self.free_nodes
        for end_time, _, job in sorted(self._running):
            free += job.nodes
            if free >= head.nodes:
                return end_time
        return float("inf")

    # ------------------------------------------------------------------
    def run_until_complete(self, max_events: int = 1_000_000) -> float:
        """Advance the simulation until queue and machine drain; returns
        the makespan (time of last completion)."""
        for _ in range(max_events):
            if not self.queue and not self._running:
                return self.now
            while self._schedule_pass():
                pass
            if self._running:
                self._finish_next()
            elif self.queue:
                # Nothing running and nothing startable: jump to the next
                # future submit time.
                future = min(j.submit_time for j in self.queue)
                if future <= self.now:
                    raise SchedulerError(
                        "deadlock: queued jobs cannot start on an idle machine"
                    )
                self.now = future
        raise SchedulerError("scheduler exceeded event budget")

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        if not self.completed:
            return {"jobs": 0, "makespan": 0.0, "avg_wait": 0.0, "max_wait": 0.0}
        waits = [j.wait_time or 0.0 for j in self.completed]
        return {
            "jobs": len(self.completed),
            "makespan": max(j.end_time or 0.0 for j in self.completed),
            "avg_wait": sum(waits) / len(waits),
            "max_wait": max(waits),
        }
