"""The system registry — the paper's three demonstration systems plus two
cloud instance types (§7.2 treats cloud "like another platform").

Hardware parameters are public figures for the machine classes the paper
names (cts1 ≈ Quartz-class Xeon E5-2695v4; ats2 ≈ Sierra Power9+V100;
ats4 EAS ≈ El Cap EAS Trento+MI-250X).  Absolute rates only set the scale of
simulated timings; the *relative* behaviour (GPU >> CPU for saxpy, network
contention on cts1) is what the reproduced figures depend on.
"""

from __future__ import annotations

from typing import Dict, List

from .descriptor import GpuSpec, InterconnectSpec, SystemDescriptor

__all__ = ["SYSTEMS", "get_system", "all_system_names"]


def _cts1() -> SystemDescriptor:
    return SystemDescriptor(
        name="cts1",
        site="LLNL",
        nodes=2600,
        cores_per_node=36,  # 2× Xeon E5-2695 v4
        core_gflops=18.0,
        node_mem_bw_gbs=120.0,
        memory_per_node_gb=128.0,
        cpu_target="broadwell",
        interconnect=InterconnectSpec(
            name="omnipath",
            latency_us=1.5,
            bandwidth_gbs=12.5,
            # Old fabric under load: Fig 14 measures linear-in-p bcast.
            collective_algo="contended",
            contention_factor=0.15,
        ),
        scheduler="slurm",
        mpi_command="srun -N {n_nodes} -n {n_ranks}",
        batch_submit="sbatch {execute_experiment}",
        compilers=[
            {"spec": "gcc@12.1.1", "paths": {"cc": "/usr/tce/bin/gcc"}},
            {"spec": "gcc@10.3.1", "paths": {"cc": "/usr/tce/bin/gcc-10"}},
            {"spec": "intel@2021.6.0", "paths": {"cc": "/usr/tce/bin/icc"}},
        ],
        packages_config={
            "blas": {
                "externals": [
                    {"spec": "intel-oneapi-mkl@2022.1.0",
                     "prefix": "/usr/tce/packages/mkl/mkl-2022.1.0"}
                ],
                "buildable": False,
            },
            "lapack": {
                "externals": [
                    {"spec": "intel-oneapi-mkl@2022.1.0",
                     "prefix": "/usr/tce/packages/mkl/mkl-2022.1.0"}
                ],
                "buildable": False,
            },
            "intel-oneapi-mkl": {
                "externals": [
                    {"spec": "intel-oneapi-mkl@2022.1.0",
                     "prefix": "/usr/tce/packages/mkl/mkl-2022.1.0"}
                ],
                "buildable": False,
            },
            "mpi": {"providers": {"mpi": ["mvapich2"]}},
            "mvapich2": {
                "externals": [
                    {"spec": "mvapich2@2.3.7-gcc12.1.1-magic",
                     "prefix": "/usr/tce/packages/mvapich2/mvapich2-2.3.7"}
                ],
                "buildable": False,
            },
        },
    )


def _ats2() -> SystemDescriptor:
    return SystemDescriptor(
        name="ats2",
        site="LLNL",
        nodes=4320,
        cores_per_node=44,  # 2× Power9, SMT off
        core_gflops=12.0,
        node_mem_bw_gbs=170.0,
        memory_per_node_gb=256.0,
        cpu_target="power9le",
        gpu=GpuSpec(
            model="V100",
            count_per_node=4,
            memory_gb=16.0,
            fp64_gflops=7000.0,
            mem_bw_gbs=900.0,
            runtime="cuda",
        ),
        interconnect=InterconnectSpec(
            name="infiniband-edr",
            latency_us=1.0,
            bandwidth_gbs=25.0,
            collective_algo="binomial",
        ),
        scheduler="lsf",
        mpi_command="jsrun -n {n_ranks} -a 1 -g 1",
        batch_submit="bsub {execute_experiment}",
        compilers=[
            {"spec": "gcc@8.3.1", "paths": {"cc": "/usr/tce/bin/gcc"}},
            {"spec": "clang@14.0.6", "paths": {"cc": "/usr/tce/bin/clang"}},
        ],
        packages_config={
            "mpi": {"providers": {"mpi": ["spectrum-mpi"]}},
            "spectrum-mpi": {
                "externals": [
                    {"spec": "spectrum-mpi@10.4.0.6",
                     "prefix": "/usr/tce/packages/spectrum-mpi/10.4.0.6"}
                ],
                "buildable": False,
            },
            "cuda": {
                "externals": [
                    {"spec": "cuda@11.8.0", "prefix": "/usr/tce/packages/cuda/11.8.0"}
                ],
                "buildable": False,
            },
        },
    )


def _ats4() -> SystemDescriptor:
    return SystemDescriptor(
        name="ats4",
        site="LLNL",
        nodes=1024,  # early access system scale
        cores_per_node=64,  # AMD Trento
        core_gflops=20.0,
        node_mem_bw_gbs=205.0,
        memory_per_node_gb=512.0,
        cpu_target="zen3_trento",
        gpu=GpuSpec(
            model="MI-250X",
            count_per_node=4,  # 4 modules / 8 GCDs
            memory_gb=128.0,
            fp64_gflops=24000.0,
            mem_bw_gbs=3200.0,
            runtime="rocm",
        ),
        interconnect=InterconnectSpec(
            name="slingshot-11",
            latency_us=0.8,
            bandwidth_gbs=50.0,
            collective_algo="binomial",
        ),
        scheduler="flux",
        mpi_command="flux run -N {n_nodes} -n {n_ranks}",
        batch_submit="flux batch {execute_experiment}",
        compilers=[
            {"spec": "gcc@12.1.1", "paths": {"cc": "/opt/cray/pe/bin/gcc"}},
            {"spec": "clang@15.0.0", "paths": {"cc": "/opt/rocm/llvm/bin/clang"}},
        ],
        packages_config={
            "mpi": {"providers": {"mpi": ["cray-mpich"]}},
            "cray-mpich": {
                "externals": [
                    {"spec": "cray-mpich@8.1.26", "prefix": "/opt/cray/pe/mpich/8.1.26"}
                ],
                "buildable": False,
            },
            "hip": {
                "externals": [
                    {"spec": "hip@5.7.1", "prefix": "/opt/rocm-5.7.1"}
                ],
                "buildable": False,
            },
        },
    )


def _cloud_c6i() -> SystemDescriptor:
    """Cloud CPU instance cluster (icelake), §7.1/§7.2 comparison target."""
    return SystemDescriptor(
        name="cloud-c6i",
        site="AWS",
        nodes=64,
        cores_per_node=32,
        core_gflops=22.0,
        node_mem_bw_gbs=160.0,
        memory_per_node_gb=256.0,
        cpu_target="icelake",
        interconnect=InterconnectSpec(
            name="efa",
            latency_us=15.0,
            bandwidth_gbs=12.5,
            collective_algo="binomial",
        ),
        scheduler="slurm",
        mpi_command="srun -N {n_nodes} -n {n_ranks}",
        batch_submit="sbatch {execute_experiment}",
        compilers=[{"spec": "gcc@12.1.1", "paths": {"cc": "/usr/bin/gcc"}}],
        packages_config={"mpi": {"providers": {"mpi": ["openmpi"]}}},
        noise=0.06,  # multi-tenant jitter
    )


def _cloud_p4d() -> SystemDescriptor:
    """Cloud GPU instance cluster (A100-class, modeled as V100 entries ×2)."""
    return SystemDescriptor(
        name="cloud-p4d",
        site="AWS",
        nodes=16,
        cores_per_node=48,
        core_gflops=16.0,
        node_mem_bw_gbs=190.0,
        memory_per_node_gb=1152.0,
        cpu_target="cascadelake",
        gpu=GpuSpec(
            model="A100",
            count_per_node=8,
            memory_gb=40.0,
            fp64_gflops=9700.0,
            mem_bw_gbs=1550.0,
            runtime="cuda",
        ),
        interconnect=InterconnectSpec(
            name="efa-400",
            latency_us=12.0,
            bandwidth_gbs=50.0,
            collective_algo="binomial",
        ),
        scheduler="slurm",
        mpi_command="srun -N {n_nodes} -n {n_ranks}",
        batch_submit="sbatch {execute_experiment}",
        compilers=[{"spec": "gcc@12.1.1", "paths": {"cc": "/usr/bin/gcc"}}],
        packages_config={
            "mpi": {"providers": {"mpi": ["openmpi"]}},
            "cuda": {
                "externals": [
                    {"spec": "cuda@12.2.0", "prefix": "/usr/local/cuda-12.2"}
                ],
                "buildable": False,
            },
        },
        noise=0.06,
    )


def _build() -> Dict[str, SystemDescriptor]:
    systems = {}
    for builder in (_cts1, _ats2, _ats4, _cloud_c6i, _cloud_p4d):
        desc = builder()
        desc.validate()
        systems[desc.name] = desc
    return systems


SYSTEMS: Dict[str, SystemDescriptor] = _build()


def get_system(name: str) -> SystemDescriptor:
    try:
        return SYSTEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; known systems: {sorted(SYSTEMS)}"
        ) from None


def all_system_names() -> List[str]:
    return sorted(SYSTEMS)
