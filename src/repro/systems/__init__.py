"""Simulated HPC systems substrate: descriptors for the paper's systems
(cts1/ats2/ats4 + cloud), the batch scheduler, executors, and analytic
MPI + kernel performance models."""

from .descriptor import GpuSpec, InterconnectSpec, SystemDescriptor
from .batch_executor import BatchExecutor
from .codesign import compare_systems, predict_suite
from .executor import LocalExecutor, SystemExecutor
from .failures import Degradation, FailureSchedule, apply_degradation
from .mpi_model import MpiCostModel
from .performance import (
    amg_cycle_model_seconds,
    saxpy_model_seconds,
    scale_compute_time,
    stream_model_rate_mbs,
)
from .registry import SYSTEMS, all_system_names, get_system
from .scheduler import BatchScheduler, Job, SchedulerError

__all__ = [
    "BatchExecutor",
    "BatchScheduler",
    "Degradation",
    "FailureSchedule",
    "GpuSpec",
    "InterconnectSpec",
    "Job",
    "LocalExecutor",
    "MpiCostModel",
    "SYSTEMS",
    "SchedulerError",
    "SystemDescriptor",
    "SystemExecutor",
    "all_system_names",
    "apply_degradation",
    "amg_cycle_model_seconds",
    "compare_systems",
    "get_system",
    "predict_suite",
    "saxpy_model_seconds",
    "scale_compute_time",
    "stream_model_rate_mbs",
]
