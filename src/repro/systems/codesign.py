"""Co-design predictions — evaluating systems that do not exist yet.

§1: benchmarking "enables performance modeling across different hardware …
and is useful for co-designing future HPC system procurements."  Once the
analytic kernel models are calibrated (they are what the executors use),
the same models can *predict* the whole suite's figures of merit for a
hypothetical :class:`~repro.systems.descriptor.SystemDescriptor` — a vendor
proposal — before any hardware exists.

:func:`predict_suite` returns the predicted FOM table for one descriptor;
:func:`compare_systems` ranks a set of proposals per-FOM and overall
(geometric-mean speedup over a reference system, the standard procurement
scoring rule).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .descriptor import SystemDescriptor
from .mpi_model import MpiCostModel
from .performance import (
    amg_cycle_model_seconds,
    saxpy_model_seconds,
    stream_model_rate_mbs,
)

__all__ = ["predict_suite", "compare_systems", "DEFAULT_WORKLOAD"]

#: The reference workload the predictions evaluate (mirrors the
#: 'procurement' suite's shape at meaningful scale).
DEFAULT_WORKLOAD = {
    "saxpy_n": 1 << 26,
    "amg_rows": 10 ** 7,
    "amg_nnz": 7 * 10 ** 7,
    "bcast_bytes": 1 << 20,
    "n_ranks": 512,
}


def predict_suite(
    system: SystemDescriptor,
    workload: Optional[Dict[str, int]] = None,
    use_gpu: Optional[bool] = None,
) -> Dict[str, float]:
    """Predicted FOMs (higher is better unless suffixed ``_seconds``)."""
    w = dict(DEFAULT_WORKLOAD)
    w.update(workload or {})
    if use_gpu is None:
        use_gpu = system.has_gpu
    n_ranks = min(w["n_ranks"], system.total_cores)

    saxpy_seconds = saxpy_model_seconds(
        w["saxpy_n"], system, use_gpu=use_gpu, n_ranks=n_ranks)
    saxpy_bw = 3.0 * 4.0 * w["saxpy_n"] / n_ranks / saxpy_seconds / 1e9

    cycle_seconds = amg_cycle_model_seconds(
        w["amg_rows"], w["amg_nnz"], system, n_ranks=n_ranks,
        use_gpu=use_gpu)
    # FOM_Solve ~ nnz·iters / solve time with iters fixed by the algorithm.
    amg_fom = w["amg_nnz"] / cycle_seconds

    bcast_seconds = MpiCostModel(system.interconnect).bcast(
        n_ranks, w["bcast_bytes"])

    return {
        "saxpy_bandwidth_gbs": saxpy_bw,
        "stream_triad_mbs": stream_model_rate_mbs(system, "Triad"),
        "amg_fom_per_cycle": amg_fom,
        "bcast_seconds": bcast_seconds,
        "n_ranks_used": float(n_ranks),
    }


#: FOM direction for scoring: True = higher is better.
_HIGHER_IS_BETTER = {
    "saxpy_bandwidth_gbs": True,
    "stream_triad_mbs": True,
    "amg_fom_per_cycle": True,
    "bcast_seconds": False,
}


def compare_systems(
    proposals: Sequence[SystemDescriptor],
    reference: SystemDescriptor,
    workload: Optional[Dict[str, int]] = None,
) -> List[Dict[str, object]]:
    """Score proposed systems against a reference (procurement-style).

    Each proposal gets per-FOM speedups over the reference and an overall
    geometric-mean score; the returned list is sorted best-first.
    """
    if not proposals:
        raise ValueError("no proposals to compare")
    ref = predict_suite(reference, workload)
    rows: List[Dict[str, object]] = []
    for system in proposals:
        pred = predict_suite(system, workload)
        speedups = {}
        for fom, higher in _HIGHER_IS_BETTER.items():
            ratio = pred[fom] / ref[fom]
            speedups[fom] = ratio if higher else 1.0 / ratio
        score = math.exp(
            sum(math.log(s) for s in speedups.values()) / len(speedups)
        )
        rows.append({
            "system": system.name,
            "predictions": pred,
            "speedups": speedups,
            "score": score,
        })
    return sorted(rows, key=lambda r: -r["score"])  # type: ignore[arg-type]
