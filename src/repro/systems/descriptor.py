"""System descriptors — the simulated stand-ins for real HPC systems (§4).

The paper demonstrates Benchpark on three LLNL systems:

* **cts1** — CPU-only Intel Xeon commodity cluster (Slurm, OmniPath);
* **ats2** — IBM Power9 + NVIDIA V100 (Sierra-class, LSF/jsrun, InfiniBand);
* **ats4 EAS** — AMD Trento + MI-250X (El Capitan early access, Flux, Slingshot).

A :class:`SystemDescriptor` carries everything the rest of the stack needs:
node counts and layout (for the scheduler), per-core/GPU compute rates and
memory bandwidths (for the performance models), the interconnect (for the
MPI cost model), the scheduler/launcher commands (for ``variables.yaml``),
and the system's Spack configuration (compilers, externals — Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["GpuSpec", "InterconnectSpec", "SystemDescriptor"]


@dataclass(frozen=True)
class GpuSpec:
    """An accelerator model attached to each node."""

    model: str
    count_per_node: int
    memory_gb: float
    #: peak double-precision rate per GPU, in GFLOP/s
    fp64_gflops: float
    #: device memory bandwidth, GB/s
    mem_bw_gbs: float
    #: programming model variant this GPU implies (cuda / rocm)
    runtime: str = "cuda"


@dataclass(frozen=True)
class InterconnectSpec:
    """Network fabric parameters used by the MPI cost model."""

    name: str
    #: point-to-point latency, microseconds
    latency_us: float
    #: per-link bandwidth, GB/s
    bandwidth_gbs: float
    #: collective algorithm family: "binomial" (log p trees) or
    #: "contended" (linear-in-p serialization, old fabrics / oversubscribed)
    collective_algo: str = "binomial"
    #: fraction of extra cost per additional rank for contended fabrics
    contention_factor: float = 0.0


@dataclass
class SystemDescriptor:
    """Full description of one HPC system."""

    name: str
    site: str
    nodes: int
    cores_per_node: int
    #: per-core sustained DP rate, GFLOP/s
    core_gflops: float
    #: per-node memory bandwidth, GB/s
    node_mem_bw_gbs: float
    memory_per_node_gb: float
    cpu_target: str  # archspec microarchitecture name
    interconnect: InterconnectSpec
    gpu: Optional[GpuSpec] = None
    scheduler: str = "slurm"
    #: template for the MPI launch command (variables.yaml, Figure 12)
    mpi_command: str = "srun -N {n_nodes} -n {n_ranks}"
    batch_submit: str = "sbatch {execute_experiment}"
    #: compilers available on the system (compilers.yaml)
    compilers: List[Dict[str, Any]] = field(default_factory=list)
    #: packages.yaml externals/preferences (Figure 4)
    packages_config: Dict[str, Any] = field(default_factory=dict)
    #: environment noise level: stdev of multiplicative run-to-run jitter
    noise: float = 0.02

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.gpu.count_per_node if self.gpu else 0

    def node_gflops(self) -> float:
        """Peak node compute rate including accelerators."""
        rate = self.cores_per_node * self.core_gflops
        if self.gpu:
            rate += self.gpu.count_per_node * self.gpu.fp64_gflops
        return rate

    def validate(self) -> None:
        problems = []
        if self.nodes <= 0:
            problems.append("nodes must be positive")
        if self.cores_per_node <= 0:
            problems.append("cores_per_node must be positive")
        if self.core_gflops <= 0:
            problems.append("core_gflops must be positive")
        if self.interconnect.latency_us <= 0:
            problems.append("interconnect latency must be positive")
        if self.interconnect.bandwidth_gbs <= 0:
            problems.append("interconnect bandwidth must be positive")
        if self.interconnect.collective_algo not in ("binomial", "contended"):
            problems.append(
                f"unknown collective_algo {self.interconnect.collective_algo!r}"
            )
        if problems:
            raise ValueError(f"invalid system {self.name!r}: {'; '.join(problems)}")

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "site": self.site,
            "nodes": self.nodes,
            "cores_per_node": self.cores_per_node,
            "core_gflops": self.core_gflops,
            "node_mem_bw_gbs": self.node_mem_bw_gbs,
            "memory_per_node_gb": self.memory_per_node_gb,
            "cpu_target": self.cpu_target,
            "scheduler": self.scheduler,
            "interconnect": {
                "name": self.interconnect.name,
                "latency_us": self.interconnect.latency_us,
                "bandwidth_gbs": self.interconnect.bandwidth_gbs,
                "collective_algo": self.interconnect.collective_algo,
                "contention_factor": self.interconnect.contention_factor,
            },
        }
        if self.gpu:
            d["gpu"] = {
                "model": self.gpu.model,
                "count_per_node": self.gpu.count_per_node,
                "memory_gb": self.gpu.memory_gb,
                "fp64_gflops": self.gpu.fp64_gflops,
                "mem_bw_gbs": self.gpu.mem_bw_gbs,
                "runtime": self.gpu.runtime,
            }
        return d
