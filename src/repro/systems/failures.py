"""Hardware failure / degradation injection.

The paper's §1 motivates continuous benchmarking with "tracking system
performance over time and diagnosing hardware failures".  To exercise that
loop we need failures to diagnose: this module produces *degraded copies*
of a :class:`~repro.systems.descriptor.SystemDescriptor` — a DIMM running
at reduced bandwidth, a flaky switch adding latency, a firmware update
clocking cores down — and schedules them over benchmarking epochs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .descriptor import InterconnectSpec, SystemDescriptor

__all__ = ["Degradation", "FailureSchedule", "apply_degradation"]


@dataclass(frozen=True)
class Degradation:
    """A multiplicative hardware degradation (all factors default to 1.0 =
    healthy; values < 1.0 slow the resource down, latency factor > 1.0
    slows the network)."""

    name: str
    memory_bw_factor: float = 1.0
    core_flops_factor: float = 1.0
    network_latency_factor: float = 1.0
    network_bw_factor: float = 1.0
    extra_noise: float = 0.0

    def validate(self) -> None:
        if not (0.0 < self.memory_bw_factor <= 1.0):
            raise ValueError(f"{self.name}: memory_bw_factor must be in (0, 1]")
        if not (0.0 < self.core_flops_factor <= 1.0):
            raise ValueError(f"{self.name}: core_flops_factor must be in (0, 1]")
        if self.network_latency_factor < 1.0:
            raise ValueError(f"{self.name}: latency factor must be >= 1")
        if not (0.0 < self.network_bw_factor <= 1.0):
            raise ValueError(f"{self.name}: network_bw_factor must be in (0, 1]")
        if self.extra_noise < 0.0:
            raise ValueError(f"{self.name}: extra_noise must be >= 0")


HEALTHY = Degradation("healthy")


def apply_degradation(system: SystemDescriptor,
                      degradation: Degradation) -> SystemDescriptor:
    """A degraded copy of ``system`` (the original is untouched)."""
    degradation.validate()
    net = system.interconnect
    new_net = InterconnectSpec(
        name=net.name,
        latency_us=net.latency_us * degradation.network_latency_factor,
        bandwidth_gbs=net.bandwidth_gbs * degradation.network_bw_factor,
        collective_algo=net.collective_algo,
        contention_factor=net.contention_factor,
    )
    degraded = dataclasses.replace(
        system,
        core_gflops=system.core_gflops * degradation.core_flops_factor,
        node_mem_bw_gbs=system.node_mem_bw_gbs * degradation.memory_bw_factor,
        interconnect=new_net,
        noise=system.noise + degradation.extra_noise,
    )
    degraded.validate()
    return degraded


class FailureSchedule:
    """Which degradation is active at each benchmarking epoch.

    Built from (start_epoch, Degradation) entries; the entry with the
    largest start_epoch ≤ t wins.  The default state is healthy.
    """

    def __init__(self, events: Optional[List[Tuple[int, Degradation]]] = None):
        self.events: List[Tuple[int, Degradation]] = sorted(
            events or [], key=lambda e: e[0]
        )
        for epoch, degradation in self.events:
            if epoch < 0:
                raise ValueError(f"negative epoch {epoch}")
            degradation.validate()

    def add(self, epoch: int, degradation: Degradation) -> "FailureSchedule":
        if epoch < 0:
            raise ValueError(f"negative epoch {epoch}")
        degradation.validate()
        self.events.append((epoch, degradation))
        self.events.sort(key=lambda e: e[0])
        return self

    def active_at(self, epoch: int) -> Degradation:
        current = HEALTHY
        for start, degradation in self.events:
            if start <= epoch:
                current = degradation
            else:
                break
        return current

    def system_at(self, system: SystemDescriptor, epoch: int) -> SystemDescriptor:
        degradation = self.active_at(epoch)
        if degradation is HEALTHY:
            return system
        return apply_degradation(system, degradation)
