"""MPI communication cost models (the substrate behind Figure 14).

Classic α–β (Hockney) models parameterized by an
:class:`~repro.systems.descriptor.InterconnectSpec`:

* point-to-point: ``α + m/B``
* binomial-tree collectives: ``⌈log2 p⌉`` rounds of point-to-point
* "contended" collectives: a linear-in-``p`` serialization term, modeling
  older / oversubscribed fabrics.  The paper's Figure 14 shows exactly this
  regime: Extra-P fits MPI_Bcast total time on CTS as ``-0.64 + 0.047·p`` —
  *linear* in process count, not logarithmic.  Our cts1 descriptor uses the
  contended model so the reproduced fit has the same shape.

All costs are returned in **seconds** for a message of ``m`` bytes across
``p`` ranks.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from .descriptor import InterconnectSpec

__all__ = ["MpiCostModel", "COLLECTIVES"]


class MpiCostModel:
    """Analytic costs for MPI operations on one interconnect."""

    def __init__(self, interconnect: InterconnectSpec):
        interconnectable = interconnect
        self.net = interconnectable
        self.alpha = interconnect.latency_us * 1e-6  # seconds
        self.beta = 1.0 / (interconnect.bandwidth_gbs * 1e9)  # s/byte

    # -- point to point -----------------------------------------------------
    def ptp(self, m_bytes: int) -> float:
        """One point-to-point message of m bytes."""
        return self.alpha + m_bytes * self.beta

    # -- collectives -----------------------------------------------------------
    def _rounds(self, p: int) -> float:
        return max(1.0, math.ceil(math.log2(max(p, 2))))

    def bcast(self, p: int, m_bytes: int) -> float:
        if p <= 1:
            return 0.0
        if self.net.collective_algo == "contended":
            # Serialized fan-out with per-rank contention: linear in p.
            per_rank = self.ptp(m_bytes) * (1.0 + self.net.contention_factor)
            return per_rank * (p - 1)
        return self.ptp(m_bytes) * self._rounds(p)

    def reduce(self, p: int, m_bytes: int) -> float:
        if p <= 1:
            return 0.0
        if self.net.collective_algo == "contended":
            return self.ptp(m_bytes) * (p - 1) * (1.0 + self.net.contention_factor)
        return self.ptp(m_bytes) * self._rounds(p)

    def allreduce(self, p: int, m_bytes: int) -> float:
        if p <= 1:
            return 0.0
        if self.net.collective_algo == "contended":
            return 2.0 * self.reduce(p, m_bytes)
        # Rabenseifner: reduce-scatter + allgather
        return 2.0 * self._rounds(p) * self.alpha + 2.0 * m_bytes * self.beta

    def allgather(self, p: int, m_bytes_per_rank: int) -> float:
        if p <= 1:
            return 0.0
        # Ring algorithm: p-1 steps of m bytes each.
        return (p - 1) * self.ptp(m_bytes_per_rank)

    def gather(self, p: int, m_bytes_per_rank: int) -> float:
        if p <= 1:
            return 0.0
        return (p - 1) * (self.alpha + m_bytes_per_rank * self.beta)

    def scatter(self, p: int, m_bytes_per_rank: int) -> float:
        return self.gather(p, m_bytes_per_rank)

    def barrier(self, p: int) -> float:
        if p <= 1:
            return 0.0
        return self.alpha * self._rounds(p) * 2.0

    def alltoall(self, p: int, m_bytes_per_pair: int) -> float:
        if p <= 1:
            return 0.0
        return (p - 1) * self.ptp(m_bytes_per_pair)

    # -- halo exchange (stencil codes / AMG) -----------------------------------
    def halo_exchange(self, neighbors: int, m_bytes: int) -> float:
        """Nearest-neighbour exchange with ``neighbors`` peers (overlapped
        in pairs, so cost is per-direction)."""
        if neighbors <= 0:
            return 0.0
        return neighbors * self.ptp(m_bytes)

    def cost(self, op: str, p: int, m_bytes: int) -> float:
        """Dispatch by operation name (used by the executor's accounting)."""
        fn = COLLECTIVES.get(op)
        if fn is None:
            raise KeyError(f"unknown MPI operation {op!r}; known: {sorted(COLLECTIVES)}")
        return fn(self, p, m_bytes)


COLLECTIVES: Dict[str, Callable[[MpiCostModel, int, int], float]] = {
    "bcast": lambda m, p, b: m.bcast(p, b),
    "reduce": lambda m, p, b: m.reduce(p, b),
    "allreduce": lambda m, p, b: m.allreduce(p, b),
    "allgather": lambda m, p, b: m.allgather(p, b),
    "gather": lambda m, p, b: m.gather(p, b),
    "scatter": lambda m, p, b: m.scatter(p, b),
    "alltoall": lambda m, p, b: m.alltoall(p, b),
    "barrier": lambda m, p, b: m.barrier(p),
}
