"""Experiment executors — how rendered batch scripts actually run.

The paper's workflow step 8 submits ``execute_experiment`` scripts to the
system scheduler.  Offline we provide two executors with the same interface
(``execute(experiment) -> {"returncode", "stdout", "seconds"}``):

* :class:`LocalExecutor` — runs the benchmark **for real**, in process: the
  command line from the rendered script is parsed and dispatched to the
  Python benchmark implementations (saxpy/amg/stream/osu).  Rank counts are
  honoured through SimMPI, so multi-rank runs still execute genuine
  numerics.
* :class:`SystemExecutor` — the same dispatch, but bound to a
  :class:`~repro.systems.descriptor.SystemDescriptor`: communication time
  comes from the system's interconnect, compute time is rescaled by the
  system's hardware rates relative to the measuring host, and run-to-run
  noise is added deterministically per (system, experiment).  This is the
  substitution that lets one laptop "run" cts1, ats2, and ats4 campaigns.

Both append the scheduler preamble handling a real submission would do, so
the pipeline (script → run → log → FOM regex) is identical either way.
"""

from __future__ import annotations

import hashlib
import shlex
import time
from typing import Any, Dict, List

from .descriptor import SystemDescriptor
from .performance import scale_compute_time

__all__ = ["LocalExecutor", "SystemExecutor", "ExecutorError", "parse_script_commands"]


class ExecutorError(RuntimeError):
    pass


def parse_script_commands(script_text: str) -> List[List[str]]:
    """Extract runnable command lines from a rendered execute_experiment
    script (skip shebang, scheduler directives, comments, cd, and strip
    shell redirections)."""
    commands = []
    shell_builtins = ("cd ", "export ", "source ", "module ", "ulimit ", "set ")
    for line in script_text.splitlines():
        line = line.strip()
        if not line or line.startswith("#") or line.startswith(shell_builtins):
            continue
        # strip output redirection — "2>&1" before ">" so the bare ">"
        # doesn't split it and leave a dangling "2" token
        for marker in ("2>&1", ">>", ">"):
            idx = line.find(marker)
            if idx != -1:
                line = line[:idx].strip()
        if line:
            commands.append(shlex.split(line))
    return commands


def _strip_launcher(argv: List[str]) -> tuple[List[str], int]:
    """Remove an MPI launcher prefix (srun/jsrun/flux/mpiexec) and recover
    the rank count it requested."""
    launchers = {"srun", "jsrun", "mpiexec", "mpirun"}
    n_ranks = 1
    i = 0
    if argv and argv[0] == "flux":  # flux run -N x -n y
        i = 2
    elif argv and argv[0] in launchers:
        i = 1
    else:
        return argv, 1
    out = []
    skip_value_flags = {"-n", "-N", "-a", "-g", "--ntasks", "--nodes"}
    j = i
    while j < len(argv):
        tok = argv[j]
        if tok in skip_value_flags:
            if tok in ("-n", "--ntasks"):
                try:
                    n_ranks = int(argv[j + 1])
                except (IndexError, ValueError):
                    pass
            j += 2
            continue
        if tok.startswith("-"):
            j += 1
            continue
        out = argv[j:]
        break
    return out, max(n_ranks, 1)


class _Dispatch:
    """Maps benchmark program names to their Python implementations."""

    def __init__(self, interconnect=None):
        self.interconnect = interconnect

    def run(self, argv: List[str], n_ranks: int) -> str:
        if not argv:
            raise ExecutorError("empty command")
        program = argv[0].rsplit("/", 1)[-1]
        handler = getattr(self, f"_run_{program.replace('-', '_')}", None)
        if handler is None:
            raise ExecutorError(
                f"no benchmark implementation for program {program!r}"
            )
        return handler(argv[1:], n_ranks)

    @staticmethod
    def _flag(argv: List[str], name: str, default: str) -> str:
        for i, tok in enumerate(argv):
            if tok == name and i + 1 < len(argv):
                return argv[i + 1]
        return default

    def _world(self, n_ranks: int):
        from repro.benchmarks.simmpi import SimWorld

        if n_ranks <= 1:
            return None
        return SimWorld(n_ranks, self.interconnect)

    def _run_saxpy(self, argv: List[str], n_ranks: int) -> str:
        from repro.benchmarks.saxpy import run_saxpy

        n = int(self._flag(argv, "-n", "1"))
        result = run_saxpy(n, n_ranks=n_ranks, world=self._world(n_ranks))
        return result.report() + "\n"

    def _run_amg(self, argv: List[str], n_ranks: int) -> str:
        from repro.benchmarks.amg import run_amg

        problem = int(self._flag(argv, "-problem", "1"))
        n = int(self._flag(argv, "-n", "16"))
        ranks = int(self._flag(argv, "-ranks", str(n_ranks)))
        result = run_amg(problem=problem, n=n, n_ranks=max(ranks, n_ranks),
                         world=self._world(max(ranks, n_ranks)))
        return result.report() + "\n"

    def _run_stream(self, argv: List[str], n_ranks: int) -> str:
        from repro.benchmarks.stream import run_stream

        n = int(self._flag(argv, "-n", "1000000"))
        ntimes = int(self._flag(argv, "--ntimes", "10"))
        return run_stream(n, ntimes).report() + "\n"

    def _run_qs(self, argv: List[str], n_ranks: int) -> str:
        from repro.benchmarks.quicksilver import run_quicksilver

        n = int(self._flag(argv, "-n", "100000"))
        slab = float(self._flag(argv, "--slab", "10.0"))
        ranks = int(self._flag(argv, "--ranks", str(n_ranks)))
        result = run_quicksilver(n, slab, n_ranks=max(ranks, n_ranks),
                                 world=self._world(max(ranks, n_ranks)))
        return result.report() + "\n"

    def _run_osu_bcast(self, argv: List[str], n_ranks: int) -> str:
        from repro.benchmarks.osu import run_collective

        op = self._flag(argv, "--op", "bcast")
        ranks = int(self._flag(argv, "--ranks", str(n_ranks)))
        max_size = int(self._flag(argv, "--max-size", "65536"))
        iterations = int(self._flag(argv, "--iterations", "100"))
        result = run_collective(
            op, n_ranks=max(ranks, n_ranks), max_size=max_size,
            iterations=iterations, interconnect=self.interconnect,
        )
        return result.report() + "\n"


class LocalExecutor:
    """Run experiments for real on the current host."""

    def __init__(self):
        self.dispatch = _Dispatch()

    def execute(self, experiment) -> Dict[str, Any]:
        script = experiment.script_path.read_text()
        commands = parse_script_commands(script)
        out = []
        t0 = time.perf_counter()
        returncode = 0
        for argv in commands:
            argv, launcher_ranks = _strip_launcher(argv)
            ctx_ranks = int(float(experiment.variables.get("n_ranks", 1)))
            n_ranks = max(launcher_ranks, ctx_ranks)
            try:
                out.append(self.dispatch.run(argv, n_ranks))
            except ExecutorError as e:
                out.append(f"ERROR: {e}\n")
                returncode = 127
        return {
            "returncode": returncode,
            "stdout": "".join(out),
            "seconds": time.perf_counter() - t0,
        }


class SystemExecutor:
    """Run experiments 'on' a simulated HPC system."""

    def __init__(self, system: SystemDescriptor, reference_core_gflops: float = 20.0,
                 epoch: int = 0):
        self.system = system
        self.dispatch = _Dispatch(interconnect=system.interconnect)
        #: assumed rate of the measuring host, used to rescale real timings
        self.reference_core_gflops = reference_core_gflops
        #: benchmarking epoch, salted into the jitter so continuous runs of
        #: the same experiment see realistic run-to-run variation
        self.epoch = epoch
        #: retry attempt (1-based), set per run by FaultTolerantExecutor;
        #: re-runs on a system that just flapped are noisier than clean runs
        self.attempt = 1

    def _noise(self, experiment_name: str) -> float:
        """Deterministic multiplicative jitter per (system, experiment,
        epoch, attempt)."""
        salt = f"{self.system.name}:{experiment_name}:{self.epoch}"
        amplitude = self.system.noise
        if self.attempt > 1:
            salt += f":attempt{self.attempt}"
            amplitude *= 1.0 + 0.5 * (self.attempt - 1)
        digest = hashlib.sha256(salt.encode()).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        # map uniform → symmetric noise around 1.0
        return 1.0 + (2.0 * u - 1.0) * amplitude

    @staticmethod
    def _uses_gpu(experiment) -> bool:
        """GPU programming-model runs (software built +cuda/+rocm) execute
        the main computation on the accelerator — §2's example of 'using
        the GPU for the main computation'."""
        for spec in getattr(experiment, "env_specs", []) or []:
            variants = getattr(spec, "variants", {})
            if variants.get("cuda") is True or variants.get("rocm") is True:
                return True
        return False

    def execute(self, experiment) -> Dict[str, Any]:
        script = experiment.script_path.read_text()
        commands = parse_script_commands(script)
        out = [f"# executing on {self.system.name} ({self.system.site})\n"]
        use_gpu = self._uses_gpu(experiment) and self.system.has_gpu
        if use_gpu:
            out.append(f"# offloading to {self.system.gpu.model}\n")
        returncode = 0
        t0 = time.perf_counter()
        for argv in commands:
            argv, launcher_ranks = _strip_launcher(argv)
            ctx_ranks = int(float(experiment.variables.get("n_ranks", 1)))
            n_ranks = max(launcher_ranks, ctx_ranks)
            if n_ranks > self.system.total_cores:
                out.append(
                    f"ERROR: requested {n_ranks} ranks exceeds "
                    f"{self.system.name}'s {self.system.total_cores} cores\n"
                )
                returncode = 1
                continue
            try:
                text = self.dispatch.run(argv, n_ranks)
            except ExecutorError as e:
                out.append(f"ERROR: {e}\n")
                returncode = 127
                continue
            out.append(
                scale_compute_time(
                    text,
                    host_gflops=self.reference_core_gflops,
                    system=self.system,
                    noise=self._noise(experiment.name),
                    use_gpu=use_gpu,
                )
            )
        return {
            "returncode": returncode,
            "stdout": "".join(out),
            "seconds": time.perf_counter() - t0,
        }
