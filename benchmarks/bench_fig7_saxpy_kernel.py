"""F7 — Figure 7: the saxpy kernel itself.

    void saxpy_kernel(float* r, float* x, float* y, int size) {
        for (int i = 0; i < size; ++i) r[i] = A * x[i] + y[i];
    }

Benchmarks the real vectorized kernel across the paper's experiment sizes
(n = 512, 1024 from Figure 10) and a large size, verifying numerical
correctness and the expected memory-bandwidth-bound behaviour (time grows
~linearly with n once out of cache-latency noise).
"""

import numpy as np
import pytest

from repro.benchmarks.saxpy import A, run_saxpy, saxpy_kernel


@pytest.mark.parametrize("n", [512, 1024, 1 << 20])
def test_figure7_kernel(benchmark, n):
    rng = np.random.default_rng(n)
    x = rng.random(n, dtype=np.float32)
    y = rng.random(n, dtype=np.float32)
    r = np.empty_like(x)

    benchmark(saxpy_kernel, r, x, y)
    np.testing.assert_allclose(r, A * x + y, rtol=1e-6)


def test_saxpy_benchmark_report(artifact):
    lines = ["saxpy benchmark across Figure 10 problem sizes:", ""]
    for n in (512, 1024, 1 << 16, 1 << 20):
        res = run_saxpy(n, repeats=5)
        assert res.correct
        lines.append(f"n={n:<9} time={res.kernel_seconds:.3e}s "
                     f"bandwidth={res.bandwidth_gbs:8.2f} GB/s "
                     f"checksum={res.checksum:.6e}")
    lines.append("")
    lines.append(run_saxpy(1024).report())
    artifact("fig7_saxpy_kernel", "\n".join(lines))


def test_kernel_time_scales_with_n():
    small = run_saxpy(1 << 16, repeats=5).kernel_seconds
    large = run_saxpy(1 << 22, repeats=5).kernel_seconds
    # 64x the data should cost at least ~8x the time (allowing cache effects)
    assert large > small * 8
