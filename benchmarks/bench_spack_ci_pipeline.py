"""X5 — §7.2's Spack build pipeline + rolling binary cache, end to end.

``spack ci generate`` turns a concretized environment into a GitLab
pipeline (one job per package, needs-wired along the dependency DAG); CI
runners build and push to the cache.  We run the loop twice:

* **cold**: the first pipeline builds every node of amg2023+caliper and
  publishes binaries;
* **warm**: the regenerated pipeline prunes everything ("no specs to
  rebuild") — the rolling-cache property that "focuses the time to build
  applications on only the dependencies with special requirements".
"""

from repro.ci import GitLab, Runner
from repro.ci.pipeline import parse_ci_config
from repro.spack import (
    BinaryCache,
    Concretizer,
    Environment,
    Installer,
    Store,
    generate_ci_pipeline,
)
from repro.spack.ci_pipeline import job_name_for


def test_spack_ci_cold_and_warm(benchmark, artifact, tmp_path_factory):
    env = Environment.create(tmp_path_factory.mktemp("env"),
                             specs=["amg2023+caliper"])
    env.concretize(Concretizer())
    root = env.concrete_roots[0]
    cache = BinaryCache()
    store = Store(tmp_path_factory.mktemp("store"))
    installer = Installer(store, binary_cache=cache)
    by_job = {job_name_for(n): n for n in root.traverse() if not n.external}

    def ci_runner_body(job):
        if job.name == "no-specs-to-rebuild":
            return True, "nothing to do"
        results = installer.install(by_job[job.name])
        return True, f"{results[-1].action}"

    lab = GitLab()
    lab.register_runner(Runner("builder", [], ci_runner_body))
    project = lab.create_project("spack-ci")

    # cold pipeline
    cold_yaml = benchmark(generate_ci_pipeline, env, None, cache)
    project.git.commit("main", "cold", "bot", {".gitlab-ci.yml": cold_yaml})
    cold = project.trigger_pipeline("main")
    assert cold.succeeded
    cold_jobs = [j for j in cold.jobs if j.status == "success"]
    assert len(cold_jobs) == len(by_job)
    assert cache.stats.pushes == len(by_job)

    # warm pipeline: everything pruned
    warm_yaml = generate_ci_pipeline(env, binary_cache=cache)
    parsed = parse_ci_config(warm_yaml)
    assert [j.name for j in parsed["jobs"]] == ["no-specs-to-rebuild"]
    project.git.commit("main", "warm", "bot", {".gitlab-ci.yml": warm_yaml})
    warm = project.trigger_pipeline("main")
    assert warm.succeeded

    artifact("spack_ci_pipeline", "\n".join([
        f"cold pipeline: {len(cold_jobs)} build jobs "
        f"(pushed {cache.stats.pushes} binaries)",
        "cold job DAG:",
        *[f"  {j.name} needs={j.needs}" for j in cold.jobs],
        "",
        f"warm pipeline: {[j.name for j in warm.jobs]} "
        f"(rolling cache pruned all rebuilds)",
    ]))


def test_incremental_rebuild_after_one_change(tmp_path_factory):
    """Changing one leaf package rebuilds only the affected subtree."""
    conc = Concretizer()
    env = Environment.create(tmp_path_factory.mktemp("env"),
                             specs=["amg2023+caliper"])
    env.concretize(conc)
    cache = BinaryCache()
    store = Store(tmp_path_factory.mktemp("store"))
    Installer(store, binary_cache=cache).install(env.concrete_roots[0])

    # "Change" adiak by requesting a different version: its hash — and its
    # dependents' hashes — change, so exactly that subtree rebuilds.
    env2 = Environment.create(tmp_path_factory.mktemp("env2"),
                              specs=["amg2023+caliper ^adiak@0.2.2"])
    env2.concretize(conc)
    parsed = parse_ci_config(generate_ci_pipeline(env2, binary_cache=cache))
    names = {j.name.rsplit("-", 1)[0] for j in parsed["jobs"]}
    # adiak changed; caliper and amg2023 depend on it (directly or not)
    assert "adiak" in names
    assert "amg2023" in names
    assert "caliper" in names
    # cmake, mpi, hypre, blas are unchanged and stay cached
    assert "cmake" not in names
    assert "hypre" not in names
