"""F12/F13 — Figures 12 & 13: variables.yaml + execute_experiment.tpl.

Figure 12 defines the system-side scheduler/launcher variables; Figure 13
is the template each experiment instantiates.  This bench renders the batch
script for each of the paper's three systems (Slurm on cts1, LSF/jsrun on
ats2, Flux on ats4) from one shared template and checks every ``{var}``
resolves.  Benchmarks template rendering throughput.
"""

from repro.core.layout import system_variables_yaml
from repro.ramble.templates import DEFAULT_EXECUTE_TEMPLATE, render_template
from repro.systems import get_system


def _context(system_name: str) -> dict:
    system = get_system(system_name)
    ctx = dict(system_variables_yaml(system)["variables"])
    ctx.update({
        "n_nodes": "2",
        "n_ranks": "16",
        "batch_time": "120",
        "experiment_run_dir": f"/ws/experiments/saxpy/{system_name}",
        "spack_setup": "# spack environment loaded",
        "command": ctx["mpi_command"] + " saxpy -n 512",
    })
    return ctx


def test_figure12_13_render_three_systems(benchmark, artifact):
    def render_all():
        return {
            name: render_template(DEFAULT_EXECUTE_TEMPLATE, _context(name))
            for name in ("cts1", "ats2", "ats4")
        }

    scripts = benchmark(render_all)

    # fully expanded, no dangling {var}
    for name, script in scripts.items():
        assert "{" not in script, f"{name} script has unexpanded variables"
        assert script.startswith("#!/bin/bash")

    # system-specific scheduler directives and launchers (Figure 12's role)
    assert "#SBATCH -N 2" in scripts["cts1"]
    assert "srun -N 2 -n 16 saxpy -n 512" in scripts["cts1"]
    assert "#BSUB -nnodes 2" in scripts["ats2"]
    assert "jsrun" in scripts["ats2"]
    assert "flux run" in scripts["ats4"]

    blob = []
    for name, script in scripts.items():
        blob += [f"=== {name} ===", script, ""]
    artifact("fig12_13_batch_scripts", "\n".join(blob))


def test_render_throughput_at_campaign_scale(benchmark):
    """One render per experiment; campaigns render thousands."""
    ctx = _context("cts1")

    def render_many():
        return [render_template(DEFAULT_EXECUTE_TEMPLATE, ctx)
                for _ in range(100)]

    scripts = benchmark(render_many)
    assert len(scripts) == 100
