"""T1 — regenerate Table 1: Components of Benchpark.

The paper's Table 1 maps six benchmarking components × three orthogonal
axes to concrete artifacts.  We regenerate the table from the live
component registry and verify every cell is actually implemented by a
module of this repository (introspective check), then benchmark the
verification sweep itself.
"""

from repro.core import render_table1, verify_cells


def test_table1_regeneration(benchmark, artifact):
    table = benchmark(render_table1)
    artifact("table1_components", table)

    # Paper fidelity: the exact artifact names from Table 1 appear in the
    # regenerated table, row by row.
    assert "package.py" in table
    assert "archspec (Sec. 3.1.3)" in table
    assert "ramble.yaml: spack" in table
    assert "application.py" in table
    assert "variables.yaml" in table
    assert "ramble.yaml: experiments" in table
    assert "ramble.yaml: success_criteria" in table
    assert ".gitlab-ci.yml" in table
    assert "Hubcast" in table
    assert "Benchpark executable" in table


def test_table1_all_cells_implemented(benchmark):
    cells = benchmark(verify_cells)
    assert len(cells) == 18
    assert all(cells.values()), {k: v for k, v in cells.items() if not v}
