"""F3 — Figure 3: the spack.yaml environment manifest.

    spack:
      specs: [amg2023+caliper]
      concretizer:
        unify: true
      view: true

Round-trips the paper's manifest through the Environment implementation and
checks ``unify: true`` semantics (shared dependency solutions) versus
``unify: false``.  Benchmarks unified concretization of a two-root env.
"""

import yaml

from repro.spack import Concretizer, Environment


FIGURE3_MANIFEST = """\
spack:
  specs: [amg2023+caliper]
  concretizer:
    unify: true
  view: true
"""


def test_figure3_manifest_roundtrip(artifact, tmp_path):
    env_dir = tmp_path / "env"
    env_dir.mkdir()
    (env_dir / "spack.yaml").write_text(FIGURE3_MANIFEST)
    env = Environment(env_dir)

    assert [s.format() for s in env.user_specs] == ["amg2023+caliper"]
    assert env.unify is True

    roots = env.concretize(Concretizer())
    assert roots[0].variants["caliper"] is True
    artifact("fig3_manifest", FIGURE3_MANIFEST + "\nconcretized: "
             + roots[0].format(deps=True))


def test_unify_semantics(benchmark, tmp_path_factory):
    concretizer = Concretizer()

    def unified():
        env = Environment.create(
            tmp_path_factory.mktemp("env"),
            specs=["saxpy", "amg2023+caliper"], unify=True,
        )
        return env.concretize(concretizer)

    roots = benchmark(unified)
    # unify: true → both roots share one cmake and one mpi solution
    assert roots[0]["cmake"].dag_hash() == roots[1]["cmake"].dag_hash()
    assert roots[0]["mvapich2"].dag_hash() == roots[1]["mvapich2"].dag_hash()
