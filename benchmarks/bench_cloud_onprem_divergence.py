"""X2 — §7.1/§7.2: on-premise vs cloud benchmarking.

The paper's collaboration story: a microbenchmark behaved differently
between an on-prem machine and "cloud instances of similar architecture",
traced (after days) to a math-library bug keyed on a hardware feature
missing in the cloud.  §7.2 adds that cloud resources are "another
platform" for portability testing.

This bench treats cloud-c6i exactly like a fourth system: the same saxpy
experiment spec runs on cts1 and cloud-c6i, the archspec feature diff that
caused the paper's anecdote is computed, and the noise model (multi-tenant
jitter) shows up as higher run-to-run variance on the cloud system.
"""

import statistics

from repro.archspec import get_target
from repro.ci import MetricsDatabase
from repro.core import benchpark_setup
from repro.systems import SystemExecutor, get_system

PAIR = ("cts1", "cloud-c6i")


def _run_pair(tmp_root):
    db = MetricsDatabase()
    for system in PAIR:
        session = benchpark_setup("saxpy/openmp", system, tmp_root / system)
        results = session.run_all()
        db.ingest_analysis(system, results)
    return db


def test_same_spec_runs_on_prem_and_cloud(benchmark, artifact, tmp_path_factory):
    db = benchmark.pedantic(
        lambda: _run_pair(tmp_path_factory.mktemp("pair")),
        rounds=1, iterations=1,
    )
    for system in PAIR:
        recs = db.query(benchmark="saxpy", system=system, fom_name="bandwidth")
        assert len(recs) == 8, f"{system}: expected the 8 Figure-10 experiments"

    onprem = get_target(get_system("cts1").cpu_target)
    cloud = get_target(get_system("cloud-c6i").cpu_target)
    cloud_only = sorted(cloud.features - onprem.features)
    artifact("cloud_onprem_divergence", "\n".join([
        "§7.1 on-prem vs cloud comparison (saxpy, identical spec):",
        "",
        f"cts1 target      : {onprem.name} ({onprem.vendor})",
        f"cloud-c6i target : {cloud.name} ({cloud.vendor})",
        f"features only in cloud: {', '.join(cloud_only)}",
        f"binary compatibility (cloud >= onprem): {cloud >= onprem}",
        "",
        "bandwidth records per system: "
        + str({s: len(db.query(benchmark='saxpy', system=s,
                               fom_name='bandwidth')) for s in PAIR}),
    ]))

    # The paper's root-cause class exists: a non-empty feature diff between
    # "similar architecture" machines.
    assert cloud_only, "feature diff must be non-empty for the §7.1 scenario"


def test_cloud_noise_exceeds_onprem():
    """Multi-tenant jitter: the cloud system's deterministic noise envelope
    is wider than the on-prem system's."""
    cts1, cloud = get_system("cts1"), get_system("cloud-c6i")
    assert cloud.noise > cts1.noise

    def jitter_spread(system):
        ex = SystemExecutor(system)
        samples = [ex._noise(f"exp{i}") for i in range(64)]
        return statistics.pstdev(samples)

    assert jitter_spread(cloud) > jitter_spread(cts1)


def test_feature_keyed_library_reproduction():
    """Reproduce the anecdote's mechanism directly: a 'math library' that
    dispatches on a CPU feature crashes where the feature is absent, and
    archspec predicts exactly where."""
    def mathlib_kernel(target_name: str) -> str:
        target = get_target(target_name)
        if "avx512_vnni" in target:
            return "fast-path"        # the on-prem-only code path
        if "avx2" in target:
            return "portable-path"
        raise RuntimeError("illegal instruction")

    # cascadelake (on-prem class) takes the feature path; broadwell (older
    # on-prem) and zen3 (cloud AMD) take the portable path — no crash, but
    # *different code executed from the same binary*, the §7.1 hazard.
    assert mathlib_kernel("cascadelake") == "fast-path"
    assert mathlib_kernel("zen3") == "portable-path"
    assert mathlib_kernel("broadwell") == "portable-path"
    # and archspec answers "which systems run the fast path" without running:
    fast_systems = [n for n in ("cascadelake", "icelake", "zen3", "broadwell")
                    if "avx512_vnni" in get_target(n)]
    assert fast_systems == ["cascadelake", "icelake"]
