"""F1b/F1c — Figure 1b/1c: the nine-step Benchpark workflow, end to end.

Runs ``benchpark $experiment $system $workspace`` for saxpy/openmp on cts1
and drives all nine steps (clone → workspace config → ramble setup → Spack
builds → script rendering → execution → analysis), asserting each step
fires in the paper's order.  Benchmarks the complete workflow.
"""

from repro.core import WORKFLOW_STEPS, benchpark_setup


def test_figure1c_nine_step_workflow(benchmark, artifact, tmp_path_factory):
    def full_workflow():
        ws = tmp_path_factory.mktemp("ws")
        session = benchpark_setup("saxpy/openmp", "cts1", ws)
        results = session.run_all()
        return session, results

    session, results = benchmark.pedantic(full_workflow, rounds=3, iterations=1)

    # Steps 2..9 executed in the paper's order (step 1, the git clone, is
    # the user's action of obtaining this repository).
    assert session.steps == WORKFLOW_STEPS[1:]

    # The workflow produced the Figure 10 experiment matrix and every
    # experiment extracted its FOMs successfully.
    assert len(results["experiments"]) == 8
    assert all(e["status"] == "SUCCESS" for e in results["experiments"])

    lines = ["Figure 1c workflow trace (saxpy/openmp on cts1):", ""]
    lines += [f"  {step}" for step in [WORKFLOW_STEPS[0]] + session.steps]
    lines.append("")
    lines.append(f"experiments: {[e['name'] for e in results['experiments']]}")
    artifact("fig1c_workflow_trace", "\n".join(lines))


def test_workflow_is_functionally_reproducible(tmp_path_factory):
    """Same inputs → same experiment set and same concretized software —
    the property the whole paper is arguing for."""
    def run():
        ws = tmp_path_factory.mktemp("ws")
        session = benchpark_setup("saxpy/openmp", "cts1", ws)
        session.setup()
        names = sorted(e.name for e in session.workspace.experiments)
        hashes = sorted(
            r.spec.dag_hash() for r in session.runtime.store.all_records()
        )
        return names, hashes

    first, second = run(), run()
    assert first[0] == second[0], "experiment sets differ between runs"
    assert first[1] == second[1], "concretized software differs between runs"
