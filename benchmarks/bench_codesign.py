"""X6 — §1's co-design claim: "benchmarking … is useful for co-designing
future HPC system procurements."

Scores the paper's three real systems against each other with the
calibrated performance models and checks the predictions reproduce the
known hardware ordering; then scores a hypothetical GPU-dense proposal to
show the forward-prediction use.  Benchmarks the full comparison sweep.
"""

from repro.systems import compare_systems, get_system, predict_suite
from repro.systems.descriptor import GpuSpec, InterconnectSpec, SystemDescriptor


def test_codesign_paper_systems(benchmark, artifact):
    systems = [get_system(n) for n in ("cts1", "ats2", "ats4")]
    rows = benchmark(compare_systems, systems, get_system("cts1"))

    ranked = [r["system"] for r in rows]
    # ats4 (2022 GPU machine) > ats2 (2018 GPU machine) > cts1 (2016 CPU)
    assert ranked == ["ats4", "ats2", "cts1"], ranked
    assert rows[-1]["score"] == 1.0  # reference against itself

    lines = ["co-design scores vs cts1 (geometric-mean speedup):", ""]
    for row in rows:
        lines.append(f"  {row['system']:<8} {row['score']:8.2f}x")
    lines.append("")
    lines.append("per-FOM predictions:")
    for row in rows:
        lines.append(f"  {row['system']}: " + ", ".join(
            f"{k}={v:.4g}" for k, v in row["predictions"].items()))
    artifact("codesign_scores", "\n".join(lines))


def test_hypothetical_system_prediction():
    """A proposal that doesn't exist yet gets a full predicted FOM table."""
    proposal = SystemDescriptor(
        name="elcap-like", site="vendor", nodes=4096, cores_per_node=96,
        core_gflops=35.0, node_mem_bw_gbs=500.0, memory_per_node_gb=768.0,
        cpu_target="zen3",
        interconnect=InterconnectSpec("ss-12", 0.5, 100.0, "binomial"),
        gpu=GpuSpec("MI300", 4, 128.0, 60000.0, 5300.0, runtime="rocm"),
    )
    rows = compare_systems([proposal], reference=get_system("ats4"))
    assert rows[0]["score"] > 1.0  # strictly better than the 2022 machine
    pred = predict_suite(proposal)
    assert pred["stream_triad_mbs"] > predict_suite(
        get_system("ats4"))["stream_triad_mbs"]
