"""F6 — Figure 6: the Benchpark automation workflow.

    Users → GitHub repo → (Hubcast bot) → GitLab repo → CI builders →
    S3 cache → benchmark runners → metrics database

Replays the full loop: a fork PR, admin approval, Hubcast mirroring, a
GitLab pipeline whose build job publishes to the S3-backed binary cache and
whose bench job runs saxpy and records FOMs in the metrics database, with
status streamed back to GitHub.  Benchmarks one full loop iteration.
"""

from pathlib import Path

from repro.ci import (
    GitHub,
    GitLab,
    Hubcast,
    JacamarExecutor,
    MetricsDatabase,
    ObjectStore,
    Runner,
    SecurityCriteria,
    SiteAccounts,
)
from repro.core import benchpark_setup
from repro.spack import BinaryCache

CI_YAML = """
stages: [build, bench]
build-saxpy:
  stage: build
  tags: [cts1]
  script: ["spack install saxpy"]
bench-saxpy:
  stage: bench
  tags: [cts1]
  script: ["ramble on"]
"""


def _one_loop(tmp: Path):
    github = GitHub()
    canonical = github.create_repo("llnl", "benchpark")
    canonical.git.commit("main", "seed", "olga",
                         {".gitlab-ci.yml": CI_YAML})
    gitlab = GitLab()
    s3 = ObjectStore()
    cache = BinaryCache(backend=s3.create_bucket("cache"))
    metrics = MetricsDatabase()
    site = SiteAccounts("LLNL", users={"site_admin"})

    state = {"ws": 0}

    def job_body(job, user):
        if job.name.startswith("build"):
            session = benchpark_setup("saxpy/openmp", "cts1",
                                      tmp / f"ws{state['ws']}")
            state["ws"] += 1
            session.setup(binary_cache=cache)
            return True, f"built as {user}, cache pushes={cache.stats.pushes}"
        session = benchpark_setup("saxpy/openmp", "cts1",
                                  tmp / f"ws{state['ws']}")
        state["ws"] += 1
        results = session.run_all(binary_cache=cache)
        n = metrics.ingest_analysis("cts1", results)
        ok = all(e["status"] == "SUCCESS" for e in results["experiments"])
        return ok, f"ran as {user}, {n} FOMs recorded"

    jacamar = JacamarExecutor(site, job_body)
    hubcast = Hubcast(canonical, gitlab, SecurityCriteria())

    fork = canonical.fork("contributor")
    fork.git.create_branch("feature")
    fork.git.commit("feature", "tweak", "contributor",
                    {"experiments/saxpy/openmp/ramble.yaml": "changed"})
    pr = canonical.open_pull_request(fork, "feature", "tweak", "contributor")
    pr.approve("site_admin", is_admin=True)
    gitlab.register_runner(Runner(
        "cts1", ["cts1"],
        jacamar.bound_runner(pr.author, approved_by=pr.admin_approver),
    ))
    pipeline = hubcast.process_pr(pr)
    return pr, pipeline, cache, metrics, jacamar, hubcast


def test_figure6_automation_loop(benchmark, artifact, tmp_path_factory):
    pr, pipeline, cache, metrics, jacamar, hubcast = benchmark.pedantic(
        lambda: _one_loop(tmp_path_factory.mktemp("loop")),
        rounds=2, iterations=1,
    )

    # Every arrow of Figure 6 fired:
    assert pipeline is not None and pipeline.succeeded          # CI ran
    assert cache.stats.pushes > 0                               # S3 cache fed
    assert cache.stats.hits > 0                                 # ...and reused
    assert len(metrics) > 0                                     # metrics DB fed
    assert pr.statuses["hubcast/gitlab-ci"].state == "success"  # status back
    assert all(e["ran_as"] == "site_admin" for e in jacamar.audit_log)

    lines = ["Figure 6 automation loop trace:", ""]
    lines += [f"  {entry}" for entry in hubcast.audit_log]
    lines.append("")
    lines += [f"  jacamar: job={e['job']} triggered_by={e['triggered_by']} "
              f"ran_as={e['ran_as']} outcome={e['outcome']}"
              for e in jacamar.audit_log]
    lines.append("")
    lines.append(f"  cache: {cache.stats!r}")
    lines.append(f"  metrics DB records: {len(metrics)}")
    artifact("fig6_automation_loop", "\n".join(lines))
