"""X1 — §4's demonstration claim: the Benchpark benchmarks build & run on
three systems (cts1, ats2, ats4 EAS).

Runs the full saxpy + AMG2023 campaign on all three simulated systems, loads
every FOM into the metrics database, and regenerates the benchmark × system
dashboard grid (§5's "quick glance of the multi-dimensional performance
data").  Shape checks: GPU systems beat the CPU-only system on the
memory-bound FOMs, matching the hardware the paper describes.
"""

from repro.analysis import render_grid
from repro.ci import MetricsDatabase
from repro.core import benchpark_setup

SYSTEMS = ("cts1", "ats2", "ats4")
EXPERIMENTS = ("saxpy/openmp", "amg2023/openmp")


def _campaign(tmp_root):
    db = MetricsDatabase()
    statuses = {}
    for system in SYSTEMS:
        for experiment in EXPERIMENTS:
            ws = tmp_root / f"{system}-{experiment.replace('/', '-')}"
            session = benchpark_setup(experiment, system, ws)
            results = session.run_all()
            db.ingest_analysis(system, results)
            statuses[(experiment, system)] = all(
                e["status"] == "SUCCESS" for e in results["experiments"]
            )
    return db, statuses


def test_campaign_three_systems(benchmark, artifact, tmp_path_factory):
    db, statuses = benchmark.pedantic(
        lambda: _campaign(tmp_path_factory.mktemp("campaign")),
        rounds=1, iterations=1,
    )

    # §4: everything builds & runs on all three systems.
    assert all(statuses.values()), {k: v for k, v in statuses.items() if not v}

    # Regenerate the benchmark × system dashboard.
    grids = []
    for fom, benchmark_name in (("bandwidth", "saxpy"),
                                ("fom_solve", "amg2023")):
        agg = {}
        for system in SYSTEMS:
            recs = db.query(benchmark=benchmark_name, system=system,
                            fom_name=fom)
            values = [float(r.value) for r in recs]
            if values:
                agg[(benchmark_name, system)] = max(values)
        grids.append(render_grid([benchmark_name], list(SYSTEMS), agg,
                                 title=f"best {fom} per system"))
    artifact("campaign_3systems", "\n\n".join(grids))

    # Shape: cts1 (120 GB/s nodes) < ats2 (170) < ats4 (205) on the
    # memory-bound saxpy bandwidth FOM.
    best = {
        system: max(float(r.value) for r in db.query(
            benchmark="saxpy", system=system, fom_name="bandwidth"))
        for system in SYSTEMS
    }
    assert best["cts1"] < best["ats2"] < best["ats4"], best


def test_amg_foms_recorded_everywhere(tmp_path_factory):
    db, _ = _campaign(tmp_path_factory.mktemp("c2"))
    for system in SYSTEMS:
        setup = db.query(benchmark="amg2023", system=system, fom_name="fom_setup")
        solve = db.query(benchmark="amg2023", system=system, fom_name="fom_solve")
        assert setup and solve, f"missing AMG FOMs on {system}"
        assert all(float(r.value) > 0 for r in setup + solve)
    usage = db.benchmark_usage()
    assert set(usage) == {"saxpy", "amg2023"}
