"""Analysis-engine benchmark: cold row-oriented analysis vs. the warm
columnar/incremental engine, over the same synthetic multi-epoch campaign.

Per epoch the analysis stack answers three questions: which series
regressed, how do the scaling series model, and what does the dashboard
look like now.  The **cold** pass answers them the row-oriented way — a
full :meth:`RegressionDetector.detect_in_db` rescan per series, Extra-P
refit from scratch (model cache cleared), ``render_report`` over the raw
record list.  The **warm** pass answers them through one
:class:`~repro.analysis.engine.AnalysisEngine`: columnar frame refreshed in
O(new records), persistent per-series regression state fed only new
samples, memoized model fits, vectorized dashboard.

Correctness is asserted, not assumed: final regression events, Extra-P
model strings, and the dashboard text must be identical between passes —
the engine's contract is bit-identical results, only faster.

Writes ``BENCH_analysis.json`` and exits non-zero if the warm pass is not
at least ``--min-speedup`` times faster.  Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_analysis.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import RegressionDetector, clear_model_cache, fit_model, render_report
from repro.analysis.engine import AnalysisEngine
from repro.ci import MetricsDatabase
from repro.perf import Profiler

SYSTEMS = ("cts1", "tioga", "sierra")
BENCHMARKS = ("stream", "amg2023", "quicksilver")
FOMS = (("triad_bw", True), ("walltime", False))
NPROCS = (2, 4, 8, 16, 32)
THRESHOLD, WINDOW = 0.10, 3
SCALING_EVERY = 5  # epochs between scaling-series extensions


def _targets(systems, benchmarks):
    return [(b, s, f, hib)
            for b in benchmarks for s in systems for f, hib in FOMS]


def synthesize_epoch(epoch: int, systems, benchmarks) -> list:
    """Deterministic records for one campaign epoch: 2 experiments per
    (system, benchmark, fom) with mild noise, a 20% step regression
    injected into one third of the series at 60% of the campaign, a flaky
    retry record now and then, and — every SCALING_EVERY epochs — a
    strong-scaling sweep over NPROCS for model fitting."""
    records = []
    for bi, benchmark in enumerate(benchmarks):
        for si, system in enumerate(systems):
            rng = np.random.default_rng(epoch * 7919 + bi * 131 + si)
            for fom, hib in FOMS:
                base = 100.0 if hib else 10.0
                regressed = (bi + si) % 3 == 0 and epoch >= 12
                if regressed:
                    base *= 0.78 if hib else 1.25
                for exp in ("exp0", "exp1"):
                    manifest = {"epoch": str(epoch)}
                    if epoch % 7 == 3 and exp == "exp1" and fom == "triad_bw":
                        manifest.update(flaky="true", attempts="2")
                    value = base * (1.0 + 0.02 * rng.standard_normal())
                    records.append((benchmark, system, exp, fom,
                                    float(value), "u", manifest))
            if epoch % SCALING_EVERY == 0:
                for p in NPROCS:
                    seconds = 1.0 + 0.05 * p + 0.001 * epoch
                    records.append((benchmark, system, f"scale{p}",
                                    "total_time", float(seconds), "s",
                                    {"nprocs": str(p),
                                     "scale_epoch": str(epoch)}))
    return records


def _ingest(db: MetricsDatabase, records) -> None:
    for benchmark, system, exp, fom, value, units, manifest in records:
        db.record(benchmark, system, exp, fom, value, units, dict(manifest))


def run_cold(epoch_records, targets, profiler: Profiler):
    """Row-oriented per-epoch analysis: full rescans, fresh fits."""
    db = MetricsDatabase()
    detectors = {hib: RegressionDetector(THRESHOLD, WINDOW, hib)
                 for hib in (True, False)}
    events = models = report = None
    for records in epoch_records:
        _ingest(db, records)
        with profiler.timer("cold:detect"):
            found = []
            for benchmark, system, fom, hib in targets:
                found.extend(detectors[hib].detect_in_db(
                    db, benchmark, system, fom))
            events = sorted(found, key=lambda e: e.epoch)
        with profiler.timer("cold:model"):
            clear_model_cache()  # the non-incremental world refits
            models = {}
            for benchmark, system, _, _ in targets[::2]:
                pairs = db.series(benchmark, system, "total_time", "nprocs",
                                  exclude_flaky=True)
                if pairs:
                    models[(benchmark, system)] = str(fit_model(pairs))
        with profiler.timer("cold:dashboard"):
            report = render_report(db)
    return db, events, models, report


def run_warm(epoch_records, targets):
    """The same questions answered through one persistent AnalysisEngine."""
    db = MetricsDatabase()
    engine = AnalysisEngine(db, threshold=THRESHOLD, window=WINDOW)
    events = models = report = None
    for records in epoch_records:
        _ingest(db, records)
        events = engine.scan(targets)
        models = {}
        for benchmark, system, _, _ in targets[::2]:
            model = engine.model(benchmark, system, "total_time")
            if model is not None:
                models[(benchmark, system)] = str(model)
        report = engine.dashboard()
    return db, engine, events, models, report


def bench(epochs: int, systems, benchmarks) -> dict:
    targets = _targets(systems, benchmarks)
    epoch_records = [synthesize_epoch(e, systems, benchmarks)
                     for e in range(epochs)]

    cold_profiler = Profiler()
    clear_model_cache()
    t0 = time.perf_counter()
    cold_db, cold_events, cold_models, cold_report = run_cold(
        epoch_records, targets, cold_profiler)
    cold_s = time.perf_counter() - t0

    clear_model_cache()
    t0 = time.perf_counter()
    warm_db, engine, warm_events, warm_models, warm_report = run_warm(
        epoch_records, targets)
    warm_s = time.perf_counter() - t0

    # Correctness gates: the engine must be invisible in the results.
    assert [str(e) for e in cold_events] == [str(e) for e in warm_events], \
        "incremental regression events diverged from batch recomputation"
    assert cold_models == warm_models, \
        "memoized Extra-P model strings diverged from fresh fits"
    assert cold_report == warm_report, \
        "engine dashboard diverged from row-oriented render_report"
    assert cold_db.to_records() == warm_db.to_records()

    from repro.analysis.extrap import model_cache
    return {
        "epochs": epochs,
        "series_tracked": len(targets),
        "records": len(cold_db),
        "regression_events": len(warm_events),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
        "events_identical": True,
        "models_identical": True,
        "dashboard_identical": True,
        "model_cache": {k: v for k, v in model_cache().stats().items()
                        if k in ("hits", "misses", "hit_rate")},
        "profiler_cold": cold_profiler.to_dict(),
        "profiler_warm": engine.profiler.to_dict(),
        "_profilers": (cold_profiler, engine.profiler),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller campaign; skip the wall-clock speedup "
                             "gate (correctness asserts always apply)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="campaign length (default: 100, or 30 with --quick)")
    parser.add_argument("--out", default=None,
                        help="result JSON path (default: BENCH_analysis.json "
                             "at the repo root; omitted in --quick mode "
                             "unless given)")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args(argv)

    epochs = args.epochs or (30 if args.quick else 100)
    systems = SYSTEMS[:2] if args.quick else SYSTEMS
    benchmarks = BENCHMARKS[:2] if args.quick else BENCHMARKS

    results = bench(epochs, systems, benchmarks)
    cold_profiler, warm_profiler = results.pop("_profilers")
    results["mode"] = "quick" if args.quick else "full"
    print(json.dumps(results, indent=2))

    # Per-stage breakdown to the job log: where the speedup comes from.
    print("\n# cold (row-oriented) stage breakdown", file=sys.stderr)
    print(cold_profiler.report(), file=sys.stderr)
    print("\n# warm (analysis engine) stage breakdown", file=sys.stderr)
    print(warm_profiler.report(), file=sys.stderr)

    out = args.out
    if out is None and not args.quick:
        out = str(Path(__file__).resolve().parent.parent
                  / "BENCH_analysis.json")
    if out:
        Path(out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"# wrote {out}", file=sys.stderr)

    if not args.quick and results["speedup"] < args.min_speedup:
        print(f"FAIL: analysis speedup {results['speedup']:.1f}x < "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
