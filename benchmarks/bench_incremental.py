"""Incremental-pipeline benchmark: content-addressed reuse end to end.

Measures the three layers of the incremental pipeline and writes the
numbers to ``BENCH_incremental.json``:

1. **Warm campaign** — a 10-epoch continuous-benchmarking campaign run
   cold, then re-run warm against the same shared result cache.  The warm
   pass must replay every epoch from cache (hit rate >= --min-hit-rate)
   and, in full mode, finish >= --min-speedup faster than the
   non-incremental baseline — while producing *identical* FOM series and
   regression events (correctness is asserted, not assumed).
2. **Parallel DAG install** — the amg2023+caliper DAG installed through
   the level-scheduled worker pool; the simulated makespan must be the
   DAG's critical path, strictly below the serial sum of build times.
3. **Memoized concretization** — the same environment solved cold and
   warm; the warm solve is a cache lookup.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]

``--quick`` shrinks the campaign for CI and skips the wall-clock speedup
gate (timings on loaded CI runners are noisy); the hit-rate gate always
applies.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.continuous import ContinuousBenchmarking
from repro.perf import ContentStore
from repro.spack import Concretizer, Installer, Store
from repro.spack.concretizer import clear_concretization_memo

EXPERIMENT = "stream/openmp"
SYSTEM = "cts1"


def _fom_series(campaign: ContinuousBenchmarking):
    """Comparable view of every recorded FOM: provenance-tagging keys
    (cached/cache_provenance) excluded, everything that carries meaning
    included."""
    out = []
    for rec in campaign.db.query():
        out.append((
            rec.benchmark, rec.system, rec.experiment, rec.fom_name,
            rec.value, rec.units, rec.manifest.get("epoch"),
        ))
    return out


def bench_warm_campaign(epochs: int) -> dict:
    shared = ContentStore("epoch-results")
    base = Path(tempfile.mkdtemp(prefix="bench-incremental-"))

    t0 = time.perf_counter()
    cold = ContinuousBenchmarking(
        EXPERIMENT, SYSTEM, base / "cold", result_cache=shared,
    ).run(epochs)
    cold_s = time.perf_counter() - t0

    before = shared.stats()
    t0 = time.perf_counter()
    warm = ContinuousBenchmarking(
        EXPERIMENT, SYSTEM, base / "warm", result_cache=shared,
    ).run(epochs)
    warm_s = time.perf_counter() - t0
    after = shared.stats()
    warm_hits = after["hits"] - before["hits"]
    warm_lookups = after["lookups"] - before["lookups"]

    t0 = time.perf_counter()
    baseline = ContinuousBenchmarking(
        EXPERIMENT, SYSTEM, base / "baseline", incremental=False,
    ).run(epochs)
    baseline_s = time.perf_counter() - t0

    # Correctness: caching must be invisible in the data.
    assert _fom_series(cold) == _fom_series(warm), \
        "warm campaign FOMs diverged from cold campaign"
    assert ([str(e) for e in cold.regressions()]
            == [str(e) for e in warm.regressions()]), \
        "warm campaign regression events diverged from cold campaign"

    return {
        "epochs": epochs,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "baseline_noninc_seconds": baseline_s,
        "warm_hits": warm_hits,
        "warm_lookups": warm_lookups,
        "warm_hit_rate": warm_hits / warm_lookups if warm_lookups else 0.0,
        "speedup_vs_cold": cold_s / warm_s if warm_s else float("inf"),
        "speedup_vs_baseline": baseline_s / warm_s if warm_s else float("inf"),
        "foms_identical": True,
        "regressions_identical": True,
        "profiler_warm": warm.profiler.to_dict(),
        "_baseline_obj_records": len(baseline.db),
        "_profilers": (cold.profiler, warm.profiler),
    }


def bench_parallel_install() -> dict:
    clear_concretization_memo()
    root = Concretizer().concretize_together(["amg2023+caliper"])[0]
    with tempfile.TemporaryDirectory() as d:
        installer = Installer(Store(Path(d) / "store"), parallel=True)
        t0 = time.perf_counter()
        installer.install(root)
        wall = time.perf_counter() - t0
        stats = dict(installer.last_install_stats)
    assert stats["critical_path_seconds"] < stats["serial_seconds"], \
        "parallel install must charge critical-path time, not the serial sum"
    stats["wall_seconds"] = wall
    return stats


def bench_concretize_memo(rounds: int = 5) -> dict:
    specs = ["amg2023+caliper", "saxpy", "stream", "osu-micro-benchmarks"]
    clear_concretization_memo()
    t0 = time.perf_counter()
    for _ in range(rounds):
        Concretizer().concretize_together(list(specs), unify=False)
    cold_s = time.perf_counter() - t0  # round 1 solves, rounds 2+ hit

    t0 = time.perf_counter()
    for _ in range(rounds):
        Concretizer().concretize_together(list(specs), unify=False)
    warm_s = time.perf_counter() - t0  # every round hits
    return {
        "specs": specs,
        "rounds": rounds,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small campaign; skip the wall-clock speedup gate")
    parser.add_argument("--epochs", type=int, default=None,
                        help="campaign length (default: 10, or 3 with --quick)")
    parser.add_argument("--out", default=None,
                        help="result JSON path (default: BENCH_incremental.json "
                             "at the repo root; omitted entirely in --quick mode "
                             "unless given)")
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args(argv)

    epochs = args.epochs or (3 if args.quick else 10)

    campaign = bench_warm_campaign(epochs)
    campaign.pop("_baseline_obj_records", None)
    cold_profiler, warm_profiler = campaign.pop("_profilers")
    install = bench_parallel_install()
    memo = bench_concretize_memo()

    results = {
        "mode": "quick" if args.quick else "full",
        "warm_campaign": campaign,
        "parallel_install": install,
        "concretize_memo": memo,
    }
    print(json.dumps(results, indent=2))

    # Per-stage breakdown to the job log: where the warm epochs save time.
    print("\n# cold campaign stage breakdown", file=sys.stderr)
    print(cold_profiler.report(), file=sys.stderr)
    print("\n# warm campaign stage breakdown", file=sys.stderr)
    print(warm_profiler.report(), file=sys.stderr)

    out = args.out
    if out is None and not args.quick:
        out = str(Path(__file__).resolve().parent.parent
                  / "BENCH_incremental.json")
    if out:
        Path(out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"# wrote {out}", file=sys.stderr)

    failures = []
    if campaign["warm_hit_rate"] < args.min_hit_rate:
        failures.append(
            f"warm hit rate {campaign['warm_hit_rate']:.0%} < "
            f"{args.min_hit_rate:.0%}"
        )
    if not args.quick and campaign["speedup_vs_baseline"] < args.min_speedup:
        failures.append(
            f"warm speedup {campaign['speedup_vs_baseline']:.1f}x < "
            f"{args.min_speedup:.1f}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
