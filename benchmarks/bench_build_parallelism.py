"""X4 — build-DAG parallelism analysis (extends the §7.2 cache discussion).

Spack builds a DAG; the binary cache is valuable precisely because source
builds are long critical paths.  This bench computes, for the amg2023+caliper
DAG: the serial cost, the critical path (unbounded-parallelism bound), and
makespans at 1/2/4/8 build jobs — then verifies the cache turns all of it
into near-free extracts.
"""

from repro.spack import (
    BinaryCache,
    Concretizer,
    Installer,
    Store,
    critical_path,
    graph_stats,
    parallel_makespan,
)


def test_build_parallelism(benchmark, artifact):
    spec = Concretizer().concretize("amg2023+caliper")

    stats = graph_stats(spec)
    path, cp_seconds = critical_path(spec)
    makespans = {w: parallel_makespan(spec, w) for w in (1, 2, 4, 8)}
    benchmark(parallel_makespan, spec, 4)

    # sanity: serial == total, parallel bounded below by critical path
    assert makespans[1] == stats["total_build_seconds"]
    assert all(m >= cp_seconds - 1e-9 for m in makespans.values())
    assert makespans[8] <= makespans[1]

    lines = [
        f"amg2023+caliper build DAG: {stats['nodes']:.0f} packages, "
        f"{stats['edges']:.0f} edges",
        f"critical path: {' -> '.join(path)} = {cp_seconds:.0f}s",
        f"max parallel speedup: {stats['max_parallel_speedup']:.2f}x",
        "",
    ]
    for workers, makespan in makespans.items():
        lines.append(f"  {workers} build jobs: {makespan:8.0f}s "
                     f"({makespans[1] / makespan:.2f}x)")
    artifact("build_parallelism", "\n".join(lines))


def test_cache_beats_any_parallelism(tmp_path_factory):
    """Even unlimited build parallelism cannot beat a warm binary cache."""
    spec = Concretizer().concretize("amg2023+caliper")
    _, cp_seconds = critical_path(spec)

    cache = BinaryCache()
    Installer(Store(tmp_path_factory.mktemp("a")), binary_cache=cache).install(spec)
    warm = sum(
        r.seconds
        for r in Installer(Store(tmp_path_factory.mktemp("b")),
                           binary_cache=cache).install(spec)
    )
    assert warm < cp_seconds
