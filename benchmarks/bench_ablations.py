"""Ablations of the design choices DESIGN.md §6 calls out.

Each ablation toggles one mechanism and measures the consequence:

* concretizer ``unify: true`` vs ``false`` — store size (duplicate builds);
* scheduler FIFO vs EASY-backfill — campaign makespan;
* AMG smoother Jacobi vs Gauss–Seidel, V- vs W-cycle — iteration counts;
* binary cache hit vs miss — simulated install time;
* matrix crossed vs zipped — experiment-count growth.
"""

import numpy as np

from repro.benchmarks.amg import amg_solve, build_hierarchy, poisson_2d
from repro.ramble.matrices import expand_matrix
from repro.spack import BinaryCache, Concretizer, Environment, Installer, Store
from repro.systems import BatchScheduler, Job, get_system


def test_ablation_unify(artifact, tmp_path):
    """unify:false lets roots diverge → more installs for the same request."""
    concretizer = Concretizer()
    specs = ["saxpy ^cmake@3.23.1", "amg2023 ^cmake@3.26.3"]

    unified_error = None
    try:
        concretizer.concretize_together(specs, unify=True)
    except Exception as e:
        unified_error = e
    assert unified_error is not None, "conflicting roots must fail under unify"

    roots = concretizer.concretize_together(specs, unify=False)
    store = Store(tmp_path / "store")
    installer = Installer(store)
    for root in roots:
        installer.install(root)
    cmakes = [r for r in store.all_records() if r.spec.name == "cmake"]
    assert len(cmakes) == 2  # duplicate cmake builds — the unify cost

    artifact("ablation_unify", "\n".join([
        "unify: true  -> conflicting ^cmake constraints rejected "
        f"({type(unified_error).__name__})",
        f"unify: false -> both roots solved; store holds {len(cmakes)} cmake "
        f"installs (duplicate work)",
    ]))


def test_ablation_scheduler_policy(benchmark, artifact):
    """Backfill reduces campaign makespan on a mixed job stream."""
    system = get_system("cts1")
    jobs = []
    rng = np.random.default_rng(7)
    for i in range(40):
        nodes = int(rng.choice([1, 2, 4, 64, 512]))
        duration = float(rng.uniform(60, 1800))
        jobs.append(("j%d" % i, nodes, duration))

    def makespan(policy):
        sched = BatchScheduler(system, policy=policy)
        for name, nodes, duration in jobs:
            sched.submit(Job(name, nodes=nodes, duration=duration))
        return sched.run_until_complete(), sched.stats()

    fifo, fifo_stats = makespan("fifo")
    backfill, backfill_stats = benchmark(lambda: makespan("backfill"))

    assert backfill <= fifo
    artifact("ablation_scheduler", "\n".join([
        f"fifo     makespan={fifo:10.1f}s avg_wait={fifo_stats['avg_wait']:9.1f}s",
        f"backfill makespan={backfill:10.1f}s avg_wait={backfill_stats['avg_wait']:9.1f}s",
        f"speedup: {fifo / backfill:.3f}x",
    ]))


def test_ablation_amg_smoother_and_cycle(artifact):
    a = poisson_2d(32)
    h = build_hierarchy(a)
    b = np.ones(a.shape[0])

    iters = {}
    for smoother in ("jacobi", "gauss_seidel"):
        for gamma, cycle_name in ((1, "V"), (2, "W")):
            _, stats = amg_solve(h, b, smoother=smoother, gamma=gamma)
            assert stats.converged
            iters[(smoother, cycle_name)] = stats.iterations

    # Gauss–Seidel smooths better than Jacobi; W-cycles never worse than V.
    assert iters[("gauss_seidel", "V")] <= iters[("jacobi", "V")]
    assert iters[("jacobi", "W")] <= iters[("jacobi", "V")]

    artifact("ablation_amg", "\n".join(
        [f"{sm:<13} {cy}-cycle: {n:3d} iterations"
         for (sm, cy), n in sorted(iters.items())]
    ))


def test_ablation_binary_cache(benchmark, artifact, tmp_path_factory):
    spec = Concretizer().concretize("amg2023+caliper")
    cache = BinaryCache()

    def install(use_cache):
        store = Store(tmp_path_factory.mktemp("store"))
        installer = Installer(store, binary_cache=cache, use_cache=use_cache)
        return sum(r.seconds for r in installer.install(spec))

    cold = install(use_cache=False)   # populates the cache via pushes
    warm = benchmark.pedantic(lambda: install(use_cache=True),
                              rounds=3, iterations=1)
    assert warm < cold / 5, (cold, warm)
    artifact("ablation_binary_cache", "\n".join([
        f"source build (cache miss): {cold:9.1f} simulated s",
        f"cache install (hit):       {warm:9.1f} simulated s",
        f"speedup: {cold / warm:.1f}x (the §7.2 rolling-cache payoff)",
    ]))


def test_ablation_matrix_vs_zip(artifact):
    variables = {"a": ["1", "2", "3", "4"], "b": ["1", "2", "3", "4"]}
    crossed = expand_matrix(variables, [["a", "b"]])
    zipped = expand_matrix(variables, [])
    assert len(crossed) == 16
    assert len(zipped) == 4
    artifact("ablation_matrix_zip",
             f"crossed (matrices): {len(crossed)} experiments\n"
             f"zipped  (default) : {len(zipped)} experiments\n"
             f"growth: O(prod(len)) vs O(max(len))")
