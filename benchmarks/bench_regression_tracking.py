"""X3 — §1's motivation: "tracking system performance over time and
diagnosing hardware failures".

Runs a 10-epoch continuous-benchmarking history of STREAM on cts1 with a
DIMM degradation (memory bandwidth halved) injected at epoch 5 and repaired
at epoch 8, then asks the regression detector to reconstruct the incident
from the stored FOM series alone.  Benchmarks one full epoch of the loop.
"""

from repro.analysis import ascii_plot
from repro.core.continuous import ContinuousBenchmarking
from repro.systems.failures import Degradation, FailureSchedule


def test_regression_tracking(benchmark, artifact, tmp_path_factory):
    schedule = FailureSchedule([
        (5, Degradation("bad-dimm", memory_bw_factor=0.5)),
        (8, Degradation("repaired")),
    ])
    loop = ContinuousBenchmarking(
        "stream/openmp", "cts1", tmp_path_factory.mktemp("cb"),
        schedule=schedule,
    )
    loop.run(epochs=10)

    # the benchmarkable unit: one more epoch of the loop
    benchmark.pedantic(loop.run_epoch, rounds=2, iterations=1)

    events = loop.regressions()
    bw_events = [e for e in events if "triad_bw" in e.metric]
    assert bw_events, "injected DIMM failure must be detected"
    first = bw_events[0]
    # localized at the failure epoch, magnitude ~the injected 50%
    assert 5 <= first.epoch <= 6
    assert 0.4 <= first.ratio <= 0.6

    history = loop.history("triad_bw")
    xs = [e for e, _ in history]
    ys = [v for _, v in history]
    artifact("regression_tracking", "\n".join([
        loop.report(),
        "",
        "triad bandwidth history (injected failure at epoch 5, repair at 8):",
        ascii_plot(xs, ys, width=48, height=10),
    ]))


def test_clean_history_stays_clean(tmp_path_factory):
    """No false positives across a healthy 8-epoch history (noise only)."""
    loop = ContinuousBenchmarking(
        "stream/openmp", "cts1", tmp_path_factory.mktemp("cb2"))
    loop.run(epochs=8)
    assert loop.regressions() == []
