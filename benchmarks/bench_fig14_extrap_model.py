"""F14 — Figure 14: Extra-P model of MPI_Bcast on the CTS architecture.

The paper's only measured-data figure: red dots are MPI_Bcast total-time
measurements on CTS at increasing process counts (up to ~3456), the blue
line is the Extra-P model

    -0.6355857931034596 + 0.04660217702356169 * p^(1)

— i.e. **linear in p**.  We regenerate the pipeline end to end:

1. run the OSU bcast workload on the simulated cts1 interconnect at the
   same process counts (cts1 uses the 'contended' collective model —
   DESIGN.md §3 substitution);
2. profile each run with Caliper + Adiak metadata, compose with Thicket;
3. fit the PMNF model with Extra-P;
4. assert the *shape* matches the paper: a dominant p^(1) term, near-zero
   constant relative to the largest measurement, R² ≈ 1.

Absolute coefficients differ (our α/β are not CTS's real NIC parameters);
the paper-vs-measured comparison lives in EXPERIMENTS.md.
"""

import pytest

from repro.analysis import Ensemble, ascii_plot, fit_model, render_series
from repro.analysis.caliper import CaliperSession
from repro.benchmarks.osu import run_collective
from repro.systems import get_system

#: process counts matching Figure 14's x-axis (0..3456)
NPROCS = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3456)
MESSAGE_BYTES = 1 << 20
PAPER_MODEL = "-0.6355857931034596 + 0.04660217702356169 * p^(1)"


def _measure(p: int) -> float:
    cts1 = get_system("cts1")
    result = run_collective(
        "bcast", n_ranks=p, max_size=MESSAGE_BYTES, iterations=10,
        interconnect=cts1.interconnect, verify=False,
    )
    return result.total_seconds


def _profiles():
    profiles = []
    for p in NPROCS:
        seconds = _measure(p)
        clock = iter((0.0, seconds))
        session = CaliperSession(clock=lambda it=clock: next(it))
        session.begin("MPI_Bcast")
        session.end("MPI_Bcast")
        profiles.append(session.flush(metadata={"nprocs": p, "system": "cts1"}))
    return profiles


def test_figure14_extrap_model(benchmark, artifact):
    profiles = _profiles()
    ensemble = Ensemble(profiles)

    model = benchmark(ensemble.model_scaling, "MPI_Bcast", "nprocs")

    # --- shape assertions against the paper ---------------------------------
    # Figure 14's model is c0 + c1 * p^(1): linear, no log factor.
    assert model.i == 1.0, f"expected p^(1), fitted {model.term_str()}"
    assert model.j == 0, f"expected no log term, fitted {model.term_str()}"
    assert model.c1 > 0
    # constant term negligible vs the largest measurement (paper: -0.64 vs ~160)
    largest = max(m.value for m in model.measurements)
    assert abs(model.c0) < 0.05 * largest
    assert model.r_squared > 0.999

    xs = [m.p for m in model.measurements]
    ys = [m.value for m in model.measurements]
    artifact("fig14_extrap_model", "\n".join([
        "Figure 14: Extra-P model for MPI_Bcast on CTS (reproduced)",
        "",
        f"paper model:    {PAPER_MODEL}",
        f"measured model: {model}",
        f"SMAPE: {model.smape:.4f}%   R^2: {model.r_squared:.6f}",
        "",
        render_series(xs, ys, x_label="nprocs", y_label="total_time_mean",
                      model=list(model.predict(xs))),
        "",
        ascii_plot(xs, ys, model_ys=list(model.predict(xs))),
    ]))


def test_figure14_contrast_binomial_fabric():
    """Control experiment: the same workload on ats4's binomial-tree fabric
    must NOT fit a linear model — the linearity is a property of CTS's
    contended network, not of the benchmark."""
    ats4 = get_system("ats4")
    measurements = []
    for p in NPROCS:
        result = run_collective("bcast", n_ranks=p, max_size=MESSAGE_BYTES,
                                iterations=10, interconnect=ats4.interconnect,
                                verify=False)
        measurements.append((p, result.total_seconds))
    model = fit_model(measurements)
    assert not (model.i == 1.0 and model.j == 0), (
        f"ats4 unexpectedly fitted a linear model: {model}"
    )
    assert model.j >= 1 or model.i < 1.0  # logarithmic-ish


@pytest.mark.parametrize("subset", [NPROCS[:6], NPROCS[3:9], NPROCS[-6:]])
def test_figure14_model_stable_across_measurement_windows(subset):
    """Extra-P models should not depend on which window of scales was
    measured (a robustness property the paper's methodology relies on)."""
    measurements = [(p, _measure(p)) for p in subset]
    model = fit_model(measurements)
    assert model.i == 1.0 and model.j == 0
