"""F4 — Figure 4: system packages.yaml with externals.

    packages:
      blas:
        externals:
        - spec: intel-oneapi-mkl@2022.1.0
          prefix: /path/to/intel-oneapi-mkl
        buildable: false
      mpi:
        externals:
        - spec: mvapich2@2.3.7-gcc12.1.1-magic
          prefix: /path/to/mvapich2
        buildable: false

Loads the paper's exact configuration and verifies the concretizer honours
it: the externals are used as leaves at their pinned versions/prefixes, and
``buildable: false`` forbids source builds.  Benchmarks concretization of
hypre (which needs both blas and mpi) against this config.
"""

import pytest
import yaml

from repro.spack import (
    Compiler,
    CompilerRegistry,
    CompilerSpec,
    ConcretizationError,
    Concretizer,
    ConfigScope,
    Configuration,
    Version,
)

FIGURE4_YAML = """\
packages:
  blas:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  lapack:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  intel-oneapi-mkl:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  mpi:
    providers:
      mpi: [mvapich2]
  mvapich2:
    externals:
    - spec: mvapich2@2.3.7-gcc12.1.1-magic
      prefix: /path/to/mvapich2
    buildable: false
"""


def _concretizer():
    config = Configuration(
        ConfigScope("fig4", yaml.safe_load(FIGURE4_YAML) and
                    {"packages": yaml.safe_load(FIGURE4_YAML)["packages"]})
    )
    compilers = CompilerRegistry(
        [Compiler(CompilerSpec("gcc", Version("12.1.1")))]
    )
    return Concretizer(config=config, compilers=compilers)


def test_figure4_externals_honoured(benchmark, artifact):
    concretizer = _concretizer()
    spec = benchmark(concretizer.concretize, "hypre")

    mkl = spec["intel-oneapi-mkl"]
    assert mkl.external
    assert mkl.external_path == "/path/to/intel-oneapi-mkl"
    assert mkl.version == Version("2022.1.0")

    mpi = spec["mvapich2"]
    assert mpi.external
    assert mpi.external_path == "/path/to/mvapich2"
    assert str(mpi.versions) == "2.3.7-gcc12.1.1-magic"
    assert not mpi.dependencies  # externals are leaves

    artifact("fig4_externals", FIGURE4_YAML + "\nconcretized hypre DAG:\n"
             + "\n".join(f"  {n.format()}"
                         + (f"  [external: {n.external_path}]" if n.external else "")
                         for n in spec.traverse()))


def test_buildable_false_blocks_source_build():
    """An unsatisfiable request against a buildable:false package must fail
    loudly instead of silently building from source."""
    concretizer = _concretizer()
    with pytest.raises(ConcretizationError, match="buildable"):
        concretizer.concretize("hypre ^mvapich2@2.3.6")  # external is 2.3.7
