"""F1a — regenerate Figure 1a: the Benchpark directory structure.

Generates the four-subdirectory repository tree (benchpark/, configs/,
experiments/, repo/) for the paper's three systems and two benchmarks,
validates it against the Figure 1a layout, and renders the ASCII listing.
Benchmarks full tree generation.
"""

from repro.core import generate_benchpark_tree, render_tree, validate_tree


def test_figure1a_tree(benchmark, artifact, tmp_path_factory):
    def generate():
        root = tmp_path_factory.mktemp("bp")
        return generate_benchpark_tree(
            root,
            systems=["cts1", "ats2", "ats4"],
            benchmarks=["saxpy", "amg2023"],
        )

    root = benchmark(generate)
    problems = validate_tree(root, systems=["cts1", "ats2", "ats4"],
                             benchmarks=["saxpy", "amg2023"])
    assert problems == []

    listing = render_tree(root)
    artifact("fig1a_directory_tree", listing)

    # Figure 1a's named entries.
    for line in ("benchpark", "configs", "experiments", "repo",
                 "compilers.yaml", "packages.yaml", "spack.yaml",
                 "variables.yaml", "ramble.yaml", "execute_experiment.tpl",
                 "application.py", "package.py", "repo.yaml"):
        assert line in listing, f"Figure 1a entry {line!r} missing"

    # Figure 1a shows amg2023 with cuda/openmp/rocm variants (lines 21-30).
    for variant in ("cuda", "openmp", "rocm"):
        assert (root / "experiments" / "amg2023" / variant).is_dir()
