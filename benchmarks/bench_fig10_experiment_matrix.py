"""F10 — Figure 10: the ramble.yaml experiment matrix.

The paper's example defines list variables processes_per_node=[8,4],
n_nodes=[1,2], n_threads=[2,4], n=[512,1024] with a ``size_threads`` matrix
crossing (n × n_threads).  Matrix variables cross (4 combos), the remaining
list variables zip (2 combos) → exactly 8 experiments, with n_ranks derived
as processes_per_node · n_nodes.  Benchmarks matrix expansion at Figure 10
scale and at campaign scale (hundreds of experiments).
"""

from repro.ramble import Workspace
from repro.ramble.matrices import expand_matrix

FIGURE10_VARIABLES = {
    "processes_per_node": ["8", "4"],
    "n_nodes": ["1", "2"],
    "n_threads": ["2", "4"],
    "n": ["512", "1024"],
    "n_ranks": "{processes_per_node}*{n_nodes}",
    "batch_time": "120",
}
FIGURE10_MATRICES = [{"size_threads": ["n", "n_threads"]}]


def test_figure10_expansion(benchmark, artifact):
    vectors = benchmark(expand_matrix, FIGURE10_VARIABLES, FIGURE10_MATRICES)
    assert len(vectors) == 8

    crossed = {(v["n"], v["n_threads"]) for v in vectors}
    assert crossed == {("512", "2"), ("512", "4"),
                       ("1024", "2"), ("1024", "4")}
    zipped = {(v["processes_per_node"], v["n_nodes"]) for v in vectors}
    assert zipped == {("8", "1"), ("4", "2")}

    lines = ["Figure 10 experiment matrix "
             "(saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}):", ""]
    for v in vectors:
        ranks = int(v["processes_per_node"]) * int(v["n_nodes"])
        lines.append(f"  saxpy_{v['n']}_{v['n_nodes']}_{ranks}_{v['n_threads']}")
    artifact("fig10_experiment_matrix", "\n".join(lines))


def test_figure10_through_workspace(tmp_path):
    """The same matrix through the full workspace: 8 rendered scripts with
    derived rank counts."""
    config = {
        "ramble": {
            "variables": {"mpi_command": "srun -N {n_nodes} -n {n_ranks}",
                          "n_ranks": "{processes_per_node}*{n_nodes}"},
            "applications": {"saxpy": {"workloads": {"problem": {
                "experiments": {
                    "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}": {
                        "variables": {k: v for k, v in FIGURE10_VARIABLES.items()
                                      if k not in ("n_ranks", "batch_time")},
                        "matrices": FIGURE10_MATRICES,
                    }
                }}}}},
        }
    }
    ws = Workspace.create(tmp_path / "ws", config=config)
    experiments = ws.setup()
    assert len(experiments) == 8
    names = {e.name for e in experiments}
    # paper's naming scheme with the derived n_ranks values
    assert "saxpy_512_1_8_2" in names
    assert "saxpy_1024_2_8_4" in names
    for e in experiments:
        assert f"-n {e.variables['n_ranks']} " in e.script_path.read_text()


def test_campaign_scale_expansion(benchmark):
    """Matrix expansion must stay fast at continuous-benchmarking scale."""
    variables = {
        "n": [str(2 ** k) for k in range(9, 17)],       # 8 sizes
        "n_threads": ["1", "2", "4", "8"],              # 4 thread counts
        "n_nodes": [str(2 ** k) for k in range(6)],     # 6 node counts
        "trial": ["1", "2", "3"],                       # 3 repeats
    }
    matrices = [["n", "n_threads", "n_nodes", "trial"]]
    vectors = benchmark(expand_matrix, variables, matrices)
    assert len(vectors) == 8 * 4 * 6 * 3
