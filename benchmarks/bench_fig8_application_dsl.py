"""F8 — Figure 8: the Ramble application.py for saxpy.

Checks the transcription of the paper's application definition field by
field, then benchmarks the analysis path it feeds: figure-of-merit regex
extraction and success-criteria evaluation over a real experiment log.
"""

from repro.benchmarks.saxpy import run_saxpy
from repro.ramble.analysis import extract_foms
from repro.ramble.apps import Saxpy


def test_figure8_definition_matches_paper(artifact):
    # executable('p', 'saxpy -n {n}', use_mpi=True)
    exe = Saxpy.executables["p"]
    assert (exe.name, exe.command, exe.use_mpi) == ("p", "saxpy -n {n}", True)
    # workload('problem', executables=['p'])
    assert Saxpy.workloads["problem"].executables == ["p"]
    # workload_variable('n', default='1', description='problem size', ...)
    var = Saxpy.workloads["problem"].variables["n"]
    assert (var.default, var.description) == ("1", "problem size")
    # figure_of_merit("success", fom_regex=r'(?P<done>Kernel done)', ...)
    fom = Saxpy.figures_of_merit["success"]
    assert fom.fom_regex == r"(?P<done>Kernel done)"
    assert fom.group_name == "done"
    # success_criteria('pass', mode='string', match=r'Kernel done', ...)
    crit = Saxpy.success_criteria["pass"]
    assert crit.mode == "string" and crit.match == r"Kernel done"
    assert crit.file == "{experiment_run_dir}/{experiment_name}.out"

    artifact("fig8_application_dsl", "\n".join([
        "Figure 8 application.py (transcribed):",
        f"  executable('p', {exe.command!r}, use_mpi={exe.use_mpi})",
        f"  workload('problem', executables={Saxpy.workloads['problem'].executables})",
        f"  workload_variable('n', default={var.default!r}, "
        f"description={var.description!r})",
        f"  figure_of_merit('success', fom_regex={fom.fom_regex!r})",
        f"  success_criteria('pass', mode='string', match={crit.match!r})",
    ]))


def test_fom_extraction_throughput(benchmark):
    """Analysis cost matters at continuous-benchmarking scale: thousands of
    logs per day.  Benchmark extraction over a realistic log."""
    log = "\n".join(run_saxpy(4096).report() for _ in range(50))

    foms = benchmark(extract_foms, Saxpy, log)
    assert sum(1 for f in foms if f["name"] == "success") == 50
    assert sum(1 for f in foms if f["name"] == "bandwidth") == 50


def test_success_criteria_on_real_output(benchmark):
    text = run_saxpy(1024).report()
    crit = Saxpy.success_criteria["pass"]
    assert benchmark(crit.check_text, text)
    assert not crit.check_text("Segmentation fault")
