"""Shared fixtures for the reproduction bench harness.

Every bench regenerates one of the paper's tables/figures (DESIGN.md §4)
and times a representative operation with pytest-benchmark.  Regenerated
artifacts are written to ``benchmarks/artifacts/<name>.txt`` so
EXPERIMENTS.md can point at concrete outputs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"


@pytest.fixture
def artifact():
    """artifact(name, text) — persist a regenerated table/figure."""
    ARTIFACTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = ARTIFACTS_DIR / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return write
