"""F2 — Figure 2: the Spack environment workflow.

    spack env create --dir .
    spack env activate --dir .
    spack add amg2023+caliper
    spack --config-scope /path/to/configs concretize
    spack install

Reproduces the exact command sequence programmatically (with cts1's config
scope standing in for /path/to/configs), benchmarks the concretize+install
phase, and checks the manifest-and-lock model behaves as §3.1.1 describes.
"""

import json

from repro.core.layout import system_compilers_yaml, system_packages_yaml
from repro.spack import (
    CompilerRegistry,
    Concretizer,
    ConfigScope,
    Environment,
    Installer,
    Store,
    Configuration,
)
from repro.systems import get_system


def _cts1_concretizer():
    system = get_system("cts1")
    scope = ConfigScope("cts1", {
        "packages": system_packages_yaml(system)["packages"],
        "compilers": system_compilers_yaml(system)["compilers"],
    })
    config = Configuration(scope)
    return Concretizer(config=config,
                       compilers=CompilerRegistry.from_config(config),
                       default_target=system.cpu_target)


def test_figure2_environment_workflow(benchmark, artifact, tmp_path_factory):
    concretizer = _cts1_concretizer()

    def workflow():
        env_dir = tmp_path_factory.mktemp("env")
        env = Environment.create(env_dir)          # spack env create --dir .
        env.add("amg2023+caliper")                  # spack add amg2023+caliper
        roots = env.concretize(concretizer)         # spack concretize
        store = Store(env_dir / "store")
        results = env.install(Installer(store))     # spack install
        return env, roots, results

    env, roots, results = benchmark.pedantic(workflow, rounds=3, iterations=1)

    # manifest (user input) and lockfile (concretizer output) both exist
    assert env.manifest_path.exists()
    lock = json.loads(env.lock_path.read_text())
    assert lock["roots"][0]["name"] == "amg2023"

    root = roots[0]
    assert root.concrete
    assert root.variants["caliper"] is True
    assert "caliper" in root and "adiak" in root  # conditional deps active
    assert "hypre" in root

    # install covered the whole DAG
    installed = {r.spec.name for r in results}
    assert {"amg2023", "hypre", "caliper", "adiak"} <= installed

    lines = [
        "Figure 2 workflow (on cts1 configuration):",
        "  $ spack env create --dir .",
        "  $ spack env activate --dir .",
        "  $ spack add amg2023+caliper",
        "  $ spack --config-scope configs/cts1 concretize",
        "  $ spack install",
        "",
        f"concretized root: {root.format()}",
        "DAG nodes:",
    ]
    lines += [f"  {n.format()}" for n in root.traverse()]
    artifact("fig2_spack_env_workflow", "\n".join(lines))
