"""X7 — §2's canonical experiment example: "a strong-scaling study of a
benchmark (a set of experiments with the same problem size, scaled on a
different number of resources) on a CPU+GPU heterogeneous system using the
GPU for the main computation."

We build exactly that: one ramble.yaml defining a fixed-size saxpy problem
swept over rank counts on ats2 (Power9 + V100), run it through the full
pipeline, feed the extracted kernel-time FOMs to the scaling analyzer, and
check the strong-scaling shape (speedup grows, efficiency decays, a scaling
limit exists on the contended comparison system).
"""

from repro.analysis import classify_scaling, strong_scaling
from repro.ci import MetricsDatabase
from repro.ramble import Workspace
from repro.systems import SystemExecutor, get_system

RANKS = ["1", "2", "4", "8", "16", "32", "64"]
PROBLEM_SIZE = str(1 << 22)  # fixed total size: strong scaling


def scaling_config():
    return {
        "ramble": {
            "variables": {
                "mpi_command": "jsrun -n {n_ranks} -a 1 -g 1",
                "batch_time": "30",
            },
            "applications": {"saxpy": {"workloads": {"problem": {
                "experiments": {
                    "saxpy_strong_{n}_{n_ranks}": {
                        "variables": {"n": PROBLEM_SIZE, "n_ranks": RANKS},
                        "matrices": [["n_ranks"]],
                    }
                }
            }}}},
        }
    }


def _run_study(system_name, tmp):
    ws = Workspace.create(tmp / f"ws-{system_name}",
                          config=scaling_config())
    ws.setup()
    ws.run(SystemExecutor(get_system(system_name)))
    results = ws.analyze()
    db = MetricsDatabase()
    db.ingest_analysis(system_name, results)
    series = db.series("saxpy", system_name, "kernel_time", "n_ranks")
    assert len(series) == len(RANKS)
    return series


def test_section2_strong_scaling_study(benchmark, artifact, tmp_path_factory):
    series = benchmark.pedantic(
        lambda: _run_study("ats2", tmp_path_factory.mktemp("study")),
        rounds=2, iterations=1,
    )
    table = strong_scaling(series)

    # Strong-scaling shape: monotone speedup at small p, eventual comm tax.
    assert table[1].speedup > 1.2  # 2 ranks beat 1
    assert max(pt.speedup for pt in table) > 3.0
    result = classify_scaling(series, efficiency_floor=0.5)

    lines = [
        "§2 strong-scaling study: saxpy, fixed n = " + PROBLEM_SIZE +
        ", ats2 (Power9+V100), jsrun",
        "",
        f"{'ranks':>6} {'time(s)':>12} {'speedup':>9} {'efficiency':>11}",
    ]
    for pt in table:
        lines.append(f"{pt.p:>6g} {pt.time:>12.6f} {pt.speedup:>9.2f} "
                     f"{pt.efficiency:>11.2f}")
    lines.append("")
    lines.append(f"classification: {result['label']} "
                 f"(useful up to p = {result['scaling_limit_p']:g})")
    artifact("strong_scaling_study", "\n".join(lines))


def test_scaling_limit_lower_on_contended_fabric(tmp_path_factory):
    """The same study on cts1 (contended Omni-Path) hits its scaling limit
    no later than on ats2's binomial InfiniBand."""
    tmp = tmp_path_factory.mktemp("pair")
    ats2 = classify_scaling(_run_study("ats2", tmp), efficiency_floor=0.5)
    cts1 = classify_scaling(_run_study("cts1", tmp), efficiency_floor=0.5)
    assert cts1["scaling_limit_p"] <= ats2["scaling_limit_p"]
