"""F5 — Figure 5: the five-command Ramble workflow.

    ramble workspace create
    ramble workspace edit
    ramble workspace setup
    ramble on
    ramble workspace analyze

Drives each command's programmatic equivalent for the saxpy workload on the
local executor (real kernel execution) and benchmarks the full lifecycle.
"""

from repro.ramble import Workspace
from repro.systems import LocalExecutor


CONFIG = {
    "ramble": {
        "variables": {"mpi_command": "", "n_ranks": "1"},
        "applications": {
            "saxpy": {
                "workloads": {
                    "problem": {
                        "experiments": {
                            "saxpy_{n}": {
                                "variables": {"n": ["1024", "4096"]},
                                "matrices": [["n"]],
                            }
                        }
                    }
                }
            }
        },
    }
}


def test_figure5_lifecycle(benchmark, artifact, tmp_path_factory):
    def lifecycle():
        ws_dir = tmp_path_factory.mktemp("ws")
        ws = Workspace.create(ws_dir)            # ramble workspace create
        ws.write_config(CONFIG)                  # ramble workspace edit
        experiments = ws.setup()                 # ramble workspace setup
        outcomes = ws.run(LocalExecutor())       # ramble on
        results = ws.analyze()                   # ramble workspace analyze
        return experiments, outcomes, results

    experiments, outcomes, results = benchmark.pedantic(
        lifecycle, rounds=3, iterations=1
    )

    assert len(experiments) == 2
    assert all(o["returncode"] == 0 for o in outcomes)
    assert all(e["status"] == "SUCCESS" for e in results["experiments"])
    foms = {f["name"] for e in results["experiments"]
            for f in e["figures_of_merit"]}
    assert {"success", "kernel_time", "bandwidth"} <= foms

    lines = [
        "Figure 5 workflow:",
        "  $ ramble workspace create",
        "  $ ramble workspace edit",
        "  $ ramble workspace setup",
        "  $ ramble on",
        "  $ ramble workspace analyze",
        "",
    ]
    for e in results["experiments"]:
        fom_text = ", ".join(f"{f['name']}={f['value']}"
                             for f in e["figures_of_merit"])
        lines.append(f"{e['name']}: {e['status']}  [{fom_text}]")
    artifact("fig5_ramble_workflow", "\n".join(lines))
