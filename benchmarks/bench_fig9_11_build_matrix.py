"""F9/F11 — Figures 9 & 11: spack.yaml package definitions + package.py.

Figure 11's Saxpy package declares CMake/Cuda/ROCm build logic keyed on
variants; Figure 9's system spack.yaml names the default compiler and MPI.
This bench builds saxpy on all three paper systems in each programming
model the system supports (the §4 claim: "These Benchpark benchmarks
currently build & run on 3 systems") and checks the recipe emits exactly
the cmake flags Figure 11 shows.  Benchmarks the concretize+install matrix.
"""

from pathlib import Path

from repro.core.runtime import SpackRuntime
from repro.spack.repository import builtin_repo
from repro.systems import get_system

#: (system, variant-spec, expected cmake flag) triples for the build matrix
MATRIX = [
    ("cts1", "saxpy@1.0.0 +openmp", "-DUSE_OPENMP=ON"),
    ("ats2", "saxpy@1.0.0 +openmp", "-DUSE_OPENMP=ON"),
    ("ats2", "saxpy@1.0.0 ~openmp +cuda cuda_arch=70", "-DUSE_CUDA=ON"),
    ("ats4", "saxpy@1.0.0 +openmp", "-DUSE_OPENMP=ON"),
    ("ats4", "saxpy@1.0.0 ~openmp +rocm amdgpu_target=gfx90a", "-DUSE_HIP=ON"),
]


def test_figure9_11_build_matrix(benchmark, artifact, tmp_path_factory):
    def build_all():
        rows = []
        for system_name, spec_text, expected_flag in MATRIX:
            rt = SpackRuntime(get_system(system_name),
                              tmp_path_factory.mktemp("store"))
            concrete = rt.concretize_together([spec_text])[0]
            results = rt.install(concrete)
            saxpy_cls = builtin_repo().get_class("saxpy")
            args = saxpy_cls(concrete).cmake_args()
            rows.append((system_name, spec_text, concrete, results, args,
                         expected_flag))
        return rows

    rows = benchmark.pedantic(build_all, rounds=2, iterations=1)

    lines = ["Figure 9+11 build matrix (saxpy on the paper's 3 systems):", ""]
    for system_name, spec_text, concrete, results, args, expected_flag in rows:
        # Figure 11 logic: the right -DUSE_* flag per variant.
        assert expected_flag in args, (system_name, spec_text, args)
        # every node of the DAG installed
        assert all(r.action in ("source", "cache", "external", "already")
                   for r in results)
        # the system's compiler (Figure 9's default-compiler) was applied
        assert concrete.compiler is not None
        lines.append(f"{system_name:<6} {spec_text:<45} -> "
                     f"target={concrete.target} %{concrete.compiler} "
                     f"cmake_args={args}")
    artifact("fig9_11_build_matrix", "\n".join(lines))


def test_mpi_provider_differs_per_system(tmp_path_factory):
    """System-specific MPI (Figure 9's default-mpi) with zero changes to
    the benchmark-side recipe — the Table 1 orthogonality."""
    providers = {}
    for system_name in ("cts1", "ats2", "ats4"):
        rt = SpackRuntime(get_system(system_name),
                          tmp_path_factory.mktemp("store"))
        concrete = rt.concretize_together(["saxpy"])[0]
        mpi = [n.name for n in concrete.traverse()
               if n.name in ("mvapich2", "spectrum-mpi", "cray-mpich", "openmpi")]
        providers[system_name] = mpi[0]
    assert providers == {
        "cts1": "mvapich2",
        "ats2": "spectrum-mpi",
        "ats4": "cray-mpich",
    }
