"""Parallel DAG installation: level scheduling, critical-path accounting,
and determinism."""

import pytest

from repro.spack import Concretizer, Installer, Store
from repro.spack.installer import topological_levels


@pytest.fixture()
def amg_root():
    return Concretizer(memoize=False).concretize("amg2023+caliper")


class TestTopologicalLevels:
    def test_levels_respect_dependencies(self, amg_root):
        levels = topological_levels(amg_root)
        level_of = {
            node.name: i for i, level in enumerate(levels) for node in level
        }
        for node in amg_root.traverse():
            for dep in node.dependencies.values():
                assert level_of[dep.name] < level_of[node.name]

    def test_levels_cover_all_nodes_once(self, amg_root):
        levels = topological_levels(amg_root)
        names = [n.name for level in levels for n in level]
        assert sorted(names) == sorted(n.name for n in amg_root.traverse())
        assert len(names) == len(set(names))


class TestParallelInstall:
    def test_critical_path_not_serial_sum(self, amg_root, tmp_path):
        installer = Installer(Store(tmp_path / "store"))
        installer.install(amg_root)
        stats = installer.last_install_stats
        assert stats["nodes"] > 1
        assert stats["critical_path_seconds"] < stats["serial_seconds"]
        assert stats["parallel_speedup"] > 1.0

    def test_sim_clock_charges_from_slowest_dependency(self, amg_root, tmp_path):
        installer = Installer(Store(tmp_path / "store"))
        results = installer.install(amg_root)
        by_name = {r.spec.name: r for r in results}
        for r in results:
            assert r.sim_end == pytest.approx(r.sim_start + r.seconds)
            for dep in r.spec.dependencies.values():
                assert by_name[dep.name].sim_end <= r.sim_start + 1e-9
        makespan = max(r.sim_end for r in results)
        assert makespan == pytest.approx(
            installer.last_install_stats["critical_path_seconds"]
        )

    def test_parallel_matches_serial_results(self, amg_root, tmp_path):
        par = Installer(Store(tmp_path / "par"), parallel=True)
        ser = Installer(Store(tmp_path / "ser"), parallel=False)
        par_results = par.install(amg_root)
        ser_results = ser.install(amg_root)
        view = lambda rs: [(r.spec.name, r.action, r.seconds, r.phases)
                           for r in rs]
        # deterministic post-order, identical actions and simulated costs
        assert view(par_results) == view(ser_results)

    def test_store_complete_after_parallel_install(self, amg_root, tmp_path):
        store = Store(tmp_path / "store")
        Installer(store).install(amg_root)
        for node in amg_root.traverse():
            assert store.is_installed(node)

    def test_reinstall_is_noop(self, amg_root, tmp_path):
        installer = Installer(Store(tmp_path / "store"))
        installer.install(amg_root)
        again = installer.install(amg_root)
        assert all(r.action == "already" for r in again)
        assert installer.last_install_stats["critical_path_seconds"] == 0.0
