"""Epoch-level result reuse in the continuous-benchmarking loop.

The acceptance bar: caching must be invisible in the data.  A warm campaign
(same inputs, shared result cache) replays every epoch and produces FOM
series and regression events identical to the cold campaign — and flaky
epochs are never served from cache.
"""

import pytest

from repro.core.continuous import ContinuousBenchmarking
from repro.perf import ContentStore
from repro.resilience import FaultKind, RetryPolicy, TransientFaultInjector
from repro.systems.failures import Degradation, FailureSchedule

EXPERIMENT = "stream/openmp"
SYSTEM = "cts1"


def _series(loop):
    """Comparable FOM view: everything meaningful, provenance tags excluded."""
    return [
        (r.benchmark, r.system, r.experiment, r.fom_name, r.value, r.units,
         r.manifest.get("epoch"))
        for r in loop.db.query()
    ]


class TestWarmCampaign:
    def test_warm_campaign_replays_every_epoch(self, tmp_path):
        shared = ContentStore("epoch-results")
        cold = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "cold", result_cache=shared,
        ).run(4)
        before = shared.stats()
        assert before["hits"] == 0 and before["entries"] == 4

        warm = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "warm", result_cache=shared,
        ).run(4)
        after = shared.stats()
        assert after["hits"] - before["hits"] == 4  # 100% warm hit rate
        assert warm.profiler.count("epoch:replay") == 4
        assert warm.profiler.count("epoch:run") == 0

        # correctness: caching is invisible in the data
        assert _series(cold) == _series(warm)
        assert ([str(e) for e in cold.regressions()]
                == [str(e) for e in warm.regressions()])

    def test_cached_records_carry_provenance(self, tmp_path):
        shared = ContentStore("epoch-results")
        ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "cold", result_cache=shared,
        ).run(1)
        warm = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "warm", result_cache=shared,
        ).run(1)
        recs = warm.db.query()
        assert recs
        for rec in recs:
            assert rec.manifest["cached"] == "true"
            assert "replayed clean epoch" in rec.manifest["cache_provenance"]

    def test_warm_campaign_reproduces_detected_regression(self, tmp_path):
        """A degradation found cold is found identically warm — the replay
        keys include the effective (degraded) system state per epoch."""
        schedule = FailureSchedule(
            [(3, Degradation("bad-dimm", memory_bw_factor=0.5))]
        )
        shared = ContentStore("epoch-results")
        cold = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "cold",
            schedule=schedule, result_cache=shared,
        ).run(6)
        warm = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "warm",
            schedule=schedule, result_cache=shared,
        ).run(6)
        assert cold.regressions()  # the injected failure is detected
        assert ([str(e) for e in cold.regressions()]
                == [str(e) for e in warm.regressions()])
        assert shared.stats()["hits"] == 6

    def test_epochs_never_alias(self, tmp_path):
        """Executor noise is epoch-salted, so epoch keys must differ per
        epoch — epoch 1 must not replay epoch 0's results."""
        loop = ContinuousBenchmarking(EXPERIMENT, SYSTEM, tmp_path)
        system = loop.schedule.system_at(loop.base_system, 0)
        keys = {loop._epoch_key(system, e) for e in range(5)}
        assert len(keys) == 5

    def test_non_incremental_never_touches_cache(self, tmp_path):
        loop = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path, incremental=False,
        ).run(2)
        assert loop.result_cache.stats()["lookups"] == 0
        assert len(loop.result_cache) == 0

    def test_incremental_off_matches_incremental_on_structure(self, tmp_path):
        """The cache layer must not perturb a cold campaign: same records,
        same experiments, same epochs.  (Values are measured from real
        kernel timings and carry real noise, so only replayed epochs are
        bit-identical — that property is asserted in the warm tests.)"""
        inc = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "inc",
        ).run(3)
        plain = ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "plain", incremental=False,
        ).run(3)
        structure = lambda loop: [
            (r.benchmark, r.system, r.experiment, r.fom_name, r.units,
             r.manifest.get("epoch"))
            for r in loop.db.query()
        ]
        assert structure(inc) == structure(plain)


class TestFlakyEpochs:
    def _flaky_loop(self, workdir, result_cache):
        return ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, workdir,
            injector=TransientFaultInjector(
                {FaultKind.NODE_FAILURE: 0.6}, salt="flaky-test",
            ),
            retry_policy=RetryPolicy(max_attempts=5, base_delay_s=0.0,
                                     jitter=0.0),
            result_cache=result_cache,
        )

    def test_flaky_epochs_never_cached(self, tmp_path):
        shared = ContentStore("epoch-results")
        loop = self._flaky_loop(tmp_path / "a", shared).run(6)
        flaky_epochs = set(loop.attempt_history)
        assert flaky_epochs, "fault rate 0.6 must produce retried epochs"
        # only the clean epochs may be cached
        assert len(shared) == 6 - len(flaky_epochs)

    def test_flaky_epochs_reexecute_on_rerun(self, tmp_path):
        shared = ContentStore("epoch-results")
        first = self._flaky_loop(tmp_path / "a", shared).run(6)
        flaky = len(first.attempt_history)
        before = shared.stats()
        self._flaky_loop(tmp_path / "b", shared).run(6)
        after = shared.stats()
        # clean epochs replay; flaky ones miss and re-execute
        assert after["hits"] - before["hits"] == 6 - flaky
        assert after["misses"] - before["misses"] == flaky


class TestCheckpointCumulativeStats:
    def test_resume_reports_cumulative_hit_rate(self, tmp_path):
        shared = ContentStore("epoch-results")
        ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "cold", result_cache=shared,
        ).run(3)
        ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "warm", result_cache=shared,
        ).run(3)

        # a resumed campaign gets the entries AND the lifetime counters
        resumed = ContinuousBenchmarking(EXPERIMENT, SYSTEM, tmp_path / "warm")
        stats = resumed.result_cache.stats()
        assert stats["hits"] == 3
        assert stats["entries"] == 3
        assert "epoch result cache: 3/" in resumed.report()

        resumed.run(2)  # epochs 3-4: never ran before → misses, then cached
        stats = resumed.result_cache.stats()
        assert stats["hits"] == 3
        assert stats["misses"] >= 5  # 3 cold + 2 new (cumulative)
        assert stats["entries"] == 5

    def test_resumed_warm_epochs_keep_hitting(self, tmp_path):
        shared = ContentStore("epoch-results")
        ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "cold", result_cache=shared,
        ).run(5)
        # warm campaign killed after 2 epochs...
        ContinuousBenchmarking(
            EXPERIMENT, SYSTEM, tmp_path / "warm", result_cache=shared,
        ).run(2)
        # ...resumes from its checkpoint with a fresh default store and
        # still replays the remaining epochs from the restored entries
        resumed = ContinuousBenchmarking(EXPERIMENT, SYSTEM, tmp_path / "warm")
        resumed.run_until(5)
        stats = resumed.result_cache.stats()
        assert stats["hits"] == 5  # 2 before the kill + 3 after
        assert resumed.profiler.count("epoch:replay") == 3
