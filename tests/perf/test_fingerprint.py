"""Tests for the content-addressing primitives: fingerprint, ContentStore,
Profiler."""

import pytest

from repro.perf import (
    ContentStore,
    Profiler,
    canonicalize,
    fingerprint,
    fingerprint_file,
    package_signature,
)
from repro.spack import Concretizer
from repro.spack.concretizer import clear_concretization_memo
from repro.spack.repository import builtin_repo


class TestFingerprint:
    def test_deterministic(self):
        for obj in (None, 42, "text", [1, 2], {"a": 1}, {1, 2, 3}):
            assert fingerprint(obj) == fingerprint(obj)

    def test_distinct_inputs_distinct_digests(self):
        digests = {fingerprint(o) for o in (1, "1", [1], {"a": 1}, {"a": 2})}
        assert len(digests) == 5

    def test_map_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_set_order_insensitive_list_order_sensitive(self):
        assert fingerprint({3, 1, 2}) == fingerprint({1, 2, 3})
        assert fingerprint([1, 2, 3]) != fingerprint([3, 2, 1])

    def test_length_parameter(self):
        assert len(fingerprint("x")) == 16
        long = fingerprint("x", length=64)
        assert len(long) == 64 and long.startswith(fingerprint("x"))

    def test_file_content_addressed(self, tmp_path):
        a = tmp_path / "a.yaml"
        b = tmp_path / "renamed.yaml"
        a.write_text("n_nodes: 4\n")
        b.write_text("n_nodes: 4\n")
        # same bytes, different name/location → same fingerprint
        assert fingerprint_file(a) == fingerprint_file(b)
        b.write_text("n_nodes: 8\n")
        assert fingerprint_file(a) != fingerprint_file(b)
        missing = tmp_path / "nope.yaml"
        assert fingerprint_file(missing) == {"__path__": str(missing)}

    def test_concrete_spec_fingerprints(self):
        clear_concretization_memo()
        c = Concretizer(memoize=False)
        s1 = c.concretize("saxpy+openmp")
        s2 = c.concretize("saxpy+openmp")
        s3 = c.concretize("saxpy~openmp")
        assert fingerprint(s1) == fingerprint(s2)
        assert fingerprint(s1) != fingerprint(s3)

    def test_package_signature_covers_recipe(self):
        cls = builtin_repo().get_class("saxpy")
        sig = package_signature(cls)
        assert sig["name"] == "saxpy"
        assert "openmp" in sig["variants"]
        assert sig["versions"]
        assert sig["source"] is not None
        assert canonicalize(cls) == {"__package__": sig}


class TestContentStore:
    def test_hit_miss_accounting(self):
        store = ContentStore("t")
        assert store.get("k") is None
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}
        s = store.stats()
        assert (s["hits"], s["misses"], s["puts"]) == (1, 1, 1)
        assert s["lookups"] == 2 and s["hit_rate"] == 0.5

    def test_peek_does_not_count(self):
        store = ContentStore("t")
        store.put("k", 1)
        assert store.peek("k") == 1
        assert store.peek("absent") is None
        s = store.stats()
        assert s["hits"] == 0 and s["misses"] == 0

    def test_contains_len_clear(self):
        store = ContentStore("t")
        store.put("k", 1)
        assert "k" in store and len(store) == 1
        store.clear()
        assert "k" not in store and len(store) == 0
        assert store.stats()["lookups"] == 0

    def test_snapshot_restore_cumulative_stats(self):
        first = ContentStore("life1")
        first.put("k", "v")
        first.get("k")
        first.get("gone")
        snap = first.snapshot()

        second = ContentStore("life2").restore(snap)
        assert second.peek("k") == "v"
        # baseline carries the prior life's counters
        s = second.stats()
        assert (s["hits"], s["misses"], s["puts"]) == (1, 1, 1)
        second.get("k")
        assert second.stats()["hits"] == 2  # cumulative across lives

    def test_disk_persistence(self, tmp_path):
        path = tmp_path / "cache.json"
        ContentStore("t", path=path).put("k", [1, 2])
        reopened = ContentStore("t", path=path)
        assert reopened.peek("k") == [1, 2]

    def test_snapshot_roundtrips_through_json(self):
        import json

        store = ContentStore("t")
        store.put("k", {"nested": [1, "two"]})
        snap = json.loads(json.dumps(store.snapshot()))
        assert ContentStore("t2").restore(snap).peek("k") == {"nested": [1, "two"]}


class TestProfiler:
    def test_record_and_query(self):
        prof = Profiler()
        prof.record("solve", 0.5)
        prof.record("solve", 1.5)
        assert prof.stages() == ["solve"]
        assert prof.total("solve") == pytest.approx(2.0)
        assert prof.count("solve") == 2
        d = prof.to_dict()["solve"]
        assert d["mean_s"] == pytest.approx(1.0)
        assert d["max_s"] == pytest.approx(1.5)

    def test_timer_context(self):
        prof = Profiler()
        with prof.timer("stage"):
            pass
        assert prof.count("stage") == 1
        assert prof.total("stage") >= 0.0

    def test_merge_and_report(self):
        a, b = Profiler(), Profiler()
        a.record("x", 1.0)
        b.record("x", 2.0)
        b.record("y", 3.0)
        a.merge(b)
        assert a.count("x") == 2 and a.count("y") == 1
        assert "x" in a.report() and "y" in a.report()
        assert Profiler().report() == "profiler: no samples"
