"""Cache-invalidation precision (the correctness half of content addressing).

Changing exactly one input — one ``variables.yaml`` value, one package
recipe, one ``ramble.yaml`` parameter — must invalidate exactly the
fingerprints derived from that input: no stale reuse (the touched input's
fingerprint changes) and no over-invalidation (everything untouched keeps
its fingerprint, and reverting the edit restores the original digest).
"""

import yaml

from repro.core.layout import generate_benchpark_tree
from repro.perf import ContentStore, fingerprint, fingerprint_file
from repro.ramble.workspace import Workspace
from repro.spack import Concretizer
from repro.spack.config import ConfigScope, Configuration
from repro.spack.package import Package
from repro.spack.repository import RepoPath, Repository, builtin_repo
from repro.spack.version import Version

CONFIG_FILES = ("compilers.yaml", "packages.yaml", "spack.yaml", "variables.yaml")


def _make_pkg(class_name: str, variant_default: bool = False):
    """A minimal dynamically-defined package (no source on disk — the
    signature still covers its declared metadata)."""
    cls = type(class_name, (Package,), {})
    cls.versions[Version("1.0")] = {
        "sha256": None, "preferred": False, "deprecated": False,
    }
    from repro.spack.variant import VariantDef

    cls.variants["shared"] = VariantDef("shared", default=variant_default)
    return cls


class TestVariablesYamlInvalidation:
    def test_one_value_invalidates_only_that_file(self, tmp_path):
        root = generate_benchpark_tree(
            tmp_path, systems=["cts1"], benchmarks=["stream"]
        )
        cfg_dir = root / "configs" / "cts1"
        before = {f: fingerprint_file(cfg_dir / f) for f in CONFIG_FILES}

        variables_path = cfg_dir / "variables.yaml"
        data = yaml.safe_load(variables_path.read_text())
        section = data.get("variables", data)
        key = sorted(section)[0]
        section[key] = f"{section[key]}-modified"
        variables_path.write_text(yaml.safe_dump(data, sort_keys=False))

        after = {f: fingerprint_file(cfg_dir / f) for f in CONFIG_FILES}
        assert after["variables.yaml"] != before["variables.yaml"]
        for f in CONFIG_FILES:
            if f != "variables.yaml":
                assert after[f] == before[f], f"{f} must not be invalidated"


class TestPackageRecipeInvalidation:
    def test_recipe_change_invalidates_only_its_repo(self):
        overlay = Repository("overlay")
        overlay.register(_make_pkg("Widget", variant_default=False))
        other = Repository("other")
        other.register(_make_pkg("Gadget"))

        overlay_before = overlay.fingerprint()
        other_before = other.fingerprint()
        builtin_before = builtin_repo().fingerprint()
        path_before = RepoPath(overlay, other).fingerprint()

        # edit one recipe: flip a variant default (re-registration models
        # the recipe file changing on disk)
        overlay.register(_make_pkg("Widget", variant_default=True))

        assert overlay.fingerprint() != overlay_before
        assert RepoPath(overlay, other).fingerprint() != path_before
        # untouched repos keep their fingerprints — no over-invalidation
        assert other.fingerprint() == other_before
        assert builtin_repo().fingerprint() == builtin_before

    def test_overlay_order_matters(self):
        a = Repository("a")
        a.register(_make_pkg("Widget"))
        b = Repository("b")
        b.register(_make_pkg("Gadget"))
        assert RepoPath(a, b).fingerprint() != RepoPath(b, a).fingerprint()

    def test_recipe_change_misses_concretization_memo(self):
        """A recipe edit must re-solve; solving again unchanged must hit."""
        repo = Repository("builtin-view")
        for name, cls in builtin_repo()._packages.items():
            repo._packages[name] = cls
        memo = ContentStore("test-memo")

        c1 = Concretizer(repo_path=RepoPath(repo), memo=memo)
        first = c1.concretize("saxpy")
        assert memo.stats()["misses"] == 1

        # identical inputs → hit, identical solution
        again = Concretizer(repo_path=RepoPath(repo), memo=memo).concretize("saxpy")
        assert memo.stats()["hits"] >= 1
        assert again.dag_hash() == first.dag_hash()

        # register one new recipe → repo fingerprint changes → miss
        misses_before = memo.stats()["misses"]
        repo.register(_make_pkg("Widget"))
        Concretizer(repo_path=RepoPath(repo), memo=memo).concretize("saxpy")
        assert memo.stats()["misses"] == misses_before + 1


class TestConfigInvalidation:
    def test_one_config_value_changes_memo_key(self):
        memo = ContentStore("cfg-memo")
        base = Configuration(ConfigScope(
            "site", {"packages": {"saxpy": {"variants": "+openmp"}}}
        ))
        solved = Concretizer(config=base, memo=memo).concretize("saxpy")
        assert solved.variants["openmp"] is True

        # identical configuration (fresh objects) → hit
        same = Configuration(ConfigScope(
            "site", {"packages": {"saxpy": {"variants": "+openmp"}}}
        ))
        Concretizer(config=same, memo=memo).concretize("saxpy")
        assert memo.stats()["hits"] == 1

        # one changed value → different fingerprint → miss (re-solve)
        changed = Configuration(ConfigScope(
            "site", {"packages": {"saxpy": {"variants": "~openmp"}}}
        ))
        assert changed.fingerprint() != base.fingerprint()
        resolved = Concretizer(config=changed, memo=memo).concretize("saxpy")
        assert resolved.variants["openmp"] is False
        assert memo.stats()["misses"] == 2


class TestRambleYamlInvalidation:
    CONFIG = {
        "ramble": {
            "variables": {"n_repeats": "1", "mpi_command": "mpirun"},
            "applications": {"saxpy": {"workloads": {}}},
        }
    }

    def test_one_parameter_invalidates_and_revert_restores(self, tmp_path):
        ws = Workspace.create(tmp_path, config=self.CONFIG)
        fp_config = fingerprint(ws.read_config())
        fp_template = fingerprint_file(ws.template_path)

        edited = ws.read_config()
        edited["ramble"]["variables"]["n_repeats"] = "5"
        ws.write_config(edited)
        assert fingerprint(ws.read_config()) != fp_config
        # the template was not touched — no over-invalidation
        assert fingerprint_file(ws.template_path) == fp_template

        reverted = ws.read_config()
        reverted["ramble"]["variables"]["n_repeats"] = "1"
        ws.write_config(reverted)
        assert fingerprint(ws.read_config()) == fp_config
