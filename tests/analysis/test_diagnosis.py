"""Tests for failure diagnosis: cross-benchmark regression fingerprints
name the failing subsystem (§1)."""

import pytest

from repro.analysis.diagnosis import FOM_SUBSYSTEMS, FailureHypothesis, diagnose
from repro.analysis.regression import RegressionEvent

SUITE_FOMS = ["triad_bw", "copy_bw", "bandwidth", "total_time",
              "fom_setup", "fom_solve"]


def event(fom: str, epoch: float = 5.0, ratio: float = 0.5):
    return RegressionEvent(
        metric=f"bench/cts1/{fom}", epoch=epoch,
        baseline=100.0, observed=100.0 * ratio, ratio=ratio,
    )


class TestDiagnose:
    def test_memory_fault_fingerprint(self):
        events = [event("triad_bw"), event("copy_bw"), event("bandwidth")]
        hypotheses = diagnose(events, SUITE_FOMS)
        assert hypotheses[0].subsystem == "memory"
        assert hypotheses[0].confidence == 1.0
        assert hypotheses[0].first_epoch == 5.0

    def test_network_fault_fingerprint(self):
        hypotheses = diagnose([event("total_time", ratio=2.0)], SUITE_FOMS)
        assert hypotheses[0].subsystem == "network"
        # memory FOMs were monitored but steady → no memory hypothesis
        assert all(h.subsystem != "memory" for h in hypotheses)

    def test_compute_fault_fingerprint(self):
        hypotheses = diagnose([event("fom_setup"), event("fom_solve")],
                              SUITE_FOMS)
        assert hypotheses[0].subsystem == "compute"

    def test_partial_evidence_lower_confidence(self):
        # Only one of three monitored memory FOMs regressed.
        hypotheses = diagnose([event("triad_bw")], SUITE_FOMS)
        memory = [h for h in hypotheses if h.subsystem == "memory"][0]
        assert memory.confidence == pytest.approx(1 / 3)

    def test_mixed_failure_ranked_by_confidence(self):
        events = [event("triad_bw"), event("copy_bw"), event("bandwidth"),
                  event("total_time")]
        hypotheses = diagnose(events, SUITE_FOMS)
        assert hypotheses[0].subsystem == "memory"     # 3/3
        assert hypotheses[1].subsystem == "network"    # 1/1 but single FOM
        assert hypotheses[0].confidence >= hypotheses[1].confidence

    def test_no_events_no_hypotheses(self):
        assert diagnose([], SUITE_FOMS) == []

    def test_unknown_fom_ignored(self):
        assert diagnose([event("mystery_metric")], SUITE_FOMS) == []

    def test_str_readable(self):
        h = diagnose([event("triad_bw")], SUITE_FOMS)[0]
        text = str(h)
        assert "memory" in text and "epoch 5" in text


class TestEndToEndDiagnosis:
    def test_injected_dimm_diagnosed_as_memory(self, tmp_path):
        """Full loop: injected DIMM fault → regression scan → diagnosis."""
        from repro.core.continuous import ContinuousBenchmarking, TRACKED_FOMS
        from repro.systems.failures import Degradation, FailureSchedule

        schedule = FailureSchedule(
            [(4, Degradation("bad-dimm", memory_bw_factor=0.5))])
        loop = ContinuousBenchmarking("stream/openmp", "cts1", tmp_path,
                                      schedule=schedule)
        loop.run(epochs=8)
        events = loop.regressions()
        monitored = [f for f, _ in TRACKED_FOMS["stream"]]
        hypotheses = diagnose(events, monitored)
        assert hypotheses
        assert hypotheses[0].subsystem == "memory"
        assert hypotheses[0].first_epoch >= 4

    def test_fom_map_covers_tracked_foms(self):
        from repro.core.continuous import TRACKED_FOMS

        for foms in TRACKED_FOMS.values():
            for fom, _ in foms:
                assert fom in FOM_SUBSYSTEMS, fom
