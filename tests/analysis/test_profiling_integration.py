"""Integration: Caliper-annotated AMG runs → Thicket ensemble → Extra-P —
the complete §5 analysis pipeline over real benchmark executions."""

import pytest

from repro.analysis import Ensemble, adiak
from repro.analysis.caliper import CaliperSession
from repro.benchmarks.amg import run_amg


@pytest.fixture(autouse=True)
def clean_adiak():
    adiak.clear()
    yield
    adiak.clear()


def profile_amg(n: int, run_id: int):
    """One Caliper-profiled AMG run with Adiak metadata."""
    session = CaliperSession()
    adiak.value("problem_size", n)
    adiak.value("run", run_id)
    result = run_amg(problem=1, n=n, caliper_session=session)
    return session.flush(), result


class TestAnnotatedAmg:
    def test_region_tree_structure(self):
        profile, _ = profile_amg(8, 0)
        regions = profile.regions()
        assert set(regions) == {
            "amg2023", "amg2023/problem", "amg2023/setup", "amg2023/solve"
        }

    def test_inclusive_exceeds_children(self):
        profile, _ = profile_amg(8, 0)
        regions = profile.regions()
        total = regions["amg2023"].inclusive
        parts = (regions["amg2023/problem"].inclusive
                 + regions["amg2023/setup"].inclusive
                 + regions["amg2023/solve"].inclusive)
        assert total >= parts
        assert regions["amg2023"].exclusive >= 0

    def test_profiling_does_not_change_results(self):
        session = CaliperSession()
        with_profiling = run_amg(problem=1, n=8, caliper_session=session)
        session.flush()
        without = run_amg(problem=1, n=8)
        assert with_profiling.stats.iterations == without.stats.iterations
        assert with_profiling.nnz == without.nnz

    def test_adiak_metadata_attached(self):
        profile, _ = profile_amg(10, 3)
        assert profile.metadata["problem_size"] == 10
        assert profile.metadata["run"] == 3


class TestEnsembleOverRuns:
    def test_thicket_composes_amg_profiles(self):
        profiles = [profile_amg(n, i)[0] for i, n in enumerate((6, 8, 10))]
        ens = Ensemble(profiles)
        assert len(ens) == 3
        stats = ens.stats("amg2023/setup")
        assert stats["count"] == 3
        assert stats["mean"] > 0

    def test_setup_time_grows_with_problem_size(self):
        profiles = [profile_amg(n, i)[0] for i, n in enumerate((6, 14))]
        ens = Ensemble(profiles)
        values = ens.metric("amg2023/setup")
        assert values[1] > values[0]

    def test_groupby_problem_size(self):
        profiles = [profile_amg(n, i)[0]
                    for i, n in enumerate((8, 8, 10))]
        groups = Ensemble(profiles).groupby("problem_size")
        assert len(groups[8]) == 2
        assert len(groups[10]) == 1

    def test_tree_display(self):
        profiles = [profile_amg(8, i)[0] for i in range(2)]
        text = Ensemble(profiles).tree()
        assert "amg2023" in text
        assert "  setup" in text
        assert "mean" in text

    def test_extrap_over_profiled_scaling(self):
        """Fit setup time vs problem DOFs — Extra-P on Caliper data, as §5
        proposes, over genuinely measured solver runs."""
        profiles = []
        for i, n in enumerate((6, 8, 10, 12, 14)):
            p, result = profile_amg(n, i)
            p.metadata["dofs"] = result.n_rows
            profiles.append(p)
        model = Ensemble(profiles).model_scaling(
            "amg2023/setup", scale_key="dofs")
        # AMG setup is ~linear in DOFs; allow any ≥-linear polynomial but
        # reject a constant fit.
        assert not model.is_constant
        assert model.predict([20**3]) > model.predict([6**3])
