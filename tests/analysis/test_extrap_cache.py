"""Memoized Extra-P fits: the cache must be invisible except for speed —
identical model strings, copy-safe returns, fingerprint-keyed hits."""

import numpy as np
import pytest

from repro.analysis.extrap import (
    Measurement,
    clear_model_cache,
    fit_model,
    fit_multi_term_model,
    model_cache,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_model_cache()
    yield
    clear_model_cache()


def _linear(n=6):
    return [Measurement(p, -0.64 + 0.047 * p)
            for p in (2, 8, 32, 128, 512, 2048)[:n]]


class TestModelCache:
    def test_refit_hits(self):
        fit_model(_linear())
        before = model_cache().hits
        fit_model(_linear())
        assert model_cache().hits == before + 1

    def test_cached_model_identical_to_fresh(self):
        first = fit_model(_linear())
        cached = fit_model(_linear())
        assert str(cached) == str(first)
        assert (cached.c0, cached.c1, cached.i, cached.j) == \
            (first.c0, first.c1, first.i, first.j)
        clear_model_cache()
        fresh = fit_model(_linear())
        assert str(fresh) == str(first)

    def test_different_series_miss(self):
        fit_model(_linear())
        misses = model_cache().misses
        fit_model([Measurement(p, 2.0 * p) for p in (2, 4, 8, 16)])
        assert model_cache().misses == misses + 1

    def test_tuple_and_measurement_inputs_share_entries(self):
        fit_model([(2.0, 1.0), (4.0, 2.0), (8.0, 4.0)])
        before = model_cache().hits
        fit_model([Measurement(2.0, 1.0), Measurement(4.0, 2.0),
                   Measurement(8.0, 4.0)])
        assert model_cache().hits == before + 1

    def test_mutating_returned_model_does_not_poison_cache(self):
        model = fit_model(_linear())
        model.c0 = 12345.0
        model.measurements.clear()
        again = fit_model(_linear())
        assert again.c0 != 12345.0
        assert again.measurements

    def test_multi_term_cached_separately(self):
        ps = [2, 4, 8, 16, 32, 64, 256, 1024]
        ms = [Measurement(p, 1.0 + 2.0 * p + 30.0 * np.log2(p)) for p in ps]
        single = fit_model(ms)
        multi = fit_multi_term_model(ms)
        assert len(multi.terms) == 2 and not single.is_constant
        before = model_cache().hits
        again = fit_multi_term_model(ms)
        assert model_cache().hits == before + 1
        assert str(again) == str(multi)
        again.terms.clear()
        assert fit_multi_term_model(ms).terms

    def test_exponent_space_part_of_key(self):
        ms = _linear()
        restricted = fit_model(ms, exponents=[(1.0, 0)])
        full = fit_model(ms)
        assert model_cache().hits == 0  # two different keys, no collisions
        assert (restricted.i, restricted.j) == (1.0, 0)
        assert str(full)  # both entries usable
