"""Tests for the regression detector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.regression import RegressionDetector, RegressionEvent
from repro.ci import MetricsDatabase


def series(values):
    return list(enumerate(values))


class TestDetector:
    def test_flat_series_clean(self):
        d = RegressionDetector(threshold=0.1, window=3)
        assert d.detect(series([100.0] * 12)) == []

    def test_drop_detected(self):
        d = RegressionDetector(threshold=0.1, window=3, higher_is_better=True)
        events = d.detect(series([100.0] * 6 + [70.0] * 6), metric="bw")
        assert len(events) == 1
        event = events[0]
        assert event.metric == "bw"
        assert event.ratio < 0.9
        assert 4 <= event.epoch <= 7  # localized near the change point

    def test_rise_is_fine_for_throughput(self):
        d = RegressionDetector(threshold=0.1, window=3, higher_is_better=True)
        assert d.detect(series([100.0] * 6 + [130.0] * 6)) == []

    def test_latency_direction(self):
        d = RegressionDetector(threshold=0.1, window=3, higher_is_better=False)
        assert d.detect(series([10.0] * 6 + [14.0] * 6))
        assert d.detect(series([10.0] * 6 + [7.0] * 6)) == []

    def test_small_change_below_threshold(self):
        d = RegressionDetector(threshold=0.2, window=3)
        assert d.detect(series([100.0] * 6 + [90.0] * 6)) == []

    def test_consecutive_windows_collapsed(self):
        d = RegressionDetector(threshold=0.1, window=2)
        events = d.detect(series([100.0] * 5 + [50.0] * 10))
        assert len(events) == 1

    def test_two_separate_regressions(self):
        d = RegressionDetector(threshold=0.15, window=2)
        values = [100.0] * 4 + [80.0] * 4 + [100.0] * 4 + [60.0] * 4
        # recovery in between resets the detector; the later drop re-fires
        events = d.detect(series(values))
        assert len(events) >= 2

    def test_too_short_series(self):
        d = RegressionDetector(window=3)
        assert d.detect(series([100.0] * 5)) == []

    def test_noise_tolerance(self):
        import numpy as np

        rng = np.random.default_rng(0)
        clean = 100.0 * (1.0 + rng.normal(0, 0.02, size=20))
        d = RegressionDetector(threshold=0.1, window=3)
        assert d.detect(series(list(clean))) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegressionDetector(threshold=0.0)
        with pytest.raises(ValueError):
            RegressionDetector(window=0)

    def test_event_str(self):
        e = RegressionEvent("bw", 5.0, 100.0, 70.0, 0.7)
        assert "dropped 30.0%" in str(e)
        assert "epoch 5" in str(e)

    def test_detect_in_db_averages_per_epoch(self):
        db = MetricsDatabase()
        for epoch in range(8):
            value = 100.0 if epoch < 4 else 60.0
            for exp in ("a", "b"):
                db.record("saxpy", "cts1", exp, "bandwidth",
                          value, "GB/s", {"epoch": str(epoch)})
        d = RegressionDetector(threshold=0.1, window=2)
        events = d.detect_in_db(db, "saxpy", "cts1", "bandwidth")
        assert len(events) == 1
        assert events[0].metric == "saxpy/cts1/bandwidth"


@given(
    st.floats(min_value=10.0, max_value=1000.0),
    st.floats(min_value=0.3, max_value=0.7),
    st.integers(min_value=4, max_value=10),
)
@settings(max_examples=30, deadline=None)
def test_detector_always_finds_big_cliff(baseline, drop_factor, pre_len):
    """Property: a clean >=30% cliff is always detected, never missed."""
    values = [baseline] * pre_len + [baseline * drop_factor] * 6
    d = RegressionDetector(threshold=0.2, window=3)
    events = d.detect(series(values))
    assert len(events) == 1
    assert events[0].ratio == pytest.approx(drop_factor, rel=0.25)


@given(st.floats(min_value=1.0, max_value=1e6), st.integers(8, 24))
@settings(max_examples=20, deadline=None)
def test_detector_never_fires_on_constants(value, n):
    d = RegressionDetector(threshold=0.05, window=3)
    assert d.detect(series([value] * n)) == []
