"""Tests for Extra-P model fitting and Thicket ensembles (§5, Figure 14)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.caliper import CaliperSession
from repro.analysis.extrap import Measurement, PerformanceModel, fit_model
from repro.analysis.thicket import Ensemble, ThicketError


def _profile(nprocs, seconds, system="cts1"):
    class Clock:
        t = 0.0

        def __call__(self):
            return self.t

    clock = Clock()
    s = CaliperSession(clock=clock)
    s.begin("MPI_Bcast")
    clock.t += seconds
    s.end("MPI_Bcast")
    return s.flush(metadata={"nprocs": nprocs, "system": system})


class TestExtrapFitting:
    def test_linear_recovery(self):
        """The Figure 14 case: y = -0.64 + 0.047·p must be recovered."""
        ps = [2, 64, 256, 1024, 2048, 3456]
        ms = [Measurement(p, -0.6355857931 + 0.04660217702 * p) for p in ps]
        model = fit_model(ms)
        assert model.i == 1.0 and model.j == 0
        assert model.c1 == pytest.approx(0.04660217702, rel=1e-6)
        assert model.c0 == pytest.approx(-0.6355857931, rel=1e-4)
        assert "p^(1)" in str(model)

    def test_log_recovery(self):
        ps = [2, 4, 8, 16, 64, 256, 1024]
        ms = [Measurement(p, 1.0 + 0.5 * np.log2(p)) for p in ps]
        model = fit_model(ms)
        assert (model.i, model.j) == (0.0, 1)

    def test_plogp_recovery(self):
        ps = [2, 4, 8, 16, 64, 256]
        ms = [Measurement(p, 3.0 + 0.01 * p * np.log2(p)) for p in ps]
        model = fit_model(ms)
        assert (model.i, model.j) == (1.0, 1)

    def test_sqrt_recovery(self):
        ps = [4, 16, 64, 256, 1024]
        ms = [Measurement(p, 2.0 + 0.3 * np.sqrt(p)) for p in ps]
        model = fit_model(ms)
        assert model.i == pytest.approx(0.5)

    def test_constant_data(self):
        ms = [Measurement(p, 5.0) for p in (2, 4, 8, 16)]
        model = fit_model(ms)
        np.testing.assert_allclose(model.predict([32, 1024]), 5.0, rtol=1e-6)

    def test_repeats_averaged(self):
        ms = [Measurement(2, 1.9), Measurement(2, 2.1),
              Measurement(4, 4.0), Measurement(8, 8.0), Measurement(16, 16.0)]
        model = fit_model(ms)
        assert model.i == 1.0
        assert model.c1 == pytest.approx(1.0, rel=0.05)

    def test_too_few_points_falls_back_to_constant(self):
        # Degenerate series (fewer than 3 distinct process counts) resolve
        # to the constant model instead of raising: continuous pipelines
        # fit whatever history exists.
        model = fit_model([Measurement(2, 1.0), Measurement(4, 2.0)])
        assert model.is_constant
        assert model.c0 == pytest.approx(1.5)

    def test_single_point_is_constant(self):
        model = fit_model([Measurement(8, 3.0)])
        assert model.is_constant
        np.testing.assert_allclose(model.predict([1, 64]), 3.0)

    def test_repeated_x_values_are_constant(self):
        # All measurements at one process count: the design matrix would be
        # rank-deficient; the mean is the only defensible model.
        model = fit_model([Measurement(4, 1.0), Measurement(4, 3.0),
                           Measurement(4, 5.0)])
        assert model.is_constant
        assert model.c0 == pytest.approx(3.0)

    def test_no_measurements_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            fit_model([])

    def test_nonpositive_p_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            fit_model([Measurement(0, 1.0), Measurement(2, 1.0), Measurement(4, 1.0)])

    def test_tuple_input(self):
        model = fit_model([(2, 2.0), (4, 4.0), (8, 8.0), (16, 16.0)])
        assert model.i == 1.0

    def test_model_string_figure14_format(self):
        model = PerformanceModel(c0=-0.6355857931, c1=0.0466021770, i=1.0, j=0)
        text = str(model)
        assert text.startswith("-0.6355857931")
        assert text.endswith("* p^(1)")

    def test_predict_vectorized(self):
        model = PerformanceModel(c0=1.0, c1=2.0, i=1.0, j=0)
        np.testing.assert_allclose(model.predict([1, 2, 3]), [3.0, 5.0, 7.0])

    @given(st.floats(min_value=0.001, max_value=10.0),
           st.floats(min_value=-5.0, max_value=5.0),
           st.sampled_from([0.5, 1.0, 2.0]))
    @settings(max_examples=25, deadline=None)
    def test_exact_data_recovered(self, c1, c0, i):
        ps = [2, 4, 8, 16, 32, 128, 512]
        ms = [Measurement(p, c0 + c1 * p**i) for p in ps]
        model = fit_model(ms)
        pred = model.predict(ps)
        actual = np.array([m.value for m in ms])
        # the chosen hypothesis must reproduce the data essentially exactly
        scale = np.max(np.abs(actual)) or 1.0
        assert np.max(np.abs(pred - actual)) / scale < 1e-6


class TestThicket:
    def _ensemble(self):
        profiles = [
            _profile(p, 0.01 * p) for p in (2, 4, 8, 16, 64)
        ] + [_profile(8, 0.08)]
        return Ensemble(profiles)

    def test_empty_rejected(self):
        with pytest.raises(ThicketError):
            Ensemble([])

    def test_region_names(self):
        assert self._ensemble().region_names() == ["MPI_Bcast"]

    def test_metric_per_profile(self):
        ens = self._ensemble()
        values = ens.metric("MPI_Bcast")
        assert len(values) == len(ens)

    def test_metadata_table(self):
        ens = self._ensemble()
        assert {"nprocs", "system"} <= set(ens.metadata_columns())

    def test_filter(self):
        ens = self._ensemble()
        small = ens.filter(lambda md: md["nprocs"] <= 8)
        assert len(small) == 4

    def test_filter_all_removed(self):
        with pytest.raises(ThicketError, match="every profile"):
            self._ensemble().filter(lambda md: False)

    def test_groupby(self):
        groups = self._ensemble().groupby("nprocs")
        assert set(groups) == {2, 4, 8, 16, 64}
        assert len(groups[8]) == 2

    def test_groupby_missing_key(self):
        with pytest.raises(ThicketError, match="missing metadata"):
            self._ensemble().groupby("ghost")

    def test_stats(self):
        stats = self._ensemble().stats("MPI_Bcast")
        assert stats["count"] == 6
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_stats_unknown_region(self):
        with pytest.raises(ThicketError, match="absent"):
            self._ensemble().stats("MPI_Allreduce")

    def test_metric_unknown_region_names_alternatives(self):
        # the error names both the missing region and what does exist
        with pytest.raises(ThicketError, match="MPI_Allreduce.*MPI_Bcast"):
            self._ensemble().metric("MPI_Allreduce")

    def test_stats_frame_matches_per_region_stats(self):
        ens = self._ensemble()
        frame = ens.stats_frame()
        for region in ens.region_names():
            expected = ens.stats(region)
            got = frame[region]
            assert got["count"] == expected["count"]
            for key in ("mean", "std", "min", "max"):
                assert got[key] == pytest.approx(expected[key])

    def test_model_scaling_figure14_pipeline(self):
        """Thicket → Extra-P bridge recovers the linear bcast model."""
        ens = Ensemble([_profile(p, -0.001 + 0.01 * p)
                        for p in (2, 8, 32, 128, 512, 2048)])
        model = ens.model_scaling("MPI_Bcast", scale_key="nprocs")
        assert model.i == 1.0
        assert model.c1 == pytest.approx(0.01, rel=1e-3)


class TestDashboard:
    def test_render_grid(self):
        from repro.analysis import render_grid

        out = render_grid(
            ["saxpy", "amg2023"], ["cts1", "ats2"],
            {("saxpy", "cts1"): 1.5, ("amg2023", "ats2"): 2.0},
            title="FOM",
        )
        assert "saxpy" in out and "ats2" in out and "—" in out

    def test_render_series_with_model(self):
        from repro.analysis import render_series

        out = render_series([1, 2], [1.0, 2.0], model=[1.1, 1.9])
        assert "model" in out

    def test_render_series_length_mismatch(self):
        from repro.analysis import render_series

        with pytest.raises(ValueError):
            render_series([1], [1.0, 2.0])

    def test_ascii_plot(self):
        from repro.analysis import ascii_plot

        xs = list(range(1, 20))
        ys = [2.0 * x for x in xs]
        out = ascii_plot(xs, ys, model_ys=[2.0 * x + 0.1 for x in xs])
        assert "o" in out and "*" in out
        assert "measured" in out

    def test_ascii_plot_empty(self):
        from repro.analysis import ascii_plot

        with pytest.raises(ValueError):
            ascii_plot([], [])


class TestMultiTermModels:
    def test_two_term_recovery(self):
        import numpy as np
        from repro.analysis.extrap import fit_multi_term_model

        ps = [2, 4, 8, 16, 32, 64, 256, 1024]
        ms = [Measurement(p, 1.0 + 2.0 * p + 30.0 * np.log2(p)) for p in ps]
        model = fit_multi_term_model(ms)
        assert len(model.terms) == 2
        assert model.smape < 0.01
        exps = {(i, j) for _, i, j in model.terms}
        assert (1.0, 0) in exps and (0.0, 1) in exps
        assert model.predict([2048])[0] == pytest.approx(
            1.0 + 2.0 * 2048 + 30.0 * 11, rel=1e-6)

    def test_single_term_data_stays_single(self):
        from repro.analysis.extrap import fit_multi_term_model

        ms = [Measurement(p, -0.64 + 0.047 * p)
              for p in (2, 8, 32, 128, 512, 2048)]
        model = fit_multi_term_model(ms)
        assert len(model.terms) == 1  # occam: no spurious second term

    def test_max_terms_one_equals_fit_model(self):
        from repro.analysis.extrap import fit_multi_term_model

        ms = [Measurement(p, 3.0 * p) for p in (2, 4, 8, 16)]
        single = fit_model(ms)
        multi = fit_multi_term_model(ms, max_terms=1)
        assert multi.c0 == pytest.approx(single.c0)
        assert multi.terms[0][0] == pytest.approx(single.c1)

    def test_invalid_max_terms(self):
        from repro.analysis.extrap import fit_multi_term_model

        with pytest.raises(ValueError):
            fit_multi_term_model([Measurement(2, 1.0)], max_terms=0)

    def test_str_format(self):
        import numpy as np
        from repro.analysis.extrap import fit_multi_term_model

        ps = [2, 4, 8, 16, 32, 128]
        ms = [Measurement(p, 5.0 + p + np.log2(p)) for p in ps]
        model = fit_multi_term_model(ms)
        assert "p^(" in str(model)
