"""Incremental regression state vs. batch recomputation — the equivalence
is bit-identical (dataclass equality over float fields), not approximate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    OnlineStats,
    RegressionDetector,
    SeriesState,
)
from repro.analysis.engine import AnalysisEngine
from repro.ci import MetricsDatabase


def _history(n_epochs=16, step_at=10, noise=0.03):
    """Deterministic noisy series with a 20% step regression."""
    rng = np.random.default_rng(42)
    series = []
    for epoch in range(n_epochs):
        base = 100.0 if epoch < step_at else 80.0
        for _ in range(3):
            series.append((float(epoch), base * (1 + noise * rng.standard_normal())))
    return series


def _batch(det, series, metric="m"):
    """The row-oriented reference: group raw samples per epoch exactly as
    detect_in_db does, then run the batch detector."""
    by_epoch = {}
    for epoch, value in sorted(series):
        by_epoch.setdefault(epoch, []).append(value)
    grouped = [(e, float(np.mean(v))) for e, v in sorted(by_epoch.items())]
    return det.detect(grouped, metric)


class TestBitIdentity:
    def test_one_shot_equals_batch(self):
        det = RegressionDetector(threshold=0.10, window=3)
        series = _history()
        state = det.make_state()
        state.extend(series)
        assert state.events("m") == _batch(det, series)

    @pytest.mark.parametrize("chunk", [1, 2, 3, 5, 7])
    def test_chunked_feed_equals_batch(self, chunk):
        det = RegressionDetector(threshold=0.10, window=3)
        series = _history()
        state = det.make_state()
        for i in range(0, len(series), chunk):
            state.extend(series[i:i + chunk])
            # at every intermediate point the state equals a full rescan of
            # everything fed so far
            assert state.events("m") == _batch(det, series[:i + chunk])

    def test_late_samples_for_old_epochs(self):
        # a sample arriving for an already-scored epoch must shift the
        # affected suffix exactly as a batch rescan would
        det = RegressionDetector(threshold=0.10, window=3)
        series = _history()
        late = [(2.0, 60.0), (11.0, 95.0)]
        state = det.make_state()
        state.extend(series)
        state.extend(late)
        assert state.events("m") == _batch(det, series + late)

    def test_lower_is_better_metrics(self):
        det = RegressionDetector(threshold=0.10, window=2,
                                 higher_is_better=False)
        series = [(float(e), 10.0 if e < 6 else 13.0) for e in range(12)]
        state = det.make_state()
        for pair in series:
            state.extend([pair])
        events = state.events("walltime")
        assert events == det.detect(series, "walltime")
        assert len(events) == 1 and events[0].ratio > 1.0

    def test_short_series_reports_nothing(self):
        det = RegressionDetector(window=3)
        state = det.make_state()
        state.extend([(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)])
        assert state.events() == []

    def test_detect_incremental_helper(self):
        det = RegressionDetector(threshold=0.10, window=3)
        series = _history()
        state = det.make_state()
        events = det.detect_incremental(state, series, "m")
        assert events == _batch(det, series)

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=12),
                  st.floats(min_value=1.0, max_value=200.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=0, max_size=40),
        st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_property_random_feeds(self, pairs, window):
        det = RegressionDetector(threshold=0.10, window=window)
        series = [(float(e), v) for e, v in pairs]
        state = det.make_state()
        state.extend(series)
        assert state.events("m") == _batch(det, series)
        by_epoch = {}
        for e, v in sorted(series):
            by_epoch.setdefault(e, []).append(v)
        expected = [(e, float(np.mean(v))) for e, v in sorted(by_epoch.items())]
        assert state.series() == expected


class TestEngineScanParity:
    TARGETS = [("stream", "cts1", "triad_bw", True),
               ("stream", "tioga", "triad_bw", True),
               ("saxpy", "cts1", "walltime", False)]

    def _record_epoch(self, db, epoch):
        rng = np.random.default_rng(1000 + epoch)
        for benchmark, system, fom, hib in self.TARGETS:
            base = 100.0 if hib else 10.0
            if epoch >= 9:
                base *= 0.8 if hib else 1.3
            for exp in ("a", "b"):
                manifest = {"epoch": str(epoch)}
                if epoch == 4 and exp == "b":
                    manifest["flaky"] = "true"
                db.record(benchmark, system, exp, fom,
                          base * (1 + 0.02 * rng.standard_normal()),
                          "u", manifest)

    def test_scan_equals_batch_after_every_epoch(self):
        db = MetricsDatabase()
        engine = AnalysisEngine(db, threshold=0.10, window=3)
        det = RegressionDetector(threshold=0.10, window=3)
        det_lib = RegressionDetector(threshold=0.10, window=3,
                                     higher_is_better=False)
        for epoch in range(14):
            self._record_epoch(db, epoch)
            got = engine.scan(self.TARGETS)
            expected = []
            for benchmark, system, fom, hib in self.TARGETS:
                d = det if hib else det_lib
                expected.extend(d.detect_in_db(db, benchmark, system, fom))
            assert got == sorted(expected, key=lambda e: e.epoch)
        assert got  # the injected step was actually reported

    def test_detect_consumes_each_sample_once(self):
        db = MetricsDatabase()
        engine = AnalysisEngine(db, threshold=0.10, window=3)
        for epoch in range(12):
            self._record_epoch(db, epoch)
        engine.scan(self.TARGETS)
        state = engine._state(("stream", "cts1", "triad_bw", True))
        seen = state.samples_seen
        engine.scan(self.TARGETS)  # no new data: nothing re-absorbed
        assert state.samples_seen == seen

    def test_series_summary_is_welford_over_raw_samples(self):
        db = MetricsDatabase()
        engine = AnalysisEngine(db, threshold=0.10, window=3)
        for epoch in range(6):
            self._record_epoch(db, epoch)
        engine.scan(self.TARGETS)
        summary = engine.series_summary("stream", "cts1", "triad_bw")
        raw = [v for _, v in db.series("stream", "cts1", "triad_bw", "epoch",
                                       exclude_flaky=True)]
        assert summary["count"] == len(raw)
        assert summary["mean"] == pytest.approx(np.mean(raw))
        assert summary["std"] == pytest.approx(np.std(raw))

    def test_profiler_records_stage_timings(self):
        db = MetricsDatabase()
        engine = AnalysisEngine(db, threshold=0.10, window=3)
        for epoch in range(8):
            self._record_epoch(db, epoch)
        engine.scan(self.TARGETS)
        engine.dashboard()
        stages = set(engine.profiler.stages())
        assert {"analysis:refresh", "analysis:detect", "analysis:scan",
                "analysis:dashboard"} <= stages


class TestOnlineStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(7)
        data = rng.normal(50.0, 4.0, size=257)
        stats = OnlineStats()
        for value in data:
            stats.push(float(value))
        assert stats.count == data.size
        assert stats.mean == pytest.approx(np.mean(data), rel=1e-12)
        assert stats.variance() == pytest.approx(np.var(data), rel=1e-9)
        assert stats.variance(ddof=1) == pytest.approx(np.var(data, ddof=1),
                                                       rel=1e-9)
        assert stats.std() == pytest.approx(np.std(data), rel=1e-9)

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(11)
        a, b = rng.normal(size=100), rng.normal(size=37) + 5.0
        left, right, whole = OnlineStats(), OnlineStats(), OnlineStats()
        for v in a:
            left.push(float(v))
            whole.push(float(v))
        for v in b:
            right.push(float(v))
            whole.push(float(v))
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, rel=1e-12)
        assert left.variance() == pytest.approx(whole.variance(), rel=1e-9)

    def test_merge_with_empty(self):
        stats = OnlineStats()
        stats.push(3.0)
        stats.merge(OnlineStats())
        assert (stats.count, stats.mean) == (1, 3.0)
        empty = OnlineStats()
        empty.merge(stats)
        assert (empty.count, empty.mean) == (1, 3.0)

    def test_degenerate(self):
        stats = OnlineStats()
        assert stats.variance() == 0.0
        stats.push(2.0)
        assert stats.variance(ddof=1) == 0.0


class TestStateValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SeriesState(threshold=1.5)

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            SeriesState(window=0)
