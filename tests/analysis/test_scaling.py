"""Tests for scaling-study analysis helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import classify_scaling, strong_scaling, weak_scaling


def ideal_strong(p_values, t1=100.0):
    return [(p, t1 / p) for p in p_values]


class TestStrongScaling:
    def test_ideal(self):
        table = strong_scaling(ideal_strong([1, 2, 4, 8]))
        assert [pt.speedup for pt in table] == [1.0, 2.0, 4.0, 8.0]
        assert all(pt.efficiency == pytest.approx(1.0) for pt in table)

    def test_amdahl_like(self):
        # 10% serial fraction
        series = [(p, 10.0 + 90.0 / p) for p in (1, 2, 4, 8, 16)]
        table = strong_scaling(series)
        assert table[-1].speedup < 16
        assert table[-1].efficiency < 1.0
        effs = [pt.efficiency for pt in table]
        assert all(b <= a + 1e-12 for a, b in zip(effs, effs[1:]))

    def test_baseline_not_p1(self):
        # Measurements starting at p=4 normalize to p=4.
        table = strong_scaling(ideal_strong([4, 8, 16]))
        assert table[0].speedup == 1.0
        assert table[1].efficiency == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            strong_scaling([(1, 1.0)])
        with pytest.raises(ValueError, match="positive"):
            strong_scaling([(1, 1.0), (2, -1.0)])
        with pytest.raises(ValueError, match="duplicate"):
            strong_scaling([(2, 1.0), (2, 2.0)])


class TestWeakScaling:
    def test_ideal_flat(self):
        table = weak_scaling([(p, 10.0) for p in (1, 2, 4, 8)])
        assert all(pt.efficiency == pytest.approx(1.0) for pt in table)

    def test_degrading(self):
        table = weak_scaling([(1, 10.0), (4, 12.0), (16, 20.0)])
        assert table[-1].efficiency == pytest.approx(0.5)


class TestClassify:
    def test_scales_well(self):
        result = classify_scaling(ideal_strong([1, 2, 4, 8, 16]))
        assert result["label"] == "scales well"
        assert result["scaling_limit_p"] == 16

    def test_scaling_limited(self):
        # saturates at p=4
        series = [(1, 100.0), (2, 50.0), (4, 26.0), (8, 25.0), (16, 25.0)]
        result = classify_scaling(series, efficiency_floor=0.5)
        assert result["label"] == "scaling limited"
        assert result["scaling_limit_p"] <= 8

    def test_slowdown(self):
        series = [(1, 100.0), (2, 120.0), (4, 150.0)]
        result = classify_scaling(series)
        assert result["label"] == "does not scale (slows down)"

    def test_bad_floor(self):
        with pytest.raises(ValueError):
            classify_scaling(ideal_strong([1, 2]), efficiency_floor=0.0)

    def test_real_amg_comm_model(self):
        """Classify the simulated AMG strong-scaling curve on cts1: the
        contended fabric must impose a scaling limit."""
        from repro.systems import amg_cycle_model_seconds, get_system

        cts1 = get_system("cts1")
        series = [
            (p, amg_cycle_model_seconds(10**6, 7 * 10**6, cts1, n_ranks=p))
            for p in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
        ]
        result = classify_scaling(series, efficiency_floor=0.5)
        assert result["scaling_limit_p"] < 1024  # comm eventually dominates


@given(st.lists(st.integers(min_value=1, max_value=4096), min_size=2,
                max_size=8, unique=True))
@settings(max_examples=25, deadline=None)
def test_ideal_efficiency_is_one(ps):
    table = strong_scaling(ideal_strong(sorted(ps)))
    assert all(pt.efficiency == pytest.approx(1.0) for pt in table)


@given(st.floats(min_value=0.01, max_value=0.9))
@settings(max_examples=20, deadline=None)
def test_amdahl_efficiency_monotone(serial_fraction):
    series = [
        (p, serial_fraction * 100 + (1 - serial_fraction) * 100 / p)
        for p in (1, 2, 4, 8, 16, 32)
    ]
    effs = [pt.efficiency for pt in strong_scaling(series)]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
