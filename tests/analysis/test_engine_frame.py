"""Columnar MetricsFrame: parity with the row-oriented database paths,
zero-copy views, and partition-scoped invalidation on refresh."""

import numpy as np
import pytest

from repro.analysis import render_report
from repro.analysis.engine import AnalysisEngine, MetricsFrame
from repro.ci import MetricsDatabase


def _populated():
    db = MetricsDatabase()
    for epoch in range(6):
        for system in ("cts1", "tioga"):
            for benchmark, fom in (("stream", "triad_bw"), ("saxpy", "bandwidth")):
                for exp in ("a", "b"):
                    value = 100.0 + epoch + (7.0 if system == "tioga" else 0.0)
                    manifest = {"epoch": str(epoch), "nprocs": str(2 ** epoch)}
                    if epoch == 2 and exp == "b":
                        manifest["flaky"] = "true"
                    db.record(benchmark, system, exp, fom, value, "GB/s",
                              manifest)
    # a non-numeric value and a record missing the epoch key: the frame must
    # skip them exactly where the row paths do
    db.record("stream", "cts1", "a", "triad_bw", "n/a", "", {"epoch": "1"})
    db.record("stream", "cts1", "a", "triad_bw", 55.0, "GB/s", {})
    return db


class TestFrameParity:
    def test_series_matches_database(self):
        db = _populated()
        frame = MetricsFrame(db)
        for exclude in (False, True):
            x, y = frame.series("stream", "cts1", "triad_bw", "epoch",
                                exclude_flaky=exclude)
            assert (list(zip(x.tolist(), y.tolist()))
                    == db.series("stream", "cts1", "triad_bw", "epoch",
                                 exclude_flaky=exclude))

    def test_aggregate_matches_database(self):
        db = _populated()
        frame = MetricsFrame(db)
        for exclude in (False, True):
            assert (frame.aggregate("triad_bw", exclude_flaky=exclude)
                    == db.aggregate("triad_bw", exclude_flaky=exclude))
        assert (frame.aggregate("bandwidth", group_by="benchmark")
                == db.aggregate("bandwidth", group_by="benchmark"))

    def test_aggregate_by_manifest_key(self):
        db = _populated()
        frame = MetricsFrame(db)
        assert (frame.aggregate("triad_bw", group_by="nprocs")
                == db.aggregate("triad_bw", group_by="nprocs"))

    def test_benchmark_usage_matches(self):
        db = _populated()
        assert MetricsFrame(db).benchmark_usage() == db.benchmark_usage()

    def test_unknown_labels_are_empty_not_errors(self):
        frame = MetricsFrame(_populated())
        x, y = frame.series("ghost", "cts1", "triad_bw", "epoch")
        assert x.size == 0 and y.size == 0
        assert frame.aggregate("ghost_fom") == {}

    def test_epoch_series_matches_detector_grouping(self):
        db = _populated()
        frame = MetricsFrame(db)
        raw = db.series("stream", "tioga", "triad_bw", "epoch",
                        exclude_flaky=True)
        by_epoch = {}
        for epoch, value in raw:
            by_epoch.setdefault(epoch, []).append(value)
        expected = [(e, float(np.mean(v))) for e, v in sorted(by_epoch.items())]
        assert frame.epoch_series("stream", "tioga", "triad_bw") == expected


class TestRefresh:
    def test_appends_absorbed_incrementally(self):
        db = _populated()
        frame = MetricsFrame(db)
        rows_before = len(frame)
        assert frame.refresh() == ()  # no-op when nothing changed
        db.record("stream", "cts1", "a", "triad_bw", 99.0, "GB/s",
                  {"epoch": "9"})
        touched = frame.refresh()
        assert len(frame) == rows_before + 1
        s = frame.pools["system"].lookup("cts1")
        b = frame.pools["benchmark"].lookup("stream")
        assert touched == ((s, b),)

    def test_untouched_partitions_keep_their_generation(self):
        db = _populated()
        frame = MetricsFrame(db)
        s_t = frame.pools["system"].lookup("tioga")
        b_s = frame.pools["benchmark"].lookup("saxpy")
        before = frame.partition_generation[(s_t, b_s)]
        db.record("stream", "cts1", "a", "triad_bw", 1.0, "", {"epoch": "9"})
        frame.refresh()
        assert frame.partition_generation[(s_t, b_s)] == before

    def test_generation_counter_tracks_appends(self):
        db = MetricsDatabase()
        assert db.generation == 0
        db.record("stream", "cts1", "a", "triad_bw", 1.0)
        assert db.generation == 1

    def test_manifest_columns_extended_on_refresh(self):
        db = _populated()
        frame = MetricsFrame(db)
        frame.manifest_column("epoch")  # materialize before the append
        db.record("stream", "cts1", "a", "triad_bw", 42.0, "GB/s",
                  {"epoch": "41"})
        frame.refresh()
        vals, ok = frame.manifest_column("epoch")
        assert vals.size == len(frame)
        assert vals[-1] == 41.0 and bool(ok[-1])


class TestFrameView:
    def test_filter_is_zero_copy(self):
        frame = MetricsFrame(_populated())
        view = frame.filter(system="cts1", benchmark="stream")
        # the view holds row indices; the value column it reads through is
        # the frame's own buffer, not a copy
        assert np.shares_memory(frame.column("value"),
                                frame._cols["value"]._buf)
        assert len(view) == len(frame.partition_rows("cts1", "stream"))

    def test_filters_compose(self):
        frame = MetricsFrame(_populated())
        view = frame.view().filter(system="cts1").filter(
            benchmark="stream", exclude_flaky=True)
        assert all(label == "cts1" for label in view.labels("system"))
        assert not view.column("flaky").any()

    def test_unknown_label_gives_empty_view(self):
        frame = MetricsFrame(_populated())
        assert len(frame.filter(system="ghost")) == 0

    def test_groupby(self):
        frame = MetricsFrame(_populated())
        groups = frame.view().groupby("system")
        assert set(groups) == {"cts1", "tioga"}
        assert sum(len(v) for v in groups.values()) == len(frame)

    def test_predicate_filter(self):
        frame = MetricsFrame(_populated())
        view = frame.filter(fom_name="triad_bw").filter(
            predicate=lambda values: values > 104.0)
        assert (view.values() > 104.0).all()

    def test_to_pairs_matches_series(self):
        db = _populated()
        frame = MetricsFrame(db)
        pairs = frame.filter(benchmark="stream", system="cts1",
                             fom_name="triad_bw").to_pairs("epoch")
        assert pairs == db.series("stream", "cts1", "triad_bw", "epoch")


class TestEngineDashboard:
    def test_identical_to_row_oriented_report(self):
        db = _populated()
        engine = AnalysisEngine(db)
        assert engine.dashboard() == render_report(db)

    def test_stays_identical_after_appends(self):
        db = _populated()
        engine = AnalysisEngine(db)
        engine.dashboard()
        db.record("quicksilver", "sierra", "q0", "fom_segments", 7.5, "seg/s",
                  {"epoch": "0"})
        assert engine.dashboard() == render_report(db)

    def test_empty_database(self):
        db = MetricsDatabase()
        assert AnalysisEngine(db).dashboard() == render_report(db)
