"""Tests for the Caliper and Adiak substrates (§5)."""

import pytest

from repro.analysis import adiak
from repro.analysis.caliper import CaliperSession, Profile, region


@pytest.fixture(autouse=True)
def clean_adiak():
    adiak.clear()
    yield
    adiak.clear()


class FakeClock:
    """Deterministic clock for profile tests."""

    def __init__(self):
        self.t = 0.0

    def tick(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


class TestCaliper:
    def test_nested_regions_tree(self):
        clock = FakeClock()
        s = CaliperSession(clock=clock)
        s.begin("main")
        clock.tick(1.0)
        s.begin("solve")
        clock.tick(2.0)
        s.end("solve")
        clock.tick(0.5)
        s.end("main")
        profile = s.flush()
        regions = profile.regions()
        assert regions["main"].inclusive == pytest.approx(3.5)
        assert regions["main/solve"].inclusive == pytest.approx(2.0)
        assert regions["main"].exclusive == pytest.approx(1.5)

    def test_visit_counts(self):
        s = CaliperSession(clock=FakeClock())
        for _ in range(3):
            with s.region("loop"):
                pass
        profile = s.flush()
        assert profile.regions()["loop"].visits == 3

    def test_mismatched_end_raises(self):
        s = CaliperSession()
        s.begin("a")
        with pytest.raises(RuntimeError, match="mismatched"):
            s.end("b")

    def test_end_without_begin(self):
        s = CaliperSession()
        with pytest.raises(RuntimeError, match="without matching begin"):
            s.end("ghost")

    def test_flush_with_open_region(self):
        s = CaliperSession()
        s.begin("open")
        with pytest.raises(RuntimeError, match="open regions"):
            s.flush()

    def test_decorator(self):
        s = CaliperSession(clock=FakeClock())

        @s.annotate()
        def work():
            return 42

        assert work() == 42
        assert "work" in s.flush().regions()

    def test_exception_still_closes_region(self):
        s = CaliperSession(clock=FakeClock())
        with pytest.raises(ValueError):
            with s.region("risky"):
                raise ValueError("boom")
        profile = s.flush()  # no open regions
        assert "risky" in profile.regions()

    def test_runtime_report_format(self):
        clock = FakeClock()
        s = CaliperSession(clock=clock)
        with s.region("main"):
            clock.tick(1.0)
        report = s.flush().runtime_report()
        assert "main" in report
        assert "Time (incl)" in report

    def test_profile_roundtrip(self):
        clock = FakeClock()
        s = CaliperSession(clock=clock)
        with s.region("a"):
            clock.tick(1.0)
            with s.region("b"):
                clock.tick(2.0)
        profile = s.flush(metadata={"system": "cts1"})
        again = Profile.from_dict(profile.to_dict())
        assert again.metadata["system"] == "cts1"
        assert again.regions()["a/b"].inclusive == pytest.approx(2.0)

    def test_global_session_region(self):
        from repro.analysis.caliper import global_session

        with region("global_work"):
            pass
        profile = global_session().flush()
        assert "global_work" in profile.regions()

    def test_flush_merges_adiak_metadata(self):
        adiak.value("nprocs", 64)
        s = CaliperSession(clock=FakeClock())
        with s.region("x"):
            pass
        profile = s.flush(metadata={"run": 1})
        assert profile.metadata["nprocs"] == 64
        assert profile.metadata["run"] == 1


class TestAdiak:
    def test_value_and_collect(self):
        adiak.value("compiler", "gcc@12.1.1")
        assert adiak.collected()["compiler"] == "gcc@12.1.1"

    def test_overwrite(self):
        adiak.value("k", 1)
        adiak.value("k", 2)
        assert adiak.collected()["k"] == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            adiak.value("", 1)

    def test_collect_default_has_host_facts(self):
        facts = adiak.collect_default()
        assert "hostname" in facts
        assert "python" in facts

    def test_clear(self):
        adiak.value("x", 1)
        adiak.clear()
        assert adiak.collected() == {}
