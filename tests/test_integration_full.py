"""Cross-subsystem integration tests: the scenarios that exercise several
layers at once, beyond what any single subsystem's tests cover.

1. Federated continuous benchmarking: a PR triggers real benchmark runs at
   multiple sites through Jacamar, FOMs land in one metrics DB, the
   dashboard renders, and the PR merges only when all sites are green.
2. Queue-aware campaign: workspace → batch scheduler → execution → analysis
   → archive → restore → identical re-run.
3. Reuse-concretized second campaign installs nothing new.
"""

from pathlib import Path

import pytest

from repro.analysis import render_report
from repro.ci import (
    GitHub,
    JacamarExecutor,
    MetricsDatabase,
    Runner,
    SiteAccounts,
)
from repro.ci.federation import Federation
from repro.core import benchpark_setup
from repro.ramble import Workspace, archive_workspace, restore_workspace
from repro.systems import BatchExecutor, get_system

CI_YAML = """
stages: [bench]
bench-saxpy:
  stage: bench
  script: ["benchpark saxpy"]
"""


class TestFederatedContinuousBenchmarking:
    def test_pr_to_dashboard(self, tmp_path):
        hub = GitHub()
        canonical = hub.create_repo("llnl", "benchpark")
        canonical.git.commit("main", "seed", "olga",
                             {".gitlab-ci.yml": CI_YAML})
        fed = Federation(canonical)
        db = MetricsDatabase()

        site_systems = {"LLNL": "cts1", "AWS": "cloud-c6i"}
        jacamars = {}
        for site_name, system in site_systems.items():
            site = fed.add_site(site_name, [system])
            accounts = SiteAccounts(site_name, users={"site_admin"})

            def body(job, user, system=system, site_name=site_name):
                session = benchpark_setup(
                    "saxpy/openmp", system,
                    tmp_path / site_name / job.name)
                results = session.run_all()
                db.ingest_analysis(system, results)
                ok = all(e["status"] == "SUCCESS"
                         for e in results["experiments"])
                return ok, f"{site_name}: ran as {user}"

            jacamar = JacamarExecutor(accounts, body)
            jacamars[site_name] = jacamar
            site.gitlab.register_runner(Runner(
                f"{site_name}-runner", [],
                jacamar.bound_runner("contributor", approved_by="site_admin"),
            ))

        fork = canonical.fork("contributor")
        fork.git.create_branch("exp")
        fork.git.commit("exp", "new experiment", "contributor",
                        {"experiments/saxpy/openmp/ramble.yaml": "v2"})
        pr = canonical.open_pull_request(fork, "exp", "new exp", "contributor")
        pr.approve("site_admin", is_admin=True)

        results = fed.process_pr(pr)
        assert all(p is not None and p.succeeded for p in results.values())
        assert fed.all_sites_green(pr)
        canonical.merge(pr.number)
        assert pr.state == "merged"

        # Both sites contributed to the shared metrics DB.
        assert {r.system for r in db.query()} == {"cts1", "cloud-c6i"}
        report = render_report(db)
        assert "cts1" in report and "cloud-c6i" in report
        # Jacamar attributed every job to the approver (contributor has no
        # account at either site).
        for jacamar in jacamars.values():
            assert all(e["ran_as"] == "site_admin" for e in jacamar.audit_log)


class TestQueuedCampaignWithArchive:
    CONFIG = {
        "ramble": {
            "variables": {"mpi_command": "srun -N {n_nodes} -n {n_ranks}",
                          "n_ranks": "4", "batch_time": "5"},
            "applications": {"amg2023": {"workloads": {"problem1": {
                "experiments": {"amg_{n}_{n_nodes}": {
                    "variables": {"n": "8", "n_nodes": ["1", "2"]},
                    "matrices": [["n_nodes"]],
                }}
            }}}},
        }
    }

    def test_queue_run_archive_restore(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=self.CONFIG)
        ws.setup()
        executor = BatchExecutor(get_system("cts1"))
        outcomes = executor.run_workspace(ws)
        assert all(o["state"] == "completed" for o in outcomes)
        assert executor.makespan > 0
        results = ws.analyze()
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])

        bundle = archive_workspace(ws)
        assert bundle["results"]["experiments"]

        restored = restore_workspace(bundle, tmp_path / "restored")
        experiments = restored.setup()
        assert [e.name for e in experiments] == \
            [e["name"] for e in bundle["experiments"]]


class TestReuseAcrossCampaigns:
    def test_second_campaign_installs_nothing(self, tmp_path):
        from repro.spack import Concretizer, Installer, Store

        store = Store(tmp_path / "store")
        first = Concretizer()
        spec = first.concretize("amg2023+caliper")
        Installer(store).install(spec)
        n_before = len(store)

        # Second campaign wants a looser request; reuse satisfies it
        # entirely from what's installed.
        second = Concretizer(reuse_store=store)
        solved = second.concretize("amg2023")
        results = Installer(store).install(solved)
        assert all(r.action in ("already", "external") for r in results)
        assert len(store) == n_before
