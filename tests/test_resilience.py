"""Tests for the resilience layer: deterministic fault injection,
retry/backoff, circuit breakers, the fault-tolerant executor, and
resumable continuous benchmarking."""

import json

import pytest

from repro.analysis.regression import RegressionDetector
from repro.ci.metricsdb import MetricsDatabase
from repro.core.continuous import ContinuousBenchmarking
from repro.resilience import (
    AttemptTimeout,
    CircuitBreaker,
    CircuitBreakerRegistry,
    FaultKind,
    FaultTolerantExecutor,
    PermanentError,
    RetryExhausted,
    RetryPolicy,
    TransientError,
    TransientFaultInjector,
)


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------
class TestTransientFaultInjector:
    def test_replay_is_deterministic(self):
        """Same seed/coordinates → the exact same fault stream."""
        make = lambda: TransientFaultInjector(
            {FaultKind.NODE_FAILURE: 0.3, FaultKind.OOM: 0.2}, salt="s1"
        )
        a, b = make(), make()
        stream_a = [a.sample("cts1", "exp", e, t)
                    for e in range(20) for t in range(3)]
        stream_b = [b.sample("cts1", "exp", e, t)
                    for e in range(20) for t in range(3)]
        assert stream_a == stream_b
        assert any(f is not None for f in stream_a)

    def test_salt_changes_stream(self):
        a = TransientFaultInjector({FaultKind.NODE_FAILURE: 0.3}, salt="s1")
        b = TransientFaultInjector({FaultKind.NODE_FAILURE: 0.3}, salt="s2")
        stream_a = [a.sample("cts1", "exp", e, 1) is None for e in range(50)]
        stream_b = [b.sample("cts1", "exp", e, 1) is None for e in range(50)]
        assert stream_a != stream_b

    def test_zero_rate_never_fires(self):
        injector = TransientFaultInjector({})
        assert all(injector.sample("cts1", "exp", e, 1) is None
                   for e in range(100))

    def test_rate_roughly_respected(self):
        injector = TransientFaultInjector({FaultKind.FS_HICCUP: 0.25})
        hits = sum(injector.sample("cts1", f"exp{i}", 0, 1) is not None
                   for i in range(1000))
        assert 180 < hits < 320  # ~250 expected

    def test_per_system_rates(self):
        injector = TransientFaultInjector(
            {},
            per_system={"flaky-sys": {FaultKind.NODE_FAILURE: 0.9}},
        )
        flaky_hits = sum(injector.sample("flaky-sys", f"e{i}", 0, 1) is not None
                        for i in range(50))
        healthy_hits = sum(injector.sample("cts1", f"e{i}", 0, 1) is not None
                          for i in range(50))
        assert flaky_hits > 30
        assert healthy_hits == 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            TransientFaultInjector({FaultKind.OOM: 1.5})

    def test_fault_carries_classification(self):
        injector = TransientFaultInjector({FaultKind.OOM: 0.999})
        fault = injector.sample("cts1", "exp", 0, 1)
        assert fault is not None
        assert fault.kind is FaultKind.OOM
        assert "oom" in str(fault)


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_then_hits_ceiling(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=8.0, jitter=0.0)
        delays = [policy.backoff_s(k) for k in range(1, 8)]
        assert delays[:4] == [1.0, 2.0, 4.0, 8.0]
        assert all(d == 8.0 for d in delays[3:])  # hard ceiling

    def test_ceiling_holds_under_jitter(self):
        policy = RetryPolicy(base_delay_s=4.0, multiplier=2.0,
                             max_delay_s=8.0, jitter=0.9)
        assert all(policy.backoff_s(k, salt=f"s{k}") <= 8.0
                   for k in range(1, 50))

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.backoff_s(2, "salt") == policy.backoff_s(2, "salt")
        assert policy.backoff_s(2, "salt-a") != policy.backoff_s(2, "salt-b")

    def test_run_retries_transient_to_success(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.0, base_delay_s=1.0)
        seen = []

        def fn(attempt):
            seen.append(attempt)
            if attempt < 3:
                raise TransientError("flap")
            return "done"

        result, log = policy.run(fn)
        assert result == "done"
        assert seen == [1, 2, 3]
        assert log.attempts == 3
        assert log.fault_kinds == ["transient", "transient"]
        assert log.total_backoff_s == pytest.approx(3.0)  # 1 + 2
        assert log.flaky

    def test_run_exhaustion_raises_with_log(self):
        policy = RetryPolicy(max_attempts=3)

        def fn(attempt):
            raise TransientError("always down")

        with pytest.raises(RetryExhausted) as exc_info:
            policy.run(fn)
        assert exc_info.value.log.attempts == 3

    def test_permanent_error_not_retried(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise PermanentError("wrong answer")

        with pytest.raises(PermanentError):
            policy.run(fn)
        assert calls == [1]

    def test_classify_taxonomy(self):
        assert RetryPolicy.classify(TransientError("x")) == "transient"
        assert RetryPolicy.classify(AttemptTimeout("x")) == "transient"
        assert RetryPolicy.classify(PermanentError("x")) == "permanent"
        assert RetryPolicy.classify(ValueError("x")) == "permanent"

    def test_attempt_timeout_is_transient_and_bounded(self):
        clock_value = [0.0]

        def clock():
            # each attempt appears to take 10s
            clock_value[0] += 5.0
            return clock_value[0]

        policy = RetryPolicy(max_attempts=2, attempt_timeout_s=1.0)
        with pytest.raises(RetryExhausted) as exc_info:
            policy.run(lambda attempt: "slow", clock=clock)
        assert exc_info.value.log.fault_kinds == \
            ["attempt_timeout", "attempt_timeout"]

    def test_timeout_not_triggered_for_fast_attempts(self):
        policy = RetryPolicy(max_attempts=2, attempt_timeout_s=60.0)
        result, log = policy.run(lambda attempt: "fast")
        assert result == "fast"
        assert log.attempts == 1
        assert not log.flaky


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_half_open_closed_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=100.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(101.0)
        assert breaker.allow()  # the probe run
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # only one probe admitted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(11.0)
        assert breaker.allow()  # recovers again later

    def test_registry_keys_by_system_and_tag(self):
        registry = CircuitBreakerRegistry(clock=FakeClock())
        a = registry.get("cts1", "batch")
        b = registry.get("cts1", "continuous")
        c = registry.get("ats2", "batch")
        assert a is registry.get("cts1", "batch")
        assert len({id(a), id(b), id(c)}) == 3
        assert len(registry) == 3


# ---------------------------------------------------------------------------
# fault-tolerant executor
# ---------------------------------------------------------------------------
class FakeExperiment:
    def __init__(self, name="exp-1"):
        self.name = name


class FakeInner:
    """Inner executor stub with SystemExecutor-like context."""

    class _Sys:
        name = "fake-sys"

    def __init__(self, returncode=0):
        self.system = self._Sys()
        self.epoch = 0
        self.attempt = 1
        self.calls = 0
        self.returncode = returncode

    def execute(self, experiment):
        self.calls += 1
        return {"returncode": self.returncode,
                "stdout": f"ran {experiment.name}\n", "seconds": 0.01}


class ScriptedInjector:
    """Injector stub faulting on a scripted set of attempts."""

    def __init__(self, fault_attempts):
        self.fault_attempts = set(fault_attempts)

    def sample(self, system, experiment, epoch, attempt):
        if attempt in self.fault_attempts:
            from repro.resilience.faults import TransientFault

            return TransientFault(FaultKind.NODE_FAILURE, system,
                                  experiment, epoch, attempt)
        return None


class TestFaultTolerantExecutor:
    def test_clean_run_passes_through(self):
        ft = FaultTolerantExecutor(FakeInner())
        result = ft.execute(FakeExperiment())
        assert result["returncode"] == 0
        assert result["attempts"] == 1
        assert result["fault_kinds"] == []
        assert result["flaky"] is False

    def test_retried_run_records_attempt_log(self):
        ft = FaultTolerantExecutor(
            FakeInner(),
            injector=ScriptedInjector({1, 2}),
            policy=RetryPolicy(max_attempts=4, jitter=0.0, base_delay_s=1.0),
        )
        result = ft.execute(FakeExperiment())
        assert result["returncode"] == 0
        assert result["attempts"] == 3
        assert result["fault_kinds"] == ["node_failure", "node_failure"]
        assert result["total_backoff_s"] == pytest.approx(3.0)
        assert result["flaky"] is True
        assert "resilience" in result["stdout"]
        assert ft.inner.calls == 1  # faulted attempts never reach the inner

    def test_exhaustion_returns_tempfail(self):
        ft = FaultTolerantExecutor(
            FakeInner(),
            injector=ScriptedInjector({1, 2, 3}),
            policy=RetryPolicy(max_attempts=3),
        )
        result = ft.execute(FakeExperiment())
        assert result["returncode"] == 75  # EX_TEMPFAIL
        assert result["state"] == "exhausted"
        assert result["attempts"] == 3
        assert ft.inner.calls == 0

    def test_breaker_trips_and_refuses(self):
        breakers = CircuitBreakerRegistry(failure_threshold=2,
                                          clock=FakeClock())
        ft = FaultTolerantExecutor(
            FakeInner(),
            injector=ScriptedInjector({1, 2}),
            policy=RetryPolicy(max_attempts=2),
            breakers=breakers,
        )
        for i in range(2):  # two exhausted runs trip the breaker
            assert ft.execute(FakeExperiment(f"e{i}"))["state"] == "exhausted"
        refused = ft.execute(FakeExperiment("e3"))
        assert refused["state"] == "refused"
        assert refused["attempts"] == 0
        assert breakers.get("fake-sys", "default").state == CircuitBreaker.OPEN

    def test_deterministic_inner_failure_not_retried(self):
        inner = FakeInner(returncode=127)
        ft = FaultTolerantExecutor(inner, policy=RetryPolicy(max_attempts=5))
        result = ft.execute(FakeExperiment())
        assert result["returncode"] == 127
        assert result["attempts"] == 1
        assert inner.calls == 1


# ---------------------------------------------------------------------------
# flaky-sample exclusion in the analysis layer
# ---------------------------------------------------------------------------
class TestFlakyExclusion:
    def _db_with_flaky_dip(self):
        db = MetricsDatabase()
        for epoch in range(6):
            db.record("stream", "cts1", "e", "triad_bw", 100.0,
                      manifest={"epoch": str(epoch), "flaky": "false"})
        # epochs 6-7: retried runs measured low — contamination, not a
        # regression
        for epoch in (6, 7):
            db.record("stream", "cts1", "e", "triad_bw", 55.0,
                      manifest={"epoch": str(epoch), "flaky": "true",
                                "attempts": "3"})
        return db

    def test_flaky_samples_detected_and_counted(self):
        db = self._db_with_flaky_dip()
        assert db.flaky_count() == 2
        assert len(db.query(exclude_flaky=True)) == 6

    def test_detector_excludes_flaky_by_default(self):
        db = self._db_with_flaky_dip()
        detector = RegressionDetector(threshold=0.10, window=2)
        assert detector.detect_in_db(db, "stream", "cts1", "triad_bw") == []

    def test_detector_would_false_flag_without_exclusion(self):
        db = self._db_with_flaky_dip()
        detector = RegressionDetector(threshold=0.10, window=2)
        events = detector.detect_in_db(db, "stream", "cts1", "triad_bw",
                                       exclude_flaky=False)
        assert events, "the flaky dip must look like a regression when included"


# ---------------------------------------------------------------------------
# campaign-level: fault-tolerant continuous benchmarking + checkpoint/resume
# ---------------------------------------------------------------------------
class TestFaultTolerantCampaign:
    INJECTOR_KW = dict(
        rates={FaultKind.NODE_FAILURE: 0.25, FaultKind.FS_HICCUP: 0.1},
        salt="campaign-test",
    )

    def _loop(self, tmp_path, **kwargs):
        return ContinuousBenchmarking(
            "stream/openmp", "cts1", tmp_path,
            injector=TransientFaultInjector(**self.INJECTOR_KW),
            retry_policy=RetryPolicy(max_attempts=6, jitter=0.0),
            **kwargs,
        )

    def test_flaky_campaign_completes_with_retries(self, tmp_path):
        loop = self._loop(tmp_path).run(epochs=6)
        assert loop.epochs_run == 6
        # transient faults were hit and retried, not failed
        assert loop.attempt_history, "expected at least one retried epoch"
        for meta in loop.attempt_history.values():
            for info in meta.values():
                assert info["state"] == "completed"
                assert info["attempts"] > 1
        # attempt metadata landed in the metrics database
        flaky_records = [r for r in loop.db.query() if loop.db.is_flaky(r)]
        assert flaky_records
        assert all(int(r.manifest["attempts"]) > 1 for r in flaky_records)
        # and retried samples cause no false regressions
        assert loop.regressions() == []
        assert "retries" in loop.report()

    def test_checkpoint_written_every_epoch(self, tmp_path):
        loop = self._loop(tmp_path)
        loop.run_epoch()
        payload = json.loads(loop.checkpoint_path.read_text())
        assert payload["epochs_run"] == 1
        assert payload["system"] == "cts1"
        assert payload["records"]

    def test_killed_campaign_resumes_from_checkpoint(self, tmp_path):
        # First incarnation dies after 3 of 5 epochs.
        self._loop(tmp_path).run_until(3)
        # Second incarnation resumes: completed epochs are not re-run.
        resumed = self._loop(tmp_path)
        assert resumed.epochs_run == 3
        records_before = len(resumed.db)
        resumed.run_until(5)
        assert resumed.epochs_run == 5
        # Epochs 0-2 were not re-ingested: only 2 epochs' worth was added.
        added = len(resumed.db) - records_before
        assert added == pytest.approx(records_before * 2 / 3, abs=2)
        # Every epoch 0..4 present exactly once per (experiment, fom)
        epochs = sorted({float(r.manifest["epoch"])
                         for r in resumed.db.query(fom_name="triad_bw")})
        assert epochs == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_resume_replays_identical_state(self, tmp_path):
        """Determinism end to end: resuming preserves the pre-kill FOM
        history exactly (it comes from the checkpoint, not a re-run), and
        a straight-through campaign sees the identical fault stream."""
        first = self._loop(tmp_path / "b").run_until(2)
        pre_kill = first.history("triad_bw")
        resumed = self._loop(tmp_path / "b").run_until(4)
        assert resumed.history("triad_bw")[:2] == pre_kill
        # fault injection is salted, not timed: the straight-through
        # campaign hits retries at the same (epoch, experiment) points
        straight = self._loop(tmp_path / "a").run_until(4)
        assert ({e: sorted(m) for e, m in straight.attempt_history.items()}
                == {e: sorted(m) for e, m in resumed.attempt_history.items()})

    def test_checkpoint_mismatch_rejected(self, tmp_path):
        self._loop(tmp_path).run_until(1)
        with pytest.raises(ValueError, match="checkpoint"):
            ContinuousBenchmarking("saxpy/openmp", "cts1", tmp_path)

    def test_resume_false_ignores_checkpoint(self, tmp_path):
        self._loop(tmp_path).run_until(2)
        fresh = self._loop(tmp_path, resume=False)
        assert fresh.epochs_run == 0
