"""Integration tests for the Ramble workspace lifecycle (Figure 5) and the
software resolution of Figures 9/10."""

import json

import pytest

from repro.ramble import Workspace, WorkspaceError
from repro.ramble.software import SoftwareError, merge_spack_sections, resolve_environment
from repro.ramble.templates import DEFAULT_EXECUTE_TEMPLATE, TemplateError, render_template
from repro.systems import LocalExecutor, SystemExecutor, get_system


def figure10_config(n_values=("512", "1024")):
    return {
        "ramble": {
            "variables": {
                "n_ranks": "{processes_per_node}*{n_nodes}",
                "batch_time": "120",
                "mpi_command": "srun -N {n_nodes} -n {n_ranks}",
            },
            "applications": {
                "saxpy": {
                    "workloads": {
                        "problem": {
                            "experiments": {
                                "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}": {
                                    "variables": {
                                        "processes_per_node": ["8", "4"],
                                        "n_nodes": ["1", "2"],
                                        "n_threads": ["2", "4"],
                                        "n": list(n_values),
                                    },
                                    "matrices": [
                                        {"size_threads": ["n", "n_threads"]}
                                    ],
                                }
                            }
                        }
                    }
                }
            },
        }
    }


class TestLifecycle:
    def test_create_layout(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws")
        assert ws.config_path.exists()
        assert ws.template_path.exists()
        assert (tmp_path / "ws" / "experiments").is_dir()

    def test_open_nonworkspace(self, tmp_path):
        with pytest.raises(WorkspaceError, match="not a ramble workspace"):
            Workspace(tmp_path)

    def test_setup_generates_figure10_matrix(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=figure10_config())
        exps = ws.setup()
        assert len(exps) == 8
        names = {e.name for e in exps}
        assert "saxpy_512_1_8_2" in names
        assert "saxpy_1024_2_8_4" in names

    def test_rank_derivation(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=figure10_config())
        exps = ws.setup()
        by_name = {e.name: e for e in exps}
        assert by_name["saxpy_512_1_8_2"].variables["n_ranks"] == "8"
        assert by_name["saxpy_512_2_8_2"].variables["n_ranks"] == "8"

    def test_scripts_rendered(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=figure10_config())
        exps = ws.setup()
        script = exps[0].script_path.read_text()
        assert script.startswith("#!/bin/bash")
        assert "srun -N 1 -n 8" in script
        assert "saxpy -n 512" in script
        assert "{" not in script.replace("{}", "")  # fully expanded

    def test_setup_requires_experiments(self, tmp_path):
        cfg = {"ramble": {"applications": {"saxpy": {"workloads": {"problem": {}}}}}}
        ws = Workspace.create(tmp_path / "ws", config=cfg)
        with pytest.raises(WorkspaceError, match="no experiments"):
            ws.setup()

    def test_setup_requires_applications(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws")
        with pytest.raises(WorkspaceError, match="no applications"):
            ws.setup()

    def test_run_before_setup(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=figure10_config())
        with pytest.raises(WorkspaceError, match="setup"):
            ws.run(LocalExecutor())

    def test_run_and_analyze_local(self, tmp_path):
        ws = Workspace.create(
            tmp_path / "ws", config=figure10_config(n_values=("256",))
        )
        ws.setup()
        outcomes = ws.run(LocalExecutor())
        assert all(o["returncode"] == 0 for o in outcomes)
        results = ws.analyze()
        assert all(
            e["status"] == "SUCCESS" for e in results["experiments"]
        )
        assert (tmp_path / "ws" / "results.latest.json").exists()

    def test_analysis_foms_numeric(self, tmp_path):
        ws = Workspace.create(
            tmp_path / "ws", config=figure10_config(n_values=("256",))
        )
        ws.setup()
        ws.run(LocalExecutor())
        results = ws.analyze()
        foms = results["experiments"][0]["figures_of_merit"]
        by_name = {f["name"]: f for f in foms}
        assert isinstance(by_name["kernel_time"]["value"], float)
        assert by_name["bandwidth"]["units"] == "GB/s"

    def test_not_run_status(self, tmp_path):
        ws = Workspace.create(
            tmp_path / "ws", config=figure10_config(n_values=("256",))
        )
        ws.setup()
        results = ws.analyze()
        assert all(e["status"] == "NOT_RUN" for e in results["experiments"])

    def test_experiment_index_persists(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=figure10_config())
        ws.setup()
        reopened = Workspace(tmp_path / "ws")
        assert len(reopened.experiments) == 8

    def test_system_executor_runs(self, tmp_path):
        ws = Workspace.create(
            tmp_path / "ws", config=figure10_config(n_values=("256",))
        )
        ws.setup()
        outcomes = ws.run(SystemExecutor(get_system("cts1")))
        assert all(o["returncode"] == 0 for o in outcomes)
        log = ws.experiments[0].log_file.read_text()
        assert "# executing on cts1" in log

    def test_amg_workspace(self, tmp_path):
        cfg = {
            "ramble": {
                "variables": {"mpi_command": "srun -N {n_nodes} -n {n_ranks}"},
                "applications": {
                    "amg2023": {
                        "workloads": {
                            "problem1": {
                                "experiments": {
                                    "amg_{n}_{n_ranks}": {
                                        "variables": {
                                            "n": "8",
                                            "n_ranks": ["1", "4"],
                                        }
                                    }
                                }
                            }
                        }
                    }
                },
            }
        }
        ws = Workspace.create(tmp_path / "ws", config=cfg)
        exps = ws.setup()
        assert len(exps) == 2
        ws.run(LocalExecutor())
        results = ws.analyze()
        for e in results["experiments"]:
            assert e["status"] == "SUCCESS"
            names = {f["name"] for f in e["figures_of_merit"]}
            assert {"fom_setup", "fom_solve", "iterations"} <= names


class TestSoftwareResolution:
    SYSTEM_SPACK = {  # Figure 9
        "packages": {
            "default-compiler": {"spack_spec": "gcc@12.1.1"},
            "default-mpi": {"spack_spec": "mvapich2@2.3.7-gcc12.1.1"},
            "gcc1211": {"spack_spec": "gcc@12.1.1"},
            "lapack": {"spack_spec": "intel-oneapi-mkl@2022.1.0"},
        }
    }
    EXPERIMENT_SPACK = {  # Figure 10 lines 31-40
        "packages": {
            "saxpy": {
                "spack_spec": "saxpy@1.0.0 +openmp ^cmake@3.23.1",
                "compiler": "default-compiler",
            }
        },
        "environments": {"saxpy": {"packages": ["default-mpi", "saxpy"]}},
    }

    def test_merge(self):
        merged = merge_spack_sections(self.SYSTEM_SPACK, self.EXPERIMENT_SPACK)
        assert "default-mpi" in merged["packages"]
        assert "saxpy" in merged["packages"]
        assert "saxpy" in merged["environments"]

    def test_resolve_environment(self):
        merged = merge_spack_sections(self.SYSTEM_SPACK, self.EXPERIMENT_SPACK)
        roots = resolve_environment(merged, "saxpy")
        names = [r.name for r in roots]
        assert names == ["mvapich2", "saxpy"]
        saxpy = roots[1]
        assert saxpy.compiler.name == "gcc"
        assert str(saxpy.compiler.versions) == "12.1.1"
        assert "cmake" in saxpy.dependencies

    def test_unknown_environment(self):
        with pytest.raises(SoftwareError, match="not defined"):
            resolve_environment(self.EXPERIMENT_SPACK, "ghost")

    def test_undefined_package_reference(self):
        bad = {
            "packages": {},
            "environments": {"e": {"packages": ["nothing"]}},
        }
        with pytest.raises(SoftwareError, match="undefined package"):
            resolve_environment(bad, "e")

    def test_undefined_compiler_reference(self):
        bad = {
            "packages": {"p": {"spack_spec": "saxpy@1.0.0", "compiler": "ghost"}},
            "environments": {"e": {"packages": ["p"]}},
        }
        with pytest.raises(SoftwareError, match="compiler reference"):
            resolve_environment(bad, "e")

    def test_missing_spack_spec(self):
        with pytest.raises(SoftwareError, match="spack_spec"):
            resolve_environment(
                {"packages": {"p": {}}, "environments": {"e": {"packages": ["p"]}}},
                "e",
            )


class TestTemplates:
    def test_figure13_render(self):
        variables = {
            "batch_nodes": "#SBATCH -N {n_nodes}",
            "batch_ranks": "#SBATCH -n {n_ranks}",
            "batch_timeout": "#SBATCH -t {batch_time}:00",
            "n_nodes": "2",
            "n_ranks": "16",
            "batch_time": "120",
            "experiment_run_dir": "/tmp/exp",
            "spack_setup": "# spack loaded",
            "command": "srun -N 2 -n 16 saxpy -n 512",
        }
        script = render_template(DEFAULT_EXECUTE_TEMPLATE, variables)
        assert "#SBATCH -N 2" in script
        assert "#SBATCH -n 16" in script
        assert "#SBATCH -t 120:00" in script
        assert "cd /tmp/exp" in script

    def test_undefined_variable_names_culprit(self):
        with pytest.raises(TemplateError, match="batch_nodes"):
            render_template("{batch_nodes}", {})


class TestInputFiles:
    def test_declared_inputs_materialized(self, tmp_path):
        """§3.2.3: workspace setup downloads declared input files."""
        from repro.ramble.application import (
            SpackApplication, executable, input_file, workload,
        )
        from repro.ramble.apps import builtin_applications

        class Withinputs(SpackApplication):
            name = "withinputs"
            executable("e", "stream -n {array_size}", use_mpi=False)
            workload("w", executables=["e"])
            input_file("mesh.dat", url="https://example.org/mesh.dat",
                       description="test mesh")

        builtin_applications().register(Withinputs)
        config = {"ramble": {"applications": {"withinputs": {"workloads": {
            "w": {"experiments": {"run_{array_size}": {
                "variables": {"array_size": "1000"}}}}
        }}}}}
        ws = Workspace.create(tmp_path / "ws", config=config)
        ws.setup()
        mesh = tmp_path / "ws" / "inputs" / "withinputs" / "mesh.dat"
        assert mesh.exists()
        assert "https://example.org/mesh.dat" in mesh.read_text()
