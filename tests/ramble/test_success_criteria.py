"""Tests for success criteria: fom_comparison mode and experiment-level
criteria declared in ramble.yaml (§4.5, Table 1 row 5)."""

import pytest

from repro.ramble import Workspace
from repro.ramble.application import (
    ApplicationError,
    SuccessCriterionDef,
    _eval_comparison,
)
from repro.systems import LocalExecutor


class TestEvalComparison:
    @pytest.mark.parametrize("expr,expected", [
        ("3 > 2", True),
        ("2 > 3", False),
        ("1.5 <= 1.5", True),
        ("10 != 10", False),
        ("1 < 2 < 3", True),
        ("1 < 3 < 2", False),
        ("2 + 2 == 4", True),
        ("10 / 4 > 2", True),
        ("-1 < 0", True),
        ("3 > 2 and 1 < 2", True),
        ("3 > 2 and 2 < 1", False),
        ("0 > 1 or 2 > 1", True),
    ])
    def test_expressions(self, expr, expected):
        assert _eval_comparison(expr) is expected

    def test_rejects_function_calls(self):
        with pytest.raises(ApplicationError):
            _eval_comparison("__import__('os').getpid() > 0")

    def test_rejects_names(self):
        with pytest.raises(ApplicationError):
            _eval_comparison("x > 1")

    def test_rejects_garbage(self):
        with pytest.raises(ApplicationError, match="bad success formula"):
            _eval_comparison(">>>")


class TestFomComparisonCriterion:
    def test_passes_when_formula_holds(self):
        crit = SuccessCriterionDef("fast", mode="fom_comparison",
                                   fom_name="bandwidth",
                                   formula="{value} > 0.5")
        assert crit.check_fom([1.2, 0.8])

    def test_fails_when_any_value_violates(self):
        crit = SuccessCriterionDef("fast", mode="fom_comparison",
                                   fom_name="bandwidth",
                                   formula="{value} > 0.5")
        assert not crit.check_fom([1.2, 0.1])

    def test_fails_with_no_values(self):
        crit = SuccessCriterionDef("fast", mode="fom_comparison",
                                   fom_name="bandwidth", formula="{value} > 0")
        assert not crit.check_fom([])

    def test_requires_fom_name_and_formula(self):
        with pytest.raises(ApplicationError, match="needs fom_name"):
            SuccessCriterionDef("bad", mode="fom_comparison")

    def test_mode_guards(self):
        string_crit = SuccessCriterionDef("s", mode="string", match="x")
        with pytest.raises(ApplicationError):
            string_crit.check_fom([1])
        fom_crit = SuccessCriterionDef("f", mode="fom_comparison",
                                       fom_name="x", formula="{value} > 0")
        with pytest.raises(ApplicationError):
            fom_crit.check_text("x")


def _config(success_criteria):
    return {
        "ramble": {
            "variables": {"mpi_command": "", "n_ranks": "1"},
            "applications": {"saxpy": {"workloads": {"problem": {
                "experiments": {"saxpy_{n}": {
                    "variables": {"n": "2048"},
                    "success_criteria": success_criteria,
                }}
            }}}},
        }
    }


class TestExperimentLevelCriteria:
    def test_fom_comparison_from_ramble_yaml_passes(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config([
            {"name": "bw_floor", "mode": "fom_comparison",
             "fom_name": "bandwidth", "formula": "{value} > 0.0001"},
        ]))
        ws.setup()
        ws.run(LocalExecutor())
        record = ws.analyze()["experiments"][0]
        assert record["status"] == "SUCCESS"
        names = {c["criterion"]: c["passed"] for c in record["success_criteria"]}
        assert names["bw_floor"] is True
        assert names["pass"] is True  # application's own criterion still runs

    def test_impossible_threshold_fails_experiment(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config([
            {"name": "bw_absurd", "mode": "fom_comparison",
             "fom_name": "bandwidth", "formula": "{value} > 100000000"},
        ]))
        ws.setup()
        ws.run(LocalExecutor())
        record = ws.analyze()["experiments"][0]
        assert record["status"] == "FAILED"

    def test_extra_string_criterion(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config([
            {"name": "verified", "mode": "string", "match": "PASSED"},
        ]))
        ws.setup()
        ws.run(LocalExecutor())
        record = ws.analyze()["experiments"][0]
        assert record["status"] == "SUCCESS"

    def test_missing_fom_fails(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config([
            {"name": "ghost", "mode": "fom_comparison",
             "fom_name": "nonexistent_fom", "formula": "{value} > 0"},
        ]))
        ws.setup()
        ws.run(LocalExecutor())
        record = ws.analyze()["experiments"][0]
        assert record["status"] == "FAILED"
