"""Tests for modifiers (§4.5's hardware counters etc.) and their wiring
into the workspace run/analyze pipeline."""

import pytest

from repro.ramble import Workspace
from repro.ramble.modifiers import (
    CaliperModifier,
    HardwareCountersModifier,
    Modifier,
    ModifierRegistry,
)
from repro.systems import LocalExecutor


def saxpy_config():
    return {
        "ramble": {
            "variables": {"mpi_command": "", "n_ranks": "1"},
            "applications": {"saxpy": {"workloads": {"problem": {
                "experiments": {"saxpy_{n}": {"variables": {"n": "512"}}}
            }}}},
        }
    }


class TestHardwareCountersModifier:
    def test_extra_output_format(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=saxpy_config())
        ws.setup()
        exp = ws.experiments[0]
        text = HardwareCountersModifier().extra_output(exp, "")
        assert "counter cycles:" in text
        assert "counter flops:" in text

    def test_deterministic_per_experiment(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=saxpy_config())
        ws.setup()
        exp = ws.experiments[0]
        mod = HardwareCountersModifier()
        assert mod.extra_output(exp, "") == mod.extra_output(exp, "")

    def test_foms_extractable(self):
        mod = HardwareCountersModifier()
        foms = mod.figures_of_merit()
        names = {f.name for f in foms}
        assert names == {"hwc_cycles", "hwc_instructions", "hwc_flops"}
        sample = "counter cycles: 1234567\n"
        cycles = [f for f in foms if f.name == "hwc_cycles"][0]
        assert cycles.extract(sample) == ["1234567"]

    def test_end_to_end_through_workspace(self, tmp_path):
        """Table 1 row 5's System column: optional hardware counters flow
        from modifier to analyzed FOMs."""
        ws = Workspace.create(tmp_path / "ws", config=saxpy_config())
        ws.setup()
        ws.run(LocalExecutor(), modifiers=[HardwareCountersModifier()])
        results = ws.analyze()
        record = results["experiments"][0]
        assert record["status"] == "SUCCESS"  # app criteria unaffected
        fom_names = {f["name"] for f in record["figures_of_merit"]}
        assert "hwc_cycles" in fom_names
        assert "kernel_time" in fom_names  # app FOMs still extracted

    def test_custom_counter_set(self):
        mod = HardwareCountersModifier(counters=("cycles",))
        assert [f.name for f in mod.figures_of_merit()] == ["hwc_cycles"]


class TestModifierRegistry:
    def test_register_and_get(self):
        reg = ModifierRegistry()
        mod = HardwareCountersModifier()
        reg.register(mod)
        assert reg.get("hardware-counters") is mod

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown modifier"):
            ModifierRegistry().get("ghost")

    def test_all(self):
        reg = ModifierRegistry()
        reg.register(HardwareCountersModifier())
        reg.register(CaliperModifier())
        assert len(reg.all()) == 2


class TestBaseModifier:
    def test_defaults_are_noops(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=saxpy_config())
        ws.setup()
        exp = ws.experiments[0]
        mod = Modifier()
        assert mod.env_vars(exp) == {}
        assert mod.wrap_command("x") == "x"
        assert mod.extra_output(exp, "y") == ""
        assert mod.figures_of_merit() == []

    def test_caliper_modifier_env(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=saxpy_config())
        ws.setup()
        env = CaliperModifier().env_vars(ws.experiments[0])
        assert "CALI_CONFIG" in env

    def test_env_vars_recorded_on_experiment(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=saxpy_config())
        ws.setup()
        ws.run(LocalExecutor(), modifiers=[CaliperModifier()])
        assert ws.experiments[0].variables["env_CALI_CONFIG"] == \
            "runtime-report,profile"
