"""Tests for ramble.yaml's include mechanism (Figure 10 lines 2-4:
``include: [./configs/spack.yaml, ./configs/variables.yaml]``)."""

import yaml

from repro.ramble import Workspace
from repro.systems import LocalExecutor


def build_workspace_with_includes(tmp_path):
    """A workspace whose system-side config arrives via includes, exactly
    like the paper's Figure 10."""
    ws_dir = tmp_path / "ws"
    config = {
        "ramble": {
            "include": [
                "./configs/spack.yaml",
                "./configs/variables.yaml",
            ],
            "applications": {"saxpy": {"workloads": {"problem": {
                "experiments": {"saxpy_{n}": {"variables": {"n": "128"}}}
            }}}},
            "spack": {
                "packages": {
                    "saxpy": {"spack_spec": "saxpy@1.0.0 +openmp",
                              "compiler": "default-compiler"},
                },
                "environments": {"saxpy": {"packages": ["default-mpi", "saxpy"]}},
            },
        }
    }
    ws = Workspace.create(ws_dir, config=config)
    # Figure 9-style system spack.yaml
    (ws_dir / "configs" / "spack.yaml").write_text(yaml.safe_dump({
        "spack": {"packages": {
            "default-compiler": {"spack_spec": "gcc@12.1.1"},
            "default-mpi": {"spack_spec": "mvapich2@2.3.7"},
        }}
    }))
    # Figure 12-style variables.yaml
    (ws_dir / "configs" / "variables.yaml").write_text(yaml.safe_dump({
        "variables": {
            "mpi_command": "srun -N {n_nodes} -n {n_ranks}",
            "batch_submit": "sbatch {execute_experiment}",
            "n_ranks": "2",
        }
    }))
    return ws


class TestIncludes:
    def test_included_variables_used(self, tmp_path):
        ws = build_workspace_with_includes(tmp_path)
        exps = ws.setup()
        script = exps[0].script_path.read_text()
        assert "srun -N 1 -n 2 saxpy -n 128" in script

    def test_included_spack_definitions_resolve(self, tmp_path):
        ws = build_workspace_with_includes(tmp_path)
        exps = ws.setup()
        # environment resolution pulled default-mpi from the included file
        names = {s.name for s in exps[0].env_specs}
        assert names == {"mvapich2", "saxpy"}

    def test_workspace_variables_override_included(self, tmp_path):
        ws = build_workspace_with_includes(tmp_path)
        config = ws.read_config()
        config["ramble"]["variables"] = {"n_ranks": "8"}
        ws.write_config(config)
        exps = ws.setup()
        assert exps[0].variables["n_ranks"] == "8"

    def test_missing_include_tolerated(self, tmp_path):
        ws = build_workspace_with_includes(tmp_path)
        config = ws.read_config()
        config["ramble"]["include"].append("./configs/nonexistent.yaml")
        ws.write_config(config)
        exps = ws.setup()  # must not raise
        assert exps

    def test_runs_end_to_end(self, tmp_path):
        ws = build_workspace_with_includes(tmp_path)
        ws.setup()
        ws.run(LocalExecutor())
        results = ws.analyze()
        assert results["experiments"][0]["status"] == "SUCCESS"

    def test_extra_variables_param(self, tmp_path):
        """The harness hook: extra_variables beat everything."""
        ws = build_workspace_with_includes(tmp_path)
        exps = ws.setup(extra_variables={"n": "4096"})
        assert exps[0].variables["n"] == "4096"
        assert exps[0].name == "saxpy_4096"
