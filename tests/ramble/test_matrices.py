"""Tests for experiment matrix expansion (Figure 10 semantics)."""

import pytest
from hypothesis import given, strategies as st

from repro.ramble.matrices import MatrixError, expand_matrix


class TestFigure10:
    """The paper's exact example must yield 8 experiments."""

    VARIABLES = {
        "processes_per_node": ["8", "4"],
        "n_nodes": ["1", "2"],
        "n_threads": ["2", "4"],
        "n": ["512", "1024"],
        "n_ranks": "8",
    }
    MATRICES = [{"size_threads": ["n", "n_threads"]}]

    def test_count(self):
        exps = expand_matrix(self.VARIABLES, self.MATRICES)
        assert len(exps) == 8  # (2 × 2 crossed) × (2 zipped)

    def test_matrix_crossed(self):
        exps = expand_matrix(self.VARIABLES, self.MATRICES)
        combos = {(e["n"], e["n_threads"]) for e in exps}
        assert combos == {("512", "2"), ("512", "4"), ("1024", "2"), ("1024", "4")}

    def test_zip_preserved(self):
        exps = expand_matrix(self.VARIABLES, self.MATRICES)
        zipped = {(e["processes_per_node"], e["n_nodes"]) for e in exps}
        # zipped pairs only — never ("8","2") crossed with ("4","1")
        assert zipped == {("8", "1"), ("4", "2")}

    def test_scalars_constant(self):
        exps = expand_matrix(self.VARIABLES, self.MATRICES)
        assert all(e["n_ranks"] == "8" for e in exps)


class TestSemantics:
    def test_no_lists_single_experiment(self):
        assert expand_matrix({"a": "1", "b": "2"}) == [{"a": "1", "b": "2"}]

    def test_all_zipped(self):
        exps = expand_matrix({"a": ["1", "2"], "b": ["x", "y"]})
        assert exps == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_zip_length_mismatch(self):
        with pytest.raises(MatrixError, match="equal lengths"):
            expand_matrix({"a": ["1", "2"], "b": ["x"]})

    def test_single_matrix_full_cross(self):
        exps = expand_matrix(
            {"a": ["1", "2"], "b": ["x", "y", "z"]}, [["a", "b"]]
        )
        assert len(exps) == 6

    def test_two_matrices_crossed(self):
        exps = expand_matrix(
            {"a": ["1", "2"], "b": ["x", "y"]}, [["a"], ["b"]]
        )
        assert len(exps) == 4

    def test_matrix_and_zip_combined(self):
        exps = expand_matrix(
            {"a": ["1", "2"], "b": ["x", "y"], "c": ["p", "q", "r"]},
            [["c"]],
        )
        assert len(exps) == 6  # zip(a,b) length 2 × matrix c length 3

    def test_variable_in_two_matrices_rejected(self):
        with pytest.raises(MatrixError, match="two matrices"):
            expand_matrix({"a": ["1"]}, [["a"], ["a"]])

    def test_matrix_undefined_variable(self):
        with pytest.raises(MatrixError, match="undefined"):
            expand_matrix({}, [["ghost"]])

    def test_matrix_scalar_variable_rejected(self):
        with pytest.raises(MatrixError, match="list value"):
            expand_matrix({"a": "1"}, [["a"]])

    def test_empty_matrix_rejected(self):
        with pytest.raises(MatrixError, match="empty"):
            expand_matrix({"a": ["1"]}, [[]])

    def test_multi_key_matrix_entry_rejected(self):
        with pytest.raises(MatrixError, match="exactly one"):
            expand_matrix({"a": ["1"], "b": ["2"]}, [{"m1": ["a"], "m2": ["b"]}])


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_count_formula(n_a, n_b, n_zip):
    """#experiments = |a| × |b| × zip-length for crossed a,b + zipped c,d."""
    variables = {
        "a": [str(i) for i in range(n_a)],
        "b": [str(i) for i in range(n_b)],
        "c": [str(i) for i in range(n_zip)],
        "d": [str(i) for i in range(n_zip)],
    }
    exps = expand_matrix(variables, [["a", "b"]])
    assert len(exps) == n_a * n_b * n_zip


@given(st.integers(min_value=1, max_value=5))
def test_every_vector_complete(n):
    variables = {"a": [str(i) for i in range(n)], "s": "fixed"}
    for vector in expand_matrix(variables, [["a"]]):
        assert set(vector) == {"a", "s"}
