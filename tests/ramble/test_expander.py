"""Tests for the Ramble variable expander."""

import pytest
from hypothesis import given, strategies as st

from repro.ramble.expander import Expander, ExpansionError


class TestBasicExpansion:
    def test_simple(self):
        e = Expander({"n": "512"})
        assert e.expand("saxpy -n {n}") == "saxpy -n 512"

    def test_multiple(self):
        e = Expander({"n_nodes": "2", "n_ranks": "16"})
        assert e.expand("srun -N {n_nodes} -n {n_ranks}") == "srun -N 2 -n 16"

    def test_nested_references(self):
        e = Expander({"a": "{b}", "b": "{c}", "c": "42"})
        assert e.expand("{a}") == "42"

    def test_undefined_raises(self):
        e = Expander({})
        with pytest.raises(ExpansionError, match="undefined"):
            e.expand("{missing}")

    def test_cycle_detected(self):
        e = Expander({"a": "{b}", "b": "{a}"})
        with pytest.raises(ExpansionError, match="cyclic"):
            e.expand("{a}")

    def test_self_cycle(self):
        e = Expander({"a": "{a}"})
        with pytest.raises(ExpansionError, match="cyclic"):
            e.expand_var("a")

    def test_no_refs_passthrough(self):
        e = Expander({})
        assert e.expand("plain text") == "plain text"

    def test_expand_var(self):
        e = Expander({"cmd": "run -n {n}", "n": "8"})
        assert e.expand_var("cmd") == "run -n 8"


class TestArithmetic:
    def test_figure10_rank_derivation(self):
        # n_ranks = processes_per_node * n_nodes (Ramble's derived variable)
        e = Expander({"processes_per_node": "8", "n_nodes": "2",
                      "n_ranks": "{processes_per_node}*{n_nodes}"})
        assert e.expand_var("n_ranks") == "16"

    def test_nested_arithmetic(self):
        e = Expander({"a": "4", "b": "{a}*2", "c": "{b}+1"})
        assert e.expand_var("c") == "9"

    def test_division_floats(self):
        e = Expander({"x": "10", "half": "{x}/4"})
        assert e.expand_var("half") == "2.5"

    def test_literal_number_untouched(self):
        e = Expander({"n": "0512"})
        assert e.expand("{n}") == "0512"

    def test_version_string_not_arithmetic(self):
        e = Expander({"v": "2.3.7-gcc12.1.1"})
        assert e.expand("{v}") == "2.3.7-gcc12.1.1"

    def test_command_flags_not_arithmetic(self):
        e = Expander({"n": "8"})
        assert e.expand("saxpy -n {n}") == "saxpy -n 8"

    def test_pure_arith_string_evaluated(self):
        e = Expander({})
        assert e.expand("3*4") == "12"


class TestHelpers:
    def test_copy_with(self):
        base = Expander({"a": "1"})
        derived = base.copy_with({"b": "2"})
        assert derived.expand("{a}{b}") == "12"
        assert "b" not in base

    def test_expand_all(self):
        e = Expander({"a": "1", "b": "{a}0"})
        assert e.expand_all() == {"a": "1", "b": "10"}

    def test_set(self):
        e = Expander({})
        e.set("x", "5")
        assert e.expand("{x}") == "5"


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=100))
def test_multiplication_property(a, b):
    e = Expander({"a": str(a), "b": str(b), "prod": "{a}*{b}"})
    assert e.expand_var("prod") == str(a * b)


@given(st.text(alphabet=st.characters(blacklist_characters="{}"), max_size=40))
def test_braceless_text_unchanged(text):
    from repro.ramble.expander import _is_arith_expr

    e = Expander({})
    if not _is_arith_expr(text):
        assert e.expand(text) == text
