"""Tests for workspace archives (functional reproducibility, §5/§7.1)."""

import json

import pytest

from repro.ramble import Workspace
from repro.ramble.archive import (
    ArchiveError,
    archive_workspace,
    load_archive,
    manifest_hash,
    restore_workspace,
    save_archive,
)
from repro.systems import LocalExecutor


def _config(n_values=("256", "512")):
    return {
        "ramble": {
            "variables": {"mpi_command": "", "n_ranks": "1"},
            "applications": {"saxpy": {"workloads": {"problem": {
                "experiments": {"saxpy_{n}": {
                    "variables": {"n": list(n_values)},
                    "matrices": [["n"]],
                }}
            }}}},
        }
    }


@pytest.fixture
def ws(tmp_path):
    ws = Workspace.create(tmp_path / "ws", config=_config())
    ws.setup()
    return ws


class TestArchive:
    def test_bundle_contents(self, ws):
        bundle = archive_workspace(ws)
        assert bundle["archive_version"] == 1
        assert len(bundle["experiments"]) == 2
        assert "manifest_hash" in bundle
        assert "results" not in bundle  # not analyzed yet

    def test_results_included_after_analyze(self, ws):
        ws.run(LocalExecutor())
        ws.analyze()
        bundle = archive_workspace(ws)
        assert bundle["results"]["experiments"]

    def test_manifest_hash_ignores_results(self, ws):
        before = archive_workspace(ws)
        ws.run(LocalExecutor())
        ws.analyze()
        after = archive_workspace(ws)
        assert before["manifest_hash"] == after["manifest_hash"]

    def test_manifest_hash_tracks_specification(self, tmp_path):
        a = Workspace.create(tmp_path / "a", config=_config())
        a.setup()
        b = Workspace.create(tmp_path / "b", config=_config(("999",)))
        b.setup()
        assert (manifest_hash(archive_workspace(a))
                != manifest_hash(archive_workspace(b)))

    def test_same_spec_same_hash(self, tmp_path):
        a = Workspace.create(tmp_path / "a", config=_config())
        a.setup()
        b = Workspace.create(tmp_path / "b", config=_config())
        b.setup()
        assert (manifest_hash(archive_workspace(a))
                == manifest_hash(archive_workspace(b)))


class TestRoundTrip:
    def test_save_load(self, ws, tmp_path):
        bundle = archive_workspace(ws)
        path = save_archive(bundle, tmp_path / "archive.json")
        loaded = load_archive(path)
        assert loaded["manifest_hash"] == bundle["manifest_hash"]

    def test_tampered_archive_rejected(self, ws, tmp_path):
        bundle = archive_workspace(ws)
        path = save_archive(bundle, tmp_path / "archive.json")
        data = json.loads(path.read_text())
        data["config"]["ramble"]["variables"]["n_ranks"] = "9999"
        path.write_text(json.dumps(data))
        with pytest.raises(ArchiveError, match="hash mismatch"):
            load_archive(path)

    def test_wrong_version_rejected(self, ws, tmp_path):
        bundle = archive_workspace(ws)
        bundle["archive_version"] = 99
        path = save_archive(bundle, tmp_path / "archive.json")
        with pytest.raises(ArchiveError, match="unsupported"):
            load_archive(path)

    def test_restore_reproduces_experiment_set(self, ws, tmp_path):
        """The paper's functional-reproducibility property: a collaborator
        restoring the archive regenerates the identical experiments."""
        bundle = archive_workspace(ws)
        restored = restore_workspace(bundle, tmp_path / "restored")
        experiments = restored.setup()
        assert [e.name for e in experiments] == \
            [e["name"] for e in bundle["experiments"]]
        # variables match too (modulo absolute paths)
        for new, old in zip(experiments, bundle["experiments"]):
            assert new.variables["n"] == old["variables"]["n"]

    def test_restored_workspace_runs(self, ws, tmp_path):
        bundle = archive_workspace(ws)
        restored = restore_workspace(bundle, tmp_path / "restored")
        restored.setup()
        restored.run(LocalExecutor())
        results = restored.analyze()
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])

    def test_incomplete_bundle_rejected(self, tmp_path):
        with pytest.raises(ArchiveError, match="missing"):
            restore_workspace({"experiments": []}, tmp_path / "x")


from hypothesis import given, settings, strategies as st


@given(st.lists(st.integers(min_value=16, max_value=4096), min_size=1,
                max_size=4, unique=True))
@settings(max_examples=10, deadline=None)
def test_archive_restore_reproducibility_property(tmp_path_factory, ns):
    """Property: for any experiment matrix, archive→restore→setup yields
    exactly the archived experiment set (functional reproducibility)."""
    config = _config(tuple(str(n) for n in ns))
    ws = Workspace.create(tmp_path_factory.mktemp("a") / "ws", config=config)
    ws.setup()
    bundle = archive_workspace(ws)
    restored = restore_workspace(bundle, tmp_path_factory.mktemp("b") / "ws")
    experiments = restored.setup()
    assert [e.name for e in experiments] == \
        [e["name"] for e in bundle["experiments"]]
    assert manifest_hash(archive_workspace(restored)) == \
        bundle["manifest_hash"]
