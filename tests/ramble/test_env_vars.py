"""Tests for workload env_vars (Figure 10 lines 14-16)."""

from repro.ramble import Workspace
from repro.systems import LocalExecutor


def _config():
    return {
        "ramble": {
            "variables": {"mpi_command": "", "n_ranks": "1"},
            "applications": {"saxpy": {"workloads": {"problem": {
                "env_vars": {"set": {"OMP_NUM_THREADS": "{n_threads}"}},
                "experiments": {"saxpy_{n}_{n_threads}": {
                    "variables": {"n": "256", "n_threads": ["2", "4"]},
                    "matrices": [["n_threads"]],
                }},
            }}}},
        }
    }


class TestEnvVars:
    def test_export_lines_in_script(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config())
        exps = ws.setup()
        by_name = {e.name: e for e in exps}
        script2 = by_name["saxpy_256_2"].script_path.read_text()
        script4 = by_name["saxpy_256_4"].script_path.read_text()
        assert "export OMP_NUM_THREADS=2" in script2
        assert "export OMP_NUM_THREADS=4" in script4

    def test_recorded_in_variables(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config())
        exps = ws.setup()
        assert exps[0].variables["env_OMP_NUM_THREADS"] in ("2", "4")

    def test_export_does_not_break_execution(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config())
        ws.setup()
        outcomes = ws.run(LocalExecutor())
        assert all(o["returncode"] == 0 for o in outcomes)
        results = ws.analyze()
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])

    def test_no_env_vars_section_ok(self, tmp_path):
        cfg = _config()
        del cfg["ramble"]["applications"]["saxpy"]["workloads"]["problem"]["env_vars"]
        ws = Workspace.create(tmp_path / "ws", config=cfg)
        exps = ws.setup()
        assert "export" not in exps[0].script_path.read_text()
