"""Tests for the application DSL (Figure 8) and builtin applications."""

import pytest

from repro.ramble.application import (
    ApplicationBase,
    ApplicationError,
    FigureOfMeritDef,
    SpackApplication,
    SuccessCriterionDef,
    executable,
    figure_of_merit,
    success_criteria,
    workload,
    workload_variable,
)
from repro.ramble.apps import Amg2023, OsuMicroBenchmarks, Saxpy, Stream, builtin_applications


class TestSaxpyFigure8:
    """The paper's Figure 8 definition, checked field by field."""

    def test_name(self):
        assert Saxpy.app_name() == "saxpy"

    def test_executable(self):
        exe = Saxpy.executables["p"]
        assert exe.command == "saxpy -n {n}"
        assert exe.use_mpi is True

    def test_workload(self):
        wl = Saxpy.get_workload("problem")
        assert wl.executables == ["p"]

    def test_workload_variable(self):
        var = Saxpy.get_workload("problem").variables["n"]
        assert var.default == "1"
        assert var.description == "problem size"

    def test_figure_of_merit_regex(self):
        fom = Saxpy.figures_of_merit["success"]
        assert fom.extract("blah\nKernel done\n") == ["Kernel done"]
        assert fom.extract("no marker") == []

    def test_success_criterion(self):
        crit = Saxpy.success_criteria["pass"]
        assert crit.mode == "string"
        assert crit.check_text("...\nKernel done\n")
        assert not crit.check_text("crash")

    def test_default_variables(self):
        assert Saxpy.default_variables("problem")["n"] == "1"

    def test_unknown_workload(self):
        with pytest.raises(ApplicationError, match="unknown workload"):
            Saxpy.get_workload("nonexistent")


class TestFomExtraction:
    def test_amg_foms_from_real_output(self):
        from repro.benchmarks.amg import run_amg

        text = run_amg(problem=1, n=8).report()
        setup = Amg2023.figures_of_merit["fom_setup"].extract(text)
        solve = Amg2023.figures_of_merit["fom_solve"].extract(text)
        iters = Amg2023.figures_of_merit["iterations"].extract(text)
        assert len(setup) == 1 and float(setup[0]) > 0
        assert len(solve) == 1 and float(solve[0]) > 0
        assert int(iters[0]) >= 1

    def test_stream_foms_from_real_output(self):
        from repro.benchmarks.stream import run_stream

        text = run_stream(20_000, 3).report()
        triad = Stream.figures_of_merit["triad_bw"].extract(text)
        assert len(triad) == 1 and float(triad[0]) > 0
        assert Stream.success_criteria["validates"].check_text(text)

    def test_osu_foms_from_real_output(self):
        from repro.benchmarks.osu import run_collective

        text = run_collective("bcast", 8, max_size=64, iterations=3).report()
        total = OsuMicroBenchmarks.figures_of_merit["total_time"].extract(text)
        lat = OsuMicroBenchmarks.figures_of_merit["latency_8b"].extract(text)
        assert len(total) == 1
        assert len(lat) == 1

    def test_saxpy_foms_from_real_output(self):
        from repro.benchmarks.saxpy import run_saxpy

        text = run_saxpy(256).report()
        assert Saxpy.figures_of_merit["success"].extract(text) == ["Kernel done"]
        assert float(Saxpy.figures_of_merit["kernel_time"].extract(text)[0]) > 0


class TestDslValidation:
    def test_bad_regex_rejected(self):
        with pytest.raises(ApplicationError, match="bad regex"):
            FigureOfMeritDef("x", "(unclosed", "g")

    def test_missing_group_rejected(self):
        with pytest.raises(ApplicationError, match="no group"):
            FigureOfMeritDef("x", r"(?P<a>\d+)", "b")

    def test_bad_success_mode(self):
        with pytest.raises(ApplicationError, match="unknown mode"):
            SuccessCriterionDef("x", mode="telepathy")

    def test_workload_variable_unknown_workload(self):
        with pytest.raises(ApplicationError, match="unknown workload"):
            class Bad(SpackApplication):
                name = "bad"
                executable("e", "bad")
                workload("w", executables=["e"])
                workload_variable("v", default="1", workloads=["nope"])

    def test_workload_unknown_executable(self):
        class Dangling(SpackApplication):
            name = "dangling"
            executable("e", "ok")
            workload("w", executables=["ghost"])

        with pytest.raises(ApplicationError, match="unknown executable"):
            Dangling.commands_for("w")

    def test_inheritance_copies_workloads(self):
        class Base(SpackApplication):
            name = "base"
            executable("e", "run")
            workload("w", executables=["e"])
            workload_variable("v", default="1", workloads=["w"])

        class Derived(Base):
            name = "derived"
            workload_variable("v2", default="2", workloads=["w"])

        assert "v2" in Derived.get_workload("w").variables
        assert "v2" not in Base.get_workload("w").variables


class TestRepository:
    def test_builtin_apps_registered(self):
        repo = builtin_applications()
        assert {
            "amg2023", "osu-micro-benchmarks", "quicksilver", "saxpy", "stream"
        } <= set(repo.all_names())

    def test_get_unknown(self):
        with pytest.raises(ApplicationError, match="unknown application"):
            builtin_applications().get("mystery")

    def test_register_custom(self):
        from repro.ramble.apps import ApplicationRepository

        class Custom(SpackApplication):
            name = "custom"
            executable("e", "custom")
            workload("w", executables=["e"])

        repo = ApplicationRepository()
        repo.register(Custom)
        assert repo.get("custom") is Custom
