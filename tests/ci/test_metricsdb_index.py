"""The (system, benchmark)/(system, experiment) indexes behind
MetricsDatabase.query — indexed lookups must match a full scan exactly."""

from repro.ci import MetricsDatabase


def _populated():
    db = MetricsDatabase()
    for system in ("cts1", "tioga", "sierra"):
        for benchmark in ("stream", "amg2023"):
            for i in range(4):
                db.record(
                    benchmark, system, f"{benchmark}_exp{i % 2}",
                    "total_time", 10.0 * (i + 1),
                    manifest={"epoch": str(i)},
                )
    return db


class TestIndexedQuery:
    def test_system_benchmark_matches_full_scan(self):
        db = _populated()
        indexed = db.query(system="cts1", benchmark="stream")
        scanned = [r for r in db._records
                   if r.system == "cts1" and r.benchmark == "stream"]
        assert indexed == scanned
        assert len(indexed) == 4
        # seq (insertion) order preserved
        assert [r.seq for r in indexed] == sorted(r.seq for r in indexed)

    def test_experiment_query(self):
        db = _populated()
        recs = db.query(system="tioga", experiment="amg2023_exp1")
        assert recs
        assert all(r.system == "tioga" and r.experiment == "amg2023_exp1"
                   for r in recs)
        scanned = [r for r in db._records
                   if r.system == "tioga" and r.experiment == "amg2023_exp1"]
        assert recs == scanned

    def test_filters_compose_with_index(self):
        db = _populated()
        recs = db.query(system="cts1", benchmark="stream", fom_name="total_time",
                        predicate=lambda r: float(r.value) > 15.0)
        assert all(float(r.value) > 15.0 for r in recs)
        assert len(recs) == 3

    def test_unindexed_paths_still_work(self):
        db = _populated()
        assert len(db.query(benchmark="stream")) == 12
        assert len(db.query()) == 24
        assert db.query(system="absent", benchmark="stream") == []

    def test_from_records_rebuilds_indexes(self):
        db = _populated()
        rebuilt = MetricsDatabase.from_records(db.to_records())
        assert (len(rebuilt.query(system="cts1", benchmark="amg2023"))
                == len(db.query(system="cts1", benchmark="amg2023")))
        assert rebuilt._by_system_benchmark.keys() == db._by_system_benchmark.keys()

    def test_dump_load_round_trip_queries_indexed_path(self, tmp_path):
        """A dump/load cycle must be the identity: sequence numbers
        preserved, both secondary indexes rebuilt, and indexed queries on
        the loaded database identical to the original's."""
        db = _populated()
        path = tmp_path / "metrics.json"
        db.dump(path)
        loaded = MetricsDatabase.load(path)
        assert loaded.to_records() == db.to_records()  # seq preserved
        # the (system, benchmark) indexed path
        for system in ("cts1", "tioga", "sierra"):
            for benchmark in ("stream", "amg2023"):
                assert (loaded.query(system=system, benchmark=benchmark)
                        == db.query(system=system, benchmark=benchmark))
        # the (system, experiment) indexed path
        assert (loaded.query(system="sierra", experiment="stream_exp1")
                == db.query(system="sierra", experiment="stream_exp1"))
        # indexes actually contain the records (not just lazily equal)
        assert set(loaded._by_system_experiment) == set(db._by_system_experiment)
        # new records continue the sequence instead of colliding
        rec = loaded.record("stream", "cts1", "x", "total_time", 1.0)
        assert rec.seq == max(r.seq for r in db._records) + 1

    def test_aggregate_skips_flaky_records(self):
        """aggregate must exclude flaky-tagged samples like series() and the
        regression detector do — one statistics policy across the API."""
        db = MetricsDatabase()
        db.record("stream", "cts1", "e0", "triad_bw", 100.0)
        db.record("stream", "cts1", "e1", "triad_bw", 100.0)
        db.record("stream", "cts1", "e2", "triad_bw", 10.0,
                  manifest={"flaky": "true", "attempts": "3"})
        agg = db.aggregate("triad_bw", group_by="system")
        assert agg["cts1"]["count"] == 2
        assert agg["cts1"]["mean"] == 100.0
        # opt back in to the raw view when wanted
        raw = db.aggregate("triad_bw", group_by="system", exclude_flaky=False)
        assert raw["cts1"]["count"] == 3
