"""Property-based tests for the CI substrate: git DAG invariants and
pipeline execution invariants."""

from hypothesis import given, settings, strategies as st

from repro.ci import GitRepository
from repro.ci.pipeline import build_pipeline, parse_ci_config, run_pipeline

import yaml


# ---------------------------------------------------------------------------
# git
# ---------------------------------------------------------------------------
file_edits = st.lists(
    st.tuples(st.sampled_from("abcde"), st.text(max_size=8)),
    min_size=1, max_size=12,
)


@given(file_edits)
def test_git_head_reflects_all_edits(edits):
    repo = GitRepository("r")
    expected = {}
    for name, content in edits:
        repo.commit("main", f"edit {name}", "user", {name: content})
        expected[name] = content
    assert repo.files_at("main") == expected


@given(file_edits)
def test_git_log_length_matches_commits(edits):
    repo = GitRepository("r")
    for name, content in edits:
        repo.commit("main", "m", "u", {name: content})
    assert len(repo.log("main")) == len(edits) + 1  # + initial commit


@given(file_edits, file_edits)
def test_fork_isolation(upstream_edits, fork_edits):
    upstream = GitRepository("up")
    for name, content in upstream_edits:
        upstream.commit("main", "m", "u", {name: content})
    snapshot = upstream.files_at("main")
    fork = upstream.fork("fork")
    for name, content in fork_edits:
        fork.commit("main", "m", "f", {name: content})
    assert upstream.files_at("main") == snapshot


@given(file_edits)
def test_fetch_is_idempotent(edits):
    upstream = GitRepository("up")
    for name, content in edits:
        upstream.commit("main", "m", "u", {name: content})
    mirror = GitRepository("mirror")
    h1 = mirror.fetch(upstream, "main", as_branch="x")
    h2 = mirror.fetch(upstream, "main", as_branch="x")
    assert h1 is h2
    assert mirror.files_at("x") == upstream.files_at("main")


@given(file_edits)
def test_commit_shas_unique(edits):
    repo = GitRepository("r")
    for name, content in edits:
        repo.commit("main", "same message", "same author", {name: content})
    shas = [c.sha for c in repo.log("main")]
    assert len(shas) == len(set(shas))


# ---------------------------------------------------------------------------
# pipelines
# ---------------------------------------------------------------------------
def _chain_pipeline_yaml(n_jobs: int, fail_at: int) -> str:
    """n jobs in one stage, each needing the previous; job `fail_at` fails."""
    config = {"stages": ["build"]}
    for i in range(n_jobs):
        job = {"stage": "build", "script": [f"step {i}"]}
        if i > 0:
            job["needs"] = [f"job{i - 1}"]
        config[f"job{i}"] = job
    return yaml.safe_dump(config, sort_keys=False)


@given(st.integers(min_value=1, max_value=10), st.data())
@settings(max_examples=30, deadline=None)
def test_chain_failure_skips_exactly_the_suffix(n_jobs, data):
    fail_at = data.draw(st.integers(min_value=0, max_value=n_jobs - 1))
    pipeline = build_pipeline("main", "sha", _chain_pipeline_yaml(n_jobs, fail_at))

    def execute(job):
        index = int(job.name[3:])
        return index != fail_at, ""

    run_pipeline(pipeline, execute)
    statuses = {j.name: j.status for j in pipeline.jobs}
    for i in range(n_jobs):
        if i < fail_at:
            assert statuses[f"job{i}"] == "success"
        elif i == fail_at:
            assert statuses[f"job{i}"] == "failed"
        else:
            assert statuses[f"job{i}"] == "skipped"
    assert not pipeline.succeeded


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=20, deadline=None)
def test_all_green_chain_succeeds(n_jobs):
    pipeline = build_pipeline("main", "sha", _chain_pipeline_yaml(n_jobs, -1))
    executed = []
    run_pipeline(pipeline, lambda j: (executed.append(j.name) or True, ""))
    assert pipeline.succeeded
    assert executed == [f"job{i}" for i in range(n_jobs)]  # needs order


@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                max_size=4, unique=True))
@settings(max_examples=20, deadline=None)
def test_independent_jobs_all_run(names):
    config = {"stages": ["t"]}
    for name in names:
        config[name] = {"stage": "t", "script": ["x"]}
    pipeline = build_pipeline("main", "sha", yaml.safe_dump(config))
    run_pipeline(pipeline, lambda j: (True, ""))
    assert all(j.status == "success" for j in pipeline.jobs)
