"""Tests for multi-site Hubcast federation (Table 1 row 6:
Hubcast@LLNL/RIKEN/AWS)."""

import pytest

from repro.ci import (
    GitHub,
    Runner,
    SecurityCriteria,
)
from repro.ci.federation import Federation

CI_YAML = """
stages: [bench]
bench-job:
  stage: bench
  script: ["run benchmarks"]
"""


def make_federation(runner_ok=None):
    runner_ok = runner_ok or {}
    hub = GitHub()
    canonical = hub.create_repo("llnl", "benchpark")
    canonical.git.commit("main", "seed", "olga", {".gitlab-ci.yml": CI_YAML})
    fed = Federation(canonical)
    for site_name, systems in (("LLNL", ["cts1", "ats2", "ats4"]),
                               ("RIKEN", ["fugaku-sim"]),
                               ("AWS", ["cloud-c6i", "cloud-p4d"])):
        site = fed.add_site(site_name, systems)
        ok = runner_ok.get(site_name, True)
        site.gitlab.register_runner(
            Runner(f"{site_name}-runner", [], lambda job, ok=ok: (ok, site_name))
        )
    return hub, canonical, fed


def open_pr(canonical, author="contributor"):
    fork = canonical.fork(author)
    fork.git.create_branch("fix")
    fork.git.commit("fix", "change", author, {"experiments/x.yaml": "new"})
    return canonical.open_pull_request(fork, "fix", "change", author)


class TestFederation:
    def test_three_sites(self):
        _, _, fed = make_federation()
        assert set(fed.sites) == {"LLNL", "RIKEN", "AWS"}

    def test_duplicate_site_rejected(self):
        _, _, fed = make_federation()
        with pytest.raises(ValueError, match="already federated"):
            fed.add_site("LLNL", [])

    def test_pr_fans_out_after_approval(self):
        _, canonical, fed = make_federation()
        pr = open_pr(canonical)
        pr.approve("site_admin", is_admin=True)
        results = fed.process_pr(pr)
        assert all(p is not None and p.succeeded for p in results.values())
        for site in ("LLNL", "RIKEN", "AWS"):
            assert pr.statuses[f"hubcast/gitlab-ci@{site}"].state == "success"
        assert fed.all_sites_green(pr)

    def test_unapproved_pr_blocked_everywhere(self):
        _, canonical, fed = make_federation()
        pr = open_pr(canonical)
        results = fed.process_pr(pr)
        assert all(p is None for p in results.values())
        assert not fed.all_sites_green(pr)

    def test_one_site_failure_blocks_merge(self):
        _, canonical, fed = make_federation(runner_ok={"RIKEN": False})
        pr = open_pr(canonical)
        pr.approve("site_admin", is_admin=True)
        results = fed.process_pr(pr)
        assert results["LLNL"].succeeded
        assert not results["RIKEN"].succeeded
        assert pr.statuses["hubcast/gitlab-ci@RIKEN"].state == "failure"
        assert not fed.all_sites_green(pr)

    def test_per_site_mirrors_isolated(self):
        _, canonical, fed = make_federation()
        pr = open_pr(canonical)
        pr.approve("site_admin", is_admin=True)
        fed.process_pr(pr)
        for site in fed.sites.values():
            assert f"pr-{pr.number}" in site.hubcast.mirror.git.branches
        # distinct GitLab instances
        labs = {id(site.gitlab) for site in fed.sites.values()}
        assert len(labs) == 3

    def test_site_for_system(self):
        _, _, fed = make_federation()
        assert fed.site_for_system("ats4").name == "LLNL"
        assert fed.site_for_system("cloud-c6i").name == "AWS"
        assert fed.site_for_system("frontier") is None

    def test_empty_federation_never_green(self):
        hub = GitHub()
        canonical = hub.create_repo("o", "r")
        canonical.git.commit("main", "s", "a", {".gitlab-ci.yml": CI_YAML})
        fed = Federation(canonical)
        pr = open_pr(canonical)
        assert not fed.all_sites_green(pr)
