"""Tests for GitLab `retry:` handling and skip reasons in the pipeline."""

import pytest

from repro.ci.jacamar import JacamarExecutor, SiteAccounts
from repro.ci.pipeline import (
    CiConfigError,
    build_pipeline,
    parse_ci_config,
    run_pipeline,
)
from repro.resilience import TransientError


class TestRetryParsing:
    def test_bare_int(self):
        text = "stages: [test]\nj:\n  stage: test\n  script: [x]\n  retry: 2\n"
        job = parse_ci_config(text)["jobs"][0]
        assert job.retry_max == 2
        assert job.retry_when == ["always"]

    def test_mapping_with_when(self):
        text = (
            "stages: [test]\n"
            "j:\n"
            "  stage: test\n"
            "  script: [x]\n"
            "  retry:\n"
            "    max: 1\n"
            "    when: [runner_system_failure, stuck_or_timeout_failure]\n"
        )
        job = parse_ci_config(text)["jobs"][0]
        assert job.retry_max == 1
        assert job.retry_when == [
            "runner_system_failure", "stuck_or_timeout_failure",
        ]

    def test_default_no_retry(self):
        text = "stages: [test]\nj:\n  stage: test\n  script: [x]\n"
        job = parse_ci_config(text)["jobs"][0]
        assert job.retry_max == 0

    def test_max_capped_like_gitlab(self):
        text = "stages: [test]\nj:\n  stage: test\n  script: [x]\n  retry: 5\n"
        with pytest.raises(CiConfigError, match="0..2"):
            parse_ci_config(text)

    def test_unknown_when_value_rejected(self):
        text = (
            "stages: [test]\n"
            "j:\n  stage: test\n  script: [x]\n"
            "  retry:\n    max: 1\n    when: [cosmic_rays]\n"
        )
        with pytest.raises(CiConfigError, match="cosmic_rays"):
            parse_ci_config(text)


CI_RETRY = """
stages: [test]
flaky:
  stage: test
  script: [run-benchmark]
  retry:
    max: 2
    when: [runner_system_failure]
"""


class TestRetryExecution:
    def test_transient_failures_retried_to_success(self):
        pipeline = build_pipeline("main", "abc", CI_RETRY)
        calls = []

        def execute(job):
            calls.append(job.name)
            if len(calls) < 3:
                return False, "node flap", "runner_system_failure"
            return True, "ok"

        run_pipeline(pipeline, execute)
        job = pipeline.jobs[0]
        assert pipeline.succeeded
        assert job.status == "success"
        assert job.attempts == 3
        assert "retrying" in job.log
        assert job.failure_reason is None

    def test_non_matching_reason_not_retried(self):
        pipeline = build_pipeline("main", "abc", CI_RETRY)
        calls = []

        def execute(job):
            calls.append(job.name)
            return False, "bad exit", "script_failure"

        run_pipeline(pipeline, execute)
        job = pipeline.jobs[0]
        assert job.status == "failed"
        assert job.attempts == 1  # when: [runner_system_failure] only
        assert job.failure_reason == "script_failure"

    def test_retry_budget_exhausted(self):
        pipeline = build_pipeline("main", "abc", CI_RETRY)

        def execute(job):
            return False, "node flap", "runner_system_failure"

        run_pipeline(pipeline, execute)
        job = pipeline.jobs[0]
        assert job.status == "failed"
        assert job.attempts == 3  # 1 + retry_max
        assert pipeline.status == "failed"

    def test_two_tuple_runner_still_works(self):
        """Legacy (ok, log) runners keep working; failure defaults to
        script_failure."""
        text = ("stages: [test]\n"
                "j:\n  stage: test\n  script: [x]\n  retry: 1\n")
        pipeline = build_pipeline("main", "abc", text)
        calls = []

        def execute(job):
            calls.append(1)
            return (len(calls) >= 2), "log line"

        run_pipeline(pipeline, execute)
        assert pipeline.succeeded
        assert pipeline.jobs[0].attempts == 2


CI_NEEDS = """
stages: [test]
a:
  stage: test
  script: [x]
b:
  stage: test
  script: [y]
  needs: [c]
c:
  stage: test
  script: [z]
  needs: [b]
"""


class TestSkipReasons:
    def test_unresolved_needs_reason_in_log(self):
        pipeline = build_pipeline("main", "abc", CI_NEEDS)
        run_pipeline(pipeline, lambda j: (True, ""))
        by_name = {j.name: j for j in pipeline.jobs}
        assert by_name["a"].status == "success"
        for name in ("b", "c"):
            assert by_name[name].status == "skipped"
            assert "unresolved needs" in by_name[name].log
        assert pipeline.status == "failed"

    def test_failed_need_reason_in_log(self):
        text = (
            "stages: [test]\n"
            "a:\n  stage: test\n  script: [x]\n"
            "b:\n  stage: test\n  script: [y]\n  needs: [a]\n"
        )
        pipeline = build_pipeline("main", "abc", text)
        run_pipeline(pipeline, lambda j: (j.name != "a", "boom"))
        by_name = {j.name: j for j in pipeline.jobs}
        assert by_name["b"].status == "skipped"
        assert "did not succeed" in by_name["b"].log


class TestJacamarFailureClassification:
    def _jacamar(self, runner):
        accounts = SiteAccounts(site="site-x", users={"alice"})
        return JacamarExecutor(accounts, runner)

    def test_transient_runner_failure_classified(self):
        def runner(job, user):
            raise TransientError("node flap mid-job")

        pipeline = build_pipeline("main", "abc", CI_RETRY)
        jac = self._jacamar(runner)
        run_pipeline(pipeline, jac.bound_runner("alice"))
        job = pipeline.jobs[0]
        assert job.attempts == 3  # runner_system_failure matches `when:`
        assert job.status == "failed"
        assert jac.audit_log[0]["failure_reason"] == "runner_system_failure"

    def test_account_refusal_not_retried(self):
        pipeline = build_pipeline("main", "abc", CI_RETRY)
        jac = self._jacamar(lambda job, user: (True, "ok"))
        run_pipeline(pipeline, jac.bound_runner("mallory"))
        job = pipeline.jobs[0]
        assert job.status == "failed"
        assert job.attempts == 1  # runner_unsupported is not in `when:`
