"""Tests for Hubcast mirroring (§3.3.1), Jacamar execution (§3.3.2),
the object store, and the metrics database — plus the full Figure 6 loop."""

import pytest

from repro.ci import (
    GitHub,
    GitLab,
    Hubcast,
    JacamarError,
    JacamarExecutor,
    MetricsDatabase,
    ObjectStore,
    ObjectStoreError,
    Runner,
    SecurityCriteria,
    SiteAccounts,
)
from repro.ci.hubcast import STATUS_CONTEXT

CI_YAML = """
stages: [bench]
saxpy-cts1:
  stage: bench
  tags: [cts1]
  script: ["saxpy -n 512"]
"""


def make_world(runner_ok=True, trusted=(), accounts=("site_admin", "olga")):
    hub = GitHub()
    canonical = hub.create_repo("llnl", "benchpark")
    canonical.git.commit("main", "seed", "olga", {
        ".gitlab-ci.yml": CI_YAML,
        "README.md": "benchpark",
    })
    lab = GitLab("llnl-gitlab")
    site = SiteAccounts("LLNL", users=set(accounts))
    jacamar = JacamarExecutor(site, lambda job, user: (runner_ok, f"ran as {user}"))

    hubcast = Hubcast(canonical, lab,
                      SecurityCriteria(trusted_users=set(trusted)))

    def open_pr(author="contributor", files=None):
        fork = canonical.fork(author)
        fork.git.create_branch("fix")
        fork.git.commit("fix", "change", author,
                        files or {"experiments/saxpy/ramble.yaml": "new"})
        pr = canonical.open_pull_request(fork, "fix", "change", author)
        # register the jacamar-bound runner for this PR's trigger context
        lab.runners.clear()
        lab.register_runner(Runner(
            "cts1-runner", ["cts1"],
            jacamar.bound_runner(pr.author, approved_by=pr.admin_approver),
        ))
        return pr

    return hub, canonical, lab, jacamar, hubcast, open_pr


class TestHubcast:
    def test_pr_opening_sets_pending(self):
        *_, open_pr = make_world()
        pr = open_pr()
        assert pr.statuses[STATUS_CONTEXT].state == "pending"

    def test_untrusted_pr_blocked_without_approval(self):
        *_, hubcast, open_pr = make_world()[3:]  # jacamar, hubcast, open_pr
        pr = open_pr()
        assert hubcast.process_pr(pr) is None
        assert pr.statuses[STATUS_CONTEXT].state == "pending"
        assert any("blocked" in line for line in hubcast.audit_log)

    def test_approved_pr_mirrors_and_runs(self):
        _, _, lab, jacamar, hubcast, open_pr = make_world()
        pr = open_pr()
        pr.approve("site_admin", is_admin=True)
        # refresh runner binding with the approver identity
        lab.runners.clear()
        lab.register_runner(Runner(
            "cts1-runner", ["cts1"],
            jacamar.bound_runner(pr.author, approved_by=pr.admin_approver),
        ))
        pipeline = hubcast.process_pr(pr)
        assert pipeline is not None and pipeline.succeeded
        assert pr.statuses[STATUS_CONTEXT].state == "success"
        assert f"pr-{pr.number}" in hubcast.mirror.git.branches

    def test_trusted_user_skips_approval(self):
        _, _, lab, jacamar, hubcast, open_pr = make_world(trusted=("olga",))
        pr = open_pr(author="olga")
        pipeline = hubcast.process_pr(pr)
        assert pipeline is not None

    def test_untrusted_pr_touching_ci_config_blocked(self):
        _, _, lab, jacamar, hubcast, open_pr = make_world()
        pr = open_pr(files={".gitlab-ci.yml": "stages: [pwn]\np:\n  script: [x]\n"})
        pr.approve("site_admin", is_admin=True)
        assert hubcast.process_pr(pr) is None
        assert any("protected" in line for line in hubcast.audit_log)

    def test_failed_pipeline_streams_failure(self):
        _, _, lab, jacamar, hubcast, open_pr = make_world(runner_ok=False)
        pr = open_pr()
        pr.approve("site_admin", is_admin=True)
        lab.runners.clear()
        lab.register_runner(Runner(
            "cts1-runner", ["cts1"],
            jacamar.bound_runner(pr.author, approved_by=pr.admin_approver),
        ))
        pipeline = hubcast.process_pr(pr)
        assert pipeline is not None and not pipeline.succeeded
        assert pr.statuses[STATUS_CONTEXT].state == "failure"


class TestJacamar:
    def test_runs_as_triggering_user_with_account(self):
        site = SiteAccounts("LLNL", users={"olga"})
        jac = JacamarExecutor(site, lambda job, user: (True, user))
        assert jac.resolve_user("olga", None) == "olga"

    def test_falls_back_to_approver(self):
        """§3.3.2: job by a user without a site account runs as the approver."""
        site = SiteAccounts("LLNL", users={"site_admin"})
        jac = JacamarExecutor(site, lambda job, user: (True, user))
        assert jac.resolve_user("outsider", "site_admin") == "site_admin"

    def test_refuses_service_account(self):
        site = SiteAccounts("LLNL", users=set())
        jac = JacamarExecutor(site, lambda job, user: (True, user))
        with pytest.raises(JacamarError, match="refusing"):
            jac.resolve_user("outsider", "also_outsider")

    def test_audit_log_attributes_user(self):
        from repro.ci.pipeline import CiJob

        site = SiteAccounts("LLNL", users={"site_admin"})
        jac = JacamarExecutor(site, lambda job, user: (True, "ok"))
        job = CiJob("j", "test", ["x"])
        jac.execute(job, "outsider", "site_admin")
        assert jac.audit_log[0]["triggered_by"] == "outsider"
        assert jac.audit_log[0]["ran_as"] == "site_admin"
        assert job.run_as_user == "site_admin"


class TestObjectStore:
    def test_put_get(self):
        store = ObjectStore()
        bucket = store.create_bucket("cache")
        bucket.put("k", b"data")
        assert bucket.get("k") == b"data"
        assert bucket.has("k")

    def test_missing_raises(self):
        bucket = ObjectStore().create_bucket("b")
        with pytest.raises(ObjectStoreError):
            bucket.get_or_raise("nope")

    def test_list_prefix(self):
        bucket = ObjectStore().create_bucket("b")
        bucket.put("buildcache/a", b"1")
        bucket.put("buildcache/b", b"2")
        bucket.put("other", b"3")
        assert bucket.list("buildcache/") == ["buildcache/a", "buildcache/b"]

    def test_non_bytes_rejected(self):
        bucket = ObjectStore().create_bucket("b")
        with pytest.raises(TypeError):
            bucket.put("k", "string")

    def test_binary_cache_backend(self):
        """The §7.2 rolling binary cache: mini-Spack cache on S3 bucket."""
        from repro.spack import BinaryCache, Concretizer, Installer, Store
        import tempfile

        bucket = ObjectStore().create_bucket("spack-binaries")
        cache = BinaryCache(backend=bucket)
        spec = Concretizer().concretize("cmake")
        with tempfile.TemporaryDirectory() as tmp:
            Installer(Store(f"{tmp}/a"), binary_cache=cache).install(spec)
        assert bucket.list("buildcache/")  # binaries published to S3


class TestMetricsDatabase:
    def _db(self):
        db = MetricsDatabase()
        for p in (2, 4, 8):
            db.record("osu-micro-benchmarks", "cts1", f"osu_bcast_{p}",
                      "total_time", 0.01 * p, "s", {"n_ranks": str(p)})
        db.record("saxpy", "ats2", "saxpy_512", "bandwidth", 800.0, "GB/s")
        return db

    def test_query_filters(self):
        db = self._db()
        assert len(db.query(system="cts1")) == 3
        assert len(db.query(benchmark="saxpy")) == 1
        assert len(db.query(fom_name="total_time", system="ats2")) == 0

    def test_series_for_extrap(self):
        series = self._db().series(
            "osu-micro-benchmarks", "cts1", "total_time", "n_ranks")
        assert series == [(2.0, 0.02), (4.0, 0.04), (8.0, 0.08)]

    def test_aggregate(self):
        agg = self._db().aggregate("total_time", group_by="system")
        assert agg["cts1"]["count"] == 3

    def test_usage_metrics(self):
        usage = self._db().benchmark_usage()
        assert usage["osu-micro-benchmarks"] == 3

    def test_ingest_analysis(self):
        db = MetricsDatabase()
        analysis = {"experiments": [{
            "name": "saxpy_512", "application": "saxpy",
            "variables": {"n": "512"}, "status": "SUCCESS",
            "figures_of_merit": [
                {"name": "bandwidth", "value": 5.0, "units": "GB/s"},
                {"name": "kernel_time", "value": 0.001, "units": "s"},
            ]}]}
        assert db.ingest_analysis("cts1", analysis) == 2
        assert db.query(fom_name="bandwidth")[0].manifest["n"] == "512"

    def test_dump_load_roundtrip(self, tmp_path):
        db = self._db()
        db.dump(tmp_path / "db.json")
        again = MetricsDatabase.load(tmp_path / "db.json")
        assert len(again) == len(db)
        assert again.series("osu-micro-benchmarks", "cts1", "total_time",
                            "n_ranks") == db.series(
            "osu-micro-benchmarks", "cts1", "total_time", "n_ranks")
