"""Tests for the git model and the GitHub/GitLab service models."""

import pytest

from repro.ci import (
    GitError,
    GitHub,
    GitLab,
    GitLabError,
    GitRepository,
    Runner,
)
from repro.ci.pipeline import CiConfigError, parse_ci_config


class TestGit:
    def test_commit_advances_branch(self):
        repo = GitRepository("r")
        c1 = repo.commit("main", "add file", "alice", {"a.txt": "1"})
        assert repo.head("main") is c1
        assert repo.files_at("main") == {"a.txt": "1"}

    def test_commits_accumulate_files(self):
        repo = GitRepository("r")
        repo.commit("main", "a", "alice", {"a.txt": "1"})
        repo.commit("main", "b", "alice", {"b.txt": "2"})
        assert repo.files_at("main") == {"a.txt": "1", "b.txt": "2"}

    def test_branching(self):
        repo = GitRepository("r")
        repo.commit("main", "base", "alice", {"a": "1"})
        repo.create_branch("feature")
        repo.commit("feature", "change", "bob", {"a": "2"})
        assert repo.files_at("main")["a"] == "1"
        assert repo.files_at("feature")["a"] == "2"

    def test_duplicate_branch(self):
        repo = GitRepository("r")
        with pytest.raises(GitError, match="already exists"):
            repo.create_branch("main")

    def test_unknown_branch(self):
        with pytest.raises(GitError, match="no branch"):
            GitRepository("r").head("ghost")

    def test_log_order(self):
        repo = GitRepository("r")
        repo.commit("main", "first", "a", {})
        repo.commit("main", "second", "a", {})
        messages = [c.message for c in repo.log()]
        assert messages == ["second", "first", "initial commit"]

    def test_fork_shares_history(self):
        repo = GitRepository("upstream")
        c = repo.commit("main", "x", "a", {"f": "1"})
        fork = repo.fork("fork")
        assert fork.head("main") is c
        fork.commit("main", "fork change", "b", {"f": "2"})
        assert repo.files_at("main")["f"] == "1"  # upstream untouched

    def test_fetch(self):
        upstream = GitRepository("up")
        upstream.commit("main", "x", "a", {"f": "1"})
        mirror = GitRepository("mirror")
        head = mirror.fetch(upstream, "main", as_branch="pr-1")
        assert mirror.head("pr-1") is head
        assert mirror.files_at("pr-1") == {"f": "1"}

    def test_unique_shas(self):
        repo = GitRepository("r")
        c1 = repo.commit("main", "same", "a", {"f": "1"})
        repo2 = GitRepository("r2")
        c2 = repo2.commit("main", "same", "a", {"f": "1"})
        assert c1.sha != c2.sha  # global counter breaks ties


class TestGitHub:
    def test_pr_flow(self):
        hub = GitHub()
        canonical = hub.create_repo("llnl", "benchpark")
        canonical.git.commit("main", "seed", "olga", {"README": "v1"})
        fork = canonical.fork("contributor")
        fork.git.create_branch("fix")
        fork.git.commit("fix", "improve", "contributor", {"README": "v2"})
        pr = canonical.open_pull_request(fork, "fix", "Improve", "contributor")
        assert pr.number == 1
        assert pr.state == "open"

    def test_empty_pr_rejected(self):
        hub = GitHub()
        canonical = hub.create_repo("llnl", "benchpark")
        fork = canonical.fork("c")
        with pytest.raises(GitError, match="no changes"):
            canonical.open_pull_request(fork, "main", "noop", "c")

    def test_admin_approval_logic(self):
        hub = GitHub()
        canonical = hub.create_repo("llnl", "benchpark")
        fork = canonical.fork("c")
        fork.git.create_branch("fix")
        fork.git.commit("fix", "x", "c", {"f": "1"})
        pr = canonical.open_pull_request(fork, "fix", "t", "c")
        assert not pr.approved_by_admin
        pr.approve("random_user", is_admin=False)
        assert not pr.approved_by_admin
        pr.approve("site_admin", is_admin=True)
        assert pr.approved_by_admin
        assert pr.admin_approver == "site_admin"

    def test_merge_requires_checks(self):
        hub = GitHub()
        canonical = hub.create_repo("llnl", "benchpark")
        fork = canonical.fork("c")
        fork.git.create_branch("fix")
        fork.git.commit("fix", "x", "c", {"f": "1"})
        pr = canonical.open_pull_request(fork, "fix", "t", "c")
        with pytest.raises(GitError, match="status checks"):
            canonical.merge(pr.number)
        pr.set_status("ci", "success")
        head = canonical.merge(pr.number)
        assert pr.state == "merged"
        assert canonical.git.files_at("main")["f"] == "1"
        assert head.files["f"] == "1"

    def test_webhook_fires(self):
        hub = GitHub()
        events = []
        hub.register_webhook(lambda repo, pr: events.append(pr.number))
        canonical = hub.create_repo("llnl", "benchpark")
        fork = canonical.fork("c")
        fork.git.create_branch("fix")
        fork.git.commit("fix", "x", "c", {"f": "1"})
        canonical.open_pull_request(fork, "fix", "t", "c")
        assert events == [1]


SIMPLE_CI = """
stages: [build, test]
build-job:
  stage: build
  script: ["echo build"]
test-job:
  stage: test
  tags: [cts1]
  script: ["echo test"]
"""


class TestCiConfig:
    def test_parse(self):
        parsed = parse_ci_config(SIMPLE_CI)
        assert parsed["stages"] == ["build", "test"]
        assert len(parsed["jobs"]) == 2

    def test_missing_script(self):
        with pytest.raises(CiConfigError, match="no script"):
            parse_ci_config("job:\n  stage: test\nstages: [test]\n")

    def test_unknown_stage(self):
        with pytest.raises(CiConfigError, match="unknown stage"):
            parse_ci_config("stages: [a]\nj:\n  stage: b\n  script: [x]\n")

    def test_no_jobs(self):
        with pytest.raises(CiConfigError, match="no jobs"):
            parse_ci_config("stages: [test]\n")

    def test_hidden_jobs_skipped(self):
        text = SIMPLE_CI + "\n.hidden:\n  script: [x]\n"
        parsed = parse_ci_config(text)
        assert all(j.name != ".hidden" for j in parsed["jobs"])

    def test_variables_merge(self):
        text = """
stages: [test]
variables: {GLOBAL: "1"}
j:
  stage: test
  script: [x]
  variables: {LOCAL: "2"}
"""
        job = parse_ci_config(text)["jobs"][0]
        assert job.variables == {"GLOBAL": "1", "LOCAL": "2"}


class TestGitLab:
    def _lab_with_runner(self, ok=True):
        lab = GitLab()
        lab.register_runner(
            Runner("runner-cts1", ["cts1"], lambda job: (ok, "log"))
        )
        return lab

    def test_pipeline_runs(self):
        lab = self._lab_with_runner()
        project = lab.create_project("mirror/benchpark")
        project.git.commit("main", "ci", "bot", {".gitlab-ci.yml": SIMPLE_CI})
        pipeline = project.trigger_pipeline("main")
        assert pipeline.succeeded
        assert all(j.status == "success" for j in pipeline.jobs)

    def test_pipeline_failure_skips_later_stages(self):
        lab = self._lab_with_runner(ok=False)
        project = lab.create_project("mirror/benchpark")
        project.git.commit("main", "ci", "bot", {".gitlab-ci.yml": SIMPLE_CI})
        pipeline = project.trigger_pipeline("main")
        assert pipeline.status == "failed"
        test_job = [j for j in pipeline.jobs if j.stage == "test"][0]
        assert test_job.status == "skipped"

    def test_no_ci_file(self):
        lab = self._lab_with_runner()
        project = lab.create_project("mirror/x")
        with pytest.raises(GitLabError, match="no .gitlab-ci.yml"):
            project.trigger_pipeline("main")

    def test_missing_runner_tag_fails_job(self):
        lab = GitLab()
        lab.register_runner(Runner("other", ["ats2"], lambda j: (True, "")))
        project = lab.create_project("mirror/x")
        project.git.commit("main", "ci", "bot", {".gitlab-ci.yml": SIMPLE_CI})
        pipeline = project.trigger_pipeline("main")
        assert pipeline.status == "failed"

    def test_duplicate_project(self):
        lab = GitLab()
        lab.create_project("p")
        with pytest.raises(GitLabError, match="already exists"):
            lab.create_project("p")
