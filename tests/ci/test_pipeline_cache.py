"""CI job result reuse: content-fingerprinted jobs skip re-execution."""

from repro.ci.pipeline import build_pipeline, job_fingerprint, run_pipeline
from repro.perf import ContentStore

CI_TEXT = """
stages: [build, bench]
build-app:
  stage: build
  script: ["spack install app"]
bench-app:
  stage: bench
  needs: [build-app]
  script: ["ramble on"]
"""


def _exec_ok(calls):
    def execute(job):
        calls.append(job.name)
        return True, f"ran {job.name}"
    return execute


class TestJobFingerprint:
    def test_same_content_same_fingerprint(self):
        j1 = build_pipeline("main", "aaa111", CI_TEXT).jobs[0]
        j2 = build_pipeline("main", "bbb222", CI_TEXT).jobs[0]
        # the commit sha is not part of the key — unchanged jobs reuse
        assert job_fingerprint(j1) == job_fingerprint(j2)

    def test_script_change_changes_fingerprint(self):
        j1 = build_pipeline("main", "aaa", CI_TEXT).jobs[0]
        j2 = build_pipeline("main", "aaa",
                            CI_TEXT.replace("spack install app",
                                            "spack install app+cuda")).jobs[0]
        assert job_fingerprint(j1) != job_fingerprint(j2)


class TestPipelineJobCache:
    def test_second_pipeline_serves_from_cache(self):
        cache = ContentStore("ci-jobs")
        calls = []
        first = run_pipeline(build_pipeline("main", "sha1", CI_TEXT),
                             _exec_ok(calls), job_cache=cache)
        assert first.succeeded
        assert calls == ["build-app", "bench-app"]

        second = run_pipeline(build_pipeline("main", "sha2", CI_TEXT),
                              _exec_ok(calls), job_cache=cache)
        assert second.succeeded
        assert calls == ["build-app", "bench-app"]  # nothing re-executed
        for job in second.jobs:
            assert job.status == "cached"
            assert job.attempts == 0
            assert "# cached: identical job succeeded in pipeline" in job.log
            assert "@ sha1" in job.log  # provenance names the producing run

    def test_cached_needs_satisfy_dependents(self):
        """A dependent whose needed job was served from cache still runs."""
        cache = ContentStore("ci-jobs")
        run_pipeline(build_pipeline("main", "s1", CI_TEXT),
                     _exec_ok([]), job_cache=cache)
        changed = CI_TEXT.replace("ramble on", "ramble on --rerun")
        calls = []
        result = run_pipeline(build_pipeline("main", "s2", changed),
                              _exec_ok(calls), job_cache=cache)
        assert result.succeeded
        by_name = {j.name: j for j in result.jobs}
        assert by_name["build-app"].status == "cached"
        assert by_name["bench-app"].status == "success"
        assert calls == ["bench-app"]  # only the changed job re-ran

    def test_failed_jobs_not_cached(self):
        cache = ContentStore("ci-jobs")
        run_pipeline(build_pipeline("main", "s1", CI_TEXT),
                     lambda job: (False, "boom"), job_cache=cache)
        assert len(cache) == 0
        calls = []
        second = run_pipeline(build_pipeline("main", "s2", CI_TEXT),
                              _exec_ok(calls), job_cache=cache)
        assert second.succeeded
        assert calls == ["build-app", "bench-app"]  # re-executed, then cached

    def test_flaky_success_not_cached(self):
        """A job that only passed after a retry is not a deterministic
        pass — it must re-execute next pipeline."""
        flaky_text = CI_TEXT.replace(
            "build-app:\n  stage: build",
            "build-app:\n  stage: build\n  retry: 1",
        )
        cache = ContentStore("ci-jobs")
        outcomes = {"build-app": [False, True], "bench-app": [True]}

        def flaky_exec(job):
            ok = outcomes[job.name].pop(0)
            return ok, f"{job.name}: {'ok' if ok else 'fail'}"

        first = run_pipeline(build_pipeline("main", "s1", flaky_text),
                             flaky_exec, job_cache=cache)
        assert first.succeeded
        by_name = {j.name: j for j in first.jobs}
        assert by_name["build-app"].attempts == 2  # needed a retry
        # the clean bench job is cached; the flaky build job is not
        keys = {job_fingerprint(j) for j in first.jobs}
        cached = [k for k in keys if cache.peek(k) is not None]
        assert len(cached) == 1
        assert cache.peek(job_fingerprint(by_name["build-app"])) is None

    def test_no_cache_means_no_behaviour_change(self):
        calls = []
        run_pipeline(build_pipeline("main", "s1", CI_TEXT), _exec_ok(calls))
        run_pipeline(build_pipeline("main", "s2", CI_TEXT), _exec_ok(calls))
        assert calls == ["build-app", "bench-app"] * 2
