"""Tests for co-design predictions (§1's procurement modeling)."""

import dataclasses

import pytest

from repro.systems import get_system
from repro.systems.codesign import compare_systems, predict_suite
from repro.systems.descriptor import GpuSpec, InterconnectSpec, SystemDescriptor


def hypothetical(name="proposal-x", mem_bw=400.0, cores=128,
                 core_gflops=30.0, net_bw=100.0, latency=0.5,
                 gpu=None) -> SystemDescriptor:
    return SystemDescriptor(
        name=name, site="vendor", nodes=512, cores_per_node=cores,
        core_gflops=core_gflops, node_mem_bw_gbs=mem_bw,
        memory_per_node_gb=512.0, cpu_target="zen3",
        interconnect=InterconnectSpec("next-gen", latency, net_bw,
                                      "binomial"),
        gpu=gpu,
    )


class TestPredictSuite:
    def test_all_foms_present(self):
        pred = predict_suite(get_system("cts1"))
        assert set(pred) >= {"saxpy_bandwidth_gbs", "stream_triad_mbs",
                             "amg_fom_per_cycle", "bcast_seconds"}
        assert all(v > 0 for v in pred.values())

    def test_more_memory_bandwidth_helps_stream(self):
        slow = predict_suite(hypothetical(mem_bw=100.0))
        fast = predict_suite(hypothetical(mem_bw=400.0))
        assert fast["stream_triad_mbs"] > slow["stream_triad_mbs"]
        assert fast["amg_fom_per_cycle"] > slow["amg_fom_per_cycle"]

    def test_better_network_helps_bcast_only(self):
        slow = predict_suite(hypothetical(net_bw=10.0, latency=2.0))
        fast = predict_suite(hypothetical(net_bw=200.0, latency=0.3))
        assert fast["bcast_seconds"] < slow["bcast_seconds"]
        assert fast["stream_triad_mbs"] == slow["stream_triad_mbs"]

    def test_gpu_system_predicted_faster(self):
        cpu_only = hypothetical()
        gpu = hypothetical(
            name="gpu", gpu=GpuSpec("H100", 4, 80.0, 30000.0, 3000.0))
        assert predict_suite(gpu)["amg_fom_per_cycle"] > \
            predict_suite(cpu_only)["amg_fom_per_cycle"]

    def test_rank_cap_respected(self):
        tiny = hypothetical(cores=2)
        tiny = dataclasses.replace(tiny, nodes=2)
        pred = predict_suite(tiny)
        assert pred["n_ranks_used"] == 4  # 2 nodes × 2 cores < workload's 512


class TestCompareSystems:
    def test_paper_systems_ranked(self):
        rows = compare_systems(
            [get_system("cts1"), get_system("ats2"), get_system("ats4")],
            reference=get_system("cts1"),
        )
        names = [r["system"] for r in rows]
        # the GPU systems beat the 2016-era CPU cluster
        assert names[-1] == "cts1"
        cts1_row = rows[-1]
        assert cts1_row["score"] == pytest.approx(1.0)  # reference vs itself

    def test_scores_sorted_descending(self):
        rows = compare_systems(
            [hypothetical(mem_bw=100.0, name="weak"),
             hypothetical(mem_bw=800.0, name="strong")],
            reference=get_system("cts1"),
        )
        assert rows[0]["system"] == "strong"
        assert rows[0]["score"] >= rows[1]["score"]

    def test_dominating_proposal_scores_above_one(self):
        monster = hypothetical(mem_bw=2000.0, core_gflops=100.0,
                               net_bw=400.0, latency=0.2, name="monster")
        rows = compare_systems([monster], reference=get_system("cts1"))
        assert rows[0]["score"] > 1.0
        assert all(s > 1.0 for s in rows[0]["speedups"].values())

    def test_empty_proposals_rejected(self):
        with pytest.raises(ValueError):
            compare_systems([], reference=get_system("cts1"))
