"""Tests for hardware degradation injection (repro.systems.failures)."""

import pytest

from repro.systems import get_system
from repro.systems.failures import (
    Degradation,
    FailureSchedule,
    HEALTHY,
    apply_degradation,
)


class TestDegradation:
    def test_memory_degradation(self):
        cts1 = get_system("cts1")
        degraded = apply_degradation(
            cts1, Degradation("bad-dimm", memory_bw_factor=0.5)
        )
        assert degraded.node_mem_bw_gbs == pytest.approx(cts1.node_mem_bw_gbs / 2)
        assert degraded.core_gflops == cts1.core_gflops  # untouched

    def test_original_untouched(self):
        cts1 = get_system("cts1")
        before = cts1.node_mem_bw_gbs
        apply_degradation(cts1, Degradation("d", memory_bw_factor=0.1))
        assert get_system("cts1").node_mem_bw_gbs == before

    def test_network_degradation(self):
        ats4 = get_system("ats4")
        degraded = apply_degradation(
            ats4, Degradation("flaky-switch", network_latency_factor=3.0,
                              network_bw_factor=0.5)
        )
        assert degraded.interconnect.latency_us == pytest.approx(
            ats4.interconnect.latency_us * 3)
        assert degraded.interconnect.bandwidth_gbs == pytest.approx(
            ats4.interconnect.bandwidth_gbs / 2)
        assert degraded.interconnect.collective_algo == \
            ats4.interconnect.collective_algo

    def test_extra_noise(self):
        cts1 = get_system("cts1")
        degraded = apply_degradation(cts1, Degradation("jitter", extra_noise=0.1))
        assert degraded.noise == pytest.approx(cts1.noise + 0.1)

    @pytest.mark.parametrize("kwargs", [
        {"memory_bw_factor": 0.0},
        {"memory_bw_factor": 1.5},
        {"core_flops_factor": -1.0},
        {"network_latency_factor": 0.5},
        {"network_bw_factor": 2.0},
        {"extra_noise": -0.1},
    ])
    def test_invalid_factors(self, kwargs):
        with pytest.raises(ValueError):
            apply_degradation(get_system("cts1"), Degradation("bad", **kwargs))


class TestFailureSchedule:
    def test_healthy_by_default(self):
        schedule = FailureSchedule()
        assert schedule.active_at(0) is HEALTHY
        assert schedule.active_at(100) is HEALTHY

    def test_event_activates_at_epoch(self):
        dimm = Degradation("bad-dimm", memory_bw_factor=0.5)
        schedule = FailureSchedule([(5, dimm)])
        assert schedule.active_at(4) is HEALTHY
        assert schedule.active_at(5) is dimm
        assert schedule.active_at(50) is dimm

    def test_latest_event_wins(self):
        mild = Degradation("mild", memory_bw_factor=0.9)
        severe = Degradation("severe", memory_bw_factor=0.4)
        schedule = FailureSchedule([(3, mild), (7, severe)])
        assert schedule.active_at(5) is mild
        assert schedule.active_at(7) is severe

    def test_repair_event(self):
        """A repair is just scheduling HEALTHY again."""
        dimm = Degradation("bad-dimm", memory_bw_factor=0.5)
        schedule = FailureSchedule([(3, dimm), (6, HEALTHY)])
        assert schedule.active_at(4).name == "bad-dimm"
        assert schedule.active_at(6) is HEALTHY

    def test_system_at(self):
        cts1 = get_system("cts1")
        schedule = FailureSchedule(
            [(2, Degradation("d", memory_bw_factor=0.5))])
        assert schedule.system_at(cts1, 0) is cts1  # zero-copy when healthy
        degraded = schedule.system_at(cts1, 2)
        assert degraded.node_mem_bw_gbs == pytest.approx(60.0)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            FailureSchedule([(-1, HEALTHY)])

    def test_add_keeps_sorted(self):
        schedule = FailureSchedule()
        schedule.add(9, Degradation("late"))
        schedule.add(2, Degradation("early"))
        assert [e[0] for e in schedule.events] == [2, 9]

    def test_add_rejects_negative_epoch(self):
        """add() validates like the constructor does."""
        schedule = FailureSchedule()
        with pytest.raises(ValueError, match="negative"):
            schedule.add(-3, Degradation("late"))
        assert schedule.events == []

    def test_add_validates_degradation(self):
        schedule = FailureSchedule()
        with pytest.raises(ValueError, match="memory_bw_factor"):
            schedule.add(1, Degradation("bogus", memory_bw_factor=2.0))
        assert schedule.events == []


class TestDegradationAffectsBenchmarks:
    def test_degraded_memory_slows_saxpy(self, tmp_path):
        """The end-to-end effect a regression detector must see."""
        from repro.systems import SystemExecutor
        from repro.systems.performance import scale_compute_time

        cts1 = get_system("cts1")
        degraded = apply_degradation(
            cts1, Degradation("bad-dimm", memory_bw_factor=0.5))
        text = "saxpy bandwidth: 10.0 GB/s\n"
        healthy_bw = float(scale_compute_time(text, 20.0, cts1)
                           .split(": ")[1].split(" ")[0])
        degraded_bw = float(scale_compute_time(text, 20.0, degraded)
                            .split(": ")[1].split(" ")[0])
        assert degraded_bw == pytest.approx(healthy_bw / 2, rel=1e-6)

    def test_degraded_network_slows_collectives(self):
        from repro.benchmarks.osu import run_collective

        ats4 = get_system("ats4")
        slow = apply_degradation(
            ats4, Degradation("flaky", network_latency_factor=10.0))
        healthy = run_collective("bcast", 64, max_size=64, iterations=5,
                                 interconnect=ats4.interconnect,
                                 verify=False).total_seconds
        flaky = run_collective("bcast", 64, max_size=64, iterations=5,
                               interconnect=slow.interconnect,
                               verify=False).total_seconds
        assert flaky > healthy * 5
