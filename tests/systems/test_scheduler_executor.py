"""Tests for the batch scheduler simulator and the experiment executors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.systems import BatchScheduler, Job, SchedulerError, get_system
from repro.systems.descriptor import InterconnectSpec, SystemDescriptor
from repro.systems.executor import (
    ExecutorError,
    LocalExecutor,
    SystemExecutor,
    parse_script_commands,
    _strip_launcher,
)


def small_system(nodes=4):
    return SystemDescriptor(
        name="mini", site="test", nodes=nodes, cores_per_node=8,
        core_gflops=10.0, node_mem_bw_gbs=50.0, memory_per_node_gb=32.0,
        cpu_target="zen3", interconnect=InterconnectSpec("net", 1.0, 10.0),
    )


class TestScheduler:
    def test_single_job(self):
        s = BatchScheduler(small_system())
        s.submit(Job("a", nodes=2, duration=10.0))
        makespan = s.run_until_complete()
        assert makespan == 10.0
        assert s.completed[0].start_time == 0.0

    def test_serializes_when_full(self):
        s = BatchScheduler(small_system(nodes=4))
        s.submit(Job("a", nodes=4, duration=10.0))
        s.submit(Job("b", nodes=4, duration=10.0))
        assert s.run_until_complete() == 20.0

    def test_parallel_when_fits(self):
        s = BatchScheduler(small_system(nodes=4))
        s.submit(Job("a", nodes=2, duration=10.0))
        s.submit(Job("b", nodes=2, duration=10.0))
        assert s.run_until_complete() == 10.0

    def test_fifo_blocks_behind_big_job(self):
        s = BatchScheduler(small_system(nodes=4), policy="fifo")
        s.submit(Job("running", nodes=3, duration=100.0))
        s.submit(Job("big", nodes=4, duration=10.0))
        s.submit(Job("tiny", nodes=1, duration=5.0))
        makespan = s.run_until_complete()
        tiny = next(j for j in s.completed if j.name == "tiny")
        assert tiny.start_time >= 100.0  # blocked behind 'big'
        assert makespan >= 110.0

    def test_backfill_slips_tiny_job_through(self):
        s = BatchScheduler(small_system(nodes=4), policy="backfill")
        s.submit(Job("running", nodes=3, duration=100.0))
        s.submit(Job("big", nodes=4, duration=10.0))
        s.submit(Job("tiny", nodes=1, duration=5.0))
        s.run_until_complete()
        tiny = next(j for j in s.completed if j.name == "tiny")
        assert tiny.start_time == 0.0  # fits the hole, ends before reservation

    def test_backfill_does_not_delay_head(self):
        s = BatchScheduler(small_system(nodes=4), policy="backfill")
        s.submit(Job("running", nodes=3, duration=100.0))
        s.submit(Job("big", nodes=4, duration=10.0))
        s.submit(Job("long_tiny", nodes=1, duration=500.0))
        s.run_until_complete()
        big = next(j for j in s.completed if j.name == "big")
        # long_tiny would overrun the reservation, so big starts at t=100.
        assert big.start_time == 100.0

    def test_oversized_job_rejected(self):
        s = BatchScheduler(small_system(nodes=4))
        with pytest.raises(SchedulerError, match="requests"):
            s.submit(Job("huge", nodes=5, duration=1.0))

    def test_bad_duration_rejected(self):
        s = BatchScheduler(small_system())
        with pytest.raises(SchedulerError, match="duration"):
            s.submit(Job("zero", nodes=1, duration=0.0))

    def test_bad_policy(self):
        with pytest.raises(SchedulerError, match="policy"):
            BatchScheduler(small_system(), policy="roulette")

    def test_future_submission(self):
        s = BatchScheduler(small_system())
        s.submit(Job("later", nodes=1, duration=5.0, submit_time=50.0))
        assert s.run_until_complete() == 55.0

    def test_stats(self):
        s = BatchScheduler(small_system(nodes=1))
        s.submit(Job("a", nodes=1, duration=10.0))
        s.submit(Job("b", nodes=1, duration=10.0))
        s.run_until_complete()
        stats = s.stats()
        assert stats["jobs"] == 2
        assert stats["makespan"] == 20.0
        assert stats["avg_wait"] == 5.0

    @given(st.lists(
        st.tuples(st.integers(1, 4), st.floats(0.5, 20.0)),
        min_size=1, max_size=12,
    ))
    @settings(max_examples=25, deadline=None)
    def test_backfill_never_slower_than_fifo(self, jobs):
        def run(policy):
            s = BatchScheduler(small_system(nodes=4), policy=policy)
            for i, (nodes, dur) in enumerate(jobs):
                s.submit(Job(f"j{i}", nodes=nodes, duration=dur))
            return s.run_until_complete()

        assert run("backfill") <= run("fifo") + 1e-9

    @given(st.lists(
        st.tuples(st.integers(1, 4), st.floats(0.5, 20.0)),
        min_size=1, max_size=10,
    ))
    @settings(max_examples=25, deadline=None)
    def test_no_node_oversubscription(self, jobs):
        s = BatchScheduler(small_system(nodes=4))
        for i, (nodes, dur) in enumerate(jobs):
            s.submit(Job(f"j{i}", nodes=nodes, duration=dur))
        s.run_until_complete()
        # Check overlap intervals never exceed capacity.
        events = []
        for j in s.completed:
            events.append((j.start_time, j.nodes))
            events.append((j.end_time, -j.nodes))
        # At equal timestamps, releases (negative deltas) happen before
        # starts — a job can begin the instant another frees its nodes.
        used = 0
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            used += delta
            assert used <= 4


class TestScriptParsing:
    SCRIPT = """#!/bin/bash
#SBATCH -N 2
#SBATCH -n 16
cd /tmp/exp
# spack environment loaded
srun -N 2 -n 16 saxpy -n 512 >> /tmp/exp/log.out 2>&1
"""

    def test_parse_commands(self):
        cmds = parse_script_commands(self.SCRIPT)
        assert cmds == [["srun", "-N", "2", "-n", "16", "saxpy", "-n", "512"]]

    def test_parse_strips_bare_stderr_redirect(self):
        """`cmd 2>&1` with no preceding `>` must not leave a dangling `2`
        token (stripping `>` first used to produce ["cmd", "2"])."""
        assert parse_script_commands("saxpy -n 8 2>&1\n") == \
            [["saxpy", "-n", "8"]]
        assert parse_script_commands("saxpy -n 8 > out.log 2>&1\n") == \
            [["saxpy", "-n", "8"]]

    def test_strip_launcher_srun(self):
        argv, ranks = _strip_launcher(
            ["srun", "-N", "2", "-n", "16", "saxpy", "-n", "512"]
        )
        assert argv == ["saxpy", "-n", "512"]
        assert ranks == 16

    def test_strip_launcher_jsrun(self):
        argv, ranks = _strip_launcher(
            ["jsrun", "-n", "8", "-a", "1", "-g", "1", "amg", "-n", "16"]
        )
        assert argv[0] == "amg"
        assert ranks == 8

    def test_strip_launcher_flux(self):
        argv, ranks = _strip_launcher(
            ["flux", "run", "-N", "2", "-n", "32", "amg", "-n", "8"]
        )
        assert argv[0] == "amg"
        assert ranks == 32

    def test_no_launcher(self):
        argv, ranks = _strip_launcher(["stream", "-n", "100"])
        assert argv == ["stream", "-n", "100"]
        assert ranks == 1


class _FakeExperiment:
    def __init__(self, tmp_path, script, n_ranks="1", name="exp1"):
        self.name = name
        self.variables = {"n_ranks": n_ranks}
        self.script_path = tmp_path / "execute_experiment"
        self.script_path.write_text(script)
        self.run_dir = tmp_path
        self.log_file = tmp_path / f"{name}.out"


class TestExecutors:
    def test_local_runs_saxpy(self, tmp_path):
        exp = _FakeExperiment(
            tmp_path, "#!/bin/bash\nsaxpy -n 128 >> log 2>&1\n"
        )
        result = LocalExecutor().execute(exp)
        assert result["returncode"] == 0
        assert "Kernel done" in result["stdout"]

    def test_local_unknown_program(self, tmp_path):
        exp = _FakeExperiment(tmp_path, "#!/bin/bash\nwarpdrive --engage\n")
        result = LocalExecutor().execute(exp)
        assert result["returncode"] == 127
        assert "ERROR" in result["stdout"]

    def test_system_executor_header(self, tmp_path):
        exp = _FakeExperiment(tmp_path, "#!/bin/bash\nsaxpy -n 128\n")
        result = SystemExecutor(get_system("ats4")).execute(exp)
        assert "# executing on ats4" in result["stdout"]

    def test_system_executor_rejects_oversubscription(self, tmp_path):
        exp = _FakeExperiment(
            tmp_path,
            "#!/bin/bash\nsrun -N 99999 -n 9999999 saxpy -n 128\n",
            n_ranks="9999999",
        )
        result = SystemExecutor(get_system("cts1")).execute(exp)
        assert result["returncode"] == 1
        assert "exceeds" in result["stdout"]

    def test_system_noise_deterministic(self, tmp_path):
        exp = _FakeExperiment(tmp_path, "#!/bin/bash\nsaxpy -n 64\n")
        ex = SystemExecutor(get_system("cloud-c6i"))
        assert ex._noise("a") == ex._noise("a")
        assert ex._noise("a") != ex._noise("b")

    def test_amg_dispatch_ranks(self, tmp_path):
        exp = _FakeExperiment(
            tmp_path,
            "#!/bin/bash\nsrun -N 1 -n 4 amg -problem 1 -n 8 -ranks 4\n",
            n_ranks="4",
        )
        result = LocalExecutor().execute(exp)
        assert "ranks = 4" in result["stdout"]
        assert "FOM_Solve" in result["stdout"]


class TestGpuVariantExecution:
    def _run(self, experiment_id, system):
        import tempfile
        from pathlib import Path
        from repro.core import benchpark_setup

        tmp = Path(tempfile.mkdtemp())
        session = benchpark_setup(experiment_id, system, tmp / "ws")
        results = session.run_all()
        values = [
            f["value"]
            for e in results["experiments"]
            for f in e["figures_of_merit"]
            if f["name"] == "bandwidth"
        ]
        log = session.workspace.experiments[0].log_file.read_text()
        return max(values), log

    def test_cuda_variant_offloads(self):
        """§2's heterogeneous example: the +cuda build of saxpy runs on the
        V100 and shows GPU-class bandwidth; the +openmp build on the same
        machine shows CPU-class bandwidth."""
        cpu_bw, cpu_log = self._run("saxpy/openmp", "ats2")
        gpu_bw, gpu_log = self._run("saxpy/cuda", "ats2")
        assert "# offloading to V100" in gpu_log
        assert "offloading" not in cpu_log
        # V100 HBM (900 GB/s) vs Power9 DDR (170 GB/s): ~5x
        assert gpu_bw > cpu_bw * 3

    def test_gpu_variant_on_cpu_system_stays_cpu(self):
        """No GPU on cts1: a +cuda request still runs, on the CPU."""
        import tempfile
        from pathlib import Path
        from repro.core import benchpark_setup

        tmp = Path(tempfile.mkdtemp())
        session = benchpark_setup("saxpy/cuda", "cts1", tmp / "ws")
        results = session.run_all()
        log = session.workspace.experiments[0].log_file.read_text()
        assert "offloading" not in log
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])
