"""Tests for system descriptors, registry, and MPI cost models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.systems import (
    InterconnectSpec,
    MpiCostModel,
    SYSTEMS,
    all_system_names,
    get_system,
)
from repro.systems.descriptor import GpuSpec, SystemDescriptor


class TestRegistry:
    def test_paper_systems_present(self):
        # §4: "These Benchpark benchmarks currently build & run on 3 systems"
        for name in ("cts1", "ats2", "ats4"):
            assert name in SYSTEMS

    def test_cloud_systems_present(self):
        assert "cloud-c6i" in SYSTEMS

    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown system"):
            get_system("summit")

    def test_cts1_is_cpu_only_xeon(self):
        cts1 = get_system("cts1")
        assert not cts1.has_gpu
        assert cts1.cpu_target == "broadwell"
        assert cts1.scheduler == "slurm"

    def test_ats2_is_power9_v100(self):
        ats2 = get_system("ats2")
        assert ats2.cpu_target == "power9le"
        assert ats2.gpu.model == "V100"
        assert ats2.gpu.runtime == "cuda"
        assert "jsrun" in ats2.mpi_command

    def test_ats4_is_trento_mi250x(self):
        ats4 = get_system("ats4")
        assert ats4.cpu_target == "zen3_trento"
        assert ats4.gpu.model == "MI-250X"
        assert ats4.gpu.runtime == "rocm"
        assert "flux" in ats4.mpi_command

    def test_all_targets_in_archspec(self):
        from repro.archspec import get_target

        for system in SYSTEMS.values():
            get_target(system.cpu_target)  # must not raise

    def test_all_validate(self):
        for system in SYSTEMS.values():
            system.validate()

    def test_gpu_systems_have_more_flops(self):
        assert get_system("ats4").node_gflops() > get_system("cts1").node_gflops()

    def test_to_dict_roundtrip_fields(self):
        d = get_system("ats2").to_dict()
        assert d["gpu"]["model"] == "V100"
        assert d["interconnect"]["collective_algo"] == "binomial"

    def test_names_sorted(self):
        assert all_system_names() == sorted(all_system_names())


class TestDescriptorValidation:
    def _base(self, **kw):
        defaults = dict(
            name="t", site="x", nodes=4, cores_per_node=8, core_gflops=10.0,
            node_mem_bw_gbs=100.0, memory_per_node_gb=64.0, cpu_target="zen3",
            interconnect=InterconnectSpec("net", 1.0, 10.0),
        )
        defaults.update(kw)
        return SystemDescriptor(**defaults)

    def test_valid(self):
        self._base().validate()

    def test_zero_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            self._base(nodes=0).validate()

    def test_bad_collective_algo(self):
        with pytest.raises(ValueError, match="collective_algo"):
            self._base(
                interconnect=InterconnectSpec("net", 1.0, 10.0, "quantum")
            ).validate()

    def test_total_cores(self):
        assert self._base().total_cores == 32

    def test_total_gpus(self):
        s = self._base(gpu=GpuSpec("V100", 4, 16.0, 7000.0, 900.0))
        assert s.total_gpus == 16


CONTENDED = InterconnectSpec("old", 2.0, 5.0, "contended", 0.1)
BINOMIAL = InterconnectSpec("ib", 1.0, 25.0, "binomial")


class TestMpiCostModel:
    def test_ptp(self):
        m = MpiCostModel(BINOMIAL)
        assert m.ptp(0) == pytest.approx(1e-6)
        assert m.ptp(25_000_000) == pytest.approx(1e-6 + 1e-3, rel=1e-3)

    def test_collectives_zero_for_one_rank(self):
        m = MpiCostModel(BINOMIAL)
        for op in ("bcast", "reduce", "allreduce", "allgather", "barrier"):
            assert m.cost(op, 1, 1024) == 0.0

    def test_binomial_bcast_log_rounds(self):
        m = MpiCostModel(BINOMIAL)
        assert m.bcast(8, 0) == pytest.approx(3 * m.ptp(0))
        assert m.bcast(9, 0) == pytest.approx(4 * m.ptp(0))

    def test_contended_bcast_linear(self):
        m = MpiCostModel(CONTENDED)
        c = m.bcast(101, 100)
        assert c == pytest.approx(100 * m.ptp(100) * 1.1)

    def test_allreduce_rabenseifner_bandwidth_term(self):
        m = MpiCostModel(BINOMIAL)
        big = m.allreduce(16, 1 << 20)
        # bandwidth term dominates: ≈ 2·m·β
        assert big == pytest.approx(2 * (1 << 20) / 25e9, rel=0.2)

    def test_allgather_ring(self):
        m = MpiCostModel(BINOMIAL)
        assert m.allgather(5, 100) == pytest.approx(4 * m.ptp(100))

    def test_unknown_op(self):
        with pytest.raises(KeyError, match="unknown MPI operation"):
            MpiCostModel(BINOMIAL).cost("telepathy", 4, 8)

    def test_halo_exchange(self):
        m = MpiCostModel(BINOMIAL)
        assert m.halo_exchange(0, 100) == 0.0
        assert m.halo_exchange(2, 100) == pytest.approx(2 * m.ptp(100))

    @given(st.integers(min_value=2, max_value=4096),
           st.integers(min_value=0, max_value=1 << 22))
    @settings(max_examples=40, deadline=None)
    def test_costs_nonnegative_and_monotone_in_message(self, p, m_bytes):
        model = MpiCostModel(BINOMIAL)
        for op in ("bcast", "reduce", "allreduce", "allgather"):
            c1 = model.cost(op, p, m_bytes)
            c2 = model.cost(op, p, m_bytes + 4096)
            assert 0 <= c1 <= c2

    @given(st.integers(min_value=2, max_value=1024))
    @settings(max_examples=30, deadline=None)
    def test_contended_scales_linearly(self, p):
        model = MpiCostModel(CONTENDED)
        c_p = model.bcast(p, 512)
        c_2p = model.bcast(2 * p, 512)
        assert c_2p / c_p == pytest.approx((2 * p - 1) / (p - 1), rel=1e-6)


class TestPerformanceModels:
    def test_saxpy_model_gpu_faster(self):
        from repro.systems import saxpy_model_seconds

        ats2 = get_system("ats2")
        cpu = saxpy_model_seconds(1 << 24, ats2, use_gpu=False)
        gpu = saxpy_model_seconds(1 << 24, ats2, use_gpu=True)
        assert gpu < cpu

    def test_saxpy_model_comm_dominates_small(self):
        from repro.systems import saxpy_model_seconds

        cts1 = get_system("cts1")
        serial = saxpy_model_seconds(512, cts1, n_ranks=1)
        parallel = saxpy_model_seconds(512, cts1, n_ranks=64)
        assert parallel > serial  # tiny problem: comm overhead wins

    def test_saxpy_model_scaling_large(self):
        from repro.systems import saxpy_model_seconds

        ats4 = get_system("ats4")
        serial = saxpy_model_seconds(1 << 26, ats4, n_ranks=1)
        parallel = saxpy_model_seconds(1 << 26, ats4, n_ranks=64)
        assert parallel < serial  # big problem: parallelism wins

    def test_saxpy_model_validates_input(self):
        from repro.systems import saxpy_model_seconds

        with pytest.raises(ValueError):
            saxpy_model_seconds(0, get_system("cts1"))

    def test_stream_model_kernel_validation(self):
        from repro.systems import stream_model_rate_mbs

        assert stream_model_rate_mbs(get_system("cts1"), "Triad") > 0
        with pytest.raises(ValueError):
            stream_model_rate_mbs(get_system("cts1"), "Quadd")

    def test_amg_cycle_model(self):
        from repro.systems import amg_cycle_model_seconds

        cts1 = get_system("cts1")
        t1 = amg_cycle_model_seconds(10**6, 7 * 10**6, cts1, n_ranks=1)
        t64 = amg_cycle_model_seconds(10**6, 7 * 10**6, cts1, n_ranks=64)
        assert 0 < t64 < t1

    def test_scale_compute_time_rewrites(self):
        from repro.systems import scale_compute_time

        text = "saxpy kernel time: 0.001 s\nsaxpy bandwidth: 10.0 GB/s\n"
        ats4 = get_system("ats4")  # much higher mem bw than reference
        out = scale_compute_time(text, 20.0, ats4)
        t = float(out.split("kernel time: ")[1].split(" s")[0])
        bw = float(out.split("bandwidth: ")[1].split(" GB")[0])
        assert t < 0.001
        assert bw > 10.0
