"""Tests for the batch-queued executor (workflow step 8 with a scheduler)."""

import pytest

from repro.ramble import Workspace
from repro.systems import get_system
from repro.systems.batch_executor import BatchExecutor


def _config(n_nodes=("1", "2")):
    return {
        "ramble": {
            "variables": {
                "mpi_command": "srun -N {n_nodes} -n {n_ranks}",
                "n_ranks": "4",
                "batch_time": "2",
            },
            "applications": {"saxpy": {"workloads": {"problem": {
                "experiments": {"saxpy_{n}_{n_nodes}": {
                    "variables": {"n": "256", "n_nodes": list(n_nodes)},
                    "matrices": [["n_nodes"]],
                }}
            }}}},
        }
    }


class TestBatchExecutor:
    def test_execute_queues(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config())
        ws.setup()
        ex = BatchExecutor(get_system("cts1"))
        result = ex.execute(ws.experiments[0])
        assert result["state"] == "queued"
        assert result["job_id"] == 1

    def test_drain_runs_benchmarks(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config())
        ws.setup()
        ex = BatchExecutor(get_system("cts1"))
        outcomes = ex.run_workspace(ws)
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome["state"] == "completed"
            assert outcome["returncode"] == 0
            assert outcome["queue_wait"] is not None
        # logs written → analysis works
        results = ws.analyze()
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])

    def test_queue_wait_and_makespan(self, tmp_path):
        """Two jobs on a one-node system must serialize."""
        from repro.systems.descriptor import InterconnectSpec, SystemDescriptor

        tiny = SystemDescriptor(
            name="tiny", site="t", nodes=1, cores_per_node=8,
            core_gflops=10.0, node_mem_bw_gbs=50.0, memory_per_node_gb=32.0,
            cpu_target="zen3",
            interconnect=InterconnectSpec("net", 1.0, 10.0),
        )
        ws = Workspace.create(tmp_path / "ws", config=_config(("1", "1")))
        ws.setup()
        ex = BatchExecutor(tiny)
        outcomes = ex.run_workspace(ws)
        waits = sorted(o["queue_wait"] for o in outcomes)
        assert waits[0] == 0.0
        assert waits[1] > 0.0  # second job waited for the first
        assert ex.makespan == pytest.approx(2 * 2 * 60.0)

    def test_duration_from_batch_time(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config(("1",)))
        ws.setup()
        ex = BatchExecutor(get_system("cts1"))
        ex.execute(ws.experiments[0])
        job = ex._queued[0][1]
        assert job.duration == 2 * 60.0

    def test_drain_idempotent(self, tmp_path):
        ws = Workspace.create(tmp_path / "ws", config=_config(("1",)))
        ws.setup()
        ex = BatchExecutor(get_system("cts1"))
        ex.run_workspace(ws)
        assert ex.drain() == []
