"""Tests for the mini-archspec substrate (§3.1.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.archspec import (
    TARGETS,
    Microarchitecture,
    UnsupportedMicroarchitecture,
    compatible_targets,
    detect_from_cpuinfo,
    detect_from_features,
    detect_host,
    get_target,
)


class TestDatabase:
    def test_paper_system_targets_exist(self):
        # cts1 = Intel Xeon, ats2 = Power9, ats4 = AMD Trento
        for name in ("broadwell", "cascadelake", "power9le", "zen3_trento"):
            assert get_target(name).name == name

    def test_unknown_target(self):
        with pytest.raises(UnsupportedMicroarchitecture):
            get_target("quantum9000")

    def test_families(self):
        assert get_target("cascadelake").family.name == "x86_64"
        assert get_target("power9le").family.name == "ppc64le"
        assert get_target("a64fx").family.name == "aarch64"

    def test_every_target_has_unique_family(self):
        for uarch in TARGETS.values():
            assert uarch.family.name in ("x86_64", "ppc64le", "aarch64")

    def test_dag_is_acyclic(self):
        for uarch in TARGETS.values():
            assert uarch not in uarch.ancestors


class TestCompatibilityOrder:
    def test_zen3_runs_x86_64(self):
        assert get_target("zen3") >= get_target("x86_64")
        assert not (get_target("x86_64") >= get_target("zen3"))

    def test_cross_family_incomparable(self):
        z, p = get_target("zen3"), get_target("power9le")
        assert not (z >= p)
        assert not (p >= z)

    def test_sibling_incomparable(self):
        # icelake (Intel) and zen3 (AMD) share ancestors, but neither runs
        # the other's tuned binaries.
        i, z = get_target("icelake"), get_target("zen3")
        assert not (i >= z) and not (z >= i)

    def test_features_accumulate(self):
        assert "avx2" in get_target("zen3")  # inherited from x86_64_v3
        assert "sse2" in get_target("cascadelake")

    def test_compatible_targets_ordered(self):
        compat = compatible_targets("cascadelake")
        assert compat[0].name == "cascadelake"
        assert compat[-1].name == "x86_64"

    def test_string_equality(self):
        assert get_target("zen3") == "zen3"


class TestOptimizationFlags:
    def test_gcc_zen3(self):
        assert get_target("zen3").optimization_flags("gcc", "12.1.1") == \
            "-march=znver3 -mtune=znver3"

    def test_old_gcc_falls_back_to_zen2(self):
        assert "znver2" in get_target("zen3").optimization_flags("gcc", "9.4.0")

    def test_too_old_compiler_raises(self):
        with pytest.raises(UnsupportedMicroarchitecture):
            get_target("zen3").optimization_flags("gcc", "4.8.5")

    def test_unknown_compiler_falls_back_to_ancestor(self):
        # zen3 has no 'intel' entry; x86_64 root does.
        flags = get_target("zen3").optimization_flags("intel", "2021.6.0")
        assert flags == "-xSSE2"

    def test_power9_flags(self):
        assert "power9" in get_target("power9le").optimization_flags("gcc", "8.3.1")

    def test_trento_inherits_zen3_flags(self):
        assert "znver3" in get_target("zen3_trento").optimization_flags("gcc", "12.1.1")


class TestDetection:
    def test_detect_from_features_picks_most_specific(self):
        zen3 = get_target("zen3")
        detected = detect_from_features("AuthenticAMD", zen3.features)
        assert detected.name in ("zen3", "zen3_trento")

    def test_detect_partial_features(self):
        feats = get_target("x86_64_v3").features
        detected = detect_from_features("GenuineIntel", feats)
        assert detected >= get_target("x86_64_v3") or detected == get_target("x86_64_v3")

    def test_detect_vendor_filters(self):
        feats = get_target("zen3").features | get_target("icelake").features
        amd = detect_from_features("AuthenticAMD", feats)
        assert amd.vendor in ("AuthenticAMD", "generic")

    def test_detect_empty_features_gives_family_root(self):
        assert detect_from_features("GenuineIntel", []).name == "x86_64"

    def test_detect_from_cpuinfo_x86(self):
        text = (
            "vendor_id : AuthenticAMD\n"
            "flags : " + " ".join(sorted(get_target("zen2").features)) + "\n"
        )
        assert detect_from_cpuinfo(text).name == "zen2"

    def test_detect_from_cpuinfo_power9(self):
        assert detect_from_cpuinfo("cpu : POWER9 (raw)\n").name == "power9le"

    def test_detect_from_cpuinfo_aarch64(self):
        text = "Features : " + " ".join(sorted(get_target("a64fx").features)) + "\n"
        detected = detect_from_cpuinfo(text)
        assert detected.family.name == "aarch64"

    def test_detect_host_runs(self):
        assert isinstance(detect_host(), Microarchitecture)


# -- property-based -------------------------------------------------------

target_names = st.sampled_from(sorted(TARGETS))


@given(target_names)
def test_ge_reflexive(name):
    u = get_target(name)
    assert u >= u


@given(target_names, target_names)
def test_ge_antisymmetric(a, b):
    ua, ub = get_target(a), get_target(b)
    if ua >= ub and ub >= ua:
        assert ua == ub


@given(target_names, target_names, target_names)
def test_ge_transitive(a, b, c):
    ua, ub, uc = get_target(a), get_target(b), get_target(c)
    if ua >= ub and ub >= uc:
        assert ua >= uc


@given(target_names)
def test_features_superset_of_ancestors(name):
    u = get_target(name)
    for anc in u.ancestors:
        assert anc.features <= u.features


@given(target_names)
def test_detection_roundtrip(name):
    """Detecting from a target's own vendor+features returns a target at
    least as capable (never a strictly weaker one in another branch)."""
    u = get_target(name)
    detected = detect_from_features(u.vendor, u.features, family=u.family.name)
    assert detected >= u
