"""Tests for SimMPI: collective data semantics and cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks.simmpi import SimMpiError, SimWorld
from repro.systems.descriptor import InterconnectSpec

CONTENDED = InterconnectSpec(
    name="old", latency_us=2.0, bandwidth_gbs=5.0,
    collective_algo="contended", contention_factor=0.2,
)
BINOMIAL = InterconnectSpec(
    name="new", latency_us=1.0, bandwidth_gbs=25.0, collective_algo="binomial"
)


class TestSemantics:
    def test_bcast_replicates(self):
        w = SimWorld(4)
        data = np.arange(8.0)
        out = w.bcast(data, root=0)
        assert len(out) == 4
        assert all(np.array_equal(o, data) for o in out)

    def test_bcast_copies_are_independent(self):
        w = SimWorld(3)
        data = np.zeros(4)
        out = w.bcast(data)
        out[1][0] = 99.0
        assert out[2][0] == 0.0

    def test_allreduce_sum(self):
        w = SimWorld(5)
        out = w.allreduce([float(r) for r in range(5)], op=lambda a, b: a + b)
        assert out == [10.0] * 5

    def test_allreduce_arrays(self):
        w = SimWorld(3)
        bufs = [np.full(4, float(r)) for r in range(3)]
        out = w.allreduce(bufs)
        assert all(np.allclose(o, 3.0) for o in out)

    def test_reduce_max(self):
        w = SimWorld(4)
        assert w.reduce([3, 7, 1, 5], op=max) == 7

    def test_allgather(self):
        w = SimWorld(3)
        out = w.allgather(["a", "b", "c"])
        assert out == [["a", "b", "c"]] * 3

    def test_alltoall_is_transpose(self):
        w = SimWorld(3)
        matrix = [[(s, d) for d in range(3)] for s in range(3)]
        out = w.alltoall(matrix)
        for d in range(3):
            for s in range(3):
                assert out[d][s] == (s, d)

    def test_scatter_gather_roundtrip(self):
        w = SimWorld(4)
        vals = list(range(4))
        assert w.gather(w.scatter(vals)) == vals

    def test_wrong_cardinality_rejected(self):
        w = SimWorld(4)
        with pytest.raises(SimMpiError, match="per rank"):
            w.allreduce([1, 2, 3])

    def test_bad_root_rejected(self):
        w = SimWorld(2)
        with pytest.raises(SimMpiError, match="out of range"):
            w.bcast(1.0, root=5)

    def test_zero_size_world_rejected(self):
        with pytest.raises(SimMpiError):
            SimWorld(0)


class TestCostAccounting:
    def test_time_advances(self):
        w = SimWorld(8)
        w.bcast(np.zeros(128))
        assert w.sim_time > 0

    def test_single_rank_collectives_free(self):
        w = SimWorld(1)
        w.bcast(np.zeros(128))
        w.barrier()
        assert w.sim_time == 0.0

    def test_profile_counts(self):
        w = SimWorld(4)
        w.bcast(1.0)
        w.bcast(2.0)
        w.barrier()
        prof = w.comm_profile()
        assert prof["bcast"]["count"] == 2
        assert prof["barrier"]["count"] == 1

    def test_contended_bcast_linear_in_p(self):
        """The Figure 14 regime: cost grows ~linearly with rank count."""
        def cost(p):
            w = SimWorld(p, CONTENDED)
            w.bcast(np.zeros(1024))
            return w.sim_time

        c64, c128, c256 = cost(64), cost(128), cost(256)
        assert c128 / c64 == pytest.approx(127 / 63, rel=0.05)
        assert c256 / c128 == pytest.approx(255 / 127, rel=0.05)

    def test_binomial_bcast_log_in_p(self):
        def cost(p):
            w = SimWorld(p, BINOMIAL)
            w.bcast(np.zeros(1024))
            return w.sim_time

        # doubling p adds one round: cost ratio log2(2p)/log2(p)
        assert cost(256) / cost(16) == pytest.approx(8 / 4, rel=0.05)

    def test_larger_message_costs_more(self):
        w1, w2 = SimWorld(8, BINOMIAL), SimWorld(8, BINOMIAL)
        w1.bcast(np.zeros(64))
        w2.bcast(np.zeros(1 << 20))
        assert w2.sim_time > w1.sim_time

    @given(st.integers(min_value=2, max_value=512))
    @settings(max_examples=20, deadline=None)
    def test_costs_monotone_in_ranks(self, p):
        w_small = SimWorld(p, CONTENDED)
        w_big = SimWorld(p * 2, CONTENDED)
        w_small.bcast(np.zeros(256))
        w_big.bcast(np.zeros(256))
        assert w_big.sim_time > w_small.sim_time


class TestOsu:
    def test_bcast_latency_table(self):
        from repro.benchmarks.osu import run_collective

        res = run_collective("bcast", n_ranks=16, max_size=1024, iterations=10)
        sizes = sorted(res.latencies_us)
        assert sizes[0] == 8
        # Latency is non-decreasing with message size.
        lats = [res.latencies_us[s] for s in sizes]
        assert all(b >= a for a, b in zip(lats, lats[1:]))

    def test_unknown_op_rejected(self):
        from repro.benchmarks.osu import run_collective

        with pytest.raises(ValueError, match="unknown collective"):
            run_collective("fancygather")

    def test_report_has_total_time(self):
        from repro.benchmarks.osu import run_collective

        rep = run_collective("allreduce", n_ranks=8, max_size=64,
                             iterations=5).report()
        assert "Total time:" in rep
        assert "Benchmark complete" in rep

    def test_all_ops_run(self):
        from repro.benchmarks.osu import run_collective
        from repro.systems.mpi_model import COLLECTIVES

        for op in COLLECTIVES:
            res = run_collective(op, n_ranks=4, max_size=32, iterations=2)
            assert res.total_seconds >= 0


class TestCaliperExport:
    def test_profile_regions_per_op(self):
        import numpy as np

        w = SimWorld(16)
        w.bcast(np.zeros(128))
        w.bcast(np.zeros(128))
        w.allreduce([1.0] * 16)
        profile = w.to_caliper_profile(metadata={"system": "cts1"})
        regions = profile.regions()
        assert regions["MPI/MPI_Bcast"].visits == 2
        assert regions["MPI/MPI_Allreduce"].visits == 1
        assert regions["MPI"].inclusive == pytest.approx(w.sim_time)
        assert profile.metadata["nprocs"] == 16
        assert profile.metadata["system"] == "cts1"

    def test_profile_feeds_thicket_and_extrap(self):
        """SimMPI → Caliper → Thicket → Extra-P: the Figure 14 pipeline
        entirely through public interfaces."""
        import numpy as np
        from repro.analysis import Ensemble
        from repro.systems import get_system

        cts1 = get_system("cts1")
        profiles = []
        for p in (2, 8, 32, 128, 512, 2048):
            w = SimWorld(p, cts1.interconnect)
            for _ in range(5):
                w.account_only("bcast", 1 << 20)
            profiles.append(w.to_caliper_profile())
        model = Ensemble(profiles).model_scaling("MPI/MPI_Bcast", "nprocs")
        assert model.i == 1.0 and model.j == 0  # cts1's linear regime
