"""Tests for the AMG solver substrate (grids, hierarchy, cycles, driver)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.benchmarks.amg import (
    aggregate,
    amg_solve,
    anisotropic_2d,
    build_hierarchy,
    gauss_seidel,
    jacobi,
    pcg_solve,
    poisson_2d,
    poisson_3d,
    problem_matrix,
    run_amg,
    strength_graph,
)


class TestGrids:
    def test_poisson_2d_shape_and_symmetry(self):
        a = poisson_2d(8)
        assert a.shape == (64, 64)
        assert (a - a.T).nnz == 0

    def test_poisson_2d_spd(self):
        a = poisson_2d(6)
        eigs = np.linalg.eigvalsh(a.toarray())
        assert eigs.min() > 0

    def test_poisson_3d_stencil(self):
        a = poisson_3d(4)
        assert a.shape == (64, 64)
        # interior row has 7 entries
        assert a.getrow(21).nnz == 7 or max(a.getnnz(axis=1)) == 7

    def test_anisotropic_epsilon_validated(self):
        with pytest.raises(ValueError):
            anisotropic_2d(8, epsilon=0)

    def test_problem_selector(self):
        a1, d1 = problem_matrix(1, 8)
        a2, d2 = problem_matrix(2, 8)
        a3, d3 = problem_matrix(3, 8)
        assert "3D" in d1 and "anisotropic" in d2 and "27-point" in d3
        with pytest.raises(ValueError):
            problem_matrix(4, 8)

    def test_27pt_stencil(self):
        from repro.benchmarks.amg import poisson_3d_27pt
        import numpy as np

        a = poisson_3d_27pt(4)
        assert a.shape == (64, 64)
        assert (a - a.T).nnz == 0
        # interior node couples to its full 3x3x3 neighbourhood
        assert a.getnnz(axis=1).max() == 27
        eigs = np.linalg.eigvalsh(a.toarray())
        assert eigs.min() > 0  # SPD

    def test_27pt_solver_converges_multilevel(self):
        res = run_amg(problem=3, n=12)
        assert res.stats.converged
        assert res.num_levels >= 2  # theta default must not collapse it

    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            poisson_2d(0)


class TestSmoothers:
    def test_jacobi_reduces_residual(self):
        a = poisson_2d(10)
        b = np.ones(a.shape[0])
        x = np.zeros_like(b)
        r0 = np.linalg.norm(b - a @ x)
        x = jacobi(a, x, b, iterations=10)
        assert np.linalg.norm(b - a @ x) < r0

    def test_gauss_seidel_reduces_residual_faster(self):
        a = poisson_2d(10)
        b = np.ones(a.shape[0])
        xj = jacobi(a, np.zeros_like(b), b, iterations=5)
        xg = gauss_seidel(a, np.zeros_like(b), b, iterations=5)
        rj = np.linalg.norm(b - a @ xj)
        rg = np.linalg.norm(b - a @ xg)
        assert rg < rj

    def test_jacobi_zero_diagonal_rejected(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            jacobi(a, np.zeros(2), np.ones(2))

    def test_smoother_is_fixed_point_at_solution(self):
        a = poisson_2d(6)
        x_exact = np.linalg.solve(a.toarray(), np.ones(a.shape[0]))
        out = jacobi(a, x_exact.copy(), np.ones(a.shape[0]), iterations=3)
        np.testing.assert_allclose(out, x_exact, atol=1e-10)


class TestHierarchy:
    def test_strength_graph_symmetric_no_diagonal(self):
        s = strength_graph(poisson_2d(8))
        assert (s - s.T).nnz == 0
        assert np.all(s.diagonal() == 0)

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            strength_graph(poisson_2d(4), theta=-0.1)

    def test_aggregate_covers_all_nodes(self):
        s = strength_graph(poisson_2d(10))
        agg = aggregate(s)
        assert np.all(agg >= 0)
        assert agg.max() < len(agg)

    def test_aggregates_are_contiguous_ids(self):
        s = strength_graph(poisson_2d(10))
        agg = aggregate(s)
        assert set(np.unique(agg)) == set(range(agg.max() + 1))

    def test_hierarchy_coarsens(self):
        h = build_hierarchy(poisson_2d(20))
        assert h.num_levels >= 2
        sizes = [l.n for l in h.levels]
        assert all(b < a for a, b in zip(sizes, sizes[1:]))

    def test_coarse_grid_is_galerkin(self):
        h = build_hierarchy(poisson_2d(12))
        l0 = h.levels[0]
        expected = (l0.r @ l0.a @ l0.p).toarray()
        np.testing.assert_allclose(h.levels[1].a.toarray(), expected, atol=1e-12)

    def test_coarse_grids_stay_spd(self):
        h = build_hierarchy(poisson_2d(12))
        for level in h.levels[1:]:
            eigs = np.linalg.eigvalsh(level.a.toarray())
            assert eigs.min() > -1e-10

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            build_hierarchy(sp.csr_matrix(np.ones((3, 4))))

    def test_operator_complexity_reasonable(self):
        h = build_hierarchy(poisson_3d(12))
        assert 1.0 < h.operator_complexity < 15.0


class TestSolvers:
    @pytest.mark.parametrize("maker,n", [(poisson_2d, 24), (poisson_3d, 10)])
    def test_amg_vcycle_converges(self, maker, n):
        a = maker(n)
        h = build_hierarchy(a)
        b = np.ones(a.shape[0])
        x, stats = amg_solve(h, b, tol=1e-8)
        assert stats.converged
        assert np.linalg.norm(b - a @ x) / np.linalg.norm(b) < 1e-7

    def test_pcg_converges_fewer_iterations(self):
        a = poisson_2d(30)
        h = build_hierarchy(a)
        b = np.random.default_rng(0).random(a.shape[0])
        _, amg_stats = amg_solve(h, b, tol=1e-8)
        _, pcg_stats = pcg_solve(h, b, tol=1e-8)
        assert pcg_stats.converged
        assert pcg_stats.iterations <= amg_stats.iterations

    def test_wcycle_converges_in_fewer_or_equal_iterations(self):
        a = poisson_2d(24)
        h = build_hierarchy(a)
        b = np.ones(a.shape[0])
        _, v_stats = amg_solve(h, b, gamma=1)
        _, w_stats = amg_solve(h, b, gamma=2)
        assert w_stats.converged
        assert w_stats.iterations <= v_stats.iterations

    def test_scalable_convergence(self):
        """AMG's whole point: iteration count ~independent of problem size."""
        iters = []
        for n in (12, 24, 48):
            a = poisson_2d(n)
            h = build_hierarchy(a)
            b = np.ones(a.shape[0])
            _, stats = pcg_solve(h, b, tol=1e-8)
            iters.append(stats.iterations)
        assert max(iters) <= min(iters) + 6

    def test_zero_rhs(self):
        h = build_hierarchy(poisson_2d(8))
        x, stats = amg_solve(h, np.zeros(64))
        assert stats.converged
        assert np.all(x == 0)

    def test_anisotropic_pcg_still_converges(self):
        a = anisotropic_2d(20)
        h = build_hierarchy(a, theta=0.25)
        b = np.ones(a.shape[0])
        x, stats = pcg_solve(h, b, tol=1e-6, max_iterations=300)
        assert stats.converged

    def test_gauss_seidel_smoothed_solve(self):
        a = poisson_2d(16)
        h = build_hierarchy(a)
        b = np.ones(a.shape[0])
        _, stats = amg_solve(h, b, smoother="gauss_seidel")
        assert stats.converged

    @given(st.integers(min_value=6, max_value=20))
    @settings(max_examples=8, deadline=None)
    def test_solution_matches_direct(self, n):
        a = poisson_2d(n)
        h = build_hierarchy(a)
        b = np.random.default_rng(n).random(a.shape[0])
        x, stats = pcg_solve(h, b, tol=1e-10)
        x_direct = np.linalg.solve(a.toarray(), b)
        np.testing.assert_allclose(x, x_direct, rtol=1e-5, atol=1e-8)


class TestDriver:
    def test_run_amg_foms(self):
        res = run_amg(problem=1, n=10)
        assert res.fom_setup > 0
        assert res.fom_solve > 0
        assert res.stats.converged

    def test_report_markers(self):
        rep = run_amg(problem=1, n=8).report()
        assert "Figure of Merit (FOM_Setup):" in rep
        assert "Figure of Merit (FOM_Solve):" in rep
        assert "converged" in rep

    def test_parallel_adds_comm_time(self):
        serial = run_amg(problem=1, n=10, n_ranks=1)
        parallel = run_amg(problem=1, n=10, n_ranks=16)
        assert serial.comm_seconds == 0
        assert parallel.comm_seconds > 0
        assert parallel.stats.iterations == serial.stats.iterations

    def test_unknown_solver(self):
        with pytest.raises(ValueError):
            run_amg(solver="gmres")

    def test_cli(self, capsys):
        from repro.benchmarks.amg2023 import main

        assert main(["-problem", "1", "-n", "8"]) == 0
        assert "FOM_Solve" in capsys.readouterr().out
