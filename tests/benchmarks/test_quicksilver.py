"""Tests for the Quicksilver-class Monte Carlo transport proxy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks.quicksilver import main as qs_main, run_quicksilver


class TestPhysics:
    def test_conservation(self):
        res = run_quicksilver(50_000)
        assert res.absorbed + res.leaked == res.n_particles

    def test_mean_flight_length_is_one_mfp(self):
        """Flight lengths are Exp(Σt=1): the sample mean must converge to 1."""
        res = run_quicksilver(200_000)
        assert res.mean_flight_length == pytest.approx(1.0, rel=0.01)

    def test_thick_slab_absorbs_more(self):
        thin = run_quicksilver(50_000, slab_width_mfp=1.0)
        thick = run_quicksilver(50_000, slab_width_mfp=20.0)
        assert thick.absorbed / thick.n_particles > \
            thin.absorbed / thin.n_particles
        assert thin.leaked > thick.leaked

    def test_pure_absorber_has_one_segment_per_collision(self):
        """absorption_ratio=1: every collision kills the particle, so
        segments ≈ particles (plus the leakers' single flight)."""
        res = run_quicksilver(50_000, slab_width_mfp=50.0,
                              absorption_ratio=1.0)
        assert res.segments == res.n_particles

    def test_more_scattering_more_segments(self):
        scattery = run_quicksilver(20_000, absorption_ratio=0.1)
        absorby = run_quicksilver(20_000, absorption_ratio=0.9)
        assert scattery.segments > absorby.segments

    def test_deterministic_per_seed(self):
        a = run_quicksilver(10_000, seed=7)
        b = run_quicksilver(10_000, seed=7)
        assert (a.segments, a.absorbed, a.leaked) == \
            (b.segments, b.absorbed, b.leaked)

    def test_different_seeds_differ(self):
        a = run_quicksilver(10_000, seed=1)
        b = run_quicksilver(10_000, seed=2)
        assert a.segments != b.segments

    @pytest.mark.parametrize("kwargs", [
        {"n_particles": 0},
        {"slab_width_mfp": -1.0},
        {"absorption_ratio": 0.0},
        {"absorption_ratio": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            run_quicksilver(**{"n_particles": 100, **kwargs})

    @given(st.floats(min_value=0.1, max_value=0.9),
           st.floats(min_value=2.0, max_value=30.0))
    @settings(max_examples=10, deadline=None)
    def test_conservation_property(self, absorption, slab):
        res = run_quicksilver(5_000, slab_width_mfp=slab,
                              absorption_ratio=absorption)
        assert res.absorbed + res.leaked == res.n_particles
        assert res.segments >= res.n_particles


class TestHarness:
    def test_report_markers(self):
        rep = run_quicksilver(1_000).report()
        assert "Figure Of Merit:" in rep
        assert "MC done" in rep

    def test_parallel_mode(self):
        serial = run_quicksilver(20_000, n_ranks=1)
        parallel = run_quicksilver(20_000, n_ranks=8)
        # identical physics, communication cost added
        assert parallel.segments == serial.segments
        assert parallel.fom_segments_per_second > 0

    def test_cli(self, capsys):
        assert qs_main(["-n", "2000"]) == 0
        assert "MC done" in capsys.readouterr().out

    def test_through_full_benchpark_stack(self, tmp_path):
        """quicksilver/openmp on cts1 end to end, like §4's benchmarks."""
        from repro.core import benchpark_setup

        session = benchpark_setup("quicksilver/openmp", "cts1", tmp_path / "ws")
        results = session.run_all()
        assert all(e["status"] == "SUCCESS" for e in results["experiments"])
        foms = {f["name"] for e in results["experiments"]
                for f in e["figures_of_merit"]}
        assert "fom_segments" in foms

    def test_installed_via_spack(self, tmp_path):
        from repro.spack import Concretizer, Installer, Store

        spec = Concretizer().concretize("quicksilver")
        assert spec.variants["openmp"] is True
        results = Installer(Store(tmp_path / "s")).install(spec)
        assert any(r.spec.name == "quicksilver" for r in results)
