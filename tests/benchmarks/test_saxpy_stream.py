"""Tests for the saxpy and STREAM benchmark kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks.saxpy import A, SaxpyResult, main as saxpy_main, run_saxpy, saxpy_kernel
from repro.benchmarks.stream import KERNELS, main as stream_main, run_stream


class TestSaxpyKernel:
    def test_matches_figure7_semantics(self):
        x = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        y = np.array([10.0, 20.0, 30.0], dtype=np.float32)
        r = np.empty_like(x)
        saxpy_kernel(r, x, y)
        np.testing.assert_allclose(r, A * x + y)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            saxpy_kernel(np.zeros(3), np.zeros(4), np.zeros(3))

    def test_no_input_mutation(self):
        x = np.ones(16, dtype=np.float32)
        y = np.ones(16, dtype=np.float32)
        r = np.empty_like(x)
        saxpy_kernel(r, x, y)
        assert np.all(x == 1.0) and np.all(y == 1.0)

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=25, deadline=None)
    def test_correct_for_any_size(self, n):
        rng = np.random.default_rng(0)
        x = rng.random(n, dtype=np.float32)
        y = rng.random(n, dtype=np.float32)
        r = np.empty_like(x)
        saxpy_kernel(r, x, y)
        np.testing.assert_allclose(r, A * x + y, rtol=1e-6)


class TestRunSaxpy:
    def test_serial_run(self):
        res = run_saxpy(1024)
        assert res.correct
        assert res.kernel_seconds > 0
        assert res.bandwidth_gbs > 0

    def test_parallel_run_same_checksum(self):
        serial = run_saxpy(8192, n_ranks=1)
        parallel = run_saxpy(8192, n_ranks=4)
        assert parallel.correct
        assert abs(serial.checksum - parallel.checksum) < 1e-3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_saxpy(0)

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            run_saxpy(8, repeats=0)

    def test_report_contains_fom_markers(self):
        # Figure 8's regexes depend on these exact strings.
        report = run_saxpy(64).report()
        assert "Kernel done" in report
        assert "saxpy kernel time:" in report

    def test_cli_exit_code(self, capsys):
        assert saxpy_main(["-n", "256"]) == 0
        out = capsys.readouterr().out
        assert "Kernel done" in out

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=10, deadline=None)
    def test_rank_invariant_correctness(self, ranks):
        res = run_saxpy(4096, n_ranks=ranks, repeats=1)
        assert res.correct


class TestStream:
    def test_rates_positive(self):
        res = run_stream(50_000, ntimes=3)
        assert res.valid
        for k in KERNELS:
            assert res.best_rates[k] > 0

    def test_validation_recurrence(self):
        # ntimes affects the expected final values; both must validate.
        assert run_stream(10_000, ntimes=2).valid
        assert run_stream(10_000, ntimes=6).valid

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            run_stream(4)

    def test_single_iteration_rejected(self):
        with pytest.raises(ValueError):
            run_stream(10_000, ntimes=1)

    def test_report_format(self):
        rep = run_stream(10_000, ntimes=3).report()
        assert "Best Rate MB/s" in rep
        for k in KERNELS:
            assert k in rep
        assert "Solution Validates" in rep

    def test_cli(self, capsys):
        assert stream_main(["-n", "20000", "--ntimes", "3"]) == 0
        assert "Triad" in capsys.readouterr().out
