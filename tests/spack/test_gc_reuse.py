"""Tests for store garbage collection and concretizer reuse."""

import pytest

from repro.spack import Concretizer, Installer, Store, Version, parse_spec


@pytest.fixture
def concretizer():
    return Concretizer()


class TestGc:
    def test_gc_keeps_explicit_and_deps(self, tmp_path, concretizer):
        store = Store(tmp_path / "s")
        spec = concretizer.concretize("saxpy")
        Installer(store).install(spec, explicit=True)
        removed = store.gc()
        assert removed == []
        assert store.is_installed(spec)

    def test_gc_removes_orphans(self, tmp_path, concretizer):
        store = Store(tmp_path / "s")
        installer = Installer(store)
        keep = concretizer.concretize("saxpy")
        installer.install(keep, explicit=True)
        orphan = concretizer.concretize("stream")
        installer.install(orphan, explicit=False)
        removed = {s.name for s in store.gc()}
        assert "stream" in removed
        assert store.is_installed(keep)
        assert not store.is_installed(orphan)

    def test_gc_removes_orphan_chains(self, tmp_path, concretizer):
        store = Store(tmp_path / "s")
        installer = Installer(store)
        orphan = concretizer.concretize("amg2023")  # deep DAG
        installer.install(orphan, explicit=False)
        removed = store.gc()
        assert len(store) == 0
        assert {s.name for s in removed} == {
            n.name for n in orphan.traverse()
        }

    def test_gc_keeps_shared_deps(self, tmp_path, concretizer):
        store = Store(tmp_path / "s")
        installer = Installer(store)
        keep = concretizer.concretize("saxpy")       # uses cmake + mpi
        installer.install(keep, explicit=True)
        orphan = concretizer.concretize("stream")    # orphan root
        installer.install(orphan, explicit=False)
        store.gc()
        assert store.is_installed(keep["cmake"])


class TestReuse:
    def test_reuse_adopts_installed_spec(self, tmp_path):
        store = Store(tmp_path / "s")
        fresh = Concretizer()
        older = fresh.concretize("cmake@3.23.1")
        Installer(store).install(older)

        reuser = Concretizer(reuse_store=store)
        solved = reuser.concretize("cmake")
        # Without reuse this would pick 3.27.4; with reuse, the installed
        # 3.23.1 satisfies "cmake" and is adopted.
        assert solved.version == Version("3.23.1")
        assert solved.dag_hash() == older.dag_hash()

    def test_reuse_respects_constraints(self, tmp_path):
        store = Store(tmp_path / "s")
        fresh = Concretizer()
        Installer(store).install(fresh.concretize("cmake@3.23.1"))

        reuser = Concretizer(reuse_store=store)
        solved = reuser.concretize("cmake@3.26:")
        # Installed 3.23.1 violates @3.26:, so the solve is fresh and picks
        # the highest satisfying release.
        assert solved.version == Version("3.27.4")

    def test_reuse_shares_dependencies(self, tmp_path):
        store = Store(tmp_path / "s")
        fresh = Concretizer()
        saxpy = fresh.concretize("saxpy ^cmake@3.23.1")
        Installer(store).install(saxpy)

        reuser = Concretizer(reuse_store=store)
        amg = reuser.concretize("amg2023")
        # amg's cmake dep is adopted from the store (3.23.1, not 3.27.4)
        assert amg["cmake"].version == Version("3.23.1")

    def test_reuse_reduces_rebuilds(self, tmp_path):
        """The ablation claim: reuse avoids duplicate builds entirely for
        an already-satisfied request."""
        store = Store(tmp_path / "s")
        fresh = Concretizer()
        spec = fresh.concretize("amg2023+caliper")
        Installer(store).install(spec)

        reuser = Concretizer(reuse_store=store)
        solved = reuser.concretize("amg2023+caliper")
        results = Installer(store).install(solved)
        assert all(r.action in ("already", "external") for r in results)

    def test_no_reuse_without_store(self):
        solved = Concretizer().concretize("cmake")
        assert solved.version == Version("3.27.4")
