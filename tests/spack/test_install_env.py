"""Tests for the store, installer, binary cache, and environments —
the paper's Figure 2 workflow end to end."""

import json

import pytest

from repro.spack import (
    BinaryCache,
    Compiler,
    CompilerRegistry,
    CompilerSpec,
    Concretizer,
    Environment,
    Installer,
    Store,
    Version,
)
from repro.spack.installer import InstallError
from repro.spack.store import StoreError


@pytest.fixture
def concretizer():
    reg = CompilerRegistry([Compiler(CompilerSpec("gcc", Version("12.1.1")))])
    return Concretizer(compilers=reg)


@pytest.fixture
def store(tmp_path):
    return Store(tmp_path / "store")


@pytest.fixture
def installer(store):
    return Installer(store)


class TestStore:
    def test_add_and_query(self, store, concretizer):
        spec = concretizer.concretize("cmake@3.23.1")
        store.add(spec)
        assert store.is_installed(spec)
        assert len(store) == 1

    def test_prefix_contains_hash(self, store, concretizer):
        spec = concretizer.concretize("cmake")
        prefix = store.prefix_for(spec)
        assert spec.dag_hash(7) in prefix.name
        assert prefix.name.startswith("cmake-")

    def test_metadata_written(self, store, concretizer):
        spec = concretizer.concretize("cmake")
        rec = store.add(spec, artifacts={"bin/cmake": "x"})
        meta = json.loads((store.root / f"{spec.name}-{spec.version}-{spec.dag_hash(7)}" / ".spack" / "spec.json").read_text())
        assert meta["name"] == "cmake"
        assert (store.root / rec.prefix.split("/")[-1] / "bin" / "cmake").exists()

    def test_persistence(self, tmp_path, concretizer):
        spec = concretizer.concretize("cmake")
        Store(tmp_path / "s").add(spec)
        reopened = Store(tmp_path / "s")
        assert reopened.is_installed(spec)

    def test_query_constraint(self, store, concretizer):
        from repro.spack import parse_spec

        store.add(concretizer.concretize("cmake@3.23.1"))
        store.add(concretizer.concretize("cmake@3.26.3"))
        hits = store.query(parse_spec("cmake@3.26.3"))
        assert len(hits) == 1

    def test_remove(self, store, concretizer):
        spec = concretizer.concretize("cmake")
        store.add(spec)
        store.remove(spec)
        assert not store.is_installed(spec)

    def test_remove_blocked_by_dependent(self, store, installer, concretizer):
        spec = concretizer.concretize("saxpy")
        installer.install(spec)
        mpi = spec["mvapich2"]
        with pytest.raises(StoreError, match="required by"):
            store.remove(mpi)

    def test_remove_missing(self, store, concretizer):
        with pytest.raises(StoreError):
            store.remove(concretizer.concretize("cmake"))


class TestInstaller:
    def test_installs_dag_in_order(self, installer, concretizer):
        spec = concretizer.concretize("saxpy")
        results = installer.install(spec)
        names = [r.spec.name for r in results]
        assert names[-1] == "saxpy"  # root last
        assert set(names) == {n.name for n in spec.traverse()}

    def test_abstract_spec_rejected(self, installer):
        from repro.spack import parse_spec

        with pytest.raises(InstallError, match="concrete"):
            installer.install(parse_spec("saxpy"))

    def test_reinstall_is_noop(self, installer, concretizer):
        spec = concretizer.concretize("cmake")
        installer.install(spec)
        again = installer.install(spec)
        assert all(r.action == "already" for r in again)

    def test_recipe_hooks_run(self, installer, concretizer, store):
        spec = concretizer.concretize("saxpy+openmp")
        installer.install(spec)
        rec = store.get_record(spec)
        log = (store.root / rec.prefix.split("/")[-1] / ".spack" / "build.log").read_text()
        assert "-DUSE_OPENMP=ON" in log

    def test_build_seconds_deterministic(self, tmp_path, concretizer):
        spec = concretizer.concretize("amg2023")
        r1 = Installer(Store(tmp_path / "a")).install(spec)
        r2 = Installer(Store(tmp_path / "b")).install(spec)
        assert [x.seconds for x in r1] == [x.seconds for x in r2]

    def test_gpu_build_costs_more(self, tmp_path, concretizer):
        plain = concretizer.concretize("saxpy~openmp")
        gpu = concretizer.concretize("saxpy~openmp+cuda cuda_arch=70")
        t_plain = [
            r for r in Installer(Store(tmp_path / "a")).install(plain)
            if r.spec.name == "saxpy"
        ][0].seconds
        t_gpu = [
            r for r in Installer(Store(tmp_path / "b")).install(gpu)
            if r.spec.name == "saxpy"
        ][0].seconds
        assert t_gpu > t_plain


class TestBinaryCache:
    def test_cache_roundtrip(self, tmp_path, concretizer):
        cache = BinaryCache()
        spec = concretizer.concretize("saxpy")
        first = Installer(Store(tmp_path / "a"), binary_cache=cache)
        first.install(spec)
        assert cache.stats.pushes > 0

        second = Installer(Store(tmp_path / "b"), binary_cache=cache)
        results = second.install(spec)
        assert all(r.action in ("cache", "external") for r in results)

    def test_cache_is_faster(self, tmp_path, concretizer):
        cache = BinaryCache()
        spec = concretizer.concretize("amg2023")
        src = Installer(Store(tmp_path / "a"), binary_cache=cache).install(spec)
        cached = Installer(Store(tmp_path / "b"), binary_cache=cache).install(spec)
        assert sum(r.seconds for r in cached) < sum(r.seconds for r in src) / 5

    def test_stats_hit_rate(self, tmp_path, concretizer):
        cache = BinaryCache()
        spec = concretizer.concretize("cmake")
        Installer(Store(tmp_path / "a"), binary_cache=cache).install(spec)
        Installer(Store(tmp_path / "b"), binary_cache=cache).install(spec)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5


class TestEnvironment:
    """Figure 2: env create → add → concretize → install."""

    def test_figure2_workflow(self, tmp_path, concretizer, installer):
        env = Environment.create(tmp_path / "env")
        env.add("amg2023+caliper")
        roots = env.concretize(concretizer)
        assert len(roots) == 1
        assert roots[0].concrete
        env.install(installer)
        assert all(v == "installed" for v in env.status(installer).values())

    def test_lockfile_written(self, tmp_path, concretizer):
        env = Environment.create(tmp_path / "env", specs=["saxpy"])
        env.concretize(concretizer)
        lock = json.loads((tmp_path / "env" / "spack.lock").read_text())
        assert lock["roots"][0]["name"] == "saxpy"

    def test_lockfile_reload(self, tmp_path, concretizer):
        env = Environment.create(tmp_path / "env", specs=["saxpy"])
        first = env.concretize(concretizer)[0]
        reopened = Environment(tmp_path / "env")
        assert reopened.concrete_roots[0].dag_hash() == first.dag_hash()

    def test_concretize_is_cached_until_forced(self, tmp_path, concretizer):
        env = Environment.create(tmp_path / "env", specs=["saxpy"])
        a = env.concretize(concretizer)[0]
        b = env.concretize(concretizer)[0]  # no re-solve
        assert a.dag_hash() == b.dag_hash()

    def test_add_remove(self, tmp_path):
        env = Environment.create(tmp_path / "env")
        env.add("saxpy")
        env.add("amg2023")
        env.remove("saxpy")
        assert [s.name for s in env.user_specs] == ["amg2023"]

    def test_install_requires_concretize(self, tmp_path, installer):
        env = Environment.create(tmp_path / "env", specs=["saxpy"])
        from repro.spack.environment import EnvironmentError_

        with pytest.raises(EnvironmentError_, match="not concretized"):
            env.install(installer)

    def test_unify_true_in_env(self, tmp_path, concretizer, installer):
        env = Environment.create(
            tmp_path / "env", specs=["saxpy", "amg2023"], unify=True
        )
        roots = env.concretize(concretizer)
        assert roots[0]["cmake"].dag_hash() == roots[1]["cmake"].dag_hash()

    def test_view_links_written(self, tmp_path, concretizer, installer):
        env = Environment.create(tmp_path / "env", specs=["saxpy"], view=True)
        env.concretize(concretizer)
        env.install(installer)
        links = json.loads(
            (tmp_path / "env" / ".spack-env" / "view" / "links.json").read_text()
        )
        assert "saxpy" in links

    def test_changed_constraint_triggers_resolve(self, tmp_path, concretizer):
        """A stale lock must not survive a manifest edit (spack add with a
        new constraint re-concretizes without -f)."""
        env = Environment.create(tmp_path / "env", specs=["saxpy~openmp"])
        first = env.concretize(concretizer)[0]
        assert first.variants["openmp"] is False
        env.remove("saxpy~openmp")
        env.add("saxpy+openmp")
        second = env.concretize(concretizer)[0]
        assert second.variants["openmp"] is True
