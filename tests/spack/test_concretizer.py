"""Unit + integration tests for the concretizer, including the paper's
Figure 3/4 configuration behaviours (externals, buildable: false)."""

import pytest

from repro.spack import (
    Compiler,
    CompilerRegistry,
    CompilerSpec,
    ConcretizationError,
    Concretizer,
    ConfigScope,
    Configuration,
    UnsatisfiableSpecError,
    Version,
    parse_spec,
)
from repro.spack.concretizer import NoVersionError


@pytest.fixture
def gcc12():
    return CompilerRegistry(
        [Compiler(CompilerSpec("gcc", Version("12.1.1")), target="x86_64")]
    )


@pytest.fixture
def plain(gcc12):
    return Concretizer(compilers=gcc12)


class TestBasicConcretization:
    def test_fills_version(self, plain):
        c = plain.concretize("saxpy")
        assert c.concrete
        assert c.version == Version("1.0.0")

    def test_respects_requested_version(self, plain):
        c = plain.concretize("cmake@3.23.1")
        assert c.version == Version("3.23.1")

    def test_picks_highest_version(self, plain):
        c = plain.concretize("cmake")
        assert c.version == Version("3.27.4")

    def test_no_matching_version(self, plain):
        with pytest.raises(NoVersionError):
            plain.concretize("cmake@99.0")

    def test_fills_variant_defaults(self, plain):
        c = plain.concretize("saxpy")
        assert c.variants["openmp"] is True  # declared default
        assert c.variants["cuda"] is False

    def test_user_variant_wins(self, plain):
        c = plain.concretize("saxpy~openmp")
        assert c.variants["openmp"] is False

    def test_unknown_variant_rejected(self, plain):
        with pytest.raises(ConcretizationError):
            plain.concretize("saxpy+nonexistent")

    def test_compiler_assigned(self, plain):
        c = plain.concretize("saxpy")
        assert c.compiler is not None
        assert c.compiler.name == "gcc"

    def test_target_assigned(self, plain):
        c = plain.concretize("saxpy")
        assert c.target == "x86_64"

    def test_deterministic(self, plain):
        a = plain.concretize("amg2023+caliper")
        b = plain.concretize("amg2023+caliper")
        assert a.dag_hash() == b.dag_hash()


class TestDependencies:
    def test_mpi_virtual_resolved(self, plain):
        c = plain.concretize("saxpy")
        assert "mvapich2" in c  # default mpi provider

    def test_dag_constraint_applies_transitively(self, plain):
        c = plain.concretize("saxpy ^cmake@3.23.1")
        assert c["cmake"].version == Version("3.23.1")

    def test_conditional_dependency_active(self, plain):
        c = plain.concretize("amg2023+caliper")
        assert "caliper" in c
        assert "adiak" in c

    def test_conditional_dependency_inactive(self, plain):
        c = plain.concretize("amg2023~caliper")
        assert "caliper" not in c

    def test_conditional_constraint_propagates(self, plain):
        c = plain.concretize("amg2023+cuda cuda_arch=70")
        assert c["hypre"].variants["cuda"] is True

    def test_compiler_propagates_to_deps(self, plain):
        c = plain.concretize("saxpy %gcc@12.1.1")
        for node in c.traverse():
            assert node.compiler.name == "gcc"

    def test_gpu_conflict_detected(self, plain):
        from repro.spack.package import ConflictError

        with pytest.raises(ConflictError, match="CUDA architecture"):
            plain.concretize("saxpy+cuda")  # cuda_arch=none conflicts

    def test_gpu_arch_resolves_conflict(self, plain):
        c = plain.concretize("saxpy+cuda cuda_arch=70")
        assert c.variants["cuda_arch"] == ("70",) or c.variants["cuda_arch"] == "70"
        assert "cuda" in c


class TestUnification:
    def test_unify_shares_nodes(self, plain):
        roots = plain.concretize_together(
            ["saxpy", "amg2023"], unify=True
        )
        h_saxpy = roots[0]["mvapich2"].dag_hash()
        h_amg = roots[1]["mvapich2"].dag_hash()
        assert h_saxpy == h_amg

    def test_unify_conflict_raises(self, plain):
        with pytest.raises(UnsatisfiableSpecError):
            plain.concretize_together(
                ["saxpy ^cmake@3.23.1", "amg2023 ^cmake@3.26.3"], unify=True
            )

    def test_no_unify_allows_divergence(self, plain):
        roots = plain.concretize_together(
            ["saxpy ^cmake@3.23.1", "amg2023 ^cmake@3.26.3"], unify=False
        )
        assert roots[0]["cmake"].version == Version("3.23.1")
        assert roots[1]["cmake"].version == Version("3.26.3")


class TestExternalsAndConfig:
    """Behaviours from paper Figure 4: system packages.yaml externals."""

    @pytest.fixture
    def cts1_config(self):
        scope = ConfigScope(
            "cts1",
            {
                "packages": {
                    "blas": {
                        "externals": [
                            {
                                "spec": "intel-oneapi-mkl@2022.1.0",
                                "prefix": "/path/to/intel-oneapi-mkl",
                            }
                        ],
                        "buildable": False,
                    },
                    "mpi": {
                        "externals": [
                            {
                                "spec": "mvapich2@2.3.7-gcc12.1.1-magic",
                                "prefix": "/path/to/mvapich2",
                            }
                        ],
                        "buildable": False,
                    },
                    "mvapich2": {
                        "externals": [
                            {
                                "spec": "mvapich2@2.3.7-gcc12.1.1-magic",
                                "prefix": "/path/to/mvapich2",
                            }
                        ],
                        "buildable": False,
                    },
                    "intel-oneapi-mkl": {
                        "externals": [
                            {
                                "spec": "intel-oneapi-mkl@2022.1.0",
                                "prefix": "/path/to/intel-oneapi-mkl",
                            }
                        ],
                        "buildable": False,
                    },
                }
            },
        )
        return Configuration(scope)

    def test_external_mpi_used(self, cts1_config, gcc12):
        conc = Concretizer(config=cts1_config, compilers=gcc12)
        c = conc.concretize("saxpy")
        mpi = c["mvapich2"]
        assert mpi.external
        assert mpi.external_path == "/path/to/mvapich2"
        assert str(mpi.versions) == "2.3.7-gcc12.1.1-magic"

    def test_external_is_leaf(self, cts1_config, gcc12):
        conc = Concretizer(config=cts1_config, compilers=gcc12)
        c = conc.concretize("saxpy")
        assert not c["mvapich2"].dependencies

    def test_buildable_false_without_external(self, gcc12):
        config = Configuration(
            ConfigScope("sys", {"packages": {"hypre": {"buildable": False}}})
        )
        conc = Concretizer(config=config, compilers=gcc12)
        with pytest.raises(ConcretizationError, match="buildable"):
            conc.concretize("amg2023")

    def test_preferred_version_from_config(self, gcc12):
        config = Configuration(
            ConfigScope("sys", {"packages": {"cmake": {"version": ["3.23.1"]}}})
        )
        conc = Concretizer(config=config, compilers=gcc12)
        assert conc.concretize("cmake").version == Version("3.23.1")

    def test_preferred_variants_from_config(self, gcc12):
        config = Configuration(
            ConfigScope("sys", {"packages": {"hypre": {"variants": ["+openmp"]}}})
        )
        conc = Concretizer(config=config, compilers=gcc12)
        c = conc.concretize("hypre")
        assert c.variants["openmp"] is True

    def test_user_overrides_config_preference(self, gcc12):
        config = Configuration(
            ConfigScope("sys", {"packages": {"hypre": {"variants": ["+openmp"]}}})
        )
        conc = Concretizer(config=config, compilers=gcc12)
        c = conc.concretize("hypre~openmp")
        assert c.variants["openmp"] is False

    def test_provider_preference(self, gcc12):
        config = Configuration(
            ConfigScope(
                "sys",
                {"packages": {"mpi": {"providers": {"mpi": ["openmpi"]}}}},
            )
        )
        conc = Concretizer(config=config, compilers=gcc12)
        c = conc.concretize("saxpy")
        assert "openmpi" in c
        assert "mvapich2" not in c


class TestCompilerSelection:
    def test_unknown_compiler_rejected(self, gcc12):
        conc = Concretizer(compilers=gcc12)
        from repro.spack.compiler import CompilerNotFoundError

        with pytest.raises(CompilerNotFoundError):
            conc.concretize("saxpy %clang@16.0.0")

    def test_best_of_multiple(self):
        reg = CompilerRegistry(
            [
                Compiler(CompilerSpec("gcc", Version("10.3.1"))),
                Compiler(CompilerSpec("gcc", Version("12.1.1"))),
            ]
        )
        conc = Concretizer(compilers=reg)
        c = conc.concretize("saxpy %gcc")
        assert str(c.compiler) == "gcc@12.1.1"

    def test_concrete_spec_rejected_as_input(self, plain):
        c = plain.concretize("saxpy")
        with pytest.raises(Exception):
            c.constrain(parse_spec("+cuda"))
