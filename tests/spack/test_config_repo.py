"""Tests for configuration scopes, repositories/overlays, the package DSL
internals, and variant semantics."""

import pytest
import yaml
from hypothesis import given, strategies as st

from repro.spack import (
    CMakePackage,
    ConfigScope,
    Configuration,
    Package,
    Repository,
    RepoPath,
    builtin_repo,
    depends_on,
    parse_spec,
    provides,
    variant,
    version,
)
from repro.spack.repository import UnknownPackageError
from repro.spack.variant import (
    VariantDef,
    normalize_value,
    value_intersects,
    value_merge,
    value_satisfies,
)


class TestConfigScopes:
    def test_single_scope(self):
        c = Configuration(ConfigScope("a", {"config": {"x": 1}}))
        assert c.get("config") == {"x": 1}

    def test_later_scope_wins_scalars(self):
        c = Configuration(
            ConfigScope("low", {"config": {"x": 1, "y": 2}}),
            ConfigScope("high", {"config": {"x": 10}}),
        )
        assert c.get("config") == {"x": 10, "y": 2}

    def test_dicts_merge_recursively(self):
        c = Configuration(
            ConfigScope("low", {"packages": {"mpi": {"buildable": True,
                                                     "version": ["1"]}}}),
            ConfigScope("high", {"packages": {"mpi": {"buildable": False}}}),
        )
        mpi = c.get("packages")["mpi"]
        assert mpi["buildable"] is False
        assert mpi["version"] == ["1"]

    def test_lists_prepend(self):
        c = Configuration(
            ConfigScope("low", {"repos": ["builtin"]}),
            ConfigScope("high", {"repos": ["overlay"]}),
        )
        assert c.get("repos") == ["overlay", "builtin"]

    def test_double_colon_replaces(self):
        c = Configuration(
            ConfigScope("low", {"packages": {"mpi": {"version": ["1", "2"]}}}),
            ConfigScope("high", {"packages": {"mpi::": {"version": ["9"]}}}),
        )
        assert c.get("packages")["mpi"] == {"version": ["9"]}

    def test_get_path(self):
        c = Configuration(ConfigScope("a", {
            "packages": {"mpi": {"buildable": False}}}))
        assert c.get_path("packages.mpi.buildable") is False
        assert c.get_path("packages.ghost.buildable", default="d") == "d"

    def test_push_pop_scope(self):
        c = Configuration(ConfigScope("base", {"config": {"x": 1}}))
        c.push_scope(ConfigScope("cli", {"config": {"x": 2}}))
        assert c.get("config")["x"] == 2
        c.pop_scope()
        assert c.get("config")["x"] == 1

    def test_from_directory(self, tmp_path):
        (tmp_path / "packages.yaml").write_text(yaml.safe_dump(
            {"packages": {"mpi": {"buildable": False}}}))
        (tmp_path / "compilers.yaml").write_text(yaml.safe_dump(
            {"compilers": [{"compiler": {"spec": "gcc@12.1.1"}}]}))
        scope = ConfigScope.from_directory("sys", tmp_path)
        c = Configuration(scope)
        assert c.is_buildable("mpi") is False
        assert len(c.compilers()) == 1

    def test_from_file(self, tmp_path):
        path = tmp_path / "x.yaml"
        path.write_text("config: {answer: 42}\n")
        scope = ConfigScope.from_file("f", path)
        assert scope.get("config")["answer"] == 42

    def test_dump_merged(self):
        c = Configuration(
            ConfigScope("a", {"config": {"x": 1}}),
            ConfigScope("b", {"other": {"y": 2}}),
        )
        merged = yaml.safe_load(c.dump())
        assert merged == {"config": {"x": 1}, "other": {"y": 2}}

    def test_all_buildable_default(self):
        c = Configuration(ConfigScope("a", {"packages": {
            "all": {"buildable": False}}}))
        assert c.is_buildable("anything") is False


class TestRepositories:
    def test_builtin_has_paper_packages(self):
        repo = builtin_repo()
        for name in ("saxpy", "amg2023", "hypre", "mvapich2",
                     "intel-oneapi-mkl", "caliper", "adiak", "cmake"):
            assert repo.exists(name), name

    def test_virtual_detection(self):
        repo = builtin_repo()
        assert repo.is_virtual("mpi")
        assert repo.is_virtual("blas")
        assert not repo.is_virtual("saxpy")
        assert not repo.is_virtual("completely-unknown")

    def test_providers(self):
        repo = builtin_repo()
        assert "mvapich2" in repo.providers_of("mpi")
        assert "openblas" in repo.providers_of("lapack")

    def test_unknown_package_error(self):
        with pytest.raises(UnknownPackageError, match="unknown package"):
            builtin_repo().get_class("warpdrive")

    def test_overlay_shadows_builtin(self):
        class Saxpy(Package):
            version("99.0")

        overlay = Repository("overlay")
        overlay.register(Saxpy)
        path = RepoPath(overlay, builtin_repo())
        cls = path.get_class("saxpy")
        assert str(cls.preferred_version()) == "99.0"

    def test_repo_path_union_names(self):
        class Newpkg(Package):
            version("1.0")

        overlay = Repository("overlay")
        overlay.register(Newpkg)
        path = RepoPath(overlay, builtin_repo())
        names = path.all_package_names()
        assert "newpkg" in names and "saxpy" in names

    def test_prepend(self):
        path = RepoPath(builtin_repo())
        overlay = Repository("overlay")
        path.prepend(overlay)
        assert path.repos[0] is overlay


class TestPackageDsl:
    def test_pkg_name_kebab_case(self):
        class IntelOneapiMkl(Package):
            version("1.0")

        assert IntelOneapiMkl.pkg_name() == "intel-oneapi-mkl"

    def test_preferred_version_flag(self):
        class P(Package):
            version("2.0")
            version("1.5", preferred=True)

        assert str(P.preferred_version()) == "1.5"

    def test_deprecated_excluded(self):
        class P(Package):
            version("2.0", deprecated=True)
            version("1.5")

        assert str(P.preferred_version()) == "1.5"

    def test_no_versions_raises(self):
        from repro.spack.package import PackageError

        class Empty(Package):
            pass

        with pytest.raises(PackageError, match="no versions"):
            Empty.preferred_version()

    def test_conditional_dependency_listing(self):
        class P(CMakePackage):
            version("1.0")
            variant("gpu", default=False)
            depends_on("cuda", when="+gpu")

        base = parse_spec("p~gpu")
        gpu = parse_spec("p+gpu")
        assert "cuda" not in P.dependencies_for(base)
        assert "cuda" in P.dependencies_for(gpu)

    def test_provides_records_condition(self):
        class P(Package):
            version("1.0")
            provides("mpi")

        assert "mpi" in P.provided

    def test_cmake_base_dependency_inherited(self):
        class P(CMakePackage):
            version("1.0")

        assert "cmake" in P.dependencies

    def test_abstract_spec_rejected_by_constructor(self):
        from repro.spack.package import PackageError

        class P(Package):
            version("1.0")

        with pytest.raises(PackageError, match="concrete"):
            P(parse_spec("p"))


class TestVariantSemantics:
    def test_bool_normalization(self):
        assert normalize_value("True") is True
        assert normalize_value("false") is False

    def test_multi_normalization_sorted(self):
        assert normalize_value("b,a") == ("a", "b")
        assert normalize_value(["70", "60"]) == ("60", "70")

    def test_satisfies_superset(self):
        assert value_satisfies(("a", "b"), "a")
        assert not value_satisfies(("a",), ("a", "b"))

    def test_bool_mismatch(self):
        assert not value_satisfies(True, False)
        assert not value_intersects(True, False)

    def test_merge_union(self):
        assert value_merge(("a",), ("b",)) == ("a", "b")

    def test_merge_conflicting_strings(self):
        with pytest.raises(ValueError):
            value_merge("x", "y")

    def test_def_validation(self):
        d = VariantDef("threads", default="none",
                       values=("none", "openmp"), multi=False)
        d.validate("openmp")
        with pytest.raises(ValueError, match="invalid value"):
            d.validate("pthreads")
        with pytest.raises(ValueError, match="single-valued"):
            d.validate(("none", "openmp"))

    def test_bool_def_rejects_valued(self):
        d = VariantDef("debug", default=False)
        with pytest.raises(ValueError, match="boolean"):
            d.validate("maybe")

    @given(st.sets(st.sampled_from("abcdef"), min_size=1),
           st.sets(st.sampled_from("abcdef"), min_size=1))
    def test_merge_satisfies_both(self, a, b):
        va, vb = tuple(sorted(a)), tuple(sorted(b))
        merged = value_merge(va, vb)
        assert value_satisfies(merged, va)
        assert value_satisfies(merged, vb)
