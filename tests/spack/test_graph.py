"""Tests for dependency-graph analysis (repro.spack.graph)."""

import pytest

from repro.spack import Concretizer, parse_spec
from repro.spack.graph import (
    build_order,
    critical_path,
    graph_stats,
    parallel_makespan,
    spec_to_graph,
)


@pytest.fixture(scope="module")
def amg_spec():
    return Concretizer().concretize("amg2023+caliper")


class TestGraph:
    def test_abstract_spec_rejected(self):
        from repro.spack.spec import SpecError

        with pytest.raises(SpecError, match="concrete"):
            spec_to_graph(parse_spec("amg2023"))

    def test_graph_matches_traversal(self, amg_spec):
        g = spec_to_graph(amg_spec)
        assert set(g.nodes) == {n.name for n in amg_spec.traverse()}

    def test_edges_point_dep_to_dependent(self, amg_spec):
        g = spec_to_graph(amg_spec)
        assert g.has_edge("hypre", "amg2023")
        assert not g.has_edge("amg2023", "hypre")

    def test_build_order_valid(self, amg_spec):
        order = build_order(amg_spec)
        g = spec_to_graph(amg_spec)
        position = {name: i for i, name in enumerate(order)}
        for dep, dependent in g.edges:
            assert position[dep] < position[dependent]

    def test_build_order_deterministic(self, amg_spec):
        assert build_order(amg_spec) == build_order(amg_spec)

    def test_root_is_last(self, amg_spec):
        assert build_order(amg_spec)[-1] == "amg2023"

    def test_critical_path_ends_at_root(self, amg_spec):
        path, seconds = critical_path(amg_spec)
        assert path[-1] == "amg2023"
        assert seconds > 0

    def test_critical_path_is_bound_on_makespan(self, amg_spec):
        _, cp = critical_path(amg_spec)
        for workers in (1, 2, 4, 16):
            assert parallel_makespan(amg_spec, workers) >= cp - 1e-9

    def test_serial_makespan_is_total_cost(self, amg_spec):
        stats = graph_stats(amg_spec)
        serial = parallel_makespan(amg_spec, 1)
        assert serial == pytest.approx(stats["total_build_seconds"])

    def test_parallelism_monotone(self, amg_spec):
        times = [parallel_makespan(amg_spec, w) for w in (1, 2, 4, 8)]
        assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))

    def test_invalid_workers(self, amg_spec):
        with pytest.raises(ValueError):
            parallel_makespan(amg_spec, 0)

    def test_stats_fields(self, amg_spec):
        stats = graph_stats(amg_spec)
        assert stats["nodes"] >= 5
        assert stats["max_parallel_speedup"] >= 1.0

    def test_external_costs_zero(self):
        from repro.spack import (
            Compiler, CompilerRegistry, CompilerSpec, ConfigScope,
            Configuration, Version,
        )

        config = Configuration(ConfigScope("s", {"packages": {
            "mvapich2": {"externals": [
                {"spec": "mvapich2@2.3.7", "prefix": "/opt/mpi"}],
                "buildable": False},
        }}))
        conc = Concretizer(
            config=config,
            compilers=CompilerRegistry(
                [Compiler(CompilerSpec("gcc", Version("12.1.1")))]),
        )
        spec = conc.concretize("saxpy")
        g = spec_to_graph(spec)
        assert g.nodes["mvapich2"]["cost"] == 0.0
