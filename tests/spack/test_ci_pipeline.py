"""Tests for spack ci generate + pipeline `needs` execution."""

import pytest

from repro.ci.pipeline import CiConfigError, build_pipeline, parse_ci_config, run_pipeline
from repro.spack import (
    BinaryCache,
    Concretizer,
    Environment,
    Installer,
    Spec,
    Store,
)
from repro.spack.ci_pipeline import generate_ci_pipeline, job_name_for
from repro.spack.spec import SpecError


@pytest.fixture
def amg_env(tmp_path):
    env = Environment.create(tmp_path / "env", specs=["amg2023+caliper"])
    env.concretize(Concretizer())
    return env


class TestGeneration:
    def test_requires_concretized_env(self, tmp_path):
        env = Environment.create(tmp_path / "env", specs=["saxpy"])
        with pytest.raises(SpecError, match="not concretized"):
            generate_ci_pipeline(env)

    def test_one_job_per_node(self, amg_env):
        parsed = parse_ci_config(generate_ci_pipeline(amg_env))
        root = amg_env.concrete_roots[0]
        expected = {job_name_for(n) for n in root.traverse() if not n.external}
        assert {j.name for j in parsed["jobs"]} == expected

    def test_needs_mirror_dependencies(self, amg_env):
        parsed = parse_ci_config(generate_ci_pipeline(amg_env))
        root = amg_env.concrete_roots[0]
        by_name = {j.name: j for j in parsed["jobs"]}
        amg_job = by_name[job_name_for(root)]
        expected_needs = {
            job_name_for(d) for d in root.dependencies.values() if not d.external
        }
        assert set(amg_job.needs) == expected_needs

    def test_tags_applied(self, amg_env):
        parsed = parse_ci_config(generate_ci_pipeline(amg_env, tags=["cts1"]))
        assert all(j.tags == ["cts1"] for j in parsed["jobs"])

    def test_cached_specs_pruned(self, amg_env, tmp_path):
        cache = BinaryCache()
        root = amg_env.concrete_roots[0]
        # Pre-populate the cache with everything.
        Installer(Store(tmp_path / "store"), binary_cache=cache).install(root)
        text = generate_ci_pipeline(amg_env, binary_cache=cache)
        parsed = parse_ci_config(text)
        assert [j.name for j in parsed["jobs"]] == ["no-specs-to-rebuild"]

    def test_partial_cache_prunes_needs(self, amg_env, tmp_path):
        cache = BinaryCache()
        root = amg_env.concrete_roots[0]
        cmake = root["cmake"]
        # Cache only cmake.
        store = Store(tmp_path / "store")
        installer = Installer(store, binary_cache=cache)
        installer.install(cmake)
        parsed = parse_ci_config(
            generate_ci_pipeline(amg_env, binary_cache=cache))
        names = {j.name for j in parsed["jobs"]}
        assert job_name_for(cmake) not in names
        for job in parsed["jobs"]:
            assert job_name_for(cmake) not in job.needs


class TestNeedsExecution:
    def test_needs_order_respected(self, amg_env):
        text = generate_ci_pipeline(amg_env)
        pipeline = build_pipeline("main", "abc", text)
        executed = []
        run_pipeline(pipeline, lambda job: (executed.append(job.name) or True, ""))
        position = {name: i for i, name in enumerate(executed)}
        for job in pipeline.jobs:
            for need in job.needs:
                assert position[need] < position[job.name]
        assert pipeline.succeeded

    def test_failed_need_skips_dependents(self, amg_env):
        text = generate_ci_pipeline(amg_env)
        pipeline = build_pipeline("main", "abc", text)
        root = amg_env.concrete_roots[0]
        hypre_job = job_name_for(root["hypre"])
        amg_job = job_name_for(root)

        def execute(job):
            return (job.name != hypre_job), "log"

        run_pipeline(pipeline, execute)
        statuses = {j.name: j.status for j in pipeline.jobs}
        assert statuses[hypre_job] == "failed"
        assert statuses[amg_job] == "skipped"
        assert not pipeline.succeeded

    def test_pipeline_actually_builds_the_env(self, amg_env, tmp_path):
        """End-to-end: CI jobs install their spec into a shared store in
        needs order; afterwards the whole environment is installed."""
        store = Store(tmp_path / "store")
        installer = Installer(store)
        root = amg_env.concrete_roots[0]
        by_job = {job_name_for(n): n for n in root.traverse() if not n.external}

        def execute(job):
            spec = by_job[job.name]
            # deps must already be present — the needs edges guarantee it
            results = installer.install(spec)
            return all(r.action != "failed" for r in results), "built"

        pipeline = build_pipeline("main", "abc",
                                  generate_ci_pipeline(amg_env))
        run_pipeline(pipeline, execute)
        assert pipeline.succeeded
        assert all(store.is_installed(n) for n in root.traverse())

    def test_unknown_need_rejected_at_parse(self):
        bad = """
stages: [build]
a:
  stage: build
  script: [x]
  needs: [ghost]
"""
        with pytest.raises(CiConfigError, match="unknown job"):
            parse_ci_config(bad)

    def test_circular_needs_fail_pipeline(self):
        text = """
stages: [build]
a:
  stage: build
  script: [x]
  needs: [b]
b:
  stage: build
  script: [x]
  needs: [a]
"""
        pipeline = build_pipeline("main", "abc", text)
        run_pipeline(pipeline, lambda job: (True, ""))
        assert not pipeline.succeeded
        assert all(j.status == "skipped" for j in pipeline.jobs)
