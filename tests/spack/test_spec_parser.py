"""Unit tests for the Spec data model and spec-string parser."""

import pytest
from hypothesis import given, strategies as st

from repro.spack.parser import SpecParseError, parse_spec, parse_specs
from repro.spack.spec import CompilerSpec, Spec, UnsatisfiableSpecError
from repro.spack.version import Version


class TestParser:
    def test_bare_name(self):
        s = parse_spec("amg2023")
        assert s.name == "amg2023"
        assert s.versions is None

    def test_paper_figure2_spec(self):
        s = parse_spec("amg2023+caliper")
        assert s.name == "amg2023"
        assert s.variants == {"caliper": True}

    def test_paper_figure10_spec(self):
        s = parse_spec("saxpy@1.0.0 +openmp ^cmake@3.23.1")
        assert s.name == "saxpy"
        assert str(s.versions) == "1.0.0"
        assert s.variants["openmp"] is True
        assert "cmake" in s.dependencies
        assert str(s.dependencies["cmake"].versions) == "3.23.1"

    def test_paper_figure4_suffixed_version(self):
        s = parse_spec("mvapich2@2.3.7-gcc12.1.1-magic")
        assert s.name == "mvapich2"
        assert s.versions == Version("2.3.7-gcc12.1.1-magic")

    def test_negative_variant(self):
        s = parse_spec("hypre~openmp")
        assert s.variants["openmp"] is False

    def test_compiler(self):
        s = parse_spec("hypre %gcc@12.1.1")
        assert s.compiler == CompilerSpec("gcc", Version("12.1.1"))

    def test_compiler_without_version(self):
        s = parse_spec("hypre %gcc")
        assert s.compiler.name == "gcc"
        assert s.compiler.versions is None

    def test_version_range(self):
        s = parse_spec("hypre@2.24:")
        assert s.versions.includes(Version("2.28.0"))
        assert not s.versions.includes(Version("2.20"))

    def test_key_value_variant(self):
        s = parse_spec("openblas threads=openmp")
        assert s.variants["threads"] == "openmp"

    def test_multi_value_variant(self):
        s = parse_spec("saxpy cuda_arch=70,80")
        assert s.variants["cuda_arch"] == ("70", "80")

    def test_target(self):
        s = parse_spec("saxpy target=zen3")
        assert s.target == "zen3"
        assert "target" not in s.variants

    def test_multiple_dependencies(self):
        s = parse_spec("amg2023 ^hypre@2.28.0 ^mvapich2")
        assert set(s.dependencies) == {"hypre", "mvapich2"}

    def test_anonymous_constraint(self):
        s = parse_spec("+cuda")
        assert s.name == ""
        assert s.variants["cuda"] is True

    def test_empty_rejected(self):
        with pytest.raises(SpecParseError):
            parse_spec("")

    def test_unnamed_dependency_rejected(self):
        with pytest.raises(SpecParseError):
            parse_spec("amg2023 ^@1.0")

    def test_duplicate_version_rejected(self):
        with pytest.raises(SpecParseError):
            parse_spec("amg2023@1.0@2.0")

    def test_parse_specs_splits_names(self):
        specs = parse_specs("saxpy+openmp amg2023+caliper")
        assert [s.name for s in specs] == ["saxpy", "amg2023"]

    def test_roundtrip_format(self):
        text = "saxpy@1.0.0 +openmp ^cmake@3.23.1"
        s = parse_spec(text)
        again = parse_spec(s.format(deps=True))
        assert again == s


class TestSatisfies:
    def test_name_mismatch(self):
        assert not parse_spec("saxpy").satisfies(parse_spec("amg2023"))

    def test_version_prefix(self):
        assert parse_spec("saxpy@1.0.0").satisfies(parse_spec("saxpy@1.0"))
        assert not parse_spec("saxpy@1.0").satisfies(parse_spec("saxpy@1.0.0"))

    def test_variant_subset(self):
        full = parse_spec("saxpy+openmp~cuda")
        assert full.satisfies(parse_spec("saxpy+openmp"))
        assert not full.satisfies(parse_spec("saxpy+cuda"))

    def test_missing_variant_does_not_satisfy(self):
        assert not parse_spec("saxpy").satisfies(parse_spec("saxpy+openmp"))

    def test_anonymous_satisfies(self):
        assert parse_spec("saxpy+cuda").satisfies(parse_spec("+cuda"))

    def test_compiler_satisfies(self):
        s = parse_spec("saxpy %gcc@12.1.1")
        assert s.satisfies(parse_spec("saxpy %gcc"))
        assert s.satisfies(parse_spec("saxpy %gcc@12"))
        assert not s.satisfies(parse_spec("saxpy %clang"))

    def test_transitive_dependency_satisfies(self):
        s = parse_spec("amg2023 ^hypre@2.28.0")
        assert s.satisfies(parse_spec("amg2023 ^hypre@2.24:"))
        assert not s.satisfies(parse_spec("amg2023 ^hypre@2.29:"))


class TestConstrain:
    def test_merge_variants(self):
        a = parse_spec("saxpy+openmp")
        a.constrain(parse_spec("saxpy~cuda"))
        assert a.variants == {"openmp": True, "cuda": False}

    def test_conflicting_bool_variant(self):
        a = parse_spec("saxpy+openmp")
        with pytest.raises(UnsatisfiableSpecError):
            a.constrain(parse_spec("saxpy~openmp"))

    def test_conflicting_names(self):
        with pytest.raises(UnsatisfiableSpecError):
            parse_spec("saxpy").constrain(parse_spec("amg2023"))

    def test_version_narrowing(self):
        a = parse_spec("hypre@2.24:")
        a.constrain(parse_spec("hypre@2.28.0"))
        assert str(a.versions) == "2.28.0"

    def test_disjoint_versions(self):
        a = parse_spec("hypre@2.24")
        with pytest.raises(UnsatisfiableSpecError):
            a.constrain(parse_spec("hypre@2.26"))

    def test_merge_dependencies(self):
        a = parse_spec("amg2023 ^hypre+cuda")
        a.constrain(parse_spec("amg2023 ^mvapich2@2.3.7"))
        assert set(a.dependencies) == {"hypre", "mvapich2"}

    def test_anonymous_constrain(self):
        a = parse_spec("saxpy")
        a.constrain(parse_spec("+cuda"))
        assert a.variants["cuda"] is True
        assert a.name == "saxpy"


class TestSpecSerialization:
    def test_node_dict_roundtrip(self):
        s = parse_spec("saxpy@1.0.0+openmp %gcc@12.1.1 target=zen3 ^cmake@3.23.1")
        d = s.to_node_dict(deps=True)
        back = Spec.from_node_dict(d)
        assert back == s

    def test_dag_hash_stable(self):
        a = parse_spec("saxpy@1.0.0+openmp")
        b = parse_spec("saxpy@1.0.0+openmp")
        assert a.dag_hash() == b.dag_hash()

    def test_dag_hash_differs(self):
        a = parse_spec("saxpy@1.0.0+openmp")
        b = parse_spec("saxpy@1.0.0~openmp")
        assert a.dag_hash() != b.dag_hash()

    def test_traverse_order(self):
        s = parse_spec("amg2023 ^hypre ^cmake")
        names = [n.name for n in s.traverse()]
        assert names[0] == "amg2023"
        assert set(names) == {"amg2023", "hypre", "cmake"}

    def test_contains(self):
        s = parse_spec("amg2023 ^hypre")
        assert "hypre" in s
        assert "cuda" not in s

    def test_getitem(self):
        s = parse_spec("amg2023 ^hypre@2.28.0")
        assert s["hypre"].versions == Version("2.28.0")
        with pytest.raises(KeyError):
            s["nonexistent"]


# -- property-based ---------------------------------------------------------

names = st.sampled_from(["saxpy", "amg2023", "hypre", "cmake", "mvapich2"])
bool_variants = st.dictionaries(
    st.sampled_from(["openmp", "cuda", "rocm", "caliper", "mpi"]),
    st.booleans(),
    max_size=4,
)


@given(names, bool_variants)
def test_format_parse_roundtrip(name, variants):
    s = Spec(name)
    s.variants.update(variants)
    assert parse_spec(s.format()) == s


@given(names, bool_variants)
def test_spec_satisfies_itself(name, variants):
    s = Spec(name)
    s.variants.update(variants)
    assert s.satisfies(s)
    assert s.intersects(s)


@given(names, bool_variants, bool_variants)
def test_constrain_produces_satisfying_spec(name, va, vb):
    a, b = Spec(name), Spec(name)
    a.variants.update(va)
    b.variants.update(vb)
    compatible = all(va[k] == vb[k] for k in set(va) & set(vb))
    if compatible:
        merged = a.copy().constrain(b)
        assert merged.satisfies(b)
        assert merged.satisfies(Spec(name))
    else:
        with pytest.raises(UnsatisfiableSpecError):
            a.copy().constrain(b)
