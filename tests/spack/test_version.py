"""Unit tests for mini-Spack version semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.spack.version import (
    Version,
    VersionList,
    VersionRange,
    highest,
    ver,
)


class TestVersionOrdering:
    def test_numeric_ordering(self):
        assert Version("1.2") < Version("1.10")
        assert Version("2.0") > Version("1.99")

    def test_prefix_is_less(self):
        assert Version("1.2") < Version("1.2.1")

    def test_equal(self):
        assert Version("1.2.3") == Version("1.2.3")
        assert Version("1.2.3") == "1.2.3"

    def test_alpha_before_numeric(self):
        assert Version("1.beta") < Version("1.2")
        assert Version("1.alpha") < Version("1.beta")

    def test_infinity_versions_sort_highest(self):
        assert Version("develop") > Version("999.9")
        assert Version("main") > Version("3.27.4")
        assert Version("develop") > Version("main")

    def test_suffixed_version_ordering(self):
        # The paper's mvapich2@2.3.7-gcc12.1.1-magic extends 2.3.7
        assert Version("2.3.7") < Version("2.3.7-gcc12.1.1-magic")

    def test_hash_consistency(self):
        assert hash(Version("1.2.3")) == hash(Version("1.2.3"))

    def test_empty_version_rejected(self):
        with pytest.raises(ValueError):
            Version("")


class TestVersionSatisfies:
    def test_prefix_satisfaction(self):
        assert Version("1.2.3").satisfies(Version("1.2"))
        assert not Version("1.2").satisfies(Version("1.2.3"))

    def test_exact_satisfaction(self):
        assert Version("1.2").satisfies(Version("1.2"))

    def test_different_versions(self):
        assert not Version("1.3").satisfies(Version("1.2"))

    def test_up_to(self):
        assert Version("1.2.3").up_to(2) == Version("1.2")


class TestVersionRange:
    def test_includes_inside(self):
        r = VersionRange("1.2", "1.8")
        assert r.includes(Version("1.5"))
        assert r.includes(Version("1.2"))
        assert r.includes(Version("1.8"))

    def test_excludes_outside(self):
        r = VersionRange("1.2", "1.8")
        assert not r.includes(Version("1.1"))
        assert not r.includes(Version("1.9"))

    def test_prefix_inclusive_bounds(self):
        # Spack semantics: 1.2:1.8 includes 1.8.9 (prefix of high bound)
        r = VersionRange("1.2", "1.8")
        assert r.includes(Version("1.8.9"))

    def test_open_low(self):
        r = VersionRange(None, "2.0")
        assert r.includes(Version("0.1"))
        assert not r.includes(Version("2.1"))

    def test_open_high(self):
        r = VersionRange("2.24", None)
        assert r.includes(Version("2.28.0"))
        assert not r.includes(Version("2.23"))

    def test_intersects(self):
        assert VersionRange("1.0", "2.0").intersects(VersionRange("1.5", "3.0"))
        assert not VersionRange("1.0", "2.0").intersects(VersionRange("3.0", "4.0"))

    def test_range_satisfies_range(self):
        assert VersionRange("1.2", "1.5").satisfies(VersionRange("1.0", "2.0"))
        assert not VersionRange("1.2", "3.0").satisfies(VersionRange("1.0", "2.0"))

    def test_malformed_range(self):
        with pytest.raises(ValueError):
            VersionRange("2.0", "1.0")


class TestVer:
    def test_single(self):
        assert isinstance(ver("1.2.3"), Version)

    def test_range(self):
        v = ver("1.2:1.8")
        assert isinstance(v, VersionRange)
        assert v.low == Version("1.2")

    def test_open_range(self):
        v = ver("2.24:")
        assert isinstance(v, VersionRange)
        assert v.high is None

    def test_list(self):
        v = ver("1.2,1.4:1.6")
        assert isinstance(v, VersionList)
        assert v.includes(Version("1.2.9"))
        assert v.includes(Version("1.5"))
        assert not v.includes(Version("1.3"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ver("")


class TestHighest:
    def test_picks_max(self):
        assert highest([Version("1.0"), Version("2.0")]) == Version("2.0")

    def test_prefers_numeric_over_develop(self):
        assert highest([Version("develop"), Version("2.0")]) == Version("2.0")

    def test_develop_if_only_option(self):
        assert highest([Version("develop")]) == Version("develop")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            highest([])


# -- property-based tests -----------------------------------------------

version_strings = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=5
).map(lambda parts: ".".join(map(str, parts)))


@given(version_strings)
def test_version_equals_itself(s):
    assert Version(s) == Version(s)
    assert Version(s).satisfies(Version(s))


@given(version_strings, version_strings)
def test_ordering_total_and_antisymmetric(a, b):
    va, vb = Version(a), Version(b)
    assert (va < vb) or (vb < va) or (va == vb)
    if va < vb:
        assert not (vb < va)


@given(version_strings, version_strings)
def test_prefix_satisfaction_property(a, b):
    va, vb = Version(a), Version(b)
    joined = Version(f"{b}.{a}")
    assert joined.satisfies(vb)


@given(version_strings, version_strings, version_strings)
def test_ordering_transitive(a, b, c):
    va, vb, vc = Version(a), Version(b), Version(c)
    if va <= vb and vb <= vc:
        assert va <= vc


@given(st.lists(version_strings, min_size=1, max_size=8))
def test_highest_is_maximal(strings):
    versions = [Version(s) for s in strings]
    top = highest(versions)
    assert all(v <= top for v in versions)
