"""The dependency-expansion fixpoint loop must fail loudly, naming the
packages that keep toggling, instead of silently giving up."""

import itertools

import pytest

from repro.spack.concretizer import ConcretizationError, Concretizer
from repro.spack.package import Package
from repro.spack.parser import parse_spec
from repro.spack.repository import RepoPath, Repository
from repro.spack.version import Version


def _leaf(class_name: str):
    cls = type(class_name, (Package,), {})
    cls.versions[Version("1.0")] = {
        "sha256": None, "preferred": False, "deprecated": False,
    }
    return cls


def _repo_with_runaway_root():
    """A repo whose root package's conditional dependencies never converge:
    every fixpoint iteration discovers one more dependency."""
    repo = Repository("test")
    for i in range(40):
        repo.register(_leaf(f"W{i}"))

    counter = itertools.count()

    class Runaway(Package):
        @classmethod
        def dependencies_for(cls, spec):
            i = next(counter)  # a new dependency appears every iteration
            return {f"w{i}": parse_spec(f"w{i}")}

    Runaway.versions[Version("1.0")] = {
        "sha256": None, "preferred": False, "deprecated": False,
    }
    repo.register(Runaway)
    return repo


class TestFixpointDiagnostics:
    def test_runaway_conditional_deps_raise_named_error(self):
        concretizer = Concretizer(
            repo_path=RepoPath(_repo_with_runaway_root()), memoize=False,
        )
        with pytest.raises(ConcretizationError) as exc_info:
            concretizer.concretize("runaway")
        message = str(exc_info.value)
        assert "runaway" in message
        assert "fixpoint" in message
        assert "when=" in message
        # the last waves name the dependencies that kept appearing
        assert "{w" in message

    def test_converging_conditionals_still_solve(self):
        """Sanity: a normal conditional dependency converges in two waves."""
        repo = Repository("test")
        repo.register(_leaf("Dep"))

        class App(Package):
            pass

        App.versions[Version("1.0")] = {
            "sha256": None, "preferred": False, "deprecated": False,
        }
        from repro.spack.variant import VariantDef

        App.variants["extra"] = VariantDef("extra", default=True)
        App.dependencies["dep"] = [{
            "spec": parse_spec("dep"),
            "when": parse_spec("+extra"),
            "type": ("build", "link"),
        }]
        repo.register(App)
        solved = Concretizer(repo_path=RepoPath(repo), memoize=False).concretize("app")
        assert "dep" in solved.dependencies
