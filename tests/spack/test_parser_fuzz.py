"""Fuzz/property tests for the spec parser: no crashes, clean errors,
round-trip stability over generated spec strings."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.spack.parser import SpecParseError, parse_spec
from repro.spack.spec import SpecError

# -- generators for *valid* spec strings ------------------------------------
names = st.sampled_from(["saxpy", "amg2023", "hypre", "intel-oneapi-mkl",
                         "osu-micro-benchmarks", "pkg_a"])
versions = st.sampled_from(["1.0", "2.3.7", "1.0.0", "2.28", "3.23.1",
                            "2.3.7-gcc12.1.1-magic"])
bool_variants = st.sampled_from(["+openmp", "~cuda", "+caliper", "~rocm"])
kv_variants = st.sampled_from(["threads=openmp", "cuda_arch=70,80",
                               "build_type=Release"])
compilers = st.sampled_from(["%gcc", "%gcc@12.1.1", "%clang@15.0.0",
                             "%intel@2021.6.0"])
targets = st.sampled_from(["target=zen3", "target=broadwell",
                           "target=power9le"])


@st.composite
def spec_strings(draw):
    parts = [draw(names)]
    if draw(st.booleans()):
        parts[0] += f"@{draw(versions)}"
    for _ in range(draw(st.integers(0, 3))):
        parts.append(draw(bool_variants))
    if draw(st.booleans()):
        parts.append(draw(kv_variants))
    if draw(st.booleans()):
        parts.append(draw(compilers))
    if draw(st.booleans()):
        parts.append(draw(targets))
    root_name = parts[0].split("@")[0]
    n_deps = draw(st.integers(0, 2))
    for _ in range(n_deps):
        dep = draw(names.filter(lambda n: n != root_name))
        if draw(st.booleans()):
            dep += f"@{draw(versions)}"
        parts.append(f"^{dep}")
    return " ".join(parts)


@given(spec_strings())
@settings(max_examples=200, deadline=None)
def test_valid_specs_parse_and_roundtrip(text):
    spec = parse_spec(text)
    assert spec.name
    # format → parse → format is a fixed point
    once = parse_spec(spec.format(deps=True))
    assert once == spec
    assert parse_spec(once.format(deps=True)) == once


@given(spec_strings())
@settings(max_examples=100, deadline=None)
def test_parsed_spec_satisfies_itself(text):
    spec = parse_spec(text)
    assert spec.satisfies(spec)
    assert spec.intersects(spec)


@given(spec_strings())
@settings(max_examples=100, deadline=None)
def test_node_dict_roundtrip_fuzz(text):
    from repro.spack.spec import Spec

    spec = parse_spec(text)
    assert Spec.from_node_dict(spec.to_node_dict(deps=True)) == spec


# -- garbage in, clean errors out ---------------------------------------------
@given(st.text(alphabet=string.printable, max_size=40))
@settings(max_examples=300, deadline=None)
def test_arbitrary_text_never_crashes(text):
    """The parser must either return a Spec or raise SpecError — no
    IndexError/KeyError/AttributeError escapes, ever."""
    try:
        parse_spec(text)
    except SpecError:
        pass  # includes SpecParseError and ValueError-derived version errors
    except ValueError:
        pass  # version/variant validation
    # anything else propagates and fails the test


@pytest.mark.parametrize("bad", [
    "@1.0",  # version without package is anonymous-with-version (allowed)
])
def test_anonymous_version_constraint_allowed(bad):
    spec = parse_spec(bad)
    assert spec.name == ""
    assert spec.versions is not None


def test_self_dependency_rejected():
    with pytest.raises(SpecParseError, match="depend on itself"):
        parse_spec("saxpy ^saxpy")


@pytest.mark.parametrize("bad", [
    "^cmake",          # dependency without a root
    "pkg ^",           # dangling dep marker
    "pkg %",           # dangling compiler marker
    "pkg @",           # dangling version marker
    "pkg +",           # dangling variant marker
])
def test_dangling_operators_rejected(bad):
    with pytest.raises((SpecParseError, SpecError)):
        spec = parse_spec(bad)
        # "^cmake" alone parses as anonymous root with dep — that root is
        # unnamed, which parse_spec for deps rejects; if it somehow parses,
        # force the failure:
        if not spec.name and spec.dependencies:
            raise SpecParseError("anonymous root with dependencies", bad, 0)
