"""Tests for spack diff (the §7.1 divergence-debugging tool)."""

import pytest

from repro.spack import (
    Compiler,
    CompilerRegistry,
    CompilerSpec,
    Concretizer,
    ConfigScope,
    Configuration,
    Version,
    diff_specs,
    parse_spec,
)
from repro.spack.spec import SpecError


@pytest.fixture
def conc():
    return Concretizer()


class TestDiff:
    def test_identical(self, conc):
        a = conc.concretize("saxpy+openmp")
        b = conc.concretize("saxpy+openmp")
        d = diff_specs(a, b)
        assert d.identical
        assert "identical" in d.summary()

    def test_variant_change(self, conc):
        d = diff_specs(conc.concretize("saxpy+openmp"),
                       conc.concretize("saxpy~openmp"))
        changed = {n.name for n in d.changed}
        assert changed == {"saxpy"}
        assert "variants" in d.changed[0].changes

    def test_version_change_in_dependency(self, conc):
        d = diff_specs(conc.concretize("saxpy ^cmake@3.23.1"),
                       conc.concretize("saxpy ^cmake@3.26.3"))
        cmake = [n for n in d.changed if n.name == "cmake"][0]
        assert cmake.changes["version"] == ("3.23.1", "3.26.3")

    def test_node_only_on_one_side(self, conc):
        d = diff_specs(conc.concretize("amg2023+caliper"),
                       conc.concretize("amg2023~caliper"))
        assert "caliper" in d.only_left
        assert "adiak" in d.only_left
        assert d.only_right == []

    def test_abstract_rejected(self, conc):
        with pytest.raises(SpecError, match="concrete"):
            diff_specs(parse_spec("saxpy"), conc.concretize("saxpy"))

    def test_section71_scenario(self):
        """The paper's on-prem vs cloud mystery: 'identical' stacks whose
        diff pinpoints the actual divergence (an external math library
        present only on-prem, plus a different target)."""
        onprem_config = Configuration(ConfigScope("onprem", {"packages": {
            "intel-oneapi-mkl": {"externals": [
                {"spec": "intel-oneapi-mkl@2022.1.0", "prefix": "/opt/mkl"}],
                "buildable": False},
            "blas": {"providers": {"blas": ["intel-oneapi-mkl"]}},
            "lapack": {"providers": {"lapack": ["intel-oneapi-mkl"]}},
        }}))
        gcc = CompilerRegistry([Compiler(CompilerSpec("gcc", Version("12.1.1")))])
        onprem = Concretizer(config=onprem_config, compilers=gcc,
                             default_target="cascadelake").concretize("hypre")
        cloud = Concretizer(compilers=gcc,
                            default_target="icelake").concretize("hypre")

        d = diff_specs(onprem, cloud)
        assert not d.identical
        # the library divergence the vendor took days to find:
        assert "intel-oneapi-mkl" in d.only_left
        assert "openblas" in d.only_right
        targets = [n for n in d.changed if "target" in n.changes]
        assert targets and targets[0].changes["target"] == (
            "cascadelake", "icelake")
