"""Tests for layout extras: generated .gitlab-ci.yml, spec tree rendering,
and the markdown dashboard report."""

import pytest

from repro.ci import MetricsDatabase
from repro.ci.pipeline import parse_ci_config
from repro.core import generate_benchpark_tree
from repro.core.layout import ci_config_for
from repro.spack import Concretizer


class TestCiConfigGeneration:
    def test_parses_as_valid_pipeline(self):
        text = ci_config_for(["saxpy", "amg2023"], ["cts1", "ats2"])
        parsed = parse_ci_config(text)
        assert parsed["stages"] == ["build", "bench"]
        assert len(parsed["jobs"]) == 2 * 2 * 2  # 2 stages × 2 bm × 2 sys

    def test_jobs_tagged_per_system(self):
        text = ci_config_for(["saxpy"], ["cts1", "ats4"])
        jobs = parse_ci_config(text)["jobs"]
        tags = {j.name: j.tags for j in jobs}
        assert tags["bench-saxpy-cts1"] == ["cts1"]
        assert tags["bench-saxpy-ats4"] == ["ats4"]

    def test_written_into_tree(self, tmp_path):
        root = generate_benchpark_tree(tmp_path / "bp",
                                       systems=["cts1"],
                                       benchmarks=["saxpy"])
        ci = (root / ".gitlab-ci.yml").read_text()
        parsed = parse_ci_config(ci)
        assert any(j.name == "build-saxpy-cts1" for j in parsed["jobs"])

    def test_runs_on_simulated_gitlab(self, tmp_path):
        """The generated pipeline executes end to end on a tagged runner."""
        from repro.ci import GitLab, Runner

        root = generate_benchpark_tree(tmp_path / "bp",
                                       systems=["cts1"],
                                       benchmarks=["saxpy"])
        lab = GitLab()
        lab.register_runner(Runner("cts1", ["cts1"], lambda job: (True, "ok")))
        project = lab.create_project("benchpark")
        project.git.commit("main", "ci", "bot", {
            ".gitlab-ci.yml": (root / ".gitlab-ci.yml").read_text()})
        pipeline = project.trigger_pipeline("main")
        assert pipeline.succeeded


class TestSpecTree:
    def test_tree_shape(self):
        spec = Concretizer().concretize("amg2023+caliper")
        tree = spec.tree()
        lines = tree.splitlines()
        assert lines[0].startswith("amg2023@")
        assert any(line.startswith("    ^") for line in lines)
        # deeper nesting exists (hypre's deps)
        assert any(line.startswith("        ^") for line in lines)

    def test_tree_hashes(self):
        spec = Concretizer().concretize("saxpy")
        tree = spec.tree(show_hashes=True)
        assert f"[{spec.dag_hash(7)}]" in tree

    def test_tree_deduplicates_shared_deps(self):
        spec = Concretizer().concretize("amg2023+caliper")
        tree = spec.tree()
        # mvapich2 is a dep of amg2023, hypre, and caliper; its own subtree
        # is only expanded once but it may appear as a leaf multiple times.
        top_level_lines = [l for l in tree.splitlines() if l.strip()]
        assert len(top_level_lines) < 3 * len(list(spec.traverse()))


class TestDashboardReport:
    def _db(self):
        db = MetricsDatabase()
        db.record("saxpy", "cts1", "e1", "bandwidth", 2.0, "GB/s")
        db.record("saxpy", "cts1", "e2", "bandwidth", 4.0, "GB/s")
        db.record("saxpy", "ats2", "e1", "bandwidth", 9.0, "GB/s")
        db.record("amg2023", "cts1", "a1", "fom_solve", 5e7, "nnz*iter/s")
        db.record("saxpy", "cts1", "e1", "success", "Kernel done", "")
        return db

    def test_report_sections(self):
        from repro.analysis import render_report

        report = render_report(self._db())
        assert report.startswith("# Benchpark results dashboard")
        assert "## bandwidth [GB/s] (mean)" in report
        assert "## fom_solve" in report
        assert "## benchmark usage" in report

    def test_report_averages(self):
        from repro.analysis import render_report

        report = render_report(self._db())
        # cts1 bandwidth mean of 2.0 and 4.0 = 3.0
        line = [l for l in report.splitlines()
                if l.startswith("saxpy") and "3" in l]
        assert line

    def test_non_numeric_foms_skipped(self):
        from repro.analysis import render_report

        report = render_report(self._db())
        assert "## success" not in report

    def test_empty_db(self):
        from repro.analysis import render_report

        report = render_report(MetricsDatabase())
        assert "0 records" in report
