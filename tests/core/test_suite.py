"""Tests for benchmark suite templates (Figure 1c step 2) and archspec
flags flowing into builds."""

import pytest

from repro.core.driver import BenchparkError
from repro.core.suite import (
    BUILTIN_SUITES,
    SuiteDefinition,
    get_suite,
    run_suite,
)


class TestSuiteDefinitions:
    def test_builtin_suites_valid(self):
        for name in BUILTIN_SUITES:
            get_suite(name)  # validates

    def test_unknown_suite(self):
        with pytest.raises(BenchparkError, match="unknown suite"):
            get_suite("imaginary")

    def test_empty_suite_invalid(self):
        s = SuiteDefinition("empty", "nothing", ())
        with pytest.raises(BenchparkError, match="no experiments"):
            s.validate()

    def test_unknown_benchmark_invalid(self):
        s = SuiteDefinition("bad", "x", ("hpl/openmp",))
        with pytest.raises(BenchparkError, match="unknown benchmark"):
            s.validate()

    def test_unknown_variant_invalid(self):
        s = SuiteDefinition("bad", "x", ("saxpy/fpga",))
        with pytest.raises(BenchparkError, match="no variant"):
            s.validate()


class TestSuiteRuns:
    def test_smoke_suite_on_cts1(self, tmp_path):
        run = run_suite("smoke", "cts1", tmp_path)
        assert run.passed
        assert set(run.statuses) == {"saxpy/openmp", "stream/openmp"}
        assert len(run.db) > 0
        assert "PASS" in run.summary()

    def test_gpu_suite_on_gpu_system(self, tmp_path):
        run = run_suite("gpu-acceptance", "ats2", tmp_path)
        assert run.passed

    def test_shared_db_across_systems(self, tmp_path):
        from repro.ci import MetricsDatabase

        db = MetricsDatabase()
        run_suite("smoke", "cts1", tmp_path / "a", db=db)
        run_suite("smoke", "ats4", tmp_path / "b", db=db)
        systems = {r.system for r in db.query()}
        assert systems == {"cts1", "ats4"}

    def test_unknown_system_fails_fast(self, tmp_path):
        with pytest.raises(KeyError, match="unknown system"):
            run_suite("smoke", "perlmutter", tmp_path)


class TestArchspecFlagsInBuilds:
    def test_build_log_carries_target_flags(self, tmp_path):
        """§3.1.3 role 1: the build is tailored to the target uarch."""
        from repro.core.runtime import SpackRuntime
        from repro.systems import get_system

        rt = SpackRuntime(get_system("ats4"), tmp_path / "store")
        spec = rt.concretize_together(["saxpy"])[0]
        rt.install(spec)
        rec = rt.store.get_record(spec)
        from pathlib import Path

        log = (Path(rec.prefix) / ".spack" / "build.log").read_text()
        assert "archspec: CFLAGS=" in log
        assert "znver3" in log  # ats4 is zen3_trento

    def test_different_targets_different_flags(self, tmp_path):
        from repro.core.runtime import SpackRuntime
        from repro.systems import get_system
        from pathlib import Path

        logs = {}
        for system in ("cts1", "ats4"):
            rt = SpackRuntime(get_system(system), tmp_path / system)
            spec = rt.concretize_together(["saxpy"])[0]
            rt.install(spec)
            rec = rt.store.get_record(spec)
            logs[system] = (Path(rec.prefix) / ".spack" / "build.log").read_text()
        assert "broadwell" in logs["cts1"]
        assert "znver3" in logs["ats4"]
